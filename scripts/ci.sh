#!/usr/bin/env bash
# Offline CI gate for the aeropack workspace. Everything here must pass
# with no network access: the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> sweep bench smoke (tiny grids, 2 threads, determinism + preconditioner + optimizer gates)"
# Exits non-zero if any sweep is not bit-identical across thread
# counts, if IC(0)+RCM fails to halve PCG iterations vs Jacobi on the
# large-grid smoke solve, if the preconditioned fields disagree, or if
# the NSGA-II smoke search is not bit-identical at 1/2/8 threads.
# The smoke fv_large comparison also runs the 20³ multigrid and
# Chebyshev solves, so the emitted report can be gated on the solver.mg.
# and solver.cheb. counters below; the optimizer smoke emits the
# optimize.* counters gated alongside them.
# Absolute path: `cargo bench` runs the harness from the package dir,
# not the workspace root, so a relative report path would miss target/.
SWEEPS_OBS_REPORT="$PWD/target/obs_sweeps_smoke.json"
AEROPACK_OBS=1 AEROPACK_OBS_REPORT="$SWEEPS_OBS_REPORT" \
    cargo bench -q --offline -p aeropack-bench --bench sweeps -- --smoke

echo "==> preconditioner + optimizer obs gate (solver.ic0./mg./cheb./optimize. counters must be non-zero)"
cargo run -q --release --offline -p aeropack-obs --bin obs_check -- \
    "$SWEEPS_OBS_REPORT" solver.ic0. solver.mg. solver.cheb. solver.pcg. solver.dd. \
    sweep. mission. solver.transient. optimize.

echo "==> obs smoke (exp02 with observability on, run report must validate)"
# Run a real experiment with events flowing, then gate on the emitted
# report: it must parse as aeropack-obs-report/v1 and carry non-zero
# solver and analysis-service counters (exp02's derating sweep goes
# through the in-process serve Client).
OBS_REPORT=target/obs_exp02.json
AEROPACK_OBS=1 AEROPACK_OBS_REPORT="$OBS_REPORT" \
    cargo run -q --release --offline -p aeropack-bench --bin exp02_three_levels \
    > /dev/null
cargo run -q --release --offline -p aeropack-obs --bin obs_check -- \
    "$OBS_REPORT" solver. serve.

echo "==> serve smoke (daemon + 50-request mixed socket workload + coalescing + mission legs)"
# Starts the analysis daemon on a loopback port, drives a mixed
# SEB/FV/board/FEM workload through the line-JSON socket client,
# provokes a deterministic coalesced multi-RHS batch, then flies a
# short 3-phase climb–cruise–descent Transient request through the
# socket path. The emitted report must carry non-zero service, cache,
# coalescer, mission-driver and transient-solve counters.
SERVE_REPORT=target/obs_serve_smoke.json
AEROPACK_OBS=1 AEROPACK_OBS_REPORT="$SERVE_REPORT" \
    cargo run -q --release --offline -p aeropack-serve --bin serve_smoke \
    > /dev/null
cargo run -q --release --offline -p aeropack-obs --bin obs_check -- \
    "$SERVE_REPORT" serve. serve.cache. serve.coalesce. mission. solver.transient.

echo "==> serve bench smoke (120-request load, cache >=5x + coalesce bit-identity gates)"
cargo bench -q --offline -p aeropack-bench --bench serve -- --smoke

echo "==> shard smoke (two-process 20^3 sharded solve, bit-identity + solver.dd./serve.shard. gates)"
# Spawns one worker process hosting a daemon, upgrades the connection
# to the shard frame protocol, and solves with one shard per process;
# the binary exits non-zero unless the result is bit-identical to the
# single-process solve.
SHARD_REPORT=target/obs_shard_smoke.json
AEROPACK_OBS=1 AEROPACK_OBS_REPORT="$SHARD_REPORT" \
    cargo run -q --release --offline -p aeropack-serve --bin shard_smoke \
    > /dev/null
cargo run -q --release --offline -p aeropack-obs --bin obs_check -- \
    "$SHARD_REPORT" solver.dd. serve.shard.

echo "==> golden snapshot gate (tests/golden/, drift prints a per-quantity table)"
# Out-of-tolerance drift fails with golden/current/|drift|/allowed rows;
# regenerate intentionally moved values with scripts/snapshot.sh.
cargo test -q --release --offline --test golden_snapshots

echo "==> MMS smoke (thermal FV slab, observed order must sit near 2)"
cargo test -q --release --offline -p aeropack-verify --test mms \
    thermal_fv_converges_at_second_order

echo "==> mission MMS smoke (trapezoidal θ-scheme, observed temporal order must sit near 2)"
cargo test -q --release --offline -p aeropack-verify --test mms \
    mission_trapezoidal_converges_at_second_order_in_time

echo "==> CI green"
