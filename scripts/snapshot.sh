#!/usr/bin/env bash
# Regenerates the golden snapshot files under tests/golden/ from the
# current build. Run this after an INTENTIONAL physics or solver change,
# inspect the diff (`git diff tests/golden/`), and commit the new
# goldens together with the change that moved them.
#
# The gate itself runs in scripts/ci.sh (and plain `cargo test`): any
# out-of-tolerance drift against the committed goldens fails with a
# per-quantity drift table.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> regenerating golden snapshots (AEROPACK_SNAPSHOT_UPDATE=1)"
AEROPACK_SNAPSHOT_UPDATE=1 cargo test -q --offline --test golden_snapshots

echo "==> re-running the gate against the fresh goldens"
cargo test -q --offline --test golden_snapshots

echo "==> done — review with: git diff tests/golden/"
