#!/usr/bin/env bash
# Sweep-engine benchmark runner: builds the workspace in release mode
# and runs the `sweeps` bench, which times every sweep workload serially
# and at 2/4 threads (including the bench_mission climb–cruise–descent
# row and the 90-minute orbit-cycle mission gates), runs the NSGA-II
# optimizer gate (≥ 10⁶ scenario evaluations, Pareto front bit-identical
# at 1/2/8 threads, emitted as the "bench_optimize" block), verifies
# bit-identical results across thread counts, and writes
# BENCH_sweeps.json plus the observability run report
# BENCH_obs_report.json at the repository root.
#
# Usage:
#   scripts/bench.sh            # full run, writes BENCH_sweeps.json
#   scripts/bench.sh --smoke    # tiny CI gate (threads 1/2, no file)
#
# Everything runs offline; the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

HW_THREADS=$(nproc 2>/dev/null || echo 1)
# Hand the real machine width to the bench: it tags rows timed with
# more threads than this as "oversubscribed" and records the value in
# BENCH_sweeps.json as "hardware_threads".
export AEROPACK_HW_THREADS="$HW_THREADS"
if [ "$HW_THREADS" -lt 4 ]; then
    echo "note: $HW_THREADS hardware thread(s) < widest timed count (4);" \
         "wider rows will be tagged \"oversubscribed\": true and their" \
         "speedups are scheduler contention, not engine performance."
fi

echo "==> cargo bench --bench sweeps $*"
cargo bench -q --offline -p aeropack-bench --bench sweeps -- "$@"
