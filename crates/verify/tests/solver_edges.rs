//! Solver edge cases through the property harness: degenerate
//! multi-RHS batches (k = 0, k = 1) and their bit-identity with the
//! single-RHS path, over randomly generated SPD operators.

use aeropack_solver::{solve_multi_rhs, solve_sparse, CsrMatrix, SolverConfig};
use aeropack_verify::{check, ensure, tuple3, Gen};

/// A random SPD tridiagonal operator: diagonally dominant by
/// construction.
fn tridiag(n: usize, off: &[f64]) -> CsrMatrix {
    CsrMatrix::from_row_fn(n, 3, |i, row| {
        let left = if i > 0 { off[i - 1].abs() } else { 0.0 };
        let right = if i + 1 < n { off[i].abs() } else { 0.0 };
        if i > 0 {
            row.push((i - 1, -left));
        }
        row.push((i, left + right + 1.0));
        if i + 1 < n {
            row.push((i + 1, -right));
        }
    })
}

#[test]
fn multi_rhs_k0_is_a_well_defined_empty_batch() {
    let gen = Gen::usize_range(1, 40).flat_map(|n| {
        Gen::f64_range(0.1, 3.0)
            .vec_of(n.saturating_sub(1), n.saturating_sub(1).max(1))
            .map(move |off| (n, off))
    });
    check(0x501e_0001, 64, &gen, |(n, off)| {
        let a = tridiag(*n, off);
        let out = solve_multi_rhs(&a, &[], &SolverConfig::new())
            .map_err(|e| format!("k = 0 rejected for n = {n}: {e}"))?;
        ensure!(out.is_empty(), "k = 0 returned {} solutions", out.len());
        Ok(())
    });
}

#[test]
fn multi_rhs_k1_is_bit_identical_to_single_rhs() {
    let gen = Gen::usize_range(2, 40).flat_map(|n| {
        tuple3(
            &aeropack_verify::constant(n),
            &Gen::f64_range(0.1, 3.0).vec_of(n - 1, n - 1),
            &Gen::f64_range(-5.0, 5.0).vec_of(n, n),
        )
    });
    check(0x501e_0002, 48, &gen, |(n, off, b)| {
        let a = tridiag(*n, off);
        let cfg = SolverConfig::new().tolerance(1e-12);
        let batch = solve_multi_rhs(&a, b, &cfg).map_err(|e| e.to_string())?;
        let single = solve_sparse(&a, b, &cfg).map_err(|e| e.to_string())?;
        ensure!(batch.len() == 1, "k = 1 returned {} solutions", batch.len());
        for (i, (p, q)) in batch[0].x.iter().zip(&single.x).enumerate() {
            ensure!(
                p.to_bits() == q.to_bits(),
                "x[{i}] differs: {p} vs {q} (n = {n})"
            );
        }
        ensure!(batch[0].stats.iterations == single.stats.iterations);
        Ok(())
    });
}

#[test]
fn multi_rhs_still_rejects_ragged_blocks() {
    let gen = Gen::usize_range(2, 20).flat_map(|n| {
        // A block length that is NOT a multiple of n.
        Gen::usize_range(1, 3 * n).map(move |m| (n, if m % n == 0 { m + 1 } else { m }))
    });
    check(0x501e_0003, 64, &gen, |&(n, len)| {
        let off = vec![1.0; n - 1];
        let a = tridiag(n, &off);
        let out = solve_multi_rhs(&a, &vec![1.0; len], &SolverConfig::new());
        ensure!(out.is_err(), "ragged block {len} (n = {n}) was accepted");
        Ok(())
    });
}
