//! Sweep-engine edge cases driven through the property harness: the
//! degenerate scenario counts (zero, one), oversubscribed workers, and
//! the `AEROPACK_THREADS` parsing contract — all without touching the
//! process environment (`Sweep::from_env_value` is the pure half of
//! `from_env`).

use aeropack_sweep::Sweep;
use aeropack_verify::{check, ensure, tuple3, Gen};

#[test]
fn zero_scenarios_yield_empty_results_at_any_thread_count() {
    check(0x5e3e_0001, 64, &Gen::usize_range(1, 128), |&threads| {
        let empty: Vec<f64> = Vec::new();
        let out = Sweep::new(threads).map(&empty, |&x| x * 2.0);
        ensure!(out.is_empty(), "threads = {threads} produced {out:?}");
        let (out, stats) = Sweep::new(threads).map_stats(&empty, |&x: &f64| {
            (x, aeropack_sweep::ScenarioStats::trivial())
        });
        ensure!(out.is_empty() && stats.scenarios == 0);
        ensure!(stats.all_converged(), "vacuously converged");
        Ok(())
    });
}

#[test]
fn one_scenario_matches_the_closure_exactly() {
    let gen = Gen::usize_range(1, 64).zip(&Gen::f64_range(-100.0, 100.0));
    check(0x5e3e_0002, 64, &gen, |&(threads, x)| {
        let out = Sweep::new(threads).map(&[x], |&v| v.mul_add(3.0, 1.0));
        ensure!(out.len() == 1);
        ensure!(
            out[0].to_bits() == x.mul_add(3.0, 1.0).to_bits(),
            "threads = {threads}: {} vs {}",
            out[0],
            x.mul_add(3.0, 1.0)
        );
        Ok(())
    });
}

#[test]
fn more_threads_than_scenarios_is_bitwise_identical_to_serial() {
    // threads drawn strictly above the scenario count.
    let gen = Gen::usize_range(0, 8).flat_map(|n| {
        Gen::usize_range(n + 1, n + 65)
            .zip(&Gen::f64_range(0.0, 10.0).vec_of(n, n))
            .map(move |(threads, xs)| (n, threads, xs))
    });
    check(0x5e3e_0003, 64, &gen, |(n, threads, xs)| {
        let f = |&x: &f64| (x * 1.7).sin() + x;
        let serial = Sweep::serial().map(xs, f);
        let par = Sweep::new(*threads).map(xs, f);
        ensure!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                == par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "divergence with {threads} threads over {n} scenarios"
        );
        Ok(())
    });
}

#[test]
fn env_value_parsing_falls_back_on_zero_and_garbage() {
    let fallback = Sweep::from_env_value(None).threads();
    assert!(fallback >= 1, "fallback must be a valid worker count");
    for bad in ["0", "garbage", "", "  ", "-3", "1.5", "0x4", "+ 2", "∞"] {
        assert_eq!(
            Sweep::from_env_value(Some(bad)).threads(),
            fallback,
            "{bad:?} must fall back"
        );
    }
    assert_eq!(Sweep::from_env_value(Some("4")).threads(), 4);
    assert_eq!(Sweep::from_env_value(Some("  8  ")).threads(), 8, "trimmed");
    assert_eq!(Sweep::from_env_value(Some("1")).threads(), 1);
}

#[test]
fn valid_env_values_round_trip_through_the_parser() {
    check(0x5e3e_0004, 128, &Gen::usize_range(1, 512), |&t| {
        let parsed = Sweep::from_env_value(Some(&t.to_string())).threads();
        ensure!(parsed == t, "{t} parsed as {parsed}");
        Ok(())
    });
}

#[test]
fn map_with_scratch_survives_oversubscription() {
    let gen = tuple3(
        &Gen::usize_range(0, 5),
        &Gen::usize_range(1, 100),
        &Gen::f64_range(0.5, 2.0),
    );
    check(0x5e3e_0005, 32, &gen, |&(n, threads, scale)| {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * scale).collect();
        let out = Sweep::new(threads).map_with(&xs, Vec::<f64>::new, |scratch, &x| {
            scratch.push(x);
            x * 2.0
        });
        let reference: Vec<f64> = xs.iter().map(|&x| x * 2.0).collect();
        ensure!(
            out == reference,
            "scratch interference at {threads} threads"
        );
        Ok(())
    });
}
