//! MMS convergence studies: the acceptance gate that the thermal FV
//! and FEM plate discretizations converge at their designed O(h²)
//! rates, not merely "produce plausible numbers".

use aeropack_mission::{AdaptiveConfig, Scheme, StepControl};
use aeropack_sweep::Sweep;
use aeropack_verify::{
    fem_plate_study, mission_temporal_error, mission_temporal_study, thermal_fv_study,
};

#[test]
fn thermal_fv_converges_at_second_order() {
    // Four refinements through the parallel sweep engine; the study is
    // deterministic at any thread count.
    let study = thermal_fv_study(&[8, 16, 32, 64], &Sweep::new(2));
    println!("{}", study.report());
    study.assert_order(2.0, 0.3);
}

#[test]
fn fem_plate_converges_at_second_order() {
    let study = fem_plate_study(&[4, 8, 16], &Sweep::new(2));
    println!("{}", study.report());
    study.assert_order(2.0, 0.3);
}

#[test]
fn mission_trapezoidal_converges_at_second_order_in_time() {
    let study = mission_temporal_study(Scheme::Trapezoidal, &[8, 16, 32, 64], &Sweep::new(2));
    println!("{}", study.report());
    study.assert_order(2.0, 0.3);
}

#[test]
fn mission_backward_euler_converges_at_first_order_in_time() {
    let study = mission_temporal_study(Scheme::BackwardEuler, &[8, 16, 32, 64], &Sweep::new(2));
    println!("{}", study.report());
    study.assert_order(1.0, 0.3);
}

#[test]
fn mission_adaptive_error_tracks_its_tolerance() {
    // The embedded-error controller must actually steer the error:
    // tightening rel_tol by 100× on the manufactured transient must
    // shrink the final-time error monotonically and substantially.
    let errors: Vec<f64> = [1e-2, 1e-3, 1e-4]
        .iter()
        .map(|&rel_tol| {
            let cfg = AdaptiveConfig {
                rel_tol,
                abs_tol: 1e-9,
                ..AdaptiveConfig::default()
            };
            mission_temporal_error(Scheme::Trapezoidal, StepControl::Adaptive(cfg))
        })
        .collect();
    println!("adaptive errors vs rel_tol [1e-2, 1e-3, 1e-4]: {errors:?}");
    assert!(
        errors.windows(2).all(|w| w[1] < w[0]),
        "tighter tolerance must reduce the error: {errors:?}"
    );
    assert!(
        errors[2] * 3.0 < errors[0],
        "100× tighter tolerance must cut the error well past noise: {errors:?}"
    );
}

#[test]
fn mms_studies_are_thread_count_invariant() {
    // Same ladder serially and on 4 workers: bitwise-identical errors
    // (the sweep engine's contract extends to the verification layer).
    let serial = thermal_fv_study(&[8, 16], &Sweep::serial());
    let par = thermal_fv_study(&[8, 16], &Sweep::new(4));
    for (a, b) in serial.errors.iter().zip(&par.errors) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
