//! MMS convergence studies: the acceptance gate that the thermal FV
//! and FEM plate discretizations converge at their designed O(h²)
//! rates, not merely "produce plausible numbers".

use aeropack_sweep::Sweep;
use aeropack_verify::{fem_plate_study, thermal_fv_study};

#[test]
fn thermal_fv_converges_at_second_order() {
    // Four refinements through the parallel sweep engine; the study is
    // deterministic at any thread count.
    let study = thermal_fv_study(&[8, 16, 32, 64], &Sweep::new(2));
    println!("{}", study.report());
    study.assert_order(2.0, 0.3);
}

#[test]
fn fem_plate_converges_at_second_order() {
    let study = fem_plate_study(&[4, 8, 16], &Sweep::new(2));
    println!("{}", study.report());
    study.assert_order(2.0, 0.3);
}

#[test]
fn mms_studies_are_thread_count_invariant() {
    // Same ladder serially and on 4 workers: bitwise-identical errors
    // (the sweep engine's contract extends to the verification layer).
    let serial = thermal_fv_study(&[8, 16], &Sweep::serial());
    let par = thermal_fv_study(&[8, 16], &Sweep::new(4));
    for (a, b) in serial.errors.iter().zip(&par.errors) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
