//! The property runner: deterministic case generation, counterexample
//! shrinking, and reproducer-seed reporting.

use std::fmt;

use crate::gen::{Gen, Source};

/// The SplitMix64 golden-gamma increment; per-case seeds stride by it
/// so every case owns an independent, well-mixed stream — and so the
/// seed printed in a failure report regenerates the failing case as
/// case 0 of a one-case run.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Evaluation budget for the shrink loop (property evaluations, not
/// rounds) — generous for the workspace's cheap invariants, bounded so
/// an expensive property cannot hang a failing test.
const SHRINK_BUDGET: usize = 2000;

/// A property failure: the original counterexample, the shrunk minimal
/// one, and everything needed to reproduce the case deterministically.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// Index of the failing case within the run.
    pub case: u64,
    /// Seed that regenerates the failing case as case 0 of a 1-case
    /// run: `check(reproducer_seed, 1, gen, prop)`.
    pub reproducer_seed: u64,
    /// The value the generator first produced.
    pub original: T,
    /// The counterexample after shrinking (equals `original` when no
    /// simpler failing value was found).
    pub minimal: T,
    /// Accepted shrink steps.
    pub shrink_steps: usize,
    /// The property's message for the minimal counterexample.
    pub message: String,
}

impl<T: fmt::Debug> fmt::Display for Failure<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "property failed at case {} after {} shrink step(s)",
            self.case, self.shrink_steps
        )?;
        writeln!(f, "  minimal counterexample: {:?}", self.minimal)?;
        writeln!(f, "  original counterexample: {:?}", self.original)?;
        writeln!(f, "  message: {}", self.message)?;
        write!(
            f,
            "  reproducer: check(0x{:016x}, 1, gen, prop)",
            self.reproducer_seed
        )
    }
}

/// Runs `prop` over `cases` generated values and returns the shrunk
/// failure instead of panicking — the entry point for meta-tests (and
/// for callers that want to inspect the counterexample).
///
/// Generation is fully deterministic: case `i` draws from a SplitMix64
/// stream seeded with `seed + i·γ` (γ the golden gamma), so any failing
/// case can be replayed in isolation from the reported seed.
///
/// # Errors
///
/// Returns the [`Failure`] (original value, minimal shrunk value,
/// reproducer seed) for the first failing case.
pub fn check_outcome<T: fmt::Debug + 'static>(
    seed: u64,
    cases: u64,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) -> Result<(), Failure<T>> {
    for case in 0..cases {
        let case_seed = seed.wrapping_add(case.wrapping_mul(GOLDEN_GAMMA));
        let mut src = Source::from_seed(case_seed);
        let value = gen.sample(&mut src);
        if let Err(message) = prop(&value) {
            let choices = src.consumed().to_vec();
            let (minimal, shrink_steps, message) = shrink(gen, &prop, choices, message);
            return Err(Failure {
                case,
                reproducer_seed: case_seed,
                original: value,
                minimal,
                shrink_steps,
                message,
            });
        }
    }
    Ok(())
}

/// Checks a property over `cases` deterministic pseudo-random values,
/// shrinking any counterexample to a minimal one and panicking with a
/// one-line reproducer seed.
///
/// The property returns `Ok(())` to pass or `Err(message)` to fail;
/// use the [`ensure!`](crate::ensure) macro for assertion ergonomics.
///
/// # Panics
///
/// Panics with the full [`Failure`] report when any case fails.
pub fn check<T: fmt::Debug + 'static>(
    seed: u64,
    cases: u64,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    if let Err(failure) = check_outcome(seed, cases, gen, prop) {
        eprintln!("{failure}");
        panic!("{failure}");
    }
}

/// Greedy choice-stream shrinking: repeatedly tries simpler versions of
/// the recorded choices (zeroed tails, zeroed elements, halved
/// elements) and keeps any edit for which the property still fails.
/// Because edits replay through the generator, shrunk values stay
/// inside the generator's domain: ranged floats shrink toward their
/// lower bound, sizes toward their minimum, composites component-wise.
fn shrink<T: 'static>(
    gen: &Gen<T>,
    prop: &impl Fn(&T) -> Result<(), String>,
    mut choices: Vec<u64>,
    mut message: String,
) -> (T, usize, String) {
    let mut evals = 0usize;
    let mut steps = 0usize;

    let attempt = |candidate: &[u64],
                   choices: &mut Vec<u64>,
                   message: &mut String,
                   steps: &mut usize|
     -> bool {
        let mut src = Source::replay(candidate.to_vec());
        let value = gen.sample(&mut src);
        match prop(&value) {
            Ok(()) => false,
            Err(msg) => {
                *choices = src.consumed().to_vec();
                *message = msg;
                *steps += 1;
                true
            }
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: zero whole tails (drops trailing structure — e.g.
        // excess vector elements — in one step). Accepted edits can
        // shorten the stream (the replay consumes fewer draws), so the
        // cut is re-clamped after every attempt.
        let mut cut = choices.len() / 2;
        while cut > 0 && evals < SHRINK_BUDGET {
            if cut < choices.len() && choices[cut..].iter().any(|&c| c != 0) {
                let mut cand = choices.clone();
                cand[cut..].fill(0);
                evals += 1;
                if attempt(&cand, &mut choices, &mut message, &mut steps) {
                    improved = true;
                    cut = cut.min(choices.len());
                    continue; // same cut again on the new stream
                }
            }
            cut /= 2;
        }

        // Pass 2: per-choice zeroing, then binary halving toward the
        // smallest still-failing value.
        let mut i = 0;
        while i < choices.len() && evals < SHRINK_BUDGET {
            if choices[i] == 0 {
                i += 1;
                continue;
            }
            let mut cand = choices.clone();
            cand[i] = 0;
            evals += 1;
            if attempt(&cand, &mut choices, &mut message, &mut steps) {
                improved = true;
                continue; // revisit slot i on the edited stream
            }
            while i < choices.len() && choices[i] > 1 && evals < SHRINK_BUDGET {
                let mut cand = choices.clone();
                cand[i] = choices[i] / 2;
                evals += 1;
                if attempt(&cand, &mut choices, &mut message, &mut steps) {
                    improved = true;
                } else {
                    break;
                }
            }
            // Decrement to the exact boundary: halving overshoots for
            // modulo-derived quantities (sizes, indices), stepping by
            // one lands on the smallest still-failing choice.
            while i < choices.len() && choices[i] > 0 && evals < SHRINK_BUDGET {
                let mut cand = choices.clone();
                cand[i] = choices[i] - 1;
                evals += 1;
                if attempt(&cand, &mut choices, &mut message, &mut steps) {
                    improved = true;
                } else {
                    break;
                }
            }
            i += 1;
        }

        if !improved || evals >= SHRINK_BUDGET {
            break;
        }
    }

    let mut src = Source::replay(choices);
    (gen.sample(&mut src), steps, message)
}

/// Early-returns `Err(format!(...))` from a property closure when the
/// condition does not hold.
///
/// ```
/// use aeropack_verify::{check, ensure, Gen};
///
/// check(0xd00d, 64, &Gen::f64_range(0.0, 10.0), |&x| {
///     ensure!(x * 2.0 >= x, "doubling {x} went backwards");
///     Ok(())
/// });
/// ```
#[macro_export]
macro_rules! ensure {
    ($cond:expr, $($fmt:tt)+) => {{
        let holds: bool = $cond;
        if !holds {
            return Err(format!($($fmt)+));
        }
    }};
    ($cond:expr) => {{
        let holds: bool = $cond;
        if !holds {
            return Err(format!("condition failed: {}", stringify!($cond)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_returns_ok() {
        let gen = Gen::f64_range(1.0, 2.0);
        assert!(check_outcome(1, 200, &gen, |&x| {
            ensure!((1.0..2.0).contains(&x), "out of range: {x}");
            Ok(())
        })
        .is_ok());
    }

    #[test]
    fn failing_property_shrinks_toward_threshold() {
        // x >= 5 fails; halving shrinks the minimal counterexample into
        // [5, 10): one more halving would cross below the threshold.
        let gen = Gen::f64_range(0.0, 100.0);
        let failure = check_outcome(0xbad_5eed, 64, &gen, |&x| {
            ensure!(x < 5.0, "x = {x} is not < 5");
            Ok(())
        })
        .expect_err("property must fail");
        assert!(
            failure.minimal >= 5.0 && failure.minimal < 10.0,
            "minimal {} not in [5, 10)",
            failure.minimal
        );
        assert!(failure.message.contains("not < 5"));
    }

    #[test]
    fn reproducer_seed_replays_the_original_counterexample() {
        let gen = Gen::f64_range(0.0, 1.0);
        let prop = |x: &f64| {
            ensure!(*x < 0.9, "too big: {x}");
            Ok(())
        };
        let first = check_outcome(42, 500, &gen, prop).expect_err("must fail");
        let replay = check_outcome(first.reproducer_seed, 1, &gen, prop).expect_err("must fail");
        assert_eq!(replay.case, 0);
        assert_eq!(replay.original, first.original);
        assert_eq!(replay.minimal, first.minimal);
    }

    #[test]
    fn composite_values_shrink_componentwise() {
        // Fails whenever the vector has ≥ 3 elements; minimal stream
        // should shrink the length to exactly 3 and the elements to 0.
        let gen = Gen::u64_range(0, 1000).vec_of(0, 10);
        let failure = check_outcome(7, 100, &gen, |v| {
            ensure!(v.len() < 3, "len = {}", v.len());
            Ok(())
        })
        .expect_err("must fail");
        assert_eq!(failure.minimal.len(), 3);
        assert!(failure.minimal.iter().all(|&x| x == 0));
    }

    #[test]
    fn report_contains_reproducer_line() {
        let gen = Gen::u64_range(0, 10);
        let failure = check_outcome(3, 50, &gen, |&x| {
            ensure!(x < 1, "x = {x}");
            Ok(())
        })
        .expect_err("must fail");
        let report = failure.to_string();
        assert!(report.contains("reproducer: check(0x"), "{report}");
        assert!(report.contains("minimal counterexample"), "{report}");
        assert_eq!(failure.minimal, 1);
    }

    #[test]
    #[should_panic(expected = "reproducer: check(0x")]
    fn check_panics_with_reproducer() {
        check(9, 50, &Gen::u64_range(0, 100), |&x| {
            ensure!(x < 2, "x = {x}");
            Ok(())
        });
    }
}
