//! `aeropack-verify` — the workspace's verification substrate.
//!
//! Three layers, all hermetic (no external dependencies, deterministic
//! by construction):
//!
//! 1. **Property testing with shrinking** — [`Gen`] combinators over a
//!    recorded SplitMix64 choice stream and a [`check`] runner that, on
//!    failure, shrinks the counterexample to a minimal one (ranged
//!    floats shrink toward their lower bound, sizes toward their
//!    minimum, composites component-wise) and prints a one-line
//!    reproducer seed. The per-crate `tests/properties.rs` suites run
//!    on it.
//! 2. **MMS convergence studies** — [`mms`] injects manufactured
//!    analytic solutions into the thermal FV and FEM plate models,
//!    refines the mesh through the [`Sweep`](aeropack_sweep::Sweep)
//!    engine, and asserts the observed O(h²) rates.
//! 3. **Golden-snapshot gating** — [`Snapshot`] serializes key physics
//!    outputs to tolerance-tagged JSON under `tests/golden/` and fails
//!    CI with a per-quantity drift table when they move.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod gen;
pub mod json;
pub mod mms;
pub mod snapshot;

pub use check::{check, check_outcome, Failure};
pub use gen::{constant, one_of, tuple3, tuple4, tuple5, Gen, Source};
pub use json::Json;
pub use mms::{
    fem_plate_study, fit_order, mission_temporal_error, mission_temporal_study, thermal_fv_study,
    MmsStudy,
};
pub use snapshot::{drift_table, Drift, Quantity, Snapshot, UPDATE_ENV};
