//! Deterministic value generators over a recorded choice stream.
//!
//! A [`Gen<T>`] is a pure function from a [`Source`] of `u64` choices to
//! a value. Fresh runs draw choices from the in-repo
//! [`SplitMix64`](aeropack_units::SplitMix64); shrink runs *replay* an
//! edited copy of the recorded choices. Because every generated value is
//! a function of the choice stream, simplifying the stream (zeroing,
//! halving) simplifies the value while keeping it inside the
//! generator's domain — an f64 drawn from `[lo, hi)` shrinks toward
//! `lo`, a vector length drawn from `min..max` shrinks toward `min`,
//! and composite tuples shrink component-wise, all through one
//! mechanism.

use std::rc::Rc;

use aeropack_units::SplitMix64;

/// The stream of `u64` choices a generator consumes.
///
/// In recording mode (built by [`Source::from_seed`]) choices come from
/// SplitMix64 and are remembered; in replay mode (built by
/// [`Source::replay`]) they come from a prefix vector and fall back to
/// `0` when the vector is exhausted, so edited streams always produce
/// *some* value.
#[derive(Debug, Clone)]
pub struct Source {
    choices: Vec<u64>,
    pos: usize,
    rng: Option<SplitMix64>,
}

impl Source {
    /// A recording source: draws from SplitMix64 seeded with `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            choices: Vec::new(),
            pos: 0,
            rng: Some(SplitMix64::new(seed)),
        }
    }

    /// A replay source over a fixed choice prefix; reads past the end
    /// yield `0`.
    pub fn replay(choices: Vec<u64>) -> Self {
        Self {
            choices,
            pos: 0,
            rng: None,
        }
    }

    /// The next raw choice.
    pub fn next_u64(&mut self) -> u64 {
        if self.pos < self.choices.len() {
            let v = self.choices[self.pos];
            self.pos += 1;
            v
        } else {
            let v = self.rng.as_mut().map_or(0, SplitMix64::next_u64);
            self.choices.push(v);
            self.pos += 1;
            v
        }
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision, derived
    /// from one choice (same mapping as `SplitMix64::next_f64`).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// How many choices the last generation consumed.
    pub fn used(&self) -> usize {
        self.pos
    }

    /// The consumed choice prefix (what a shrinker edits).
    pub fn consumed(&self) -> &[u64] {
        &self.choices[..self.pos]
    }
}

/// A deterministic, composable value generator.
///
/// Cloning is cheap (reference-counted); combinators consume `&self`
/// so generators can be reused across zips.
pub struct Gen<T> {
    run: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Self {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw sampling function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Self {
        Self { run: Rc::new(f) }
    }

    /// Draws one value from the source.
    pub fn sample(&self, src: &mut Source) -> T {
        (self.run)(src)
    }

    /// Applies `f` to every generated value.
    pub fn map<U: 'static>(&self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let run = Rc::clone(&self.run);
        Gen::new(move |src| f(run(src)))
    }

    /// Pairs this generator with another.
    pub fn zip<U: 'static>(&self, other: &Gen<U>) -> Gen<(T, U)> {
        let a = Rc::clone(&self.run);
        let b = Rc::clone(&other.run);
        Gen::new(move |src| (a(src), b(src)))
    }

    /// Chains a dependent generator (monadic bind).
    pub fn flat_map<U: 'static>(&self, f: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        let run = Rc::clone(&self.run);
        Gen::new(move |src| f(run(src)).sample(src))
    }

    /// A vector of `min..=max` values; the length choice shrinks toward
    /// `min`, each element shrinks independently.
    pub fn vec_of(&self, min: usize, max: usize) -> Gen<Vec<T>> {
        assert!(min <= max, "invalid length range");
        let run = Rc::clone(&self.run);
        Gen::new(move |src| {
            let span = (max - min + 1) as u64;
            let len = min + (src.next_u64() % span) as usize;
            (0..len).map(|_| run(src)).collect()
        })
    }
}

impl Gen<f64> {
    /// A uniform f64 in the half-open interval `[lo, hi)`; shrinks
    /// toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` or either bound is not finite (the same
    /// contract as [`SplitMix64::range_f64`]).
    pub fn f64_range(lo: f64, hi: f64) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "invalid range [{lo}, {hi})"
        );
        Gen::new(move |src| {
            let v = lo + (hi - lo) * src.next_f64();
            // Guard the half-open upper bound against rounding at the
            // top of wide or denormal-adjacent intervals.
            if v >= hi {
                next_down(hi).max(lo)
            } else {
                v
            }
        })
    }
}

impl Gen<u64> {
    /// Any `u64`; shrinks toward 0.
    pub fn u64_any() -> Self {
        Gen::new(Source::next_u64)
    }

    /// A uniform u64 in `[lo, hi)`; shrinks toward `lo`.
    pub fn u64_range(lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "invalid range");
        Gen::new(move |src| lo + src.next_u64() % (hi - lo))
    }
}

impl Gen<usize> {
    /// A uniform usize in `[lo, hi)`; shrinks toward `lo`.
    pub fn usize_range(lo: usize, hi: usize) -> Self {
        assert!(lo < hi, "invalid range");
        Gen::new(move |src| lo + (src.next_u64() % (hi - lo) as u64) as usize)
    }
}

impl Gen<bool> {
    /// A fair coin; shrinks toward `false`.
    pub fn bool_any() -> Self {
        Gen::new(|src| src.next_u64() & 1 == 1)
    }
}

/// Always the same value (consumes no choices, never shrinks).
pub fn constant<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// Picks uniformly from a fixed list; shrinks toward the first entry.
///
/// # Panics
///
/// Panics when `items` is empty.
pub fn one_of<T: Clone + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "one_of needs at least one item");
    Gen::new(move |src| items[(src.next_u64() % items.len() as u64) as usize].clone())
}

/// A triple of independent generators.
pub fn tuple3<A: 'static, B: 'static, C: 'static>(
    a: &Gen<A>,
    b: &Gen<B>,
    c: &Gen<C>,
) -> Gen<(A, B, C)> {
    a.zip(&b.zip(c)).map(|(a, (b, c))| (a, b, c))
}

/// A quadruple of independent generators.
pub fn tuple4<A: 'static, B: 'static, C: 'static, D: 'static>(
    a: &Gen<A>,
    b: &Gen<B>,
    c: &Gen<C>,
    d: &Gen<D>,
) -> Gen<(A, B, C, D)> {
    a.zip(b).zip(&c.zip(d)).map(|((a, b), (c, d))| (a, b, c, d))
}

/// A quintuple of independent generators.
pub fn tuple5<A: 'static, B: 'static, C: 'static, D: 'static, E: 'static>(
    a: &Gen<A>,
    b: &Gen<B>,
    c: &Gen<C>,
    d: &Gen<D>,
    e: &Gen<E>,
) -> Gen<(A, B, C, D, E)> {
    a.zip(b)
        .zip(&tuple3(c, d, e))
        .map(|((a, b), (c, d, e))| (a, b, c, d, e))
}

/// The largest float strictly below `x` (for finite positive spans).
fn next_down(x: f64) -> f64 {
    debug_assert!(x.is_finite());
    f64::from_bits(if x > 0.0 {
        x.to_bits() - 1
    } else if x < 0.0 {
        x.to_bits() + 1
    } else {
        (-f64::MIN_POSITIVE).to_bits() // below exact zero
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_values() {
        let gen = Gen::f64_range(-2.0, 7.0);
        let a: Vec<f64> = {
            let mut s = Source::from_seed(11);
            (0..50).map(|_| gen.sample(&mut s)).collect()
        };
        let mut s = Source::from_seed(11);
        let b: Vec<f64> = (0..50).map(|_| gen.sample(&mut s)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-2.0..7.0).contains(v)));
    }

    #[test]
    fn replay_reproduces_and_zero_fallback() {
        let gen = Gen::f64_range(3.0, 5.0).zip(&Gen::usize_range(1, 9));
        let mut rec = Source::from_seed(99);
        let v = gen.sample(&mut rec);
        let mut rep = Source::replay(rec.consumed().to_vec());
        assert_eq!(gen.sample(&mut rep), v);
        // An empty replay stream yields the generator's simplest value.
        let mut zero = Source::replay(Vec::new());
        let (f, n) = gen.sample(&mut zero);
        assert_eq!((f, n), (3.0, 1));
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let gen = Gen::u64_any().vec_of(2, 6);
        let mut src = Source::from_seed(7);
        for _ in 0..100 {
            let v = gen.sample(&mut src);
            assert!((2..=6).contains(&v.len()));
        }
    }

    #[test]
    fn f64_range_stays_below_hi_on_tiny_intervals() {
        // The only representable value in [1, 1+ε) is 1.0 itself; the
        // naive affine map can round to 1+ε.
        let hi = 1.0 + f64::EPSILON;
        let gen = Gen::f64_range(1.0, hi);
        let mut src = Source::from_seed(3);
        for _ in 0..1000 {
            assert_eq!(gen.sample(&mut src), 1.0);
        }
    }

    #[test]
    fn one_of_and_tuples_compose() {
        let g = tuple3(
            &one_of(vec!["a", "b"]),
            &Gen::bool_any(),
            &Gen::u64_range(10, 20),
        );
        let mut src = Source::from_seed(1);
        let (s, _, n) = g.sample(&mut src);
        assert!(s == "a" || s == "b");
        assert!((10..20).contains(&n));
    }
}
