//! A minimal JSON reader/writer for the golden-snapshot files.
//!
//! The workspace is dependency-free by policy (DESIGN.md §6), so the
//! snapshot layer carries its own ~150-line recursive-descent parser
//! instead of `serde`. It supports the full JSON value grammar but is
//! tuned for the snapshot schema: objects, arrays, finite numbers,
//! strings with basic escapes. Numbers are written with Rust's
//! shortest-round-trip float formatting, so write → read is lossless.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax
    /// error, or on trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

impl Json {
    fn write_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        let pad_in = "  ".repeat(depth + 1);
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                debug_assert!(v.is_finite(), "JSON numbers must be finite");
                write!(f, "{v}")
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) if items.is_empty() => write!(f, "[]"),
            Json::Arr(items) => {
                writeln!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    write!(f, "{pad_in}")?;
                    item.write_indented(f, depth + 1)?;
                    writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(f, "{pad}]")
            }
            Json::Obj(fields) if fields.is_empty() => write!(f, "{{}}"),
            Json::Obj(fields) => {
                writeln!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    write!(f, "{pad_in}")?;
                    write_escaped(f, k)?;
                    write!(f, ": ")?;
                    v.write_indented(f, depth + 1)?;
                    writeln!(f, "{}", if i + 1 < fields.len() { "," } else { "" })?;
                }
                write!(f, "{pad}}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            '\r' => write!(f, "\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (strings are valid UTF-8 by
                // construction of `&str`).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_snapshot_shaped_documents() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("fig10".into())),
            (
                "quantities".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("p015/no_lhp".into())),
                    ("value".into(), Json::Num(37.251_234_567_891)),
                    ("tol_rel".into(), Json::Num(1e-6)),
                ])]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [
            0.1,
            -3.25e-17,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            12345.678901234567,
        ] {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} → {text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::Str("line\nbreak \"quoted\" \\slash\ttab".into());
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }
}
