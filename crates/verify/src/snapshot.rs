//! Golden-snapshot regression gating.
//!
//! A [`Snapshot`] is a named set of scalar quantities, each tagged with
//! its own drift tolerance, serialized as JSON under `tests/golden/`.
//! [`Snapshot::gate`] compares freshly computed values against the
//! committed golden file and fails with a per-quantity drift table when
//! anything moved beyond tolerance; setting `AEROPACK_SNAPSHOT_UPDATE=1`
//! (what `scripts/snapshot.sh` does) rewrites the golden file instead.
//!
//! Acceptance per quantity: `|current − golden| ≤ tol_abs + tol_rel·|golden|`.
//! A quantity present on only one side is always a failure — silently
//! appearing or vanishing physics is drift too.

use std::fmt::Write as _;
use std::path::Path;

use crate::json::Json;

/// Environment variable that switches [`Snapshot::gate`] into update
/// mode.
pub const UPDATE_ENV: &str = "AEROPACK_SNAPSHOT_UPDATE";

/// One tolerance-tagged scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantity {
    /// Stable identifier, e.g. `fig10/lhp/p060_dt`.
    pub name: String,
    /// The recorded value.
    pub value: f64,
    /// Absolute drift allowance.
    pub tol_abs: f64,
    /// Relative drift allowance (fraction of the golden magnitude).
    pub tol_rel: f64,
}

/// A named collection of quantities — one golden JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot name (matches the file stem by convention).
    pub name: String,
    /// The recorded quantities, in insertion order.
    pub quantities: Vec<Quantity>,
}

/// One row of a golden-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Drift {
    /// Quantity name.
    pub name: String,
    /// Golden value (`None`: the quantity is new).
    pub golden: Option<f64>,
    /// Current value (`None`: the quantity vanished).
    pub current: Option<f64>,
    /// Allowed absolute deviation for this quantity.
    pub allowed: f64,
    /// Whether the row is within tolerance.
    pub ok: bool,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            quantities: Vec::new(),
        }
    }

    /// Records one quantity.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values or negative tolerances — a golden
    /// file must be comparable.
    pub fn push(&mut self, name: impl Into<String>, value: f64, tol_abs: f64, tol_rel: f64) {
        assert!(value.is_finite(), "snapshot values must be finite");
        assert!(
            tol_abs >= 0.0 && tol_rel >= 0.0,
            "tolerances must be non-negative"
        );
        self.quantities.push(Quantity {
            name: name.into(),
            value,
            tol_abs,
            tol_rel,
        });
    }

    /// Serializes to the golden JSON format.
    pub fn to_json(&self) -> String {
        let quantities = self
            .quantities
            .iter()
            .map(|q| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(q.name.clone())),
                    ("value".into(), Json::Num(q.value)),
                    ("tol_abs".into(), Json::Num(q.tol_abs)),
                    ("tol_rel".into(), Json::Num(q.tol_rel)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("quantities".into(), Json::Arr(quantities)),
        ]);
        format!("{doc}\n")
    }

    /// Parses the golden JSON format.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing/ill-typed
    /// field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("snapshot missing 'name'")?
            .to_string();
        let mut snapshot = Self::new(name);
        let items = doc
            .get("quantities")
            .and_then(Json::as_array)
            .ok_or("snapshot missing 'quantities'")?;
        for item in items {
            let field = |key: &str| {
                item.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("quantity missing '{key}'"))
            };
            snapshot.push(
                item.get("name")
                    .and_then(Json::as_str)
                    .ok_or("quantity missing 'name'")?,
                field("value")?,
                field("tol_abs")?,
                field("tol_rel")?,
            );
        }
        Ok(snapshot)
    }

    /// Reads a golden file.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O or parse failures.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// Writes this snapshot as a golden file.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Compares `current` against this golden snapshot, row per
    /// quantity. Tolerances come from the *golden* side (the committed
    /// file is the contract); quantities only on one side are failed
    /// rows.
    pub fn diff(&self, current: &Snapshot) -> Vec<Drift> {
        let mut rows = Vec::new();
        for g in &self.quantities {
            let allowed = g.tol_abs + g.tol_rel * g.value.abs();
            match current.quantities.iter().find(|c| c.name == g.name) {
                Some(c) => rows.push(Drift {
                    name: g.name.clone(),
                    golden: Some(g.value),
                    current: Some(c.value),
                    allowed,
                    ok: (c.value - g.value).abs() <= allowed,
                }),
                None => rows.push(Drift {
                    name: g.name.clone(),
                    golden: Some(g.value),
                    current: None,
                    allowed,
                    ok: false,
                }),
            }
        }
        for c in &current.quantities {
            if !self.quantities.iter().any(|g| g.name == c.name) {
                rows.push(Drift {
                    name: c.name.clone(),
                    golden: None,
                    current: Some(c.value),
                    allowed: 0.0,
                    ok: false,
                });
            }
        }
        rows
    }

    /// Gates `current` against the golden file at `path`: in update
    /// mode (`AEROPACK_SNAPSHOT_UPDATE=1`) rewrites the file; otherwise
    /// compares and returns the readable per-quantity drift table as
    /// the error on any out-of-tolerance row.
    ///
    /// # Errors
    ///
    /// Returns the drift table when any quantity drifted, or an I/O /
    /// parse message (including a hint to run `scripts/snapshot.sh`
    /// when the golden file does not exist yet).
    pub fn gate(path: &Path, current: &Snapshot) -> Result<(), String> {
        if std::env::var(UPDATE_ENV).as_deref() == Ok("1") {
            current.write(path)?;
            eprintln!("updated golden snapshot {}", path.display());
            return Ok(());
        }
        if !path.exists() {
            return Err(format!(
                "golden snapshot {} does not exist — run scripts/snapshot.sh to create it",
                path.display()
            ));
        }
        let golden = Self::read(path)?;
        let rows = golden.diff(current);
        let table = drift_table(&current.name, &rows);
        eprintln!("{table}");
        if rows.iter().all(|r| r.ok) {
            Ok(())
        } else {
            Err(format!(
                "snapshot '{}' drifted beyond tolerance (update with scripts/snapshot.sh if intended)\n{table}",
                current.name
            ))
        }
    }
}

/// Formats comparison rows as a fixed-width per-quantity table.
pub fn drift_table(name: &str, rows: &[Drift]) -> String {
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(8).max(8);
    let mut out = String::new();
    let _ = writeln!(out, "snapshot '{name}': {} quantities", rows.len());
    let _ = writeln!(
        out,
        "  {:<width$}  {:>16}  {:>16}  {:>10}  {:>10}  status",
        "quantity", "golden", "current", "|drift|", "allowed"
    );
    for r in rows {
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:>16.9e}"),
            None => format!("{:>16}", "(missing)"),
        };
        let drift = match (r.golden, r.current) {
            (Some(g), Some(c)) => format!("{:>10.3e}", (c - g).abs()),
            _ => format!("{:>10}", "-"),
        };
        let _ = writeln!(
            out,
            "  {:<width$}  {}  {}  {}  {:>10.3e}  {}",
            r.name,
            fmt_opt(r.golden),
            fmt_opt(r.current),
            drift,
            r.allowed,
            if r.ok { "ok" } else { "DRIFT" }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new("demo");
        s.push("alpha", 1.25, 0.0, 1e-6);
        s.push("beta", -40.0, 0.5, 0.0);
        s
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample();
        let back = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn diff_flags_out_of_tolerance_and_missing() {
        let golden = sample();
        let mut current = Snapshot::new("demo");
        current.push("alpha", 1.25 + 1e-3, 0.0, 1e-6); // beyond 1e-6 rel
        current.push("gamma", 7.0, 0.0, 0.0); // new quantity
        let rows = golden.diff(&current);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(!by_name("alpha").ok, "drift beyond tolerance");
        assert!(!by_name("beta").ok, "vanished quantity");
        assert!(!by_name("gamma").ok, "unexpected quantity");
        let table = drift_table("demo", &rows);
        assert!(table.contains("DRIFT"), "{table}");
        assert!(table.contains("(missing)"), "{table}");
    }

    #[test]
    fn diff_passes_within_tolerance() {
        let golden = sample();
        let mut current = Snapshot::new("demo");
        current.push("alpha", 1.25 + 1e-7, 0.0, 1e-6);
        current.push("beta", -40.3, 0.5, 0.0);
        assert!(golden.diff(&current).iter().all(|r| r.ok));
    }

    #[test]
    fn gate_reports_missing_golden_with_hint() {
        let path = std::env::temp_dir().join("aeropack-missing-golden.json");
        let _ = std::fs::remove_file(&path);
        let err = Snapshot::gate(&path, &sample()).unwrap_err();
        assert!(err.contains("snapshot.sh"), "{err}");
    }

    #[test]
    fn gate_round_trips_through_a_written_file() {
        let path = std::env::temp_dir().join("aeropack-golden-roundtrip.json");
        sample().write(&path).unwrap();
        // Same values pass; a drifted value fails with the table.
        Snapshot::gate(&path, &sample()).unwrap();
        let mut drifted = sample();
        drifted.quantities[0].value += 1.0;
        let err = Snapshot::gate(&path, &drifted).unwrap_err();
        assert!(err.contains("alpha"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
