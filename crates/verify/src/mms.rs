//! Method-of-manufactured-solutions convergence studies.
//!
//! An MMS study picks an analytic field, derives the source term that
//! makes it an exact solution of the governing equation, feeds that
//! source to the discrete solver on a ladder of mesh refinements (run
//! through the [`Sweep`] engine like any other scenario grid), and fits
//! the observed convergence order from the error-vs-h line in log
//! space. A second-order scheme that converges at O(h²) earns its
//! tolerance budget; one that converges at O(h⁰·⁵) has a bug no single
//! "the numbers look right" test can see.

use aeropack_fem::{Dof, PlateMesh, PlateProperties};
use aeropack_materials::Material;
use aeropack_mission::{
    BoundaryState, MissionConfig, MissionDriver, MissionPhase, MissionProfile, Scheme, StepControl,
};
use aeropack_solver::SolverConfig;
use aeropack_sweep::Sweep;
use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel};
use aeropack_units::{Celsius, Length, Power};

/// The outcome of one convergence study: mesh sizes, discrete errors,
/// and the fitted observed order.
#[derive(Debug, Clone)]
pub struct MmsStudy {
    /// What was refined (for reports).
    pub label: String,
    /// Mesh spacing h per refinement, coarsest first.
    pub hs: Vec<f64>,
    /// Discrete error per refinement (same order as `hs`).
    pub errors: Vec<f64>,
}

impl MmsStudy {
    /// Least-squares slope of `ln(error)` against `ln(h)` — the
    /// observed convergence order.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two refinements were run or any error is
    /// not a positive finite number.
    pub fn observed_order(&self) -> f64 {
        fit_order(&self.hs, &self.errors)
    }

    /// A human-readable table of the refinement ladder with pairwise
    /// orders, for failure messages and the CI log.
    pub fn report(&self) -> String {
        let mut out = format!(
            "MMS study: {}\n  {:>10}  {:>14}  {:>8}\n",
            self.label, "h", "error", "order"
        );
        for i in 0..self.hs.len() {
            let order = if i == 0 {
                "-".to_string()
            } else {
                let p =
                    (self.errors[i - 1] / self.errors[i]).ln() / (self.hs[i - 1] / self.hs[i]).ln();
                format!("{p:8.3}")
            };
            out.push_str(&format!(
                "  {:>10.5e}  {:>14.6e}  {:>8}\n",
                self.hs[i], self.errors[i], order
            ));
        }
        out.push_str(&format!(
            "  observed order (least squares): {:.3}\n",
            self.observed_order()
        ));
        out
    }

    /// Asserts the observed order is within `tol` of `expected`,
    /// printing the full refinement table on failure.
    ///
    /// # Panics
    ///
    /// Panics when `|observed − expected| > tol`.
    pub fn assert_order(&self, expected: f64, tol: f64) {
        let observed = self.observed_order();
        assert!(
            (observed - expected).abs() <= tol,
            "observed convergence order {observed:.3} is not within {tol} of {expected}\n{}",
            self.report()
        );
    }
}

/// Least-squares slope of `ln(error)` vs `ln(h)`.
///
/// # Panics
///
/// Panics for fewer than two points, mismatched lengths, or
/// non-positive/non-finite entries (an exactly-zero error means the
/// study is measuring round-off, not discretization).
pub fn fit_order(hs: &[f64], errors: &[f64]) -> f64 {
    assert_eq!(hs.len(), errors.len(), "mismatched refinement ladder");
    assert!(hs.len() >= 2, "need at least two refinements");
    assert!(
        hs.iter().chain(errors).all(|&v| v > 0.0 && v.is_finite()),
        "h and error must be positive finite"
    );
    let n = hs.len() as f64;
    let xs: Vec<f64> = hs.iter().map(|h| h.ln()).collect();
    let ys: Vec<f64> = errors.iter().map(|e| e.ln()).collect();
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Thermal finite-volume MMS: a 1-D slab with the manufactured field
/// `T(x) = T₀ + A·sin(πx/L)` and fixed `T₀` at both x faces. The
/// matching volumetric source is `q''' = k·A·(π/L)²·sin(πx/L)`,
/// injected per cell at the cell-centre value (midpoint rule, O(h²)).
/// The cell-centred scheme with half-cell Dirichlet closure is
/// second-order, so the max-norm error against the exact field must
/// shrink as O(h²).
///
/// # Panics
///
/// Panics when a steady solve fails — the study is a test harness, not
/// a production path.
pub fn thermal_fv_study(resolutions: &[usize], runner: &Sweep) -> MmsStudy {
    const L: f64 = 0.1; // slab length, m
    const A: f64 = 40.0; // manufactured amplitude, K
    const T0: f64 = 10.0; // wall temperature, °C
    let material = Material::aluminum_6061();
    let k = material.thermal_conductivity.value();

    let errors = runner.map(resolutions, |&nx| {
        let grid = FvGrid::new((L, 0.01, 0.01), (nx, 1, 1)).expect("valid grid");
        let (dx, dy, dz) = grid.spacing();
        let cell_volume = dx * dy * dz;
        let mut model = FvModel::new(grid, &material);
        // Discretization error at nx = 64 is ~1e-3 K; solve far below it.
        model.set_solver_config(SolverConfig::new().tolerance(1e-13));
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(T0)));
        model.set_face_bc(Face::XMax, FaceBc::FixedTemperature(Celsius::new(T0)));
        let pi_l = std::f64::consts::PI / L;
        for i in 0..nx {
            let x = (i as f64 + 0.5) * dx;
            let q = k * A * pi_l * pi_l * (pi_l * x).sin() * cell_volume;
            model
                .add_power_box(Power::new(q), (i, 0, 0), (i + 1, 1, 1))
                .expect("cell in grid");
        }
        let field = model.solve_steady().expect("steady MMS solve");
        let mut err_max = 0.0f64;
        for i in 0..nx {
            let x = (i as f64 + 0.5) * dx;
            let exact = T0 + A * (pi_l * x).sin();
            let got = field.at(i, 0, 0).expect("cell in grid").value();
            err_max = err_max.max((got - exact).abs());
        }
        err_max
    });

    MmsStudy {
        label: format!("thermal FV slab, T = T₀ + A·sin(πx/L), nx = {resolutions:?}"),
        hs: resolutions.iter().map(|&nx| L / nx as f64).collect(),
        errors,
    }
}

/// FEM plate MMS: a simply supported square plate under the Navier
/// pressure `q(x,y) = q₀·sin(πx/a)·sin(πy/a)`, whose exact deflection
/// is `w = q₀·sin(πx/a)·sin(πy/a) / (4·D·π⁴/a⁴)`. The pressure is
/// lumped to nodes by tributary area and the centre deflection of the
/// ACM discretization is compared against the exact value; the
/// nonconforming ACM rectangle converges at O(h²) in deflection.
///
/// Resolutions must be even so a node sits exactly at the centre.
///
/// # Panics
///
/// Panics on odd resolutions or a failed static solve.
pub fn fem_plate_study(resolutions: &[usize], runner: &Sweep) -> MmsStudy {
    const A: f64 = 0.3; // plate side, m
    const Q0: f64 = 2000.0; // pressure amplitude, Pa
    let material = Material::aluminum_6061();
    let props = PlateProperties::from_material(&material, Length::from_millimeters(2.0))
        .expect("valid plate");
    let d = props.youngs_modulus * props.thickness.powi(3)
        / (12.0 * (1.0 - props.poisson_ratio * props.poisson_ratio));
    let pi = std::f64::consts::PI;
    let w_exact_center = Q0 / (4.0 * d * pi.powi(4) / A.powi(4));

    let errors = runner.map(resolutions, |&n| {
        assert!(n % 2 == 0, "resolution must be even for a centre node");
        let mut mesh = PlateMesh::rectangular(A, A, n, n, &props).expect("valid mesh");
        mesh.simply_support_edges().expect("support edges");
        let h = A / n as f64;
        // Tributary-area load lumping; loads landing on constrained
        // edge DOFs are dropped by the solver, matching w = 0 there.
        let mut loads = Vec::with_capacity((n + 1) * (n + 1));
        for j in 0..=n {
            for i in 0..=n {
                let x = i as f64 * h;
                let y = j as f64 * h;
                let wx = if i == 0 || i == n { 0.5 } else { 1.0 };
                let wy = if j == 0 || j == n { 0.5 } else { 1.0 };
                let f = Q0 * (pi * x / A).sin() * (pi * y / A).sin() * wx * wy * h * h;
                let node = mesh.node_at(i, j).expect("node in grid");
                loads.push((node, Dof::W, f));
            }
        }
        let u = mesh.model.solve_static(&loads).expect("static MMS solve");
        let center = mesh.center_node();
        let idx = mesh.model.dof_index(center, Dof::W).expect("centre DOF");
        (u[idx] - w_exact_center).abs()
    });

    MmsStudy {
        label: format!("ACM plate, Navier sinusoidal pressure, n = {resolutions:?}"),
        hs: resolutions.iter().map(|&n| A / n as f64).collect(),
        errors,
    }
}

/// Horizon of the temporal MMS transient, s (one forcing period).
const MISSION_MMS_T: f64 = 10.0;

/// Runs one manufactured mission transient and returns the max-norm
/// final-time error against the exact semi-discrete solution.
///
/// The fixture is a 1-D aluminium slab held at `T_w` on both x faces
/// with the manufactured field `T(t) = T_w + v·sin(ωt)`,
/// `v_i = A·sin(πx_i/L)`. The forcing that makes this the exact
/// solution of the semi-discrete system `C·dT/dt = −A·T + b(t)` is
/// injected through the driver's source hook as
/// `C∘v·ω·cos(ωt) + (A·v)·sin(ωt)`, with `A·v` computed from the
/// assembled operator itself — so the measured error is purely
/// temporal, whatever the spatial discretization error.
///
/// # Panics
///
/// Panics when the driver rejects the fixture or a solve fails — this
/// is a test harness, not a production path.
pub fn mission_temporal_error(scheme: Scheme, control: StepControl) -> f64 {
    const L: f64 = 0.1; // slab length, m
    const NX: usize = 16;
    const T_W: f64 = 20.0; // wall temperature, °C
    const AMP: f64 = 8.0; // manufactured amplitude, K
    let omega = 2.0 * std::f64::consts::PI / MISSION_MMS_T;

    let grid = FvGrid::new((L, 0.01, 0.01), (NX, 1, 1)).expect("valid grid");
    let (dx, _, _) = grid.spacing();
    let mut model = FvModel::new(grid, &Material::aluminum_6061());
    // Temporal error at the finest ladder rung is ~1e-5 K; solve far
    // below it so the PCG residual never pollutes the fit.
    model.set_solver_config(SolverConfig::new().tolerance(1e-13));
    model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(T_W)));
    model.set_face_bc(Face::XMax, FaceBc::FixedTemperature(Celsius::new(T_W)));

    let pi_l = std::f64::consts::PI / L;
    let v: Vec<f64> = (0..NX)
        .map(|i| AMP * (pi_l * ((i as f64 + 0.5) * dx)).sin())
        .collect();
    let (a, _) = model.assemble_operator();
    let mut av = vec![0.0; NX];
    a.spmv_into(&v, &mut av, 1);
    let cv: Vec<f64> = model
        .capacities()
        .iter()
        .zip(&v)
        .map(|(c, vi)| c * vi)
        .collect();

    let hold = MissionProfile::new(vec![MissionPhase::constant(
        "hold",
        MISSION_MMS_T,
        BoundaryState::sea_level(),
    )])
    .expect("valid profile");
    let config = MissionConfig::new(scheme).control(control);
    let mut driver =
        MissionDriver::new(model, hold, config, Celsius::new(T_W)).expect("valid driver");
    driver.set_source_hook(Box::new(move |t, b| {
        let (s, c) = (omega * t).sin_cos();
        for ((bi, cvi), avi) in b.iter_mut().zip(&cv).zip(&av) {
            *bi += cvi * omega * c + avi * s;
        }
    }));
    driver.run_to_end().expect("mission MMS run");

    let g_end = (omega * MISSION_MMS_T).sin();
    driver
        .temperatures()
        .iter()
        .zip(&v)
        .map(|(t, vi)| (t - (T_W + vi * g_end)).abs())
        .fold(0.0, f64::max)
}

/// Temporal MMS convergence study for the mission transient driver:
/// fixed steps `dt = T/N` for each `N` in `step_counts` (run through
/// the [`Sweep`] engine like the spatial ladders), errors measured by
/// [`mission_temporal_error`]. The trapezoidal scheme must converge at
/// O(dt²), backward Euler at O(dt).
pub fn mission_temporal_study(scheme: Scheme, step_counts: &[usize], runner: &Sweep) -> MmsStudy {
    let errors = runner.map(step_counts, |&n| {
        let dt = MISSION_MMS_T / n as f64;
        mission_temporal_error(scheme, StepControl::Fixed { dt })
    });
    MmsStudy {
        label: format!("mission transient, {scheme:?} θ-scheme, N = {step_counts:?}"),
        hs: step_counts
            .iter()
            .map(|&n| MISSION_MMS_T / n as f64)
            .collect(),
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_order_recovers_exact_slopes() {
        let hs = [0.1, 0.05, 0.025, 0.0125];
        let quad: Vec<f64> = hs.iter().map(|h| 3.0 * h * h).collect();
        assert!((fit_order(&hs, &quad) - 2.0).abs() < 1e-12);
        let lin: Vec<f64> = hs.iter().map(|h| 0.7 * h).collect();
        assert!((fit_order(&hs, &lin) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two refinements")]
    fn fit_order_rejects_single_point() {
        fit_order(&[0.1], &[1.0]);
    }

    #[test]
    fn report_lists_every_refinement() {
        let study = MmsStudy {
            label: "synthetic".into(),
            hs: vec![0.1, 0.05],
            errors: vec![4e-3, 1e-3],
        };
        let report = study.report();
        assert!(report.contains("observed order"), "{report}");
        assert!((study.observed_order() - 2.0).abs() < 1e-9);
        study.assert_order(2.0, 0.3);
    }
}
