//! CI smoke gate for obs run reports.
//!
//! Usage: `obs_check <report.json> [required_counter_prefix...]`
//!
//! Exits non-zero when the file is missing, fails to parse/validate as
//! an `aeropack-obs-report/v1` document, or when any required counter
//! prefix has a zero sum.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: obs_check <report.json> [required_counter_prefix...]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match aeropack_obs::validate_report(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs_check: {path} is not a valid run report: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("obs_check: {path}: {summary}");
    let mut ok = true;
    for prefix in args {
        let sum = summary.counter_prefix_sum(&prefix);
        if sum == 0 {
            eprintln!("obs_check: no counter under prefix {prefix:?} has a non-zero value");
            ok = false;
        } else {
            println!("obs_check: prefix {prefix:?} sum = {sum}");
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
