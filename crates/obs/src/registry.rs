//! The thread-safe event sink: counters, log₂-bucketed histograms and
//! span aggregates, plus the snapshot types reports are built from.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Number of exponent buckets: log₂ exponents −64..=63, i.e. values
/// from ~5.4e−20 up to ~9.2e18 land in a dedicated bucket; anything
/// beyond clamps into the first/last bucket.
const BUCKETS: usize = 128;
const EXP_MIN: i32 = -64;

#[derive(Clone)]
struct Histogram {
    counts: [u64; BUCKETS],
    /// Values that are ≤ 0 or non-finite (kept out of sum/min/max).
    outliers: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            outliers: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, v: f64) {
        if !(v.is_finite() && v > 0.0) {
            self.outliers += 1;
            return;
        }
        let exp = (v.log2().floor() as i32).clamp(EXP_MIN, EXP_MIN + BUCKETS as i32 - 1);
        self.counts[(exp - EXP_MIN) as usize] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

#[derive(Clone, Default)]
struct SpanAgg {
    count: u64,
    total: Duration,
    max: Duration,
}

/// A point-in-time copy of one histogram, with only the occupied
/// buckets materialised as `(lower bound, upper bound, count)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Positive, finite samples recorded.
    pub count: u64,
    /// Sum of those samples.
    pub sum: f64,
    /// Smallest sample (0.0 when empty).
    pub min: f64,
    /// Largest sample (0.0 when empty).
    pub max: f64,
    /// Samples that were ≤ 0 or non-finite.
    pub outliers: u64,
    /// Occupied log₂ buckets: `(≥ lower, < upper, count)`.
    pub buckets: Vec<(f64, f64, u64)>,
}

/// A point-in-time copy of one span path's aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Full nested path, `parent/child{label}` style.
    pub path: String,
    /// Times the span completed.
    pub count: u64,
    /// Accumulated wall time.
    pub total: Duration,
    /// Longest single occurrence.
    pub max: Duration,
}

/// Everything a registry holds, copied out for reporting.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanSnapshot>,
}

/// A thread-safe sink for counters, histograms and span records. One
/// global instance serves the process (see
/// [`global_registry`](crate::global_registry)); tests install private
/// instances with [`scoped`](crate::scoped).
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter (creating it at zero).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut map = self.counters.lock().expect("obs counters poisoned");
        *map.entry(name).or_insert(0) += delta;
    }

    /// Records one value into a histogram (creating it empty).
    pub fn histogram_record(&self, name: &'static str, value: f64) {
        let mut map = self.histograms.lock().expect("obs histograms poisoned");
        map.entry(name).or_insert_with(Histogram::new).record(value);
    }

    /// Folds one completed span occurrence into the aggregate for
    /// `path`.
    pub fn span_record(&self, path: &str, elapsed: Duration) {
        let mut map = self.spans.lock().expect("obs spans poisoned");
        let agg = map.entry(path.to_string()).or_default();
        agg.count += 1;
        agg.total += elapsed;
        agg.max = agg.max.max(elapsed);
    }

    /// Current value of a counter (0 when absent) — the accessor tests
    /// assert against.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("obs counters poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix` — handy for
    /// "did any solver event fire" smoke assertions.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .lock()
            .expect("obs counters poisoned")
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Copies everything out for reporting.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs counters poisoned")
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs histograms poisoned")
            .iter()
            .map(|(name, h)| {
                let buckets = h
                    .counts
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| {
                        let exp = EXP_MIN + i as i32;
                        (2f64.powi(exp), 2f64.powi(exp + 1), *c)
                    })
                    .collect();
                HistogramSnapshot {
                    name: name.to_string(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count > 0 { h.min } else { 0.0 },
                    max: if h.count > 0 { h.max } else { 0.0 },
                    outliers: h.outliers,
                    buckets,
                }
            })
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("obs spans poisoned")
            .iter()
            .map(|(path, agg)| SpanSnapshot {
                path: path.clone(),
                count: agg.count,
                total: agg.total,
                max: agg.max,
            })
            .collect();
        Snapshot {
            counters,
            histograms,
            spans,
        }
    }

    /// Drops every recorded value (used by long-lived processes between
    /// runs).
    pub fn clear(&self) {
        self.counters.lock().expect("obs counters poisoned").clear();
        self.histograms
            .lock()
            .expect("obs histograms poisoned")
            .clear();
        self.spans.lock().expect("obs spans poisoned").clear();
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Registry")
            .field("counters", &snap.counters.len())
            .field("histograms", &snap.histograms.len())
            .field("spans", &snap.spans.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter_add("a.x", 2);
        r.counter_add("a.x", 3);
        r.counter_add("a.y", 1);
        assert_eq!(r.counter("a.x"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.counter_prefix_sum("a."), 6);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let r = Registry::new();
        for v in [1.5, 1.9, 3.0, 1e-12, -4.0, f64::NAN, 0.0] {
            r.histogram_record("h", v);
        }
        let snap = r.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.outliers, 3);
        assert_eq!(h.min, 1e-12);
        assert_eq!(h.max, 3.0);
        // 1.5 and 1.9 share the [1, 2) bucket.
        let b1 = h
            .buckets
            .iter()
            .find(|(lo, _, _)| *lo == 1.0)
            .expect("[1,2) bucket");
        assert_eq!((b1.1, b1.2), (2.0, 2));
        // Extremes clamp instead of indexing out of range.
        r.histogram_record("h", 1e300);
        r.histogram_record("h", 1e-300);
        assert_eq!(r.snapshot().histograms[0].count, 6);
    }

    #[test]
    fn span_aggregates_track_count_total_max() {
        let r = Registry::new();
        r.span_record("a/b", Duration::from_millis(2));
        r.span_record("a/b", Duration::from_millis(6));
        let snap = r.snapshot();
        let s = &snap.spans[0];
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_millis(8));
        assert_eq!(s.max, Duration::from_millis(6));
    }

    #[test]
    fn clear_empties_everything() {
        let r = Registry::new();
        r.counter_add("c", 1);
        r.histogram_record("h", 1.0);
        r.span_record("s", Duration::from_nanos(1));
        r.clear();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty() && snap.spans.is_empty());
    }

    #[test]
    fn concurrent_updates_are_safe() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("parallel", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("parallel"), 4000);
    }
}
