//! Run-report JSON: a hand-rolled emitter (the workspace has a
//! no-serde rule) and a minimal validating parser used by the CI obs
//! smoke gate and the `obs_check` binary.
//!
//! # Schema (`aeropack-obs-report/v1`)
//!
//! ```json
//! {
//!   "schema": "aeropack-obs-report/v1",
//!   "enabled": true,
//!   "counters": {"solver.pcg.iterations": 1234},
//!   "histograms": {
//!     "solver.pcg.final_residual": {
//!       "count": 12, "sum": 1.2e-11, "min": 9.1e-13, "max": 1.1e-12,
//!       "outliers": 0,
//!       "buckets": [{"ge": 9.09e-13, "lt": 1.81e-12, "count": 12}]
//!     }
//!   },
//!   "spans": {
//!     "seb.power_sweep/seb.point{config=0}": {
//!       "count": 11, "total_s": 0.004, "mean_s": 3.6e-4, "max_s": 6.1e-4
//!     }
//!   }
//! }
//! ```

use std::fmt;

use crate::registry::Snapshot;

/// The schema tag stamped into (and required from) every run report.
pub const SCHEMA: &str = "aeropack-obs-report/v1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number (finite inputs only; the registry
/// never stores non-finite aggregates).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{:e}", v)
    }
}

/// Renders a registry snapshot as run-report JSON.
pub fn render(snap: &Snapshot, enabled: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"enabled\": {enabled},\n"));

    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", escape(name), value));
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"histograms\": {");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"outliers\": {}, \"buckets\": [",
            escape(&h.name),
            h.count,
            num(h.sum),
            num(h.min),
            num(h.max),
            h.outliers,
        ));
        for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"ge\": {}, \"lt\": {}, \"count\": {}}}",
                num(*lo),
                num(*hi),
                c
            ));
        }
        out.push_str("]}");
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"spans\": {");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let total = s.total.as_secs_f64();
        let mean = if s.count > 0 {
            total / s.count as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"total_s\": {}, \"mean_s\": {}, \"max_s\": {}}}",
            escape(&s.path),
            s.count,
            num(total),
            num(mean),
            num(s.max.as_secs_f64()),
        ));
    }
    if !snap.spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// A parsed JSON value — the minimal model the validator needs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            Self::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Self::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Why parsing or validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError {
    /// Human-readable description with a byte offset where relevant.
    pub message: String,
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ReportError {}

fn err<T>(message: impl Into<String>) -> Result<T, ReportError> {
    Err(ReportError {
        message: message.into(),
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, ReportError> {
        err(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ReportError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected '{}'", b as char))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, ReportError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.fail("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ReportError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return self.fail("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ReportError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.fail("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<String, ReportError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.fail("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.fail("bad \\u escape"),
                            }
                        }
                        _ => return self.fail("unsupported escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| ReportError {
                            message: format!("invalid UTF-8 at byte {}", self.pos),
                        })?
                        .chars()
                        .next()
                        .expect("non-empty rest");
                    out.push(s);
                    self.pos += s.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ReportError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            _ => self.fail("invalid number"),
        }
    }
}

/// Parses a JSON document (objects, arrays, strings, finite numbers,
/// booleans, null — everything the run report uses).
///
/// # Errors
///
/// Returns a [`ReportError`] naming the first offending byte offset.
pub fn parse(input: &str) -> Result<JsonValue, ReportError> {
    let mut p = Parser::new(input);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.fail("trailing garbage after document");
    }
    Ok(v)
}

/// What a validated run report contained.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSummary {
    /// Whether the report was produced with observability enabled.
    pub enabled: bool,
    /// Counter name → value pairs.
    pub counters: Vec<(String, u64)>,
    /// Number of histogram entries.
    pub histograms: usize,
    /// Number of span paths.
    pub spans: usize,
}

impl fmt::Display for ReportSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "enabled={} counters={} histograms={} spans={}",
            self.enabled,
            self.counters.len(),
            self.histograms,
            self.spans
        )
    }
}

impl ReportSummary {
    /// Value of a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum over counters whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

/// Parses *and structurally validates* a run report: the schema tag,
/// the three top-level sections, non-negative integer counters, and
/// per-histogram/span field shapes.
///
/// # Errors
///
/// Returns a [`ReportError`] describing the first violation.
pub fn validate_report(input: &str) -> Result<ReportSummary, ReportError> {
    let doc = parse(input)?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .unwrap_or_default();
    if schema != SCHEMA {
        return err(format!("schema tag {schema:?} is not {SCHEMA:?}"));
    }
    let enabled = match doc.get("enabled") {
        Some(JsonValue::Bool(b)) => *b,
        _ => return err("missing boolean 'enabled'"),
    };
    let counters_obj = doc
        .get("counters")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| ReportError {
            message: "missing 'counters' object".into(),
        })?;
    let mut counters = Vec::with_capacity(counters_obj.len());
    for (name, value) in counters_obj {
        let n = value.as_number().ok_or_else(|| ReportError {
            message: format!("counter {name:?} is not a number"),
        })?;
        if n < 0.0 || n.fract() != 0.0 {
            return err(format!("counter {name:?} is not a non-negative integer"));
        }
        counters.push((name.clone(), n as u64));
    }
    let histograms = doc
        .get("histograms")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| ReportError {
            message: "missing 'histograms' object".into(),
        })?;
    for (name, h) in histograms {
        for field in ["count", "sum", "min", "max", "outliers"] {
            if h.get(field).and_then(JsonValue::as_number).is_none() {
                return err(format!("histogram {name:?} missing numeric {field:?}"));
            }
        }
        match h.get("buckets") {
            Some(JsonValue::Array(buckets)) => {
                for b in buckets {
                    for field in ["ge", "lt", "count"] {
                        if b.get(field).and_then(JsonValue::as_number).is_none() {
                            return err(format!(
                                "histogram {name:?} bucket missing numeric {field:?}"
                            ));
                        }
                    }
                }
            }
            _ => return err(format!("histogram {name:?} missing 'buckets' array")),
        }
    }
    let spans = doc
        .get("spans")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| ReportError {
            message: "missing 'spans' object".into(),
        })?;
    for (path, s) in spans {
        for field in ["count", "total_s", "mean_s", "max_s"] {
            if s.get(field).and_then(JsonValue::as_number).is_none() {
                return err(format!("span {path:?} missing numeric {field:?}"));
            }
        }
    }
    Ok(ReportSummary {
        enabled,
        counters,
        histograms: histograms.len(),
        spans: spans.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::time::Duration;

    fn populated_registry() -> Registry {
        let r = Registry::new();
        r.counter_add("solver.pcg.iterations", 42);
        r.counter_add("sweep.scenarios", 600);
        r.histogram_record("solver.pcg.final_residual", 3.2e-11);
        r.histogram_record("solver.pcg.final_residual", 8.9e-12);
        r.span_record("seb.power_sweep", Duration::from_millis(12));
        r.span_record(
            "seb.power_sweep/seb.point{config=0}",
            Duration::from_micros(340),
        );
        r
    }

    #[test]
    fn report_roundtrips_through_the_validator() {
        let r = populated_registry();
        let json = render(&r.snapshot(), true);
        let summary = validate_report(&json).expect("report validates");
        assert!(summary.enabled);
        assert_eq!(summary.counter("solver.pcg.iterations"), 42);
        assert_eq!(summary.counter_prefix_sum("solver."), 42);
        assert_eq!(summary.histograms, 1);
        assert_eq!(summary.spans, 2);
    }

    #[test]
    fn empty_registry_still_renders_valid_json() {
        let json = render(&Registry::new().snapshot(), false);
        let summary = validate_report(&json).expect("empty report validates");
        assert!(!summary.enabled);
        assert!(summary.counters.is_empty());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = parse(r#"{"a\n\"b": [1, -2.5, 1e-12, true, null, "A"]}"#).unwrap();
        let arr = v.get("a\n\"b").unwrap();
        match arr {
            JsonValue::Array(items) => {
                assert_eq!(items[0], JsonValue::Number(1.0));
                assert_eq!(items[1], JsonValue::Number(-2.5));
                assert_eq!(items[2], JsonValue::Number(1e-12));
                assert_eq!(items[3], JsonValue::Bool(true));
                assert_eq!(items[4], JsonValue::Null);
                assert_eq!(items[5], JsonValue::String("A".into()));
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1,}"#).is_err());
        assert!(parse("[1 2]").is_err());
    }

    #[test]
    fn validator_rejects_wrong_shapes() {
        assert!(validate_report("{}").is_err());
        assert!(validate_report(
            r#"{"schema": "other", "enabled": true, "counters": {}, "histograms": {}, "spans": {}}"#
        )
        .is_err());
        let bad_counter = format!(
            r#"{{"schema": "{SCHEMA}", "enabled": true, "counters": {{"x": -1}}, "histograms": {{}}, "spans": {{}}}}"#
        );
        assert!(validate_report(&bad_counter).is_err());
        let bad_span = format!(
            r#"{{"schema": "{SCHEMA}", "enabled": true, "counters": {{}}, "histograms": {{}}, "spans": {{"p": {{"count": 1}}}}}}"#
        );
        assert!(validate_report(&bad_span).is_err());
    }

    #[test]
    fn bench_style_json_with_nested_tables_parses() {
        // The emitter's own BENCH-style sibling files must also parse,
        // so the validator can be pointed at them for smoke checks.
        let doc = parse(
            r#"{"hardware_threads": 1, "sweeps": [{"name": "x", "wall_seconds": {"1": 0.5}}]}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("hardware_threads").and_then(JsonValue::as_number),
            Some(1.0)
        );
    }
}
