//! Hierarchical wall-time spans: an RAII guard plus a thread-local
//! path stack that gives nested spans their `parent/child` paths.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::registry::Registry;

thread_local! {
    /// Stack of full span paths active on this thread (innermost
    /// last).
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An active span. Dropping it records the elapsed wall time into the
/// registry under the span's nested path. Obtain one with
/// [`span!`](crate::span!) / [`span`](crate::span); a disabled-mode
/// span is inert and free.
#[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    path: String,
    start: Instant,
    registry: Arc<Registry>,
}

impl Span {
    /// The inert span handed out while observability is off.
    pub(crate) fn disabled() -> Self {
        Self { inner: None }
    }

    /// Starts an enabled span; `label`, when present, decorates the
    /// leaf as `name{label}`. The full path is the calling thread's
    /// innermost active span path joined with `/`.
    pub(crate) fn start(name: &'static str, label: Option<String>) -> Self {
        let leaf = match label {
            Some(l) if !l.is_empty() => format!("{name}{{{l}}}"),
            _ => name.to_string(),
        };
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{leaf}"),
                None => leaf,
            };
            stack.push(path.clone());
            path
        });
        Self {
            inner: Some(SpanInner {
                path,
                start: Instant::now(),
                registry: crate::current(),
            }),
        }
    }

    /// The span's full nested path (`None` for a disabled-mode span).
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.path.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed();
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Guards are usually dropped innermost-first; tolerate
                // out-of-order drops by removing this path wherever it
                // sits.
                if let Some(pos) = stack.iter().rposition(|p| *p == inner.path) {
                    stack.remove(pos);
                }
            });
            inner.registry.span_record(&inner.path, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_slash_paths() {
        let reg = Arc::new(Registry::new());
        {
            let _g = crate::scoped(reg.clone());
            let outer = Span::start("outer", None);
            assert_eq!(outer.path(), Some("outer"));
            let inner = Span::start("inner", Some("k=1".to_string()));
            assert_eq!(inner.path(), Some("outer/inner{k=1}"));
            drop(inner);
            drop(outer);
            // After both drop, a fresh span is a root again.
            let next = Span::start("next", None);
            assert_eq!(next.path(), Some("next"));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 3);
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let reg = Arc::new(Registry::new());
        let _g = crate::scoped(reg.clone());
        let a = Span::start("a", None);
        let b = Span::start("b", None);
        drop(a); // dropped before its child
        drop(b);
        let c = Span::start("c", None);
        assert_eq!(c.path(), Some("c"));
    }

    #[test]
    fn disabled_span_is_inert() {
        let s = Span::disabled();
        assert_eq!(s.path(), None);
        drop(s);
    }
}
