//! Observability for the aeropack workspace: spans, counters,
//! histograms and run reports — with a zero-cost disabled mode.
//!
//! Every headline number of the reproduction (the Fig 10 curves, the
//! qualification sweeps, the benchmark tables) is only trustworthy if
//! we can see *how* it was produced: how many solver iterations ran,
//! what the residuals were, whether the pattern cache actually hit,
//! how balanced the sweep workers were. This crate is the single
//! instrumentation layer every runtime crate records into:
//!
//! * [`span!`] — hierarchical wall-time spans with nesting
//!   (`span!("fig10.solve", config = ci)`); aggregated per path as
//!   count / total / max.
//! * [`counter!`] / [`counter_add`] — monotonic counters (solver
//!   iterations, cache hits, scenarios dispatched).
//! * [`histogram!`] / [`histogram_record`] — log₂-bucketed value
//!   distributions (final residuals, per-scenario solve times).
//! * [`Registry`] — the thread-safe sink behind all of it. There is
//!   one process-global registry, plus a **test-scoped override**
//!   ([`scoped`]) so tests can observe their own events without
//!   cross-test interference.
//! * [`write_report`] / [`report_json`] — a hand-rolled JSON run-report
//!   emitter (the workspace has a no-serde rule), with a matching
//!   minimal parser ([`validate_report`]) used by the CI smoke gate.
//!
//! # Disabled mode is free
//!
//! Observability defaults to **off**, and in that state every event
//! costs exactly one relaxed atomic load — no allocation, no locking,
//! no formatting (span labels are built behind the enabled check).
//! `crates/solver/tests/zero_alloc.rs` pins this with a counting
//! global allocator around an instrumented hot solve. Enable at
//! runtime with [`set_enabled`], from the environment with
//! [`init_from_env`] (`AEROPACK_OBS=1`), or for a test's dynamic
//! extent with [`scoped`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let reg = Arc::new(aeropack_obs::Registry::new());
//! {
//!     let _obs = aeropack_obs::scoped(reg.clone());
//!     let _span = aeropack_obs::span!("demo.outer", case = 1);
//!     aeropack_obs::counter!("demo.events", 3);
//!     aeropack_obs::histogram!("demo.residual", 1.5e-9);
//! }
//! assert_eq!(reg.counter("demo.events"), 3);
//! let json = aeropack_obs::report::render(&reg.snapshot(), true);
//! assert!(aeropack_obs::validate_report(&json).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
pub mod report;
mod span;

pub use registry::{HistogramSnapshot, Registry, Snapshot, SpanSnapshot};
pub use report::{validate_report, JsonValue, ReportError, ReportSummary};
pub use span::Span;

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable that enables observability when set to `1`,
/// `true`, `on` or `yes` (see [`init_from_env`]).
pub const OBS_ENV: &str = "AEROPACK_OBS";

/// Environment variable naming the run-report output path read by
/// [`write_env_report`].
pub const REPORT_ENV: &str = "AEROPACK_OBS_REPORT";

/// The one flag every event checks. `true` when the base switch is on
/// *or* at least one [`scoped`] override is alive anywhere in the
/// process.
static ENABLED: AtomicBool = AtomicBool::new(false);

struct EnableState {
    base: bool,
    overrides: usize,
}

static ENABLE_STATE: Mutex<EnableState> = Mutex::new(EnableState {
    base: false,
    overrides: 0,
});

thread_local! {
    /// Per-thread registry override installed by [`scoped`]/[`attach`].
    static LOCAL_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

fn refresh_enabled(state: &EnableState) {
    ENABLED.store(state.base || state.overrides > 0, Ordering::Relaxed);
}

/// Whether observability is on — the single relaxed atomic load that
/// guards every event in disabled mode.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the process-global base switch on or off. Scoped overrides
/// ([`scoped`]) keep events flowing while alive regardless of the base
/// switch.
pub fn set_enabled(on: bool) {
    let mut state = ENABLE_STATE.lock().expect("obs enable state poisoned");
    state.base = on;
    refresh_enabled(&state);
}

/// Reads [`OBS_ENV`] and enables observability when it holds a truthy
/// value (`1`, `true`, `on`, `yes`; case-insensitive). Leaves the
/// switch untouched when the variable is unset.
pub fn init_from_env() {
    if let Ok(v) = std::env::var(OBS_ENV) {
        let v = v.trim().to_ascii_lowercase();
        set_enabled(matches!(v.as_str(), "1" | "true" | "on" | "yes"));
    }
}

fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// The registry events on this thread currently record into: the
/// thread-local override when one is installed, the process-global
/// registry otherwise.
pub fn current() -> Arc<Registry> {
    LOCAL_REGISTRY
        .with(|l| l.borrow().clone())
        .unwrap_or_else(|| global().clone())
}

/// The process-global registry (what [`report_json`] and
/// [`write_report`] serialise).
pub fn global_registry() -> Arc<Registry> {
    global().clone()
}

/// Restores the previous thread-local registry (and, for [`scoped`]
/// guards, releases the enable override) on drop.
pub struct OverrideGuard {
    prev: Option<Arc<Registry>>,
    counted: bool,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        LOCAL_REGISTRY.with(|l| *l.borrow_mut() = self.prev.take());
        if self.counted {
            let mut state = ENABLE_STATE.lock().expect("obs enable state poisoned");
            state.overrides = state.overrides.saturating_sub(1);
            refresh_enabled(&state);
        }
    }
}

/// Test-scoped override: until the returned guard drops, events on
/// this thread (and on any sweep workers the thread spawns through
/// `aeropack-sweep`, which propagates the handle) record into `reg`,
/// and observability is force-enabled for the whole process. Other
/// threads outside the override keep recording into the global
/// registry; a test that reads only its own `reg` is isolated.
#[must_use = "the override ends when the guard is dropped"]
pub fn scoped(reg: Arc<Registry>) -> OverrideGuard {
    let prev = LOCAL_REGISTRY.with(|l| l.borrow_mut().replace(reg));
    let mut state = ENABLE_STATE.lock().expect("obs enable state poisoned");
    state.overrides += 1;
    refresh_enabled(&state);
    OverrideGuard {
        prev,
        counted: true,
    }
}

/// Installs `reg` as this thread's sink **without** touching the
/// enable state — the mechanism worker threads use to inherit their
/// parent's (possibly test-scoped) registry. The parent scope keeps
/// the enable override alive for the workers' lifetime.
#[must_use = "the override ends when the guard is dropped"]
pub fn attach(reg: Arc<Registry>) -> OverrideGuard {
    let prev = LOCAL_REGISTRY.with(|l| l.borrow_mut().replace(reg));
    OverrideGuard {
        prev,
        counted: false,
    }
}

/// The handle a parallel runner captures before spawning workers:
/// `Some(current sink)` when observability is on, `None` (nothing to
/// propagate, zero cost) when off. Workers [`attach`] the handle.
pub fn propagation_handle() -> Option<Arc<Registry>> {
    if enabled() {
        Some(current())
    } else {
        None
    }
}

/// Adds `delta` to the named monotonic counter. Free when disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    current().counter_add(name, delta);
}

/// Records one value into the named log₂-bucketed histogram. Free when
/// disabled.
#[inline]
pub fn histogram_record(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    current().histogram_record(name, value);
}

/// Starts an unlabelled span (see [`span!`] for labelled spans). The
/// returned guard records the wall time under the span's nested path
/// when dropped. Free when disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span::start(name, None)
}

/// Starts a span whose leaf is `name{label}`; `label` is only built
/// when observability is on, so disabled callers pay no formatting.
#[inline]
pub fn span_labeled<F: FnOnce() -> String>(name: &'static str, label: F) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span::start(name, Some(label()))
}

/// Increments a counter: `counter!("name")` adds 1,
/// `counter!("name", n)` adds `n`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter_add($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta as u64)
    };
}

/// Records a value into a histogram: `histogram!("name", value)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::histogram_record($name, $value as f64)
    };
}

/// Starts a span guard: `span!("name")` or
/// `span!("name", key = value, ...)` (fields become the
/// `name{key=value}` label; keep field cardinality low). Bind the
/// result — `let _span = span!(...)` — so the guard lives to the end
/// of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span_labeled($name, || {
            let mut label = String::new();
            $(
                if !label.is_empty() {
                    label.push(',');
                }
                label.push_str(stringify!($key));
                label.push('=');
                label.push_str(&format!("{}", $value));
            )+
            label
        })
    };
}

/// Renders the global registry as a run-report JSON string.
pub fn report_json() -> String {
    report::render(&global().snapshot(), enabled())
}

/// Writes the global registry's run report to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_report<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, report_json())
}

/// Writes the global run report to the path named by [`REPORT_ENV`],
/// returning the path written, or `Ok(None)` when the variable is
/// unset or empty.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_env_report() -> std::io::Result<Option<PathBuf>> {
    match std::env::var(REPORT_ENV) {
        Ok(path) if !path.trim().is_empty() => {
            let path = PathBuf::from(path);
            write_report(&path)?;
            Ok(Some(path))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_records_nothing() {
        // Default state: disabled. Events must be no-ops against the
        // global registry.
        assert!(!enabled());
        counter_add("test.disabled", 5);
        histogram_record("test.disabled.h", 1.0);
        let _s = span("test.disabled.span");
        drop(_s);
        assert_eq!(global_registry().counter("test.disabled"), 0);
    }

    #[test]
    fn scoped_override_isolates_and_enables() {
        let reg = Arc::new(Registry::new());
        {
            let _g = scoped(reg.clone());
            assert!(enabled());
            counter!("test.scoped");
            counter!("test.scoped", 9);
            histogram!("test.scoped.h", 0.25);
            {
                let _outer = span!("test.outer", case = 2);
                let _inner = span!("test.inner");
            }
        }
        assert_eq!(reg.counter("test.scoped"), 10);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"test.outer{case=2}"));
        assert!(paths.contains(&"test.outer{case=2}/test.inner"));
        // Nothing leaked into the global registry.
        assert_eq!(global_registry().counter("test.scoped"), 0);
    }

    #[test]
    fn attach_inherits_without_enable_side_effects() {
        let reg = Arc::new(Registry::new());
        let _g = scoped(reg.clone());
        let handle = propagation_handle().expect("enabled inside scope");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _worker = attach(handle.clone());
                counter!("test.worker.events", 2);
            });
        });
        assert_eq!(reg.counter("test.worker.events"), 2);
    }

    #[test]
    fn nested_scopes_restore_previous_sink() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        let _a = scoped(outer.clone());
        {
            let _b = scoped(inner.clone());
            counter!("test.nest");
        }
        counter!("test.nest");
        assert_eq!(inner.counter("test.nest"), 1);
        assert_eq!(outer.counter("test.nest"), 1);
    }
}
