//! Property-based tests of the structural solver's invariants.

use aeropack_fem::{modal, Dof, PlateMesh, PlateProperties, PsdCurve, Sdof};
use aeropack_materials::Material;
use aeropack_units::{AccelPsd, Frequency, Length, Mass};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plate_mass_is_exact_for_any_geometry(
        lx in 0.05..0.4f64,
        ly in 0.05..0.4f64,
        t_mm in 0.8..4.0f64,
        extra in 0.0..6.0f64,
        nx in 2usize..5,
        ny in 2usize..5,
    ) {
        let props = PlateProperties::from_material(
            &Material::fr4(), Length::from_millimeters(t_mm))
            .unwrap()
            .with_smeared_mass(extra);
        let mesh = PlateMesh::rectangular(lx, ly, nx, ny, &props).unwrap();
        let exact = props.areal_mass * lx * ly;
        let got = mesh.model.total_mass().value();
        prop_assert!((got - exact).abs() < 1e-9 * exact, "{got} vs {exact}");
    }

    #[test]
    fn modal_frequencies_positive_and_sorted(
        lx in 0.1..0.35f64,
        ly in 0.1..0.35f64,
        t_mm in 1.0..3.0f64,
    ) {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(), Length::from_millimeters(t_mm)).unwrap();
        let mut mesh = PlateMesh::rectangular(lx, ly, 4, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let modes = modal(&mesh.model, 3).unwrap();
        let f = modes.frequencies();
        prop_assert!(f[0].value() > 0.0);
        prop_assert!(f.windows(2).all(|w| w[0].value() <= w[1].value() + 1e-9));
        // Mass capture of three modes stays within (0, 1].
        let capture = modes.mass_capture();
        prop_assert!(capture > 0.0 && capture <= 1.0 + 1e-9, "capture {capture}");
    }

    #[test]
    fn thicker_plates_ring_higher(
        t1_mm in 0.8..2.0f64,
        factor in 1.3..2.5f64,
    ) {
        let build = |t_mm: f64| {
            let props = PlateProperties::from_material(
                &Material::fr4(), Length::from_millimeters(t_mm)).unwrap();
            let mut mesh = PlateMesh::rectangular(0.2, 0.15, 4, 3, &props).unwrap();
            mesh.simply_support_edges().unwrap();
            modal(&mesh.model, 1).unwrap().fundamental().value()
        };
        // f ∝ t for a bare plate (D ∝ t³, m ∝ t).
        let f1 = build(t1_mm);
        let f2 = build(t1_mm * factor);
        let ratio = f2 / f1;
        prop_assert!((ratio - factor).abs() / factor < 0.02, "ratio {ratio} vs {factor}");
    }

    #[test]
    fn added_mass_never_raises_a_frequency(
        extra_grams in 10.0..500.0f64,
    ) {
        let props = PlateProperties::from_material(
            &Material::fr4(), Length::from_millimeters(1.6)).unwrap();
        let build = |grams: f64| {
            let mut mesh = PlateMesh::rectangular(0.16, 0.1, 4, 3, &props).unwrap();
            mesh.simply_support_edges().unwrap();
            let c = mesh.center_node();
            mesh.model.add_lumped_mass(c, Mass::from_grams(grams)).unwrap();
            modal(&mesh.model, 1).unwrap().fundamental().value()
        };
        let f_light = build(1.0);
        let f_heavy = build(extra_grams);
        prop_assert!(f_heavy <= f_light + 1e-9);
    }

    #[test]
    fn static_solution_satisfies_equilibrium(
        load in 1.0..100.0f64,
    ) {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(), Length::from_millimeters(2.0)).unwrap();
        let mut mesh = PlateMesh::rectangular(0.2, 0.2, 4, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let c = mesh.center_node();
        let u = mesh.model.solve_static(&[(c, Dof::W, load)]).unwrap();
        // K·u reproduces the load at the loaded free DOF.
        let f = mesh.model.stiffness().matvec(&u);
        let idx = mesh.model.dof_index(c, Dof::W).unwrap();
        prop_assert!((f[idx] - load).abs() < 1e-6 * load, "f = {}", f[idx]);
        // Linearity: doubling the load doubles the response.
        let u2 = mesh.model.solve_static(&[(c, Dof::W, 2.0 * load)]).unwrap();
        prop_assert!((u2[idx] - 2.0 * u[idx]).abs() < 1e-9 * u[idx].abs().max(1e-30));
    }

    #[test]
    fn psd_grms_scales_as_sqrt(scale in 0.1..10.0f64) {
        let curve = PsdCurve::new(vec![
            (Frequency::new(20.0), AccelPsd::new(0.005)),
            (Frequency::new(100.0), AccelPsd::new(0.02)),
            (Frequency::new(1000.0), AccelPsd::new(0.02)),
            (Frequency::new(2000.0), AccelPsd::new(0.005)),
        ]).unwrap();
        let scaled = curve.scaled(scale).unwrap();
        let expect = curve.grms() * scale.sqrt();
        prop_assert!((scaled.grms() - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn sdof_transmissibility_crosses_unity_at_sqrt2(
        fn_hz in 20.0..500.0f64,
        zeta in 0.01..0.4f64,
    ) {
        let osc = Sdof::from_frequency(Frequency::new(fn_hz), Mass::new(1.0), zeta).unwrap();
        let t = osc.transmissibility(osc.crossover_frequency());
        prop_assert!((t - 1.0).abs() < 1e-9, "|T(√2 fn)| = {t}");
        // Amplification below crossover, attenuation above.
        prop_assert!(osc.transmissibility(Frequency::new(fn_hz)) > 1.0);
        prop_assert!(osc.transmissibility(Frequency::new(3.0 * fn_hz)) < 1.0);
    }
}
