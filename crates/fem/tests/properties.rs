//! Property-style tests of the structural solver's invariants, driven
//! by the deterministic in-repo [`SplitMix64`] generator so the suite
//! runs fully offline.

use aeropack_fem::{modal, Dof, PlateMesh, PlateProperties, PsdCurve, Sdof};
use aeropack_materials::Material;
use aeropack_units::{AccelPsd, Frequency, Length, Mass, SplitMix64};

const CASES: u64 = 24;

#[test]
fn plate_mass_is_exact_for_any_geometry() {
    let mut rng = SplitMix64::new(0xfe11_0001);
    for _ in 0..CASES {
        let lx = rng.range_f64(0.05, 0.4);
        let ly = rng.range_f64(0.05, 0.4);
        let t_mm = rng.range_f64(0.8, 4.0);
        let extra = rng.range_f64(0.0, 6.0);
        let nx = 2 + (rng.next_u64() % 3) as usize;
        let ny = 2 + (rng.next_u64() % 3) as usize;
        let props =
            PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(t_mm))
                .unwrap()
                .with_smeared_mass(extra);
        let mesh = PlateMesh::rectangular(lx, ly, nx, ny, &props).unwrap();
        let exact = props.areal_mass * lx * ly;
        let got = mesh.model.total_mass().value();
        assert!((got - exact).abs() < 1e-9 * exact, "{got} vs {exact}");
    }
}

#[test]
fn modal_frequencies_positive_and_sorted() {
    let mut rng = SplitMix64::new(0xfe11_0002);
    for _ in 0..8 {
        let lx = rng.range_f64(0.1, 0.35);
        let ly = rng.range_f64(0.1, 0.35);
        let t_mm = rng.range_f64(1.0, 3.0);
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(t_mm),
        )
        .unwrap();
        let mut mesh = PlateMesh::rectangular(lx, ly, 4, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let modes = modal(&mesh.model, 3).unwrap();
        let f = modes.frequencies();
        assert!(f[0].value() > 0.0);
        assert!(f.windows(2).all(|w| w[0].value() <= w[1].value() + 1e-9));
        // Mass capture of three modes stays within (0, 1].
        let capture = modes.mass_capture();
        assert!(capture > 0.0 && capture <= 1.0 + 1e-9, "capture {capture}");
        // Every modal solve leaves a stats trail on the model.
        assert!(mesh.model.last_solve_stats().is_some());
    }
}

#[test]
fn thicker_plates_ring_higher() {
    let mut rng = SplitMix64::new(0xfe11_0003);
    for _ in 0..8 {
        let t1_mm = rng.range_f64(0.8, 2.0);
        let factor = rng.range_f64(1.3, 2.5);
        let build = |t_mm: f64| {
            let props =
                PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(t_mm))
                    .unwrap();
            let mut mesh = PlateMesh::rectangular(0.2, 0.15, 4, 3, &props).unwrap();
            mesh.simply_support_edges().unwrap();
            modal(&mesh.model, 1).unwrap().fundamental().value()
        };
        // f ∝ t for a bare plate (D ∝ t³, m ∝ t).
        let f1 = build(t1_mm);
        let f2 = build(t1_mm * factor);
        let ratio = f2 / f1;
        assert!(
            (ratio - factor).abs() / factor < 0.02,
            "ratio {ratio} vs {factor}"
        );
    }
}

#[test]
fn added_mass_never_raises_a_frequency() {
    let mut rng = SplitMix64::new(0xfe11_0004);
    for _ in 0..8 {
        let extra_grams = rng.range_f64(10.0, 500.0);
        let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(1.6))
            .unwrap();
        let build = |grams: f64| {
            let mut mesh = PlateMesh::rectangular(0.16, 0.1, 4, 3, &props).unwrap();
            mesh.simply_support_edges().unwrap();
            let c = mesh.center_node();
            mesh.model
                .add_lumped_mass(c, Mass::from_grams(grams))
                .unwrap();
            modal(&mesh.model, 1).unwrap().fundamental().value()
        };
        let f_light = build(1.0);
        let f_heavy = build(extra_grams);
        assert!(f_heavy <= f_light + 1e-9);
    }
}

#[test]
fn static_solution_satisfies_equilibrium() {
    let mut rng = SplitMix64::new(0xfe11_0005);
    for _ in 0..8 {
        let load = rng.range_f64(1.0, 100.0);
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .unwrap();
        let mut mesh = PlateMesh::rectangular(0.2, 0.2, 4, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let c = mesh.center_node();
        let u = mesh.model.solve_static(&[(c, Dof::W, load)]).unwrap();
        // K·u reproduces the load at the loaded free DOF.
        let f = mesh.model.stiffness().matvec(&u);
        let idx = mesh.model.dof_index(c, Dof::W).unwrap();
        assert!((f[idx] - load).abs() < 1e-6 * load, "f = {}", f[idx]);
        // Linearity: doubling the load doubles the response.
        let u2 = mesh.model.solve_static(&[(c, Dof::W, 2.0 * load)]).unwrap();
        assert!((u2[idx] - 2.0 * u[idx]).abs() < 1e-9 * u[idx].abs().max(1e-30));
        // And the solve left its statistics behind.
        let stats = mesh.model.last_solve_stats().unwrap();
        assert_eq!(stats.context, "static solve");
    }
}

#[test]
fn psd_grms_scales_as_sqrt() {
    let mut rng = SplitMix64::new(0xfe11_0006);
    for _ in 0..CASES {
        let scale = rng.range_f64(0.1, 10.0);
        let curve = PsdCurve::new(vec![
            (Frequency::new(20.0), AccelPsd::new(0.005)),
            (Frequency::new(100.0), AccelPsd::new(0.02)),
            (Frequency::new(1000.0), AccelPsd::new(0.02)),
            (Frequency::new(2000.0), AccelPsd::new(0.005)),
        ])
        .unwrap();
        let scaled = curve.scaled(scale).unwrap();
        let expect = curve.grms() * scale.sqrt();
        assert!((scaled.grms() - expect).abs() < 1e-9 * expect);
    }
}

#[test]
fn sdof_transmissibility_crosses_unity_at_sqrt2() {
    let mut rng = SplitMix64::new(0xfe11_0007);
    for _ in 0..CASES {
        let fn_hz = rng.range_f64(20.0, 500.0);
        let zeta = rng.range_f64(0.01, 0.4);
        let osc = Sdof::from_frequency(Frequency::new(fn_hz), Mass::new(1.0), zeta).unwrap();
        let t = osc.transmissibility(osc.crossover_frequency());
        assert!((t - 1.0).abs() < 1e-9, "|T(√2 fn)| = {t}");
        // Amplification below crossover, attenuation above.
        assert!(osc.transmissibility(Frequency::new(fn_hz)) > 1.0);
        assert!(osc.transmissibility(Frequency::new(3.0 * fn_hz)) < 1.0);
    }
}
