//! Property-style tests of the structural solver's invariants, driven
//! through the [`aeropack_verify`] harness: failures shrink to a
//! minimal counterexample and print a one-line reproducer seed.

use aeropack_fem::{modal, Dof, PlateMesh, PlateProperties, PsdCurve, Sdof};
use aeropack_materials::Material;
use aeropack_units::{AccelPsd, Frequency, Length, Mass};
use aeropack_verify::{check, ensure, tuple3, tuple5, Gen};

const CASES: u64 = 24;

#[test]
fn plate_mass_is_exact_for_any_geometry() {
    let gen = tuple5(
        &Gen::f64_range(0.05, 0.4).zip(&Gen::f64_range(0.05, 0.4)),
        &Gen::f64_range(0.8, 4.0),
        &Gen::f64_range(0.0, 6.0),
        &Gen::usize_range(2, 5),
        &Gen::usize_range(2, 5),
    );
    check(
        0xfe11_0001,
        CASES,
        &gen,
        |&((lx, ly), t_mm, extra, nx, ny)| {
            let props =
                PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(t_mm))
                    .map_err(|e| e.to_string())?
                    .with_smeared_mass(extra);
            let mesh = PlateMesh::rectangular(lx, ly, nx, ny, &props).map_err(|e| e.to_string())?;
            let exact = props.areal_mass * lx * ly;
            let got = mesh.model.total_mass().value();
            ensure!((got - exact).abs() < 1e-9 * exact, "{got} vs {exact}");
            Ok(())
        },
    );
}

#[test]
fn modal_frequencies_positive_and_sorted() {
    let gen = tuple3(
        &Gen::f64_range(0.1, 0.35),
        &Gen::f64_range(0.1, 0.35),
        &Gen::f64_range(1.0, 3.0),
    );
    check(0xfe11_0002, 8, &gen, |&(lx, ly, t_mm)| {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(t_mm),
        )
        .map_err(|e| e.to_string())?;
        let mut mesh = PlateMesh::rectangular(lx, ly, 4, 4, &props).map_err(|e| e.to_string())?;
        mesh.simply_support_edges().map_err(|e| e.to_string())?;
        let modes = modal(&mesh.model, 3).map_err(|e| e.to_string())?;
        let f = modes.frequencies();
        ensure!(f[0].value() > 0.0, "fundamental must be positive");
        ensure!(
            f.windows(2).all(|w| w[0].value() <= w[1].value() + 1e-9),
            "frequencies must ascend"
        );
        // Mass capture of three modes stays within (0, 1].
        let capture = modes.mass_capture();
        ensure!(capture > 0.0 && capture <= 1.0 + 1e-9, "capture {capture}");
        // Every modal solve leaves a stats trail on the model.
        ensure!(mesh.model.last_solve_stats().is_some());
        Ok(())
    });
}

#[test]
fn thicker_plates_ring_higher() {
    let gen = Gen::f64_range(0.8, 2.0).zip(&Gen::f64_range(1.3, 2.5));
    check(0xfe11_0003, 8, &gen, |&(t1_mm, factor)| {
        let build = |t_mm: f64| {
            let props =
                PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(t_mm))
                    .unwrap();
            let mut mesh = PlateMesh::rectangular(0.2, 0.15, 4, 3, &props).unwrap();
            mesh.simply_support_edges().unwrap();
            modal(&mesh.model, 1).unwrap().fundamental().value()
        };
        // f ∝ t for a bare plate (D ∝ t³, m ∝ t).
        let f1 = build(t1_mm);
        let f2 = build(t1_mm * factor);
        let ratio = f2 / f1;
        ensure!(
            (ratio - factor).abs() / factor < 0.02,
            "ratio {ratio} vs {factor}"
        );
        Ok(())
    });
}

#[test]
fn added_mass_never_raises_a_frequency() {
    check(
        0xfe11_0004,
        8,
        &Gen::f64_range(10.0, 500.0),
        |&extra_grams| {
            let props =
                PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(1.6))
                    .map_err(|e| e.to_string())?;
            let build = |grams: f64| {
                let mut mesh = PlateMesh::rectangular(0.16, 0.1, 4, 3, &props).unwrap();
                mesh.simply_support_edges().unwrap();
                let c = mesh.center_node();
                mesh.model
                    .add_lumped_mass(c, Mass::from_grams(grams))
                    .unwrap();
                modal(&mesh.model, 1).unwrap().fundamental().value()
            };
            let f_light = build(1.0);
            let f_heavy = build(extra_grams);
            ensure!(
                f_heavy <= f_light + 1e-9,
                "{extra_grams} g raised {f_light} Hz to {f_heavy} Hz"
            );
            Ok(())
        },
    );
}

#[test]
fn static_solution_satisfies_equilibrium() {
    check(0xfe11_0005, 8, &Gen::f64_range(1.0, 100.0), |&load| {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .map_err(|e| e.to_string())?;
        let mut mesh = PlateMesh::rectangular(0.2, 0.2, 4, 4, &props).map_err(|e| e.to_string())?;
        mesh.simply_support_edges().map_err(|e| e.to_string())?;
        let c = mesh.center_node();
        let u = mesh
            .model
            .solve_static(&[(c, Dof::W, load)])
            .map_err(|e| e.to_string())?;
        // K·u reproduces the load at the loaded free DOF.
        let f = mesh.model.stiffness().matvec(&u);
        let idx = mesh.model.dof_index(c, Dof::W).map_err(|e| e.to_string())?;
        ensure!((f[idx] - load).abs() < 1e-6 * load, "f = {}", f[idx]);
        // Linearity: doubling the load doubles the response.
        let u2 = mesh
            .model
            .solve_static(&[(c, Dof::W, 2.0 * load)])
            .map_err(|e| e.to_string())?;
        ensure!((u2[idx] - 2.0 * u[idx]).abs() < 1e-9 * u[idx].abs().max(1e-30));
        // And the solve left its statistics behind.
        let stats = mesh.model.last_solve_stats().ok_or("no stats recorded")?;
        ensure!(stats.context == "static solve");
        Ok(())
    });
}

#[test]
fn psd_grms_scales_as_sqrt() {
    check(0xfe11_0006, CASES, &Gen::f64_range(0.1, 10.0), |&scale| {
        let curve = PsdCurve::new(vec![
            (Frequency::new(20.0), AccelPsd::new(0.005)),
            (Frequency::new(100.0), AccelPsd::new(0.02)),
            (Frequency::new(1000.0), AccelPsd::new(0.02)),
            (Frequency::new(2000.0), AccelPsd::new(0.005)),
        ])
        .map_err(|e| e.to_string())?;
        let scaled = curve.scaled(scale).map_err(|e| e.to_string())?;
        let expect = curve.grms() * scale.sqrt();
        ensure!(
            (scaled.grms() - expect).abs() < 1e-9 * expect,
            "grms({scale}×) = {}, expected {expect}",
            scaled.grms()
        );
        Ok(())
    });
}

#[test]
fn sdof_transmissibility_crosses_unity_at_sqrt2() {
    let gen = Gen::f64_range(20.0, 500.0).zip(&Gen::f64_range(0.01, 0.4));
    check(0xfe11_0007, CASES, &gen, |&(fn_hz, zeta)| {
        let osc = Sdof::from_frequency(Frequency::new(fn_hz), Mass::new(1.0), zeta)
            .map_err(|e| e.to_string())?;
        let t = osc.transmissibility(osc.crossover_frequency());
        ensure!((t - 1.0).abs() < 1e-9, "|T(√2 fn)| = {t}");
        // Amplification below crossover, attenuation above.
        ensure!(osc.transmissibility(Frequency::new(fn_hz)) > 1.0);
        ensure!(osc.transmissibility(Frequency::new(3.0 * fn_hz)) < 1.0);
        Ok(())
    });
}
