//! Random-vibration (PSD) base-excitation response by modal
//! superposition, plus the piecewise log-log PSD curve type used to
//! describe DO-160-style test spectra.

use std::time::Instant;

use aeropack_sweep::{ScenarioStats, Sweep, SweepStats};
use aeropack_units::{AccelPsd, Frequency, STANDARD_GRAVITY};

use crate::error::FemError;
use crate::harmonic::{HarmonicResponse, MODAL_SUM_GRAIN};
use crate::model::Dof;

/// A one-sided acceleration PSD specified by breakpoints interpolated
/// log-log, the way vibration test standards (DO-160, MIL-STD-810)
/// tabulate their curves.
///
/// # Examples
///
/// ```
/// use aeropack_fem::PsdCurve;
/// use aeropack_units::{AccelPsd, Frequency};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let curve = PsdCurve::new(vec![
///     (Frequency::new(10.0), AccelPsd::new(0.003)),
///     (Frequency::new(40.0), AccelPsd::new(0.01)),
///     (Frequency::new(500.0), AccelPsd::new(0.01)),
///     (Frequency::new(2000.0), AccelPsd::new(0.001)),
/// ])?;
/// let grms = curve.grms();
/// assert!(grms > 2.0 && grms < 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PsdCurve {
    points: Vec<(Frequency, AccelPsd)>,
}

impl PsdCurve {
    /// Builds a curve from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two points are given, frequencies
    /// are not strictly increasing and positive, or any level is not
    /// strictly positive.
    pub fn new(points: Vec<(Frequency, AccelPsd)>) -> Result<Self, FemError> {
        if points.len() < 2 {
            return Err(FemError::invalid(
                "a PSD curve needs at least two breakpoints",
            ));
        }
        for w in points.windows(2) {
            if w[1].0.value() <= w[0].0.value() {
                return Err(FemError::invalid(
                    "PSD breakpoints must be strictly increasing",
                ));
            }
        }
        if points
            .iter()
            .any(|p| p.0.value() <= 0.0 || p.1.value() <= 0.0)
        {
            return Err(FemError::invalid("PSD breakpoints must be positive"));
        }
        Ok(Self { points })
    }

    /// Lowest specified frequency.
    pub fn f_min(&self) -> Frequency {
        self.points[0].0
    }

    /// Highest specified frequency.
    pub fn f_max(&self) -> Frequency {
        self.points[self.points.len() - 1].0
    }

    /// Level at frequency `f` by log-log interpolation; zero outside the
    /// specified band.
    pub fn level(&self, f: Frequency) -> AccelPsd {
        let x = f.value();
        if x < self.f_min().value() || x > self.f_max().value() {
            return AccelPsd::ZERO;
        }
        let idx = match self.points.windows(2).position(|w| x <= w[1].0.value()) {
            Some(i) => i,
            None => return AccelPsd::ZERO,
        };
        let (f0, p0) = self.points[idx];
        let (f1, p1) = self.points[idx + 1];
        let t = (x.ln() - f0.value().ln()) / (f1.value().ln() - f0.value().ln());
        AccelPsd::new((p0.value().ln() + t * (p1.value().ln() - p0.value().ln())).exp())
    }

    /// Overall input level in g RMS: `√(∫ S(f) df)` with exact
    /// integration of the log-log segments.
    pub fn grms(&self) -> f64 {
        let mut integral = 0.0;
        for w in self.points.windows(2) {
            let (f0, p0) = (w[0].0.value(), w[0].1.value());
            let (f1, p1) = (w[1].0.value(), w[1].1.value());
            // S(f) = p0 (f/f0)^n on the segment.
            let n = (p1 / p0).ln() / (f1 / f0).ln();
            integral += if (n + 1.0).abs() < 1e-12 {
                p0 * f0 * (f1 / f0).ln()
            } else {
                p0 * f0 / (n + 1.0) * ((f1 / f0).powf(n + 1.0) - 1.0)
            };
        }
        integral.sqrt()
    }

    /// Scales the whole curve by a factor (test-level tailoring).
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive factor.
    pub fn scaled(&self, factor: f64) -> Result<Self, FemError> {
        if factor <= 0.0 {
            return Err(FemError::invalid("scale factor must be positive"));
        }
        Ok(Self {
            points: self.points.iter().map(|&(f, p)| (f, p * factor)).collect(),
        })
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(Frequency, AccelPsd)] {
        &self.points
    }
}

/// The random-vibration response at one location: RMS acceleration and
/// RMS relative displacement, the two inputs every fatigue rule
/// (Steinberg, Miles) needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomResponse {
    /// RMS absolute acceleration, in g.
    pub accel_grms: f64,
    /// RMS relative displacement, metres.
    pub disp_rms: f64,
    /// The positive-crossing (characteristic) frequency of the response,
    /// Hz — used as the cycle-counting rate in fatigue life estimates.
    pub characteristic_frequency: Frequency,
}

/// Computes the random-vibration response at `(node, dof)` for a base
/// PSD input, integrating `|H|²·S` over a log grid.
///
/// # Errors
///
/// Returns an error for invalid DOF addressing or an empty integration
/// band.
pub fn random_response(
    response: &HarmonicResponse,
    node: usize,
    dof: Dof,
    input: &PsdCurve,
) -> Result<RandomResponse, FemError> {
    random_response_with(&Sweep::from_env(), response, node, dof, input)
}

/// [`random_response`] on an explicit [`Sweep`] runner: the transfer
/// functions are evaluated at every grid point in parallel, then the
/// trapezoid integration runs serially in frequency order — so the
/// result is bitwise identical to the serial path at any thread count.
///
/// # Errors
///
/// Returns an error for invalid DOF addressing or an empty integration
/// band.
pub fn random_response_with(
    runner: &Sweep,
    response: &HarmonicResponse,
    node: usize,
    dof: Dof,
    input: &PsdCurve,
) -> Result<RandomResponse, FemError> {
    Ok(random_response_with_stats(runner, response, node, dof, input)?.0)
}

/// [`random_response_with`] that also returns the grid evaluation's
/// [`SweepStats`] with real per-point records: each point counts its
/// two modal transfer sums (`2 × modes` work units) and its measured
/// wall time.
///
/// # Errors
///
/// Returns an error for invalid DOF addressing or an empty integration
/// band.
pub fn random_response_with_stats(
    runner: &Sweep,
    response: &HarmonicResponse,
    node: usize,
    dof: Dof,
    input: &PsdCurve,
) -> Result<(RandomResponse, SweepStats), FemError> {
    let _span = aeropack_obs::span!("fem.random.response");
    let idx = response.dof_index(node, dof)?;
    let f_lo = input.f_min().value();
    let f_hi = input.f_max().value();
    if f_hi <= f_lo {
        return Err(FemError::invalid("PSD band is empty"));
    }
    // Log-spaced grid, refined enough to resolve 1% damping peaks.
    let n = 2000;
    let grid: Vec<usize> = (0..=n).collect();
    let modes = response.omegas().len();
    let runner = runner.grain_hint(MODAL_SUM_GRAIN);
    // Per-point response PSDs, embarrassingly parallel.
    let (samples, stats) = runner.map_stats(&grid, |&i| {
        let start = Instant::now();
        let f = (f_lo.ln() + (f_hi.ln() - f_lo.ln()) * i as f64 / n as f64).exp();
        let freq = Frequency::new(f);
        let s_in_g2 = input.level(freq).value(); // g²/Hz
        let h2a = response.acceleration_transfer_sq(idx, freq);
        let h2d = response.displacement_transfer_sq(idx, freq);
        // Displacement transfer is per (m/s²) of base accel: convert
        // input to (m/s²)²/Hz.
        let s_in_si = s_in_g2 * STANDARD_GRAVITY * STANDARD_GRAVITY;
        let mut s = ScenarioStats::trivial();
        s.iterations = 2 * modes;
        s.solve_time = start.elapsed();
        ((f, h2a * s_in_g2, h2d * s_in_si), s)
    });
    aeropack_obs::counter!("fem.random.points", grid.len());
    // Trapezoid integration, serially in frequency order.
    let mut accel_var = 0.0; // g²
    let mut disp_var = 0.0; // m²
    let mut disp_vel_var = 0.0; // weighted by f² for characteristic freq
    for w in samples.windows(2) {
        let (fp, sap, sdp) = w[0];
        let (f, sa, sd) = w[1];
        let df = f - fp;
        accel_var += 0.5 * (sa + sap) * df;
        let d_disp = 0.5 * (sd + sdp) * df;
        disp_var += d_disp;
        let fm = 0.5 * (f + fp);
        disp_vel_var += d_disp * fm * fm;
    }
    let characteristic_frequency = if disp_var > 0.0 {
        Frequency::new((disp_vel_var / disp_var).sqrt())
    } else {
        Frequency::ZERO
    };
    Ok((
        RandomResponse {
            accel_grms: accel_var.sqrt(),
            disp_rms: disp_var.sqrt(),
            characteristic_frequency,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::PlateProperties;
    use crate::modal::modal;
    use crate::model::PlateMesh;
    use aeropack_materials::Material;
    use aeropack_units::Length;

    fn flat_curve(level: f64, f0: f64, f1: f64) -> PsdCurve {
        PsdCurve::new(vec![
            (Frequency::new(f0), AccelPsd::new(level)),
            (Frequency::new(f1), AccelPsd::new(level)),
        ])
        .unwrap()
    }

    #[test]
    fn flat_psd_grms_is_analytic() {
        // Flat 0.04 g²/Hz from 20 to 2000 Hz → grms = √(0.04·1980) ≈ 8.9.
        let c = flat_curve(0.04, 20.0, 2000.0);
        assert!((c.grms() - (0.04f64 * 1980.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn sloped_segment_integates_exactly() {
        // One decade at -3 dB/octave: S = p0·(f/f0)^(-1);
        // ∫ = p0 f0 ln(f1/f0).
        let c = PsdCurve::new(vec![
            (Frequency::new(100.0), AccelPsd::new(0.1)),
            (Frequency::new(1000.0), AccelPsd::new(0.01)),
        ])
        .unwrap();
        let exact = (0.1f64 * 100.0 * (10.0f64).ln()).sqrt();
        assert!((c.grms() - exact).abs() < 1e-9);
    }

    #[test]
    fn interpolation_is_log_log() {
        let c = PsdCurve::new(vec![
            (Frequency::new(10.0), AccelPsd::new(0.01)),
            (Frequency::new(1000.0), AccelPsd::new(1.0)),
        ])
        .unwrap();
        // Geometric midpoint 100 Hz must give geometric mean 0.1.
        let mid = c.level(Frequency::new(100.0)).value();
        assert!((mid - 0.1).abs() < 1e-9);
        // Outside band → zero.
        assert_eq!(c.level(Frequency::new(5.0)), AccelPsd::ZERO);
    }

    #[test]
    fn miles_equation_agrees_with_integration() {
        // For a lightly damped SDOF-dominated response under a flat PSD,
        // the integrated grms must approach Miles:
        // grms = √(π/2 · fₙ · Q · S).
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .unwrap();
        let mut mesh = PlateMesh::rectangular(0.3, 0.3, 4, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let modes = modal(&mesh.model, 1).unwrap();
        let zeta = 0.03;
        let resp = HarmonicResponse::new(&mesh.model, &modes, zeta).unwrap();
        let f1 = modes.fundamental().value();
        let s = 0.01;
        let curve = flat_curve(s, f1 / 20.0, f1 * 20.0);
        let out = random_response(&resp, mesh.center_node(), Dof::W, &curve).unwrap();
        // Modal peak gain at the centre node: Γφ(center); Miles with that
        // participation: grms² ≈ (Γφ)²·(π/2)·f₁·Q·S.
        let gamma_phi =
            modes.participation(0).unwrap() * modes.shape(0).unwrap()[3 * mesh.center_node()];
        let q = 1.0 / (2.0 * zeta);
        let miles = (gamma_phi * gamma_phi * std::f64::consts::FRAC_PI_2 * f1 * q * s).sqrt();
        let rel = (out.accel_grms - miles).abs() / miles;
        assert!(
            rel < 0.12,
            "integrated {:.3} vs Miles {:.3} ({:.1}%)",
            out.accel_grms,
            miles,
            rel * 100.0
        );
    }

    #[test]
    fn characteristic_frequency_near_fundamental() {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .unwrap();
        let mut mesh = PlateMesh::rectangular(0.3, 0.3, 4, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let modes = modal(&mesh.model, 1).unwrap();
        let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).unwrap();
        let f1 = modes.fundamental().value();
        let curve = flat_curve(0.01, f1 / 10.0, f1 * 10.0);
        let out = random_response(&resp, mesh.center_node(), Dof::W, &curve).unwrap();
        let rel = (out.characteristic_frequency.value() - f1).abs() / f1;
        assert!(
            rel < 0.1,
            "ν₀ {:.1} vs f₁ {:.1}",
            out.characteristic_frequency.value(),
            f1
        );
    }

    #[test]
    fn bad_curves_are_rejected() {
        assert!(PsdCurve::new(vec![(Frequency::new(10.0), AccelPsd::new(0.1))]).is_err());
        assert!(PsdCurve::new(vec![
            (Frequency::new(100.0), AccelPsd::new(0.1)),
            (Frequency::new(10.0), AccelPsd::new(0.1)),
        ])
        .is_err());
        assert!(PsdCurve::new(vec![
            (Frequency::new(10.0), AccelPsd::new(0.0)),
            (Frequency::new(100.0), AccelPsd::new(0.1)),
        ])
        .is_err());
        let c = flat_curve(0.1, 10.0, 100.0);
        assert!(c.scaled(0.0).is_err());
        assert!((c.scaled(2.0).unwrap().grms() - c.grms() * 2f64.sqrt()).abs() < 1e-9);
    }
}
