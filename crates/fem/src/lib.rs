//! Structural finite-element solver for avionics packaging design.
//!
//! This crate reproduces the *mechanical* half of the paper's design
//! procedure (its ANSYS workflow): build a bending model of a board or
//! chassis panel, extract modes, and compute harmonic and random-
//! vibration responses against the qualification spectrum.
//!
//! The element library is deliberately scoped to what equipment
//! packaging needs:
//!
//! * [`acm_plate`] — the 12-DOF ACM rectangular Kirchhoff plate-bending
//!   element (boards, covers, chassis walls),
//! * [`bernoulli_beam`] — 2-node Euler–Bernoulli bending element
//!   (stiffeners, rails, the seat-structure rods of the COSEE study),
//! * grounded and coupling springs (wedge locks, mounts, isolators),
//! * lumped masses (connectors, transformers, the "power supply" of the
//!   Ariane navigation unit example).
//!
//! The numerical core — dense factorisations, the Jacobi eigensolver and
//! subspace iteration — lives in [`linalg`] and is written from scratch.
//!
//! # Example: placing a board's first mode
//!
//! The Ariane Navigation Unit story from the paper: design the power
//! supply board so its main resonant mode lands near the 500 Hz slot of
//! the frequency allocation plan.
//!
//! ```
//! use aeropack_fem::{modal, PlateMesh, PlateProperties};
//! use aeropack_materials::Material;
//! use aeropack_units::Length;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let props = PlateProperties::from_material(
//!     &Material::fr4(), Length::from_millimeters(2.4))?
//!     .with_smeared_mass(3.0); // components, kg/m²
//! let mut board = PlateMesh::rectangular(0.16, 0.10, 6, 4, &props)?;
//! board.clamp_edges()?;
//! let modes = modal(&board.model, 1)?;
//! assert!(modes.fundamental().value() > 300.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elements;
mod error;
mod harmonic;
pub mod linalg;
mod modal;
mod model;
mod random;
mod sdof;

pub use elements::{
    acm_plate, acm_plate_center_stress, bernoulli_beam, BeamProperties, PlateProperties,
};
pub use error::FemError;
pub use harmonic::{HarmonicResponse, MODAL_SUM_GRAIN};
pub use modal::{modal, ModalResult};
pub use model::{Dof, Model, PlateMesh};
pub use random::{
    random_response, random_response_with, random_response_with_stats, PsdCurve, RandomResponse,
};
pub use sdof::Sdof;

/// Deprecated backend-error alias. Solver failures never escape this
/// crate raw — every public API wraps them in [`FemError`] (and
/// wire-level consumers get stable error-code strings through the
/// unified `aeropack::Error`) — so code matching on this alias is
/// matching an error this crate does not return.
#[deprecated(
    since = "0.2.0",
    note = "fem APIs return FemError; use aeropack::Error for unified wire-level \
            error codes"
)]
pub type SolverError = aeropack_solver::SolverError;
