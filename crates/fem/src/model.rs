//! Structural model assembly: nodes, elements, constraints.

use std::sync::Mutex;

use aeropack_solver::{solve_dense, solve_sparse, CsrMatrix, Method, SolverConfig, SolverStats};
use aeropack_units::Mass;

use crate::elements::{
    acm_plate, acm_plate_center_stress, bernoulli_beam, BeamProperties, PlateProperties,
};
use crate::error::FemError;
use crate::linalg::DMatrix;

/// The three bending DOFs carried by every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dof {
    /// Out-of-plane deflection `w`.
    W,
    /// Slope `∂w/∂x`.
    Wx,
    /// Slope `∂w/∂y`.
    Wy,
}

impl Dof {
    fn offset(self) -> usize {
        match self {
            Dof::W => 0,
            Dof::Wx => 1,
            Dof::Wy => 2,
        }
    }
}

/// An assembled structural model: nodes in a plane, bending elements,
/// point springs/masses and single-point constraints.
///
/// # Examples
///
/// ```
/// use aeropack_fem::{Model, Dof, PlateProperties};
/// use aeropack_materials::Material;
/// use aeropack_units::Length;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // One plate element pinned at its four corners.
/// let mut model = Model::new(vec![(0.0, 0.0), (0.1, 0.0), (0.1, 0.1), (0.0, 0.1)]);
/// let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(1.6))?;
/// model.add_plate([0, 1, 2, 3], &props)?;
/// for n in 0..4 {
///     model.fix(n, Dof::W)?;
/// }
/// assert_eq!(model.free_dof_count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Model {
    nodes: Vec<(f64, f64)>,
    k: DMatrix,
    m: DMatrix,
    constrained: Vec<bool>,
    plates: Vec<PlateRecord>,
    solve_stats: Mutex<Option<SolverStats>>,
}

impl Clone for Model {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            k: self.k.clone(),
            m: self.m.clone(),
            constrained: self.constrained.clone(),
            plates: self.plates.clone(),
            solve_stats: Mutex::new(self.last_solve_stats()),
        }
    }
}

#[derive(Debug, Clone)]
struct PlateRecord {
    quad: [usize; 4],
    a: f64,
    b: f64,
    props: PlateProperties,
}

impl Model {
    /// Creates an empty model over the given node coordinates.
    pub fn new(nodes: Vec<(f64, f64)>) -> Self {
        let ndof = 3 * nodes.len();
        Self {
            nodes,
            k: DMatrix::zeros(ndof, ndof),
            m: DMatrix::zeros(ndof, ndof),
            constrained: vec![false; ndof],
            plates: Vec::new(),
            solve_stats: Mutex::new(None),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total DOF count (3 per node).
    pub fn dof_count(&self) -> usize {
        3 * self.nodes.len()
    }

    /// Coordinates of a node.
    ///
    /// # Errors
    ///
    /// Returns an error if the node index is out of range.
    pub fn node(&self, index: usize) -> Result<(f64, f64), FemError> {
        self.nodes
            .get(index)
            .copied()
            .ok_or(FemError::IndexOutOfRange {
                what: "node",
                index,
                len: self.nodes.len(),
            })
    }

    /// Global DOF index of `(node, dof)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the node index is out of range.
    pub fn dof_index(&self, node: usize, dof: Dof) -> Result<usize, FemError> {
        if node >= self.nodes.len() {
            return Err(FemError::IndexOutOfRange {
                what: "node",
                index: node,
                len: self.nodes.len(),
            });
        }
        Ok(3 * node + dof.offset())
    }

    fn check_node(&self, node: usize) -> Result<(), FemError> {
        if node >= self.nodes.len() {
            return Err(FemError::IndexOutOfRange {
                what: "node",
                index: node,
                len: self.nodes.len(),
            });
        }
        Ok(())
    }

    /// Adds an axis-aligned rectangular ACM plate element over four nodes
    /// given counter-clockwise from the lower-left corner.
    ///
    /// # Errors
    ///
    /// Returns an error if a node index is out of range or the four nodes
    /// do not form an axis-aligned rectangle.
    pub fn add_plate(&mut self, quad: [usize; 4], props: &PlateProperties) -> Result<(), FemError> {
        for &n in &quad {
            self.check_node(n)?;
        }
        let p: Vec<(f64, f64)> = quad.iter().map(|&n| self.nodes[n]).collect();
        let a = p[1].0 - p[0].0;
        let b = p[3].1 - p[0].1;
        let tol = 1e-9 * (a.abs() + b.abs());
        let is_rect = (p[1].1 - p[0].1).abs() < tol
            && (p[2].0 - p[1].0).abs() < tol
            && (p[2].1 - p[3].1).abs() < tol
            && (p[3].0 - p[0].0).abs() < tol;
        if !is_rect || a <= 0.0 || b <= 0.0 {
            return Err(FemError::invalid(
                "plate element nodes must form an axis-aligned CCW rectangle",
            ));
        }
        let (ke, me) = acm_plate(a, b, props)?;
        let dofs: Vec<usize> = quad
            .iter()
            .flat_map(|&n| [3 * n, 3 * n + 1, 3 * n + 2])
            .collect();
        self.scatter(&ke, &me, &dofs);
        self.plates.push(PlateRecord {
            quad,
            a,
            b,
            props: props.clone(),
        });
        Ok(())
    }

    /// Recovers the largest element-centre bending stress over all plate
    /// elements for a full-length displacement vector `u` (from
    /// [`Model::solve_static`]). Pa.
    ///
    /// # Errors
    ///
    /// Returns an error if the model has no plate elements or `u` has
    /// the wrong length.
    pub fn max_bending_stress(&self, u: &[f64]) -> Result<f64, FemError> {
        if self.plates.is_empty() {
            return Err(FemError::invalid("model has no plate elements"));
        }
        if u.len() != self.dof_count() {
            return Err(FemError::invalid("displacement vector length mismatch"));
        }
        let mut worst: f64 = 0.0;
        for rec in &self.plates {
            let mut u_e = [0.0f64; 12];
            for (li, &n) in rec.quad.iter().enumerate() {
                u_e[3 * li] = u[3 * n];
                u_e[3 * li + 1] = u[3 * n + 1];
                u_e[3 * li + 2] = u[3 * n + 2];
            }
            let s = acm_plate_center_stress(rec.a, rec.b, &rec.props, &u_e)?;
            worst = worst.max(s);
        }
        Ok(worst)
    }

    /// Adds a bending beam between two nodes lying on a line parallel to
    /// the x- or y-axis. The beam couples `(W, Wx)` when along x and
    /// `(W, Wy)` when along y.
    ///
    /// # Errors
    ///
    /// Returns an error if the nodes coincide or the segment is not
    /// axis-aligned.
    pub fn add_beam(
        &mut self,
        n1: usize,
        n2: usize,
        props: &BeamProperties,
    ) -> Result<(), FemError> {
        self.check_node(n1)?;
        self.check_node(n2)?;
        let (x1, y1) = self.nodes[n1];
        let (x2, y2) = self.nodes[n2];
        let dx = x2 - x1;
        let dy = y2 - y1;
        let l = (dx * dx + dy * dy).sqrt();
        if l <= 0.0 {
            return Err(FemError::invalid("beam nodes coincide"));
        }
        let tol = 1e-9 * l;
        let rot = if dy.abs() < tol {
            Dof::Wx
        } else if dx.abs() < tol {
            Dof::Wy
        } else {
            return Err(FemError::invalid("beam must be axis-aligned"));
        };
        let (ke, me) = bernoulli_beam(l, props)?;
        let dofs = [3 * n1, 3 * n1 + rot.offset(), 3 * n2, 3 * n2 + rot.offset()];
        self.scatter(&ke, &me, &dofs);
        Ok(())
    }

    /// Adds a grounded spring of stiffness `stiffness` (N/m for `W`,
    /// N·m/rad for slopes) at a DOF. Used for wedge locks, isolators and
    /// flexible mounts.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range node or non-positive
    /// stiffness.
    pub fn add_spring_to_ground(
        &mut self,
        node: usize,
        dof: Dof,
        stiffness: f64,
    ) -> Result<(), FemError> {
        if stiffness <= 0.0 {
            return Err(FemError::invalid("spring stiffness must be positive"));
        }
        let i = self.dof_index(node, dof)?;
        self.k[(i, i)] += stiffness;
        Ok(())
    }

    /// Adds a spring of stiffness `stiffness` coupling the same DOF kind
    /// on two nodes.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range nodes or non-positive stiffness.
    pub fn add_spring_between(
        &mut self,
        n1: usize,
        n2: usize,
        dof: Dof,
        stiffness: f64,
    ) -> Result<(), FemError> {
        if stiffness <= 0.0 {
            return Err(FemError::invalid("spring stiffness must be positive"));
        }
        let i = self.dof_index(n1, dof)?;
        let j = self.dof_index(n2, dof)?;
        self.k[(i, i)] += stiffness;
        self.k[(j, j)] += stiffness;
        self.k[(i, j)] -= stiffness;
        self.k[(j, i)] -= stiffness;
        Ok(())
    }

    /// Adds a lumped (non-rotary) mass on a node's `W` DOF — a connector,
    /// a transformer, the "power supply" of the Ariane example.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range node or negative mass.
    pub fn add_lumped_mass(&mut self, node: usize, mass: Mass) -> Result<(), FemError> {
        if mass.value() < 0.0 {
            return Err(FemError::invalid("lumped mass must be non-negative"));
        }
        let i = self.dof_index(node, Dof::W)?;
        self.m[(i, i)] += mass.value();
        Ok(())
    }

    /// Constrains a DOF to zero.
    ///
    /// # Errors
    ///
    /// Returns an error if the node index is out of range.
    pub fn fix(&mut self, node: usize, dof: Dof) -> Result<(), FemError> {
        let i = self.dof_index(node, dof)?;
        self.constrained[i] = true;
        Ok(())
    }

    /// Constrains all three DOFs of a node (clamped point).
    ///
    /// # Errors
    ///
    /// Returns an error if the node index is out of range.
    pub fn fix_all(&mut self, node: usize) -> Result<(), FemError> {
        for dof in [Dof::W, Dof::Wx, Dof::Wy] {
            self.fix(node, dof)?;
        }
        Ok(())
    }

    /// Number of unconstrained DOFs.
    pub fn free_dof_count(&self) -> usize {
        self.constrained.iter().filter(|&&c| !c).count()
    }

    /// Indices of unconstrained DOFs in global numbering.
    pub fn free_dofs(&self) -> Vec<usize> {
        (0..self.dof_count())
            .filter(|&i| !self.constrained[i])
            .collect()
    }

    /// Extracts the reduced (free-free) stiffness and mass matrices.
    pub fn reduced_system(&self) -> (DMatrix, DMatrix, Vec<usize>) {
        let free = self.free_dofs();
        let n = free.len();
        let mut k = DMatrix::zeros(n, n);
        let mut m = DMatrix::zeros(n, n);
        for (ri, &gi) in free.iter().enumerate() {
            for (rj, &gj) in free.iter().enumerate() {
                k[(ri, rj)] = self.k[(gi, gj)];
                m[(ri, rj)] = self.m[(gi, gj)];
            }
        }
        (k, m, free)
    }

    /// Solves the static problem `K·u = f` for point loads
    /// `(node, dof, force)`. Returns the full-length displacement vector
    /// (zeros at constrained DOFs).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range load locations or a singular
    /// (under-constrained) stiffness matrix.
    pub fn solve_static(&self, loads: &[(usize, Dof, f64)]) -> Result<Vec<f64>, FemError> {
        let (k_ff, _, free) = self.reduced_system();
        let mut f = vec![0.0; free.len()];
        for &(node, dof, force) in loads {
            let gi = self.dof_index(node, dof)?;
            if let Some(ri) = free.iter().position(|&g| g == gi) {
                f[ri] += force;
            }
        }
        let sol = solve_dense(
            k_ff.data(),
            free.len(),
            &f,
            &SolverConfig::new()
                .method(Method::Cholesky)
                .context("static solve"),
        )?;
        self.record_solve_stats(sol.stats);
        let mut u = vec![0.0; self.dof_count()];
        for (ri, &gi) in free.iter().enumerate() {
            u[gi] = sol.x[ri];
        }
        Ok(u)
    }

    /// Solves the static problem `K·u = f` through the shared sparse
    /// PCG backend instead of dense Cholesky. The reduced stiffness is
    /// compressed to CSR (explicitly symmetrised, so rounding noise in
    /// the dense assembly cannot break the SPD contract) and handed to
    /// [`solve_sparse`] with the caller's configuration — which is
    /// where the preconditioner choice, including
    /// [`Precond::Ic0`](aeropack_solver::Precond) with its automatic
    /// RCM reordering, plugs into the structural path. For the meshed
    /// plates of this crate the CSR operator holds ~30 entries per row
    /// versus `n` in dense storage, so large meshes solve in O(nnz)
    /// per iteration.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range load locations or a singular
    /// (under-constrained) stiffness matrix.
    pub fn solve_static_sparse(
        &self,
        loads: &[(usize, Dof, f64)],
        config: &SolverConfig,
    ) -> Result<Vec<f64>, FemError> {
        let (k_ff, _, free) = self.reduced_system();
        let n = free.len();
        let mut f = vec![0.0; n];
        for &(node, dof, force) in loads {
            let gi = self.dof_index(node, dof)?;
            if let Some(ri) = free.iter().position(|&g| g == gi) {
                f[ri] += force;
            }
        }
        let a = CsrMatrix::from_row_fn(n, config.get_threads(), |ri, row| {
            for rj in 0..n {
                let v = 0.5 * (k_ff[(ri, rj)] + k_ff[(rj, ri)]);
                if v != 0.0 {
                    row.push((rj, v));
                }
            }
        });
        let cfg = config.clone().context("sparse static solve");
        let sol = solve_sparse(&a, &f, &cfg)?;
        self.record_solve_stats(sol.stats);
        let mut u = vec![0.0; self.dof_count()];
        for (ri, &gi) in free.iter().enumerate() {
            u[gi] = sol.x[ri];
        }
        Ok(u)
    }

    /// Statistics recorded by the most recent solve on this model
    /// (static or modal), if any.
    pub fn last_solve_stats(&self) -> Option<SolverStats> {
        self.solve_stats.lock().expect("stats lock").clone()
    }

    pub(crate) fn record_solve_stats(&self, stats: SolverStats) {
        *self.solve_stats.lock().expect("stats lock") = Some(stats);
    }

    /// Total translational mass seen by a uniform `w` motion:
    /// `rᵀ·M·r` with `r` = 1 on every `W` DOF.
    pub fn total_mass(&self) -> Mass {
        let r = self.influence_vector();
        let mr = self.m.matvec(&r);
        Mass::new(r.iter().zip(&mr).map(|(a, b)| a * b).sum())
    }

    /// The rigid-body influence vector for uniform base motion in `w`
    /// (1 on every translational DOF, 0 on slopes).
    pub fn influence_vector(&self) -> Vec<f64> {
        let mut r = vec![0.0; self.dof_count()];
        for node in 0..self.nodes.len() {
            r[3 * node] = 1.0;
        }
        r
    }

    /// Read access to the assembled global stiffness matrix.
    pub fn stiffness(&self) -> &DMatrix {
        &self.k
    }

    /// Read access to the assembled global mass matrix.
    pub fn mass(&self) -> &DMatrix {
        &self.m
    }

    fn scatter(&mut self, ke: &DMatrix, me: &DMatrix, dofs: &[usize]) {
        for (li, &gi) in dofs.iter().enumerate() {
            for (lj, &gj) in dofs.iter().enumerate() {
                self.k[(gi, gj)] += ke[(li, lj)];
                self.m[(gi, gj)] += me[(li, lj)];
            }
        }
    }
}

/// A rectangular plate meshed into `nx × ny` ACM elements, with helpers
/// for the support conditions that occur in equipment design.
#[derive(Debug, Clone)]
pub struct PlateMesh {
    /// The underlying model.
    pub model: Model,
    nx: usize,
    ny: usize,
}

impl PlateMesh {
    /// Meshes a `lx × ly` plate into `nx × ny` elements of the given
    /// properties.
    ///
    /// # Errors
    ///
    /// Returns an error for degenerate dimensions or zero subdivisions.
    pub fn rectangular(
        lx: f64,
        ly: f64,
        nx: usize,
        ny: usize,
        props: &PlateProperties,
    ) -> Result<Self, FemError> {
        if lx <= 0.0 || ly <= 0.0 {
            return Err(FemError::invalid("plate dimensions must be positive"));
        }
        if nx == 0 || ny == 0 {
            return Err(FemError::invalid(
                "mesh must have at least one element per side",
            ));
        }
        let mut nodes = Vec::with_capacity((nx + 1) * (ny + 1));
        for j in 0..=ny {
            for i in 0..=nx {
                nodes.push((lx * i as f64 / nx as f64, ly * j as f64 / ny as f64));
            }
        }
        let mut model = Model::new(nodes);
        for j in 0..ny {
            for i in 0..nx {
                let n0 = j * (nx + 1) + i;
                let n1 = n0 + 1;
                let n2 = n1 + (nx + 1);
                let n3 = n0 + (nx + 1);
                model.add_plate([n0, n1, n2, n3], props)?;
            }
        }
        Ok(Self { model, nx, ny })
    }

    /// Grid index of the node at column `i`, row `j`.
    ///
    /// # Errors
    ///
    /// Returns an error when `(i, j)` exceeds the grid.
    pub fn node_at(&self, i: usize, j: usize) -> Result<usize, FemError> {
        if i > self.nx || j > self.ny {
            return Err(FemError::IndexOutOfRange {
                what: "grid node",
                index: i.max(j),
                len: self.nx.max(self.ny) + 1,
            });
        }
        Ok(j * (self.nx + 1) + i)
    }

    /// Node nearest the plate centre.
    pub fn center_node(&self) -> usize {
        (self.ny / 2) * (self.nx + 1) + self.nx / 2
    }

    /// Simply supports all four edges (hard condition: `w` and the
    /// tangential slope fixed).
    ///
    /// # Errors
    ///
    /// Propagates node-index errors (cannot occur for a well-formed mesh).
    pub fn simply_support_edges(&mut self) -> Result<(), FemError> {
        for i in 0..=self.nx {
            for j in [0, self.ny] {
                let n = self.node_at(i, j)?;
                self.model.fix(n, Dof::W)?;
                self.model.fix(n, Dof::Wx)?; // tangential slope along x-edges
            }
        }
        for j in 0..=self.ny {
            for i in [0, self.nx] {
                let n = self.node_at(i, j)?;
                self.model.fix(n, Dof::W)?;
                self.model.fix(n, Dof::Wy)?; // tangential slope along y-edges
            }
        }
        Ok(())
    }

    /// Clamps all four edges (all three DOFs fixed).
    ///
    /// # Errors
    ///
    /// Propagates node-index errors (cannot occur for a well-formed mesh).
    pub fn clamp_edges(&mut self) -> Result<(), FemError> {
        for i in 0..=self.nx {
            for j in [0, self.ny] {
                let n = self.node_at(i, j)?;
                self.model.fix_all(n)?;
            }
        }
        for j in 0..=self.ny {
            for i in [0, self.nx] {
                let n = self.node_at(i, j)?;
                self.model.fix_all(n)?;
            }
        }
        Ok(())
    }

    /// Pins `w` (deflection only) along the two edges parallel to y —
    /// the wedge-lock ("card-guide") condition of a conduction-cooled
    /// avionics board.
    ///
    /// # Errors
    ///
    /// Propagates node-index errors (cannot occur for a well-formed mesh).
    pub fn pin_card_guides(&mut self) -> Result<(), FemError> {
        for j in 0..=self.ny {
            for i in [0, self.nx] {
                let n = self.node_at(i, j)?;
                self.model.fix(n, Dof::W)?;
            }
        }
        Ok(())
    }

    /// Pins `w` (deflection only) along all four edges — card guides
    /// plus front retainer and rear connector support, the usual
    /// fully-retained avionics board mounting.
    ///
    /// # Errors
    ///
    /// Propagates node-index errors (cannot occur for a well-formed mesh).
    pub fn pin_all_edges(&mut self) -> Result<(), FemError> {
        self.pin_card_guides()?;
        for i in 0..=self.nx {
            for j in [0, self.ny] {
                let n = self.node_at(i, j)?;
                self.model.fix(n, Dof::W)?;
            }
        }
        Ok(())
    }

    /// Elements along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Elements along y.
    pub fn ny(&self) -> usize {
        self.ny
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeropack_materials::Material;
    use aeropack_units::Length;

    fn fr4_props() -> PlateProperties {
        PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(1.6)).unwrap()
    }

    #[test]
    fn mesh_counts() {
        let mesh = PlateMesh::rectangular(0.2, 0.15, 4, 3, &fr4_props()).unwrap();
        assert_eq!(mesh.model.node_count(), 20);
        assert_eq!(mesh.model.dof_count(), 60);
    }

    #[test]
    fn global_matrices_are_symmetric() {
        let mesh = PlateMesh::rectangular(0.2, 0.15, 3, 3, &fr4_props()).unwrap();
        assert!(mesh.model.stiffness().asymmetry() < 1e-6 * mesh.model.stiffness().max_abs());
        assert!(mesh.model.mass().asymmetry() < 1e-9 * mesh.model.mass().max_abs());
    }

    #[test]
    fn total_mass_matches_plate_mass() {
        let props = fr4_props();
        let mesh = PlateMesh::rectangular(0.2, 0.15, 4, 4, &props).unwrap();
        let exact = props.areal_mass * 0.2 * 0.15;
        assert!((mesh.model.total_mass().value() - exact).abs() < 1e-9 * exact);
    }

    #[test]
    fn lumped_mass_adds_to_total() {
        let mut mesh = PlateMesh::rectangular(0.1, 0.1, 2, 2, &fr4_props()).unwrap();
        let before = mesh.model.total_mass().value();
        let node = mesh.center_node();
        mesh.model
            .add_lumped_mass(node, Mass::from_grams(250.0))
            .unwrap();
        let after = mesh.model.total_mass().value();
        assert!((after - before - 0.25).abs() < 1e-12);
    }

    #[test]
    fn static_center_deflection_of_ss_plate() {
        // Navier series: w_max = α P a² / D with α = 0.01160 for a square
        // simply-supported plate under a central point load.
        let props = fr4_props();
        let a = 0.2;
        let mut mesh = PlateMesh::rectangular(a, a, 8, 8, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let center = mesh.center_node();
        let p = 10.0;
        let u = mesh.model.solve_static(&[(center, Dof::W, p)]).unwrap();
        let w_center = u[3 * center];
        let exact = 0.0116 * p * a * a / props.flexural_rigidity();
        let rel = (w_center - exact).abs() / exact;
        assert!(rel < 0.03, "central deflection off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn sparse_static_solve_matches_dense_for_every_preconditioner() {
        use aeropack_solver::Precond;
        let props = fr4_props();
        let mut mesh = PlateMesh::rectangular(0.2, 0.15, 6, 5, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let center = mesh.center_node();
        let loads = [(center, Dof::W, 12.0)];
        let dense = mesh.model.solve_static(&loads).unwrap();
        let scale = dense.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for precond in [
            Precond::Jacobi,
            Precond::Ssor,
            Precond::Ic0,
            Precond::Chebyshev(4),
            // No grid shape on the FEM path: Multigrid falls back to
            // the algebraic Chebyshev preconditioner.
            Precond::Multigrid,
        ] {
            let cfg = SolverConfig::new().preconditioner(precond).tolerance(1e-12);
            let sparse = mesh.model.solve_static_sparse(&loads, &cfg).unwrap();
            for (d, s) in dense.iter().zip(&sparse) {
                assert!(
                    (d - s).abs() <= 1e-8 * scale,
                    "{precond:?}: {d} vs {s} (scale {scale:.3e})"
                );
            }
            let stats = mesh.model.last_solve_stats().unwrap();
            assert!(stats.converged());
            if precond == Precond::Ic0 {
                let factor = stats.factorization.expect("IC(0) records factor stats");
                assert!(factor.reordered, "Auto reorder engages RCM on the FEM path");
            }
            if precond == Precond::Multigrid {
                assert!(
                    matches!(stats.preconditioner, Precond::Chebyshev(_)),
                    "unstructured multigrid request falls back to Chebyshev"
                );
                assert!(stats.spectral.is_some());
            }
        }
    }

    #[test]
    fn invalid_constructions_are_rejected() {
        let props = fr4_props();
        assert!(PlateMesh::rectangular(0.0, 0.1, 2, 2, &props).is_err());
        assert!(PlateMesh::rectangular(0.1, 0.1, 0, 2, &props).is_err());
        let mut model = Model::new(vec![(0.0, 0.0), (1.0, 1.0)]);
        // Non-axis-aligned beam.
        let bp = crate::elements::BeamProperties {
            youngs_modulus: 1.0,
            second_moment: 1.0,
            linear_mass: 1.0,
        };
        assert!(model.add_beam(0, 1, &bp).is_err());
        assert!(model.add_spring_to_ground(0, Dof::W, -1.0).is_err());
        assert!(model.add_spring_to_ground(9, Dof::W, 1.0).is_err());
    }

    #[test]
    fn under_constrained_static_solve_fails() {
        let mesh = PlateMesh::rectangular(0.1, 0.1, 2, 2, &fr4_props()).unwrap();
        // No supports at all: K is singular.
        let center = mesh.center_node();
        assert!(mesh.model.solve_static(&[(center, Dof::W, 1.0)]).is_err());
    }

    #[test]
    fn uniform_load_stress_matches_roark() {
        // Roark: simply-supported square plate, uniform pressure q:
        // σ_max = 0.2874·q·a²/t² at the centre (ν = 0.3).
        let t_mm = 2.0;
        let props = PlateProperties {
            youngs_modulus: 70e9,
            poisson_ratio: 0.3,
            thickness: t_mm * 1e-3,
            areal_mass: 5.4,
        };
        let a = 0.2;
        let n = 8;
        let mut mesh = PlateMesh::rectangular(a, a, n, n, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        // Uniform pressure as tributary-area nodal forces.
        let q = 5000.0; // Pa
        let cell = (a / n as f64) * (a / n as f64);
        let mut loads = Vec::new();
        for j in 0..=n {
            for i in 0..=n {
                let wx = if i == 0 || i == n { 0.5 } else { 1.0 };
                let wy = if j == 0 || j == n { 0.5 } else { 1.0 };
                let node = mesh.node_at(i, j).unwrap();
                loads.push((node, Dof::W, q * cell * wx * wy));
            }
        }
        let u = mesh.model.solve_static(&loads).unwrap();
        let sigma = mesh.model.max_bending_stress(&u).unwrap();
        let exact = 0.2874 * q * a * a / (t_mm * 1e-3).powi(2);
        let rel = (sigma - exact).abs() / exact;
        assert!(
            rel < 0.10,
            "σ_max {sigma:.3e} vs Roark {exact:.3e} ({:.1}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn stress_recovery_requires_plates() {
        let model = Model::new(vec![(0.0, 0.0), (1.0, 0.0)]);
        assert!(model.max_bending_stress(&[0.0; 6]).is_err());
    }

    #[test]
    fn spring_between_nodes_is_balanced() {
        let mut model = Model::new(vec![(0.0, 0.0), (1.0, 0.0)]);
        model.add_spring_between(0, 1, Dof::W, 1000.0).unwrap();
        let k = model.stiffness();
        assert_eq!(k[(0, 0)], 1000.0);
        assert_eq!(k[(3, 3)], 1000.0);
        assert_eq!(k[(0, 3)], -1000.0);
        // Row sums vanish: no net force under rigid translation.
        assert!((k[(0, 0)] + k[(0, 3)]).abs() < 1e-12);
    }
}
