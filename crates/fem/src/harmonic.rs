//! Modal-superposition harmonic (frequency-domain) response to base
//! excitation.
//!
//! This is the analysis behind the paper's Fig 3: the PCB response
//! compared against the rack input over the qualification spectrum.

use std::time::Instant;

use aeropack_sweep::{ScenarioStats, Sweep, SweepStats};
use aeropack_units::Frequency;

use crate::error::FemError;
use crate::modal::ModalResult;
use crate::model::{Dof, Model};

/// Grain hint for the closed-form modal transfer sum: a frequency point
/// costs on the order of 100 ns, so spawning sweep workers only pays
/// off on grids of many thousands of points. Applied through
/// [`Sweep::grain_hint`], so an explicit caller grain (e.g. the
/// determinism tests' `with_grain(1)`) still wins.
pub const MODAL_SUM_GRAIN: usize = 8192;

/// A complex number, minimal implementation for the frequency response.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Complex {
    re: f64,
    im: f64,
}

impl Complex {
    const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }

    fn div_by(self, o: Self) -> Self {
        let d = o.re * o.re + o.im * o.im;
        Self::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }

    fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// A base-excitation harmonic response analysis built on an extracted
/// mode set with uniform modal damping.
///
/// # Examples
///
/// ```
/// use aeropack_fem::{PlateMesh, PlateProperties, modal, HarmonicResponse, Dof};
/// use aeropack_materials::Material;
/// use aeropack_units::{Frequency, Length};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let props = PlateProperties::from_material(
///     &Material::aluminum_6061(), Length::from_millimeters(2.0))?;
/// let mut mesh = PlateMesh::rectangular(0.3, 0.3, 4, 4, &props)?;
/// mesh.simply_support_edges()?;
/// let modes = modal(&mesh.model, 3)?;
/// let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03)?;
/// let t = resp.transmissibility(mesh.center_node(), Dof::W, modes.fundamental())?;
/// assert!(t > 5.0); // resonant amplification at the fundamental
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HarmonicResponse {
    /// Natural angular frequencies ωᵢ.
    omegas: Vec<f64>,
    /// Modal damping ratios ζᵢ.
    zetas: Vec<f64>,
    /// Γᵢ·φᵢ(dof) pre-multiplied per mode, full DOF length.
    weighted_shapes: Vec<Vec<f64>>,
    ndof: usize,
}

impl HarmonicResponse {
    /// Prepares a response analysis with the same damping ratio for all
    /// modes (3–5 % is typical for bolted avionics assemblies).
    ///
    /// # Errors
    ///
    /// Returns an error if the damping ratio is outside `(0, 1)`.
    pub fn new(model: &Model, modes: &ModalResult, damping: f64) -> Result<Self, FemError> {
        if !(0.0..1.0).contains(&damping) || damping == 0.0 {
            return Err(FemError::invalid("damping ratio must lie in (0, 1)"));
        }
        let m = modes.mode_count();
        let mut omegas = Vec::with_capacity(m);
        let mut weighted_shapes = Vec::with_capacity(m);
        for i in 0..m {
            omegas.push(modes.frequencies()[i].angular());
            let gamma = modes.participation(i)?;
            let shape = modes.shape(i)?;
            weighted_shapes.push(shape.iter().map(|&s| gamma * s).collect());
        }
        Ok(Self {
            omegas,
            zetas: vec![damping; m],
            weighted_shapes,
            ndof: model.dof_count(),
        })
    }

    /// Overrides the damping ratio of one mode (e.g. a damped isolator
    /// mode among lightly damped plate modes).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range mode or damping outside
    /// `(0, 1)`.
    pub fn set_mode_damping(&mut self, mode: usize, damping: f64) -> Result<(), FemError> {
        if !(0.0..1.0).contains(&damping) || damping == 0.0 {
            return Err(FemError::invalid("damping ratio must lie in (0, 1)"));
        }
        let z = self.zetas.get_mut(mode).ok_or(FemError::IndexOutOfRange {
            what: "mode",
            index: mode,
            len: self.omegas.len(),
        })?;
        *z = damping;
        Ok(())
    }

    /// Complex acceleration transmissibility H(f) at a DOF for uniform
    /// base acceleration: `a_abs(dof) = H(f) · a_base`.
    fn transfer(&self, dof_index: usize, f: Frequency) -> Complex {
        let omega = f.angular();
        let mut h = Complex::ONE;
        for i in 0..self.omegas.len() {
            let wi = self.omegas[i];
            let zi = self.zetas[i];
            let num = Complex::new(omega * omega, 0.0).scale(self.weighted_shapes[i][dof_index]);
            let den = Complex::new(wi * wi - omega * omega, 2.0 * zi * wi * omega);
            h = h.add(num.div_by(den));
        }
        h
    }

    /// Magnitude of the acceleration transmissibility at `(node, dof)`
    /// and frequency `f` (≥ 1 at resonance peaks, → 1 well below the
    /// first mode).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range DOF index.
    pub fn transmissibility(&self, node: usize, dof: Dof, f: Frequency) -> Result<f64, FemError> {
        let idx = self.dof_index(node, dof)?;
        Ok(self.transfer(idx, f).abs())
    }

    /// Sweeps the transmissibility over a log-spaced frequency grid,
    /// returning `(frequency, |H|)` pairs.
    ///
    /// Frequency points are evaluated through the shared sweep engine
    /// with the `AEROPACK_THREADS` worker count; results are identical
    /// at any thread count ([`Sweep`] preserves ordering and each point
    /// is a pure function of its frequency).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid DOF or empty/degenerate range.
    pub fn sweep(
        &self,
        node: usize,
        dof: Dof,
        f_min: Frequency,
        f_max: Frequency,
        points: usize,
    ) -> Result<Vec<(Frequency, f64)>, FemError> {
        self.sweep_with(&Sweep::from_env(), node, dof, f_min, f_max, points)
    }

    /// [`HarmonicResponse::sweep`] on an explicit [`Sweep`] runner —
    /// the entry point experiment binaries use to pin or vary the
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid DOF or empty/degenerate range.
    pub fn sweep_with(
        &self,
        runner: &Sweep,
        node: usize,
        dof: Dof,
        f_min: Frequency,
        f_max: Frequency,
        points: usize,
    ) -> Result<Vec<(Frequency, f64)>, FemError> {
        Ok(self
            .sweep_with_stats(runner, node, dof, f_min, f_max, points)?
            .0)
    }

    /// [`HarmonicResponse::sweep_with`] that also returns the sweep's
    /// [`SweepStats`] roll-up with *real* per-point records: iterations
    /// count the modal-sum terms evaluated (the closed-form analogue of
    /// solver iterations) and solve time is each point's measured wall
    /// time. Earlier benchmark tables fabricated these from
    /// [`ScenarioStats::trivial`] and reported all-zero totals.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid DOF or empty/degenerate range.
    pub fn sweep_with_stats(
        &self,
        runner: &Sweep,
        node: usize,
        dof: Dof,
        f_min: Frequency,
        f_max: Frequency,
        points: usize,
    ) -> Result<(Vec<(Frequency, f64)>, SweepStats), FemError> {
        if points < 2 || f_min.value() <= 0.0 || f_max.value() <= f_min.value() {
            return Err(FemError::invalid(
                "sweep needs f_max > f_min > 0 and ≥ 2 points",
            ));
        }
        let _span = aeropack_obs::span!("fem.harmonic.sweep", points = points);
        let idx = self.dof_index(node, dof)?;
        let log_min = f_min.value().ln();
        let log_max = f_max.value().ln();
        let grid: Vec<usize> = (0..points).collect();
        let modes = self.omegas.len();
        let runner = runner.grain_hint(MODAL_SUM_GRAIN);
        let (out, stats) = runner.map_stats(&grid, |&i| {
            let start = Instant::now();
            let f = Frequency::new(
                (log_min + (log_max - log_min) * i as f64 / (points - 1) as f64).exp(),
            );
            let value = (f, self.transfer(idx, f).abs());
            let mut s = ScenarioStats::trivial();
            s.iterations = modes;
            s.solve_time = start.elapsed();
            (value, s)
        });
        aeropack_obs::counter!("fem.harmonic.points", points);
        Ok((out, stats))
    }

    /// Squared relative-displacement transfer `|H_d(f)|²` in (m per
    /// m/s² of base acceleration)², needed by the random-vibration
    /// displacement response.
    pub(crate) fn displacement_transfer_sq(&self, dof_index: usize, f: Frequency) -> f64 {
        let omega = f.angular();
        let mut h = Complex::new(0.0, 0.0);
        for i in 0..self.omegas.len() {
            let wi = self.omegas[i];
            let zi = self.zetas[i];
            let num = Complex::new(-self.weighted_shapes[i][dof_index], 0.0);
            let den = Complex::new(wi * wi - omega * omega, 2.0 * zi * wi * omega);
            h = h.add(num.div_by(den));
        }
        let m = h.abs();
        m * m
    }

    /// Squared acceleration transfer `|H(f)|²`.
    pub(crate) fn acceleration_transfer_sq(&self, dof_index: usize, f: Frequency) -> f64 {
        let m = self.transfer(dof_index, f).abs();
        m * m
    }

    pub(crate) fn dof_index(&self, node: usize, dof: Dof) -> Result<usize, FemError> {
        let idx = 3 * node
            + match dof {
                Dof::W => 0,
                Dof::Wx => 1,
                Dof::Wy => 2,
            };
        if idx >= self.ndof {
            return Err(FemError::IndexOutOfRange {
                what: "dof",
                index: idx,
                len: self.ndof,
            });
        }
        Ok(idx)
    }

    /// The modal angular frequencies in use.
    pub fn omegas(&self) -> &[f64] {
        &self.omegas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::PlateProperties;
    use crate::modal::modal;
    use crate::model::PlateMesh;
    use aeropack_materials::Material;
    use aeropack_units::Length;

    fn setup() -> (PlateMesh, ModalResult) {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .unwrap();
        let mut mesh = PlateMesh::rectangular(0.3, 0.3, 4, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let modes = modal(&mesh.model, 3).unwrap();
        (mesh, modes)
    }

    #[test]
    fn low_frequency_transmissibility_is_unity() {
        let (mesh, modes) = setup();
        let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).unwrap();
        let t = resp
            .transmissibility(mesh.center_node(), Dof::W, Frequency::new(1.0))
            .unwrap();
        assert!((t - 1.0).abs() < 0.01, "static transmissibility {t}");
    }

    #[test]
    fn resonance_peak_magnitude_tracks_damping() {
        let (mesh, modes) = setup();
        let f1 = modes.fundamental();
        let node = mesh.center_node();
        let t_light = HarmonicResponse::new(&mesh.model, &modes, 0.02)
            .unwrap()
            .transmissibility(node, Dof::W, f1)
            .unwrap();
        let t_heavy = HarmonicResponse::new(&mesh.model, &modes, 0.10)
            .unwrap()
            .transmissibility(node, Dof::W, f1)
            .unwrap();
        assert!(t_light > 3.0 * t_heavy / 1.2, "damping must cut the peak");
        // SDOF estimate: peak ≈ Γφ(center)·Q = (16/π²)·25 ≈ 40.5 for the
        // (1,1) mode of a simply-supported plate.
        let expect = 16.0 / std::f64::consts::PI.powi(2) * 25.0;
        assert!(
            (t_light - expect).abs() / expect < 0.05,
            "peak {t_light} vs Γφ·Q = {expect}"
        );
    }

    #[test]
    fn sweep_brackets_the_resonance() {
        let (mesh, modes) = setup();
        let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).unwrap();
        let sweep = resp
            .sweep(
                mesh.center_node(),
                Dof::W,
                Frequency::new(10.0),
                Frequency::new(2000.0),
                200,
            )
            .unwrap();
        let (peak_f, peak_t) = sweep
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let f1 = modes.fundamental().value();
        assert!(
            (peak_f.value() - f1).abs() / f1 < 0.05,
            "peak at {peak_f} vs fundamental {f1}"
        );
        assert!(peak_t > 5.0);
    }

    #[test]
    fn invalid_damping_is_rejected() {
        let (mesh, modes) = setup();
        assert!(HarmonicResponse::new(&mesh.model, &modes, 0.0).is_err());
        assert!(HarmonicResponse::new(&mesh.model, &modes, 1.5).is_err());
    }

    #[test]
    fn node_at_support_has_unit_transmissibility() {
        // A constrained DOF moves with the base: its relative motion is 0,
        // so its absolute transmissibility is exactly 1.
        let (mesh, modes) = setup();
        let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).unwrap();
        let corner = mesh.node_at(0, 0).unwrap();
        let t = resp
            .transmissibility(corner, Dof::W, modes.fundamental())
            .unwrap();
        assert!((t - 1.0).abs() < 1e-9);
    }
}
