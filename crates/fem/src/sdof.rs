//! Single-degree-of-freedom utilities: isolator design, Miles' equation.
//!
//! These back the paper's second mechanical example (Fig 3): the
//! "mechanical filtering function and dampers of an inertial measurement
//! unit" — an isolated mass whose mount is tuned to attenuate the
//! carrier spectrum above the crossover frequency.

use aeropack_units::{AccelPsd, Frequency, Mass};

use crate::error::FemError;

/// A base-excited single-degree-of-freedom oscillator (isolated
/// equipment on a flexible mount).
///
/// # Examples
///
/// ```
/// use aeropack_fem::Sdof;
/// use aeropack_units::{Frequency, Mass};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 4 kg IMU isolated at 45 Hz with 10 % damping attenuates a
/// // 500 Hz disturbance by more than a factor of 50.
/// let imu = Sdof::from_frequency(Frequency::new(45.0), Mass::new(4.0), 0.10)?;
/// assert!(imu.transmissibility(Frequency::new(500.0)) < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sdof {
    natural_frequency: Frequency,
    mass: Mass,
    damping: f64,
}

impl Sdof {
    /// Builds an oscillator directly from its natural frequency.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive frequency/mass or damping
    /// outside `(0, 1)`.
    pub fn from_frequency(
        natural_frequency: Frequency,
        mass: Mass,
        damping: f64,
    ) -> Result<Self, FemError> {
        if natural_frequency.value() <= 0.0 {
            return Err(FemError::invalid("natural frequency must be positive"));
        }
        if mass.value() <= 0.0 {
            return Err(FemError::invalid("mass must be positive"));
        }
        if !(0.0..1.0).contains(&damping) || damping == 0.0 {
            return Err(FemError::invalid("damping ratio must lie in (0, 1)"));
        }
        Ok(Self {
            natural_frequency,
            mass,
            damping,
        })
    }

    /// Builds an oscillator from a mount stiffness in N/m.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sdof::from_frequency`].
    pub fn from_stiffness(stiffness: f64, mass: Mass, damping: f64) -> Result<Self, FemError> {
        if stiffness <= 0.0 {
            return Err(FemError::invalid("stiffness must be positive"));
        }
        if mass.value() <= 0.0 {
            return Err(FemError::invalid("mass must be positive"));
        }
        let omega = (stiffness / mass.value()).sqrt();
        Self::from_frequency(Frequency::from_angular(omega), mass, damping)
    }

    /// The natural frequency.
    pub fn natural_frequency(&self) -> Frequency {
        self.natural_frequency
    }

    /// The suspended mass.
    pub fn mass(&self) -> Mass {
        self.mass
    }

    /// The damping ratio ζ.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Mount stiffness implied by the tuning, N/m.
    pub fn stiffness(&self) -> f64 {
        let omega = self.natural_frequency.angular();
        self.mass.value() * omega * omega
    }

    /// Resonant quality factor Q = 1/(2ζ).
    pub fn quality_factor(&self) -> f64 {
        1.0 / (2.0 * self.damping)
    }

    /// Absolute acceleration transmissibility of base motion at `f`
    /// (includes damping stiffening at high frequency):
    /// `|T| = √((1+(2ζr)²) / ((1−r²)²+(2ζr)²))`.
    pub fn transmissibility(&self, f: Frequency) -> f64 {
        let r = f.value() / self.natural_frequency.value();
        let z2r = 2.0 * self.damping * r;
        ((1.0 + z2r * z2r) / ((1.0 - r * r).powi(2) + z2r * z2r)).sqrt()
    }

    /// The crossover frequency √2·fₙ above which the isolator attenuates.
    pub fn crossover_frequency(&self) -> Frequency {
        Frequency::new(self.natural_frequency.value() * std::f64::consts::SQRT_2)
    }

    /// Miles' equation: RMS response of the oscillator to a flat base
    /// PSD of level `input_at_fn` (value at the natural frequency), in g:
    /// `g_rms = √(π/2 · fₙ · Q · S)`.
    pub fn miles_grms(&self, input_at_fn: AccelPsd) -> f64 {
        (std::f64::consts::FRAC_PI_2
            * self.natural_frequency.value()
            * self.quality_factor()
            * input_at_fn.value())
        .sqrt()
    }

    /// Designs the mount stiffness that attenuates `disturbance` by at
    /// least `attenuation` (>1, e.g. 10 for −20 dB), returning the tuned
    /// oscillator. Uses the undamped high-frequency asymptote
    /// `T ≈ 1/(r²−1)` and then verifies with damping included.
    ///
    /// # Errors
    ///
    /// Returns an error when the requested attenuation is ≤ 1 or
    /// unreachable with the given damping (damping transmission floor).
    pub fn design_isolator(
        mass: Mass,
        damping: f64,
        disturbance: Frequency,
        attenuation: f64,
    ) -> Result<Self, FemError> {
        if attenuation <= 1.0 {
            return Err(FemError::invalid("attenuation factor must exceed 1"));
        }
        // Undamped estimate: r² = attenuation + 1.
        let r = (attenuation + 1.0).sqrt();
        let fn_guess = disturbance.value() / r;
        let mut osc = Self::from_frequency(Frequency::new(fn_guess), mass, damping)?;
        // Refine downward until the damped transmissibility meets spec.
        for _ in 0..60 {
            if osc.transmissibility(disturbance) <= 1.0 / attenuation {
                return Ok(osc);
            }
            osc = Self::from_frequency(
                Frequency::new(osc.natural_frequency.value() * 0.93),
                mass,
                damping,
            )?;
        }
        Err(FemError::invalid(format!(
            "attenuation {attenuation}x unreachable at ζ = {damping}: damping floor dominates"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_resonant_transmissibility() {
        let osc = Sdof::from_frequency(Frequency::new(100.0), Mass::new(1.0), 0.05).unwrap();
        assert!((osc.transmissibility(Frequency::new(0.1)) - 1.0).abs() < 1e-4);
        let t_res = osc.transmissibility(Frequency::new(100.0));
        // At resonance |T| ≈ √(1+4ζ²)·Q ≈ Q for light damping.
        assert!((t_res - osc.quality_factor()).abs() / osc.quality_factor() < 0.02);
    }

    #[test]
    fn crossover_is_sqrt2_fn() {
        let osc = Sdof::from_frequency(Frequency::new(50.0), Mass::new(1.0), 0.1).unwrap();
        let t = osc.transmissibility(osc.crossover_frequency());
        assert!((t - 1.0).abs() < 1e-9, "|T(√2·fn)| must equal 1, got {t}");
    }

    #[test]
    fn stiffness_frequency_roundtrip() {
        let osc = Sdof::from_stiffness(4.0e5, Mass::new(4.0), 0.1).unwrap();
        let back = Sdof::from_frequency(osc.natural_frequency(), Mass::new(4.0), 0.1).unwrap();
        assert!((back.stiffness() - 4.0e5).abs() < 1e-6 * 4.0e5);
    }

    #[test]
    fn miles_grms_formula() {
        let osc = Sdof::from_frequency(Frequency::new(100.0), Mass::new(1.0), 0.05).unwrap();
        let g = osc.miles_grms(AccelPsd::new(0.04));
        let exact = (std::f64::consts::FRAC_PI_2 * 100.0 * 10.0 * 0.04).sqrt();
        assert!((g - exact).abs() < 1e-12);
    }

    #[test]
    fn isolator_design_meets_spec() {
        // The IMU example: attenuate a 500 Hz carrier disturbance 20×.
        let osc = Sdof::design_isolator(Mass::new(4.0), 0.10, Frequency::new(500.0), 20.0).unwrap();
        assert!(osc.transmissibility(Frequency::new(500.0)) <= 0.05);
        // And the mount is still usable (not absurdly soft).
        assert!(osc.natural_frequency().value() > 20.0);
    }

    #[test]
    fn impossible_isolation_is_detected() {
        // At ζ=0.5 the damping floor T ≈ 2ζ/r requires r ≈ 10⁶ for a
        // million-fold attenuation — beyond the refinement range.
        let res = Sdof::design_isolator(Mass::new(1.0), 0.5, Frequency::new(200.0), 1.0e6);
        assert!(res.is_err());
    }

    #[test]
    fn invalid_arguments() {
        assert!(Sdof::from_frequency(Frequency::ZERO, Mass::new(1.0), 0.1).is_err());
        assert!(Sdof::from_frequency(Frequency::new(10.0), Mass::ZERO, 0.1).is_err());
        assert!(Sdof::from_frequency(Frequency::new(10.0), Mass::new(1.0), 0.0).is_err());
        assert!(Sdof::from_stiffness(-1.0, Mass::new(1.0), 0.1).is_err());
        assert!(Sdof::design_isolator(Mass::new(1.0), 0.1, Frequency::new(100.0), 0.5).is_err());
    }
}
