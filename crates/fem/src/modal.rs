//! Modal extraction by subspace iteration, and the modal data needed by
//! the response solvers.

use std::time::Instant;

use aeropack_solver::{Method, Precond, SolverStats};
use aeropack_units::{Frequency, Mass};

use crate::error::FemError;
use crate::linalg::{generalized_eigen_dense, Cholesky, DMatrix};
use crate::model::Model;

/// The result of a modal analysis: natural frequencies, mass-normalised
/// mode shapes and base-excitation participation factors.
#[derive(Debug, Clone)]
pub struct ModalResult {
    frequencies: Vec<Frequency>,
    /// Full-length mode shapes (zeros at constrained DOFs), one per mode.
    shapes: Vec<Vec<f64>>,
    /// Participation factor `Γᵢ = φᵢᵀ·M·r` for uniform base motion in w.
    participation: Vec<f64>,
    total_mass: Mass,
}

impl ModalResult {
    /// Natural frequencies, ascending.
    pub fn frequencies(&self) -> &[Frequency] {
        &self.frequencies
    }

    /// The fundamental (lowest) natural frequency.
    ///
    /// # Panics
    ///
    /// Panics if no modes were extracted (`modal` rejects that request).
    pub fn fundamental(&self) -> Frequency {
        self.frequencies[0]
    }

    /// Mass-normalised mode shape of mode `i` over all global DOFs.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range mode index.
    pub fn shape(&self, i: usize) -> Result<&[f64], FemError> {
        self.shapes
            .get(i)
            .map(|v| v.as_slice())
            .ok_or(FemError::IndexOutOfRange {
                what: "mode",
                index: i,
                len: self.shapes.len(),
            })
    }

    /// Participation factor of mode `i` for uniform base excitation in w.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range mode index.
    pub fn participation(&self, i: usize) -> Result<f64, FemError> {
        self.participation
            .get(i)
            .copied()
            .ok_or(FemError::IndexOutOfRange {
                what: "mode",
                index: i,
                len: self.participation.len(),
            })
    }

    /// Effective modal mass of mode `i` (`Γᵢ²` for mass-normalised
    /// shapes).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range mode index.
    pub fn effective_mass(&self, i: usize) -> Result<Mass, FemError> {
        Ok(Mass::new(self.participation(i)?.powi(2)))
    }

    /// Fraction of the total translational mass captured by the extracted
    /// modes — the usual completeness check before a response analysis.
    pub fn mass_capture(&self) -> f64 {
        let captured: f64 = self.participation.iter().map(|g| g * g).sum();
        captured / self.total_mass.value()
    }

    /// Number of extracted modes.
    pub fn mode_count(&self) -> usize {
        self.frequencies.len()
    }

    /// Total translational model mass.
    pub fn total_mass(&self) -> Mass {
        self.total_mass
    }
}

/// Extracts the `n_modes` lowest modes of a constrained model by subspace
/// iteration (Bathe's algorithm with a Rayleigh–Ritz projection per
/// sweep).
///
/// # Errors
///
/// Returns an error when `n_modes` is zero or exceeds the number of free
/// DOFs, when the model is under-constrained (singular stiffness), or
/// when the iteration fails to converge.
pub fn modal(model: &Model, n_modes: usize) -> Result<ModalResult, FemError> {
    let _span = aeropack_obs::span!("fem.modal", modes = n_modes);
    let (k, m, free) = model.reduced_system();
    let n = free.len();
    if n_modes == 0 {
        return Err(FemError::invalid("must request at least one mode"));
    }
    if n_modes > n {
        return Err(FemError::invalid(format!(
            "requested {n_modes} modes but only {n} free DOFs exist"
        )));
    }

    // For small systems, solve the dense generalised problem directly.
    let start = Instant::now();
    let (vals, vecs) = if n <= 60 {
        let (vals, vecs) = generalized_eigen_dense(&k, &m)?;
        aeropack_obs::counter!("fem.modal.dense_extractions");
        model.record_solve_stats(SolverStats::direct(
            "modal extraction (dense eigensolver)",
            Method::Cholesky,
            n,
            0.0,
            start.elapsed(),
        ));
        (vals, vecs)
    } else {
        let (vals, vecs, iterations) = subspace_iteration(&k, &m, n_modes)?;
        aeropack_obs::counter!("fem.modal.subspace_extractions");
        aeropack_obs::counter!("fem.modal.subspace_iterations", iterations);
        model.record_solve_stats(SolverStats {
            context: "modal extraction (subspace iteration)",
            method: Method::Cholesky,
            preconditioner: Precond::None,
            requested_preconditioner: Precond::None,
            unknowns: n,
            threads: 1,
            iterations,
            residual_history: Vec::new(),
            final_residual: 0.0,
            tolerance: 1e-10,
            wall_time: start.elapsed(),
            setup_seconds: 0.0,
            iterate_seconds: start.elapsed().as_secs_f64(),
            factorization: None,
            spectral: None,
            dd: None,
        });
        (vals, vecs)
    };

    // Assemble full-length shapes and participation factors.
    let r = model.influence_vector();
    let m_full = model.mass();
    let mr = m_full.matvec(&r);
    let mut frequencies = Vec::with_capacity(n_modes);
    let mut shapes = Vec::with_capacity(n_modes);
    let mut participation = Vec::with_capacity(n_modes);
    for mode in 0..n_modes {
        let lambda = vals[mode];
        if lambda < -1e-6 {
            return Err(FemError::invalid(format!(
                "negative eigenvalue {lambda:.3e}: model is not positive semi-definite"
            )));
        }
        frequencies.push(Frequency::from_angular(lambda.max(0.0).sqrt()));
        let mut full = vec![0.0; model.dof_count()];
        for (ri, &gi) in free.iter().enumerate() {
            full[gi] = vecs[(ri, mode)];
        }
        let gamma: f64 = full.iter().zip(&mr).map(|(a, b)| a * b).sum();
        shapes.push(full);
        participation.push(gamma);
    }

    Ok(ModalResult {
        frequencies,
        shapes,
        participation,
        total_mass: model.total_mass(),
    })
}

/// Subspace iteration for the lowest `n_modes` of `K·x = λ·M·x`.
/// Returns eigenvalues ascending, M-orthonormal eigenvectors in the
/// first `n_modes` columns, and the number of sweeps it took.
fn subspace_iteration(
    k: &DMatrix,
    m: &DMatrix,
    n_modes: usize,
) -> Result<(Vec<f64>, DMatrix, usize), FemError> {
    let n = k.nrows();
    let p = (2 * n_modes).min(n_modes + 8).min(n);
    let chol = Cholesky::factor(k).map_err(|_| FemError::SingularMatrix {
        context: "stiffness factorisation (is the model fully constrained?)",
    })?;

    // Deterministic pseudo-random start vectors (simple LCG) so results
    // are reproducible run to run.
    let mut x = DMatrix::zeros(n, p);
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    for j in 0..p {
        for i in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64) / ((1u64 << 53) as f64);
            x[(i, j)] = u - 0.5;
        }
    }

    let mut last = vec![f64::INFINITY; n_modes];
    for iter in 0..200 {
        // Y = M X;  Z = K⁻¹ Y.
        let y = m.matmul(&x);
        let mut z = DMatrix::zeros(n, p);
        for j in 0..p {
            let col = chol.solve(&y.column(j));
            z.set_column(j, &col);
        }
        // Projected matrices: Kr = Zᵀ K Z = Zᵀ Y,  Mr = Zᵀ M Z.
        let kr = z.t_matmul(&y);
        let mr = z.t_matmul(&m.matmul(&z));
        // Symmetrise round-off.
        let kr = symmetrize(kr);
        let mr = symmetrize(mr);
        let (vals, q) = generalized_eigen_dense(&kr, &mr)?;
        x = z.matmul(&q);

        let worst = (0..n_modes)
            .map(|i| ((vals[i] - last[i]) / vals[i].max(1e-300)).abs())
            .fold(0.0f64, f64::max);
        last[..n_modes].copy_from_slice(&vals[..n_modes]);
        if worst < 1e-10 && iter > 1 {
            return Ok((vals, x, iter + 1));
        }
    }
    Err(FemError::NotConverged {
        context: "subspace iteration",
        iterations: 200,
        residual: f64::NAN,
    })
}

fn symmetrize(mut a: DMatrix) -> DMatrix {
    let n = a.nrows();
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = avg;
            a[(j, i)] = avg;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::PlateProperties;
    use crate::model::{Dof, PlateMesh};
    use aeropack_materials::Material;
    use aeropack_units::Length;

    fn ss_square_plate(n: usize) -> PlateMesh {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .unwrap();
        let mut mesh = PlateMesh::rectangular(0.3, 0.3, n, n, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        mesh
    }

    /// Navier frequency of SS plate mode (m,n): ω = π²[(m/a)²+(n/b)²]√(D/ρh).
    fn navier_frequency(m: u32, n: u32, a: f64, b: f64, d: f64, rho_h: f64) -> f64 {
        let pi = std::f64::consts::PI;
        let omega =
            pi * pi * ((m as f64 / a).powi(2) + (n as f64 / b).powi(2)) * (d / rho_h).sqrt();
        omega / (2.0 * pi)
    }

    #[test]
    fn ss_plate_fundamental_matches_navier() {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .unwrap();
        let mesh = ss_square_plate(6);
        let result = modal(&mesh.model, 4).unwrap();
        let exact = navier_frequency(1, 1, 0.3, 0.3, props.flexural_rigidity(), props.areal_mass);
        let got = result.fundamental().value();
        let rel = (got - exact).abs() / exact;
        assert!(
            rel < 0.04,
            "fundamental {got:.1} Hz vs Navier {exact:.1} Hz ({:.1}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn ss_plate_higher_modes_match_navier() {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .unwrap();
        let mesh = ss_square_plate(8);
        let result = modal(&mesh.model, 4).unwrap();
        let d = props.flexural_rigidity();
        let rh = props.areal_mass;
        // Modes (1,2) and (2,1) are degenerate; (2,2) is fourth.
        let f12 = navier_frequency(1, 2, 0.3, 0.3, d, rh);
        let f22 = navier_frequency(2, 2, 0.3, 0.3, d, rh);
        let got12 = result.frequencies()[1].value();
        let got22 = result.frequencies()[3].value();
        assert!((got12 - f12).abs() / f12 < 0.06, "{got12} vs {f12}");
        assert!((got22 - f22).abs() / f22 < 0.08, "{got22} vs {f22}");
    }

    #[test]
    fn frequencies_are_sorted_ascending() {
        let mesh = ss_square_plate(6);
        let result = modal(&mesh.model, 6).unwrap();
        let f = result.frequencies();
        for w in f.windows(2) {
            assert!(w[0].value() <= w[1].value() + 1e-9);
        }
    }

    #[test]
    fn fundamental_mode_captures_most_mass() {
        let mesh = ss_square_plate(6);
        let result = modal(&mesh.model, 1).unwrap();
        // The (1,1) mode of an SS plate captures ~70 % of the mass
        // (analytic value for a beam is 81 %, plate slightly less... for
        // a plate, (16/π²)²/4 ≈ 0.66 of ρab per (1,1) mode).
        let capture = result.mass_capture();
        assert!(capture > 0.5 && capture < 0.9, "mass capture {capture}");
    }

    #[test]
    fn adding_stiffener_raises_frequency() {
        // The Ariane power-supply story: tune the first mode upward.
        let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(1.6))
            .unwrap();
        let mut soft = PlateMesh::rectangular(0.2, 0.15, 6, 5, &props).unwrap();
        soft.pin_card_guides().unwrap();
        let f_soft = modal(&soft.model, 1).unwrap().fundamental();

        let mut stiff = PlateMesh::rectangular(0.2, 0.15, 6, 5, &props).unwrap();
        stiff.pin_card_guides().unwrap();
        // Grounded springs mid-span emulate a stiffening rib + standoffs.
        for j in 0..=stiff.ny() {
            let n = stiff.node_at(3, j).unwrap();
            stiff.model.add_spring_to_ground(n, Dof::W, 5e5).unwrap();
        }
        let f_stiff = modal(&stiff.model, 1).unwrap().fundamental();
        assert!(
            f_stiff.value() > 1.5 * f_soft.value(),
            "stiffening must raise the fundamental: {f_soft} -> {f_stiff}"
        );
    }

    #[test]
    fn requesting_too_many_modes_errors() {
        let mesh = ss_square_plate(2);
        let free = mesh.model.free_dof_count();
        assert!(modal(&mesh.model, free + 1).is_err());
        assert!(modal(&mesh.model, 0).is_err());
    }

    #[test]
    fn unconstrained_model_errors() {
        let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(1.6))
            .unwrap();
        let mesh = PlateMesh::rectangular(0.4, 0.3, 6, 6, &props).unwrap();
        // > 60 free DOFs so the subspace path (which needs K SPD) runs.
        assert!(mesh.model.free_dof_count() > 60);
        assert!(modal(&mesh.model, 3).is_err());
    }

    #[test]
    fn subspace_agrees_with_dense_on_medium_model() {
        // Build one model, solve with both paths by exploiting the size
        // threshold: 5x3 mesh with card guides has 3*24-… free DOFs;
        // compare subspace on the reduced system against dense solve.
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .unwrap();
        let mut mesh = PlateMesh::rectangular(0.25, 0.15, 5, 4, &props).unwrap();
        mesh.simply_support_edges().unwrap();
        let (k, m, _) = mesh.model.reduced_system();
        let (dense_vals, _) = generalized_eigen_dense(&k, &m).unwrap();
        let (sub_vals, _, _) = subspace_iteration(&k, &m, 3).unwrap();
        for i in 0..3 {
            let rel = (dense_vals[i] - sub_vals[i]).abs() / dense_vals[i];
            assert!(rel < 1e-6, "mode {i}: {rel}");
        }
    }
}
