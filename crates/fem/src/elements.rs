//! Element stiffness and mass matrices.
//!
//! Node DOF convention throughout the crate: each node carries three
//! out-of-plane bending DOFs `(w, ∂w/∂x, ∂w/∂y)`. This makes the plate,
//! beam and spring elements directly compatible.

use aeropack_materials::Material;
use aeropack_units::Length;

use crate::error::FemError;
use crate::linalg::{DMatrix, Lu};

/// Gauss–Legendre points and weights on `[-1, 1]`.
const GAUSS_5: [(f64, f64); 5] = [
    (-0.906_179_845_938_664, 0.236_926_885_056_189),
    (-0.538_469_310_105_683, 0.478_628_670_499_366),
    (0.0, 0.568_888_888_888_889),
    (0.538_469_310_105_683, 0.478_628_670_499_366),
    (0.906_179_845_938_664, 0.236_926_885_056_189),
];

/// Bending properties of a thin plate panel.
#[derive(Debug, Clone, PartialEq)]
pub struct PlateProperties {
    /// Young's modulus, Pa.
    pub youngs_modulus: f64,
    /// Poisson's ratio.
    pub poisson_ratio: f64,
    /// Plate thickness, m.
    pub thickness: f64,
    /// Mass per unit area, kg/m² (density × thickness plus any smeared
    /// component mass).
    pub areal_mass: f64,
}

impl PlateProperties {
    /// Builds plate properties from a material and thickness.
    ///
    /// # Errors
    ///
    /// Returns an error if the thickness is not strictly positive.
    pub fn from_material(material: &Material, thickness: Length) -> Result<Self, FemError> {
        if thickness.value() <= 0.0 {
            return Err(FemError::invalid("plate thickness must be positive"));
        }
        Ok(Self {
            youngs_modulus: material.youngs_modulus.value(),
            poisson_ratio: material.poisson_ratio,
            thickness: thickness.value(),
            areal_mass: material.density.value() * thickness.value(),
        })
    }

    /// Adds non-structural smeared mass (components, conformal coat),
    /// kg/m².
    pub fn with_smeared_mass(mut self, extra_areal_mass: f64) -> Self {
        self.areal_mass += extra_areal_mass;
        self
    }

    /// Flexural rigidity `D = E·t³ / 12(1−ν²)`, N·m.
    pub fn flexural_rigidity(&self) -> f64 {
        self.youngs_modulus * self.thickness.powi(3) / (12.0 * (1.0 - self.poisson_ratio.powi(2)))
    }
}

/// Basis evaluation: `(p, px, py, pxx, pyy, pxy)` arrays of the 12 terms.
type BasisEval = (
    [f64; 12],
    [f64; 12],
    [f64; 12],
    [f64; 12],
    [f64; 12],
    [f64; 12],
);

/// The 12-term polynomial basis of the ACM rectangle, evaluated at
/// `(x, y)`: value, first and second derivatives.
fn basis(x: f64, y: f64) -> BasisEval {
    let p = [
        1.0,
        x,
        y,
        x * x,
        x * y,
        y * y,
        x * x * x,
        x * x * y,
        x * y * y,
        y * y * y,
        x * x * x * y,
        x * y * y * y,
    ];
    let px = [
        0.0,
        1.0,
        0.0,
        2.0 * x,
        y,
        0.0,
        3.0 * x * x,
        2.0 * x * y,
        y * y,
        0.0,
        3.0 * x * x * y,
        y * y * y,
    ];
    let py = [
        0.0,
        0.0,
        1.0,
        0.0,
        x,
        2.0 * y,
        0.0,
        x * x,
        2.0 * x * y,
        3.0 * y * y,
        x * x * x,
        3.0 * x * y * y,
    ];
    let pxx = [
        0.0,
        0.0,
        0.0,
        2.0,
        0.0,
        0.0,
        6.0 * x,
        2.0 * y,
        0.0,
        0.0,
        6.0 * x * y,
        0.0,
    ];
    let pyy = [
        0.0,
        0.0,
        0.0,
        0.0,
        0.0,
        2.0,
        0.0,
        0.0,
        2.0 * x,
        6.0 * y,
        0.0,
        6.0 * x * y,
    ];
    let pxy = [
        0.0,
        0.0,
        0.0,
        0.0,
        1.0,
        0.0,
        0.0,
        2.0 * x,
        2.0 * y,
        0.0,
        3.0 * x * x,
        3.0 * y * y,
    ];
    (p, px, py, pxx, pyy, pxy)
}

/// Stiffness and consistent mass of an ACM (Adini–Clough–Melosh)
/// rectangular plate-bending element of size `a × b`.
///
/// The node order is counter-clockwise from the local origin:
/// `(0,0), (a,0), (a,b), (0,b)`; the 12 DOFs are
/// `(w, ∂w/∂x, ∂w/∂y)` at each node.
///
/// # Errors
///
/// Returns an error if the element geometry is degenerate.
pub fn acm_plate(a: f64, b: f64, props: &PlateProperties) -> Result<(DMatrix, DMatrix), FemError> {
    if a <= 0.0 || b <= 0.0 {
        return Err(FemError::invalid("plate element sides must be positive"));
    }
    // Map polynomial coefficients to nodal DOFs.
    let corners = [(0.0, 0.0), (a, 0.0), (a, b), (0.0, b)];
    let mut amat = DMatrix::zeros(12, 12);
    for (node, &(x, y)) in corners.iter().enumerate() {
        let (p, px, py, ..) = basis(x, y);
        for j in 0..12 {
            amat[(3 * node, j)] = p[j];
            amat[(3 * node + 1, j)] = px[j];
            amat[(3 * node + 2, j)] = py[j];
        }
    }
    let ainv = Lu::factor(&amat)
        .map_err(|_| FemError::invalid("degenerate ACM element geometry"))?
        .inverse();

    // Bending rigidity matrix.
    let d0 = props.flexural_rigidity();
    let nu = props.poisson_ratio;
    let d = [
        [d0, d0 * nu, 0.0],
        [d0 * nu, d0, 0.0],
        [0.0, 0.0, d0 * (1.0 - nu) / 2.0],
    ];

    // Integrate K_poly and M_poly by 5×5 Gauss quadrature.
    let mut k_poly = DMatrix::zeros(12, 12);
    let mut m_poly = DMatrix::zeros(12, 12);
    for &(gx, wx) in &GAUSS_5 {
        let x = 0.5 * a * (gx + 1.0);
        for &(gy, wy) in &GAUSS_5 {
            let y = 0.5 * b * (gy + 1.0);
            let w = wx * wy * 0.25 * a * b;
            let (p, _, _, pxx, pyy, pxy) = basis(x, y);
            // Curvature rows: [pxx; pyy; 2 pxy].
            for i in 0..12 {
                let bi = [pxx[i], pyy[i], 2.0 * pxy[i]];
                for j in 0..12 {
                    let bj = [pxx[j], pyy[j], 2.0 * pxy[j]];
                    let mut kij = 0.0;
                    for r in 0..3 {
                        for s in 0..3 {
                            kij += bi[r] * d[r][s] * bj[s];
                        }
                    }
                    k_poly[(i, j)] += w * kij;
                    m_poly[(i, j)] += w * props.areal_mass * p[i] * p[j];
                }
            }
        }
    }

    // Transform to nodal DOFs: K = A⁻ᵀ K_poly A⁻¹.
    let k = ainv.t_matmul(&k_poly.matmul(&ainv));
    let m = ainv.t_matmul(&m_poly.matmul(&ainv));
    Ok((k, m))
}

/// Maximum surface bending stress of an ACM element at its centre,
/// recovered from the nodal DOF vector `u_e` (12 entries in element
/// order): curvatures from the basis second derivatives, moments
/// through the plate rigidity, and `σ = 6·M/t²` at the outer fibre.
/// Returns the von-Mises-style equivalent of the two bending stresses
/// plus twist.
///
/// # Errors
///
/// Returns an error for degenerate geometry or a wrong-length vector.
pub fn acm_plate_center_stress(
    a: f64,
    b: f64,
    props: &PlateProperties,
    u_e: &[f64],
) -> Result<f64, FemError> {
    if a <= 0.0 || b <= 0.0 {
        return Err(FemError::invalid("plate element sides must be positive"));
    }
    if u_e.len() != 12 {
        return Err(FemError::invalid("element DOF vector must have 12 entries"));
    }
    // Coefficients from nodal DOFs.
    let corners = [(0.0, 0.0), (a, 0.0), (a, b), (0.0, b)];
    let mut amat = DMatrix::zeros(12, 12);
    for (node, &(x, y)) in corners.iter().enumerate() {
        let (p, px, py, ..) = basis(x, y);
        for j in 0..12 {
            amat[(3 * node, j)] = p[j];
            amat[(3 * node + 1, j)] = px[j];
            amat[(3 * node + 2, j)] = py[j];
        }
    }
    let c = Lu::factor(&amat)
        .map_err(|_| FemError::invalid("degenerate ACM element geometry"))?
        .solve(u_e);
    // Curvatures at the element centre.
    let (_, _, _, pxx, pyy, pxy) = basis(0.5 * a, 0.5 * b);
    let kxx: f64 = (0..12).map(|j| pxx[j] * c[j]).sum();
    let kyy: f64 = (0..12).map(|j| pyy[j] * c[j]).sum();
    let kxy: f64 = (0..12).map(|j| 2.0 * pxy[j] * c[j]).sum();
    // Moments per unit width and outer-fibre stresses.
    let d0 = props.flexural_rigidity();
    let nu = props.poisson_ratio;
    let mx = d0 * (kxx + nu * kyy);
    let my = d0 * (kyy + nu * kxx);
    let mxy = d0 * (1.0 - nu) / 2.0 * kxy;
    let t2 = props.thickness * props.thickness;
    let sx = 6.0 * mx / t2;
    let sy = 6.0 * my / t2;
    let sxy = 6.0 * mxy / t2;
    Ok((sx * sx - sx * sy + sy * sy + 3.0 * sxy * sxy).sqrt())
}

/// Properties of a prismatic bending beam.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamProperties {
    /// Young's modulus, Pa.
    pub youngs_modulus: f64,
    /// Second moment of area, m⁴.
    pub second_moment: f64,
    /// Mass per unit length, kg/m.
    pub linear_mass: f64,
}

impl BeamProperties {
    /// Rectangular cross-section `width × height` bending about the
    /// width axis.
    ///
    /// # Errors
    ///
    /// Returns an error on non-positive dimensions.
    pub fn rectangular(
        material: &Material,
        width: Length,
        height: Length,
    ) -> Result<Self, FemError> {
        if width.value() <= 0.0 || height.value() <= 0.0 {
            return Err(FemError::invalid(
                "beam section dimensions must be positive",
            ));
        }
        let area = width.value() * height.value();
        Ok(Self {
            youngs_modulus: material.youngs_modulus.value(),
            second_moment: width.value() * height.value().powi(3) / 12.0,
            linear_mass: material.density.value() * area,
        })
    }
}

/// Stiffness and consistent mass of a 2-node Euler–Bernoulli bending
/// element of length `l`. DOFs: `(w₁, θ₁, w₂, θ₂)` with `θ = ∂w/∂s`
/// along the beam axis.
///
/// # Errors
///
/// Returns an error if the length is not strictly positive.
pub fn bernoulli_beam(l: f64, props: &BeamProperties) -> Result<(DMatrix, DMatrix), FemError> {
    if l <= 0.0 {
        return Err(FemError::invalid("beam element length must be positive"));
    }
    let ei = props.youngs_modulus * props.second_moment;
    let c = ei / l.powi(3);
    let k = DMatrix::from_rows(
        4,
        4,
        vec![
            12.0 * c,
            6.0 * c * l,
            -12.0 * c,
            6.0 * c * l,
            6.0 * c * l,
            4.0 * c * l * l,
            -6.0 * c * l,
            2.0 * c * l * l,
            -12.0 * c,
            -6.0 * c * l,
            12.0 * c,
            -6.0 * c * l,
            6.0 * c * l,
            2.0 * c * l * l,
            -6.0 * c * l,
            4.0 * c * l * l,
        ],
    );
    let mc = props.linear_mass * l / 420.0;
    let m = DMatrix::from_rows(
        4,
        4,
        vec![
            156.0 * mc,
            22.0 * l * mc,
            54.0 * mc,
            -13.0 * l * mc,
            22.0 * l * mc,
            4.0 * l * l * mc,
            13.0 * l * mc,
            -3.0 * l * l * mc,
            54.0 * mc,
            13.0 * l * mc,
            156.0 * mc,
            -22.0 * l * mc,
            -13.0 * l * mc,
            -3.0 * l * l * mc,
            -22.0 * l * mc,
            4.0 * l * l * mc,
        ],
    );
    Ok((k, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steel_plate() -> PlateProperties {
        PlateProperties {
            youngs_modulus: 200e9,
            poisson_ratio: 0.3,
            thickness: 0.002,
            areal_mass: 7850.0 * 0.002,
        }
    }

    #[test]
    fn plate_matrices_are_symmetric() {
        let (k, m) = acm_plate(0.1, 0.08, &steel_plate()).unwrap();
        assert!(k.asymmetry() < 1e-6 * k.max_abs());
        assert!(m.asymmetry() < 1e-9 * m.max_abs());
    }

    #[test]
    fn plate_stiffness_annihilates_rigid_modes() {
        // Rigid translation and both rigid rotations produce zero strain
        // energy: K·u_rigid = 0.
        let a = 0.1;
        let b = 0.08;
        let (k, _) = acm_plate(a, b, &steel_plate()).unwrap();
        let corners = [(0.0, 0.0), (a, 0.0), (a, b), (0.0, b)];
        // w = 1 (translation), w = x (rotation about y), w = y.
        type Field = Box<dyn Fn(f64, f64) -> (f64, f64, f64)>;
        let fields: [Field; 3] = [
            Box::new(|_, _| (1.0, 0.0, 0.0)),
            Box::new(|x, _| (x, 1.0, 0.0)),
            Box::new(|_, y| (y, 0.0, 1.0)),
        ];
        for field in &fields {
            let mut u = vec![0.0; 12];
            for (n, &(x, y)) in corners.iter().enumerate() {
                let (w, wx, wy) = field(x, y);
                u[3 * n] = w;
                u[3 * n + 1] = wx;
                u[3 * n + 2] = wy;
            }
            let f = k.matvec(&u);
            let worst = f.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            assert!(
                worst < 1e-4 * k.max_abs(),
                "rigid mode leaks force: {worst}"
            );
        }
    }

    #[test]
    fn plate_mass_total_is_exact() {
        // Sum of the w-translational mass block against a uniform unit
        // translation recovers the total element mass.
        let a = 0.1;
        let b = 0.08;
        let p = steel_plate();
        let (_, m) = acm_plate(a, b, &p).unwrap();
        let mut u = vec![0.0; 12];
        for n in 0..4 {
            u[3 * n] = 1.0;
        }
        let f = m.matvec(&u);
        let total: f64 = (0..4).map(|n| f[3 * n]).sum();
        let exact = p.areal_mass * a * b;
        assert!((total - exact).abs() < 1e-9 * exact);
    }

    #[test]
    fn beam_matrices_match_textbook() {
        let props = BeamProperties {
            youngs_modulus: 1.0,
            second_moment: 1.0,
            linear_mass: 420.0,
        };
        let (k, m) = bernoulli_beam(1.0, &props).unwrap();
        assert!((k[(0, 0)] - 12.0).abs() < 1e-12);
        assert!((k[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((m[(0, 0)] - 156.0).abs() < 1e-9);
        assert!((m[(3, 3)] - 4.0).abs() < 1e-9);
        assert!(k.asymmetry() < 1e-12);
        assert!(m.asymmetry() < 1e-12);
    }

    #[test]
    fn beam_cantilever_tip_deflection() {
        // Single element cantilever: tip load P → w = P L³ / 3EI exactly
        // (cubic shape functions capture this).
        let props = BeamProperties {
            youngs_modulus: 70e9,
            second_moment: 1e-8,
            linear_mass: 1.0,
        };
        let l = 0.3;
        let (k, _) = bernoulli_beam(l, &props).unwrap();
        // Fix DOFs 0,1 → solve 2x2 for (w2, th2) under tip load.
        let sub = DMatrix::from_rows(2, 2, vec![k[(2, 2)], k[(2, 3)], k[(3, 2)], k[(3, 3)]]);
        let p = 10.0;
        let x = crate::linalg::Lu::factor(&sub).unwrap().solve(&[p, 0.0]);
        let exact = p * l.powi(3) / (3.0 * props.youngs_modulus * props.second_moment);
        assert!((x[0] - exact).abs() < 1e-9 * exact);
    }

    #[test]
    fn degenerate_geometry_is_rejected() {
        assert!(acm_plate(0.0, 0.1, &steel_plate()).is_err());
        let props = BeamProperties {
            youngs_modulus: 1.0,
            second_moment: 1.0,
            linear_mass: 1.0,
        };
        assert!(bernoulli_beam(0.0, &props).is_err());
    }

    #[test]
    fn flexural_rigidity_formula() {
        let p = steel_plate();
        let d = p.flexural_rigidity();
        let exact = 200e9 * 0.002f64.powi(3) / (12.0 * (1.0 - 0.09));
        assert!((d - exact).abs() < 1e-9 * exact);
    }
}
