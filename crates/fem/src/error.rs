//! Error type for the structural solver.

use std::error::Error;
use std::fmt;

/// Error returned by model construction and the numerical solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum FemError {
    /// A factorisation failed because the matrix is singular or not
    /// positive definite (typically an under-constrained model).
    SingularMatrix {
        /// What was being factorised.
        context: &'static str,
    },
    /// An iterative solver exhausted its iteration budget.
    NotConverged {
        /// Which solver failed to converge.
        context: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual measure at the last iteration.
        residual: f64,
    },
    /// A mesh or model construction argument was invalid.
    InvalidModel {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A node or DOF index was out of range.
    IndexOutOfRange {
        /// What kind of index.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The number of valid entries.
        len: usize,
    },
}

impl fmt::Display for FemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularMatrix { context } => {
                write!(f, "singular or non-positive-definite matrix in {context}")
            }
            Self::NotConverged {
                context,
                iterations,
                residual,
            } => write!(
                f,
                "{context} did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            Self::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
            Self::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
        }
    }
}

impl Error for FemError {}

impl From<aeropack_solver::SolverError> for FemError {
    fn from(e: aeropack_solver::SolverError) -> Self {
        use aeropack_solver::SolverError;
        match e {
            SolverError::Singular { context } => Self::SingularMatrix { context },
            SolverError::NotConverged {
                context,
                iterations,
                residual,
            } => Self::NotConverged {
                context,
                iterations,
                residual,
            },
            SolverError::InvalidInput { reason } => Self::InvalidModel { reason },
        }
    }
}

impl FemError {
    /// Shorthand for an [`FemError::InvalidModel`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        Self::InvalidModel {
            reason: reason.into(),
        }
    }
}
