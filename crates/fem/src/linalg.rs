//! Dense linear algebra: matrices, factorisations and symmetric
//! eigenproblems.
//!
//! The LU and Cholesky factorisations are thin [`DMatrix`] adapters over
//! the shared [`aeropack_solver`] dense kernels; the cyclic Jacobi
//! eigensolver for small symmetric matrices and the Cholesky reduction
//! of the generalised symmetric problem `K·x = λ·M·x` live here.

use aeropack_solver::{DenseCholesky, DenseLu};

use crate::error::FemError;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &DMatrix) -> DMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = DMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Product `selfᵀ · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn t_matmul(&self, rhs: &DMatrix) -> DMatrix {
        assert_eq!(self.rows, rhs.rows, "row counts must agree for AᵀB");
        let mut out = DMatrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self[(k, i)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch in matvec");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Transpose.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Extracts column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Sets column `j` from a slice.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn set_column(&mut self, j: usize, col: &[f64]) {
        assert_eq!(col.len(), self.rows, "column length mismatch");
        for i in 0..self.rows {
            self[(i, j)] = col[i];
        }
    }

    /// The underlying row-major data, e.g. for handing the matrix to
    /// the shared `aeropack_solver` kernels.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Symmetry defect `max |A - Aᵀ|`.
    pub fn asymmetry(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// An LU factorisation with partial pivoting, backed by the shared
/// [`aeropack_solver`] dense kernel.
#[derive(Debug, Clone)]
pub struct Lu {
    inner: DenseLu,
}

impl Lu {
    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FemError::SingularMatrix`] if a pivot underflows.
    pub fn factor(a: &DMatrix) -> Result<Self, FemError> {
        assert_eq!(a.nrows(), a.ncols(), "LU requires a square matrix");
        let inner = DenseLu::factor(a.data(), a.nrows(), "LU factorisation")?;
        Ok(Self { inner })
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.inner.solve(b)
    }

    /// Inverts the factorised matrix (column-by-column solve).
    pub fn inverse(&self) -> DMatrix {
        let n = self.inner.n();
        let mut inv = DMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let col = self.solve(&e);
            inv.set_column(j, &col);
        }
        inv
    }
}

/// A Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, backed by the shared [`aeropack_solver`] dense kernel.
#[derive(Debug, Clone)]
pub struct Cholesky {
    inner: DenseCholesky,
}

impl Cholesky {
    /// Factorises a symmetric positive-definite matrix (only the lower
    /// triangle is read).
    ///
    /// # Errors
    ///
    /// Returns [`FemError::SingularMatrix`] when the matrix is not
    /// positive definite.
    pub fn factor(a: &DMatrix) -> Result<Self, FemError> {
        assert_eq!(a.nrows(), a.ncols(), "Cholesky requires a square matrix");
        let inner = DenseCholesky::factor(a.data(), a.nrows(), "Cholesky factorisation")?;
        Ok(Self { inner })
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.inner.solve(b)
    }

    /// Forward substitution only: solves `L·y = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn forward(&self, b: &[f64]) -> Vec<f64> {
        self.inner.forward(b)
    }

    /// Back substitution only: solves `Lᵀ·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn backward(&self, b: &[f64]) -> Vec<f64> {
        self.inner.backward(b)
    }

    /// The lower-triangular factor, materialised as a [`DMatrix`].
    pub fn l(&self) -> DMatrix {
        let n = self.inner.n();
        DMatrix::from_rows(n, n, self.inner.l_raw().to_vec())
    }
}

/// Eigendecomposition of a small symmetric matrix by the cyclic Jacobi
/// method. Returns `(eigenvalues, eigenvectors)` sorted ascending; the
/// eigenvectors are the *columns* of the returned matrix.
///
/// # Errors
///
/// Returns [`FemError::NotConverged`] if the off-diagonal norm fails to
/// drop below tolerance within 50 sweeps.
pub fn jacobi_eigen(a: &DMatrix) -> Result<(Vec<f64>, DMatrix), FemError> {
    assert_eq!(a.nrows(), a.ncols(), "eigen requires a square matrix");
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = DMatrix::identity(n);
    let tol = 1e-12 * m.max_abs().max(1e-300);
    for sweep in 0..50 {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off <= tol {
            // Sort ascending.
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&p, &q| {
                m[(p, p)]
                    .partial_cmp(&m[(q, q)])
                    .expect("finite eigenvalues")
            });
            let vals: Vec<f64> = idx.iter().map(|&p| m[(p, p)]).collect();
            let mut vecs = DMatrix::zeros(n, n);
            for (new_j, &old_j) in idx.iter().enumerate() {
                for i in 0..n {
                    vecs[(i, new_j)] = v[(i, old_j)];
                }
            }
            return Ok((vals, vecs));
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(FemError::NotConverged {
        context: "Jacobi eigensolver",
        iterations: 50,
        residual: f64::NAN,
    })
}

/// Solves the generalised symmetric eigenproblem `K·x = λ·M·x` with both
/// `K` and `M` symmetric positive definite, via the Cholesky reduction
/// `M = L·Lᵀ`, `C = L⁻¹·K·L⁻ᵀ`, followed by a Jacobi decomposition of
/// `C`. Returns `(eigenvalues, eigenvectors)` ascending; eigenvectors are
/// M-orthonormal columns.
///
/// Intended for the *projected* (small) problems inside subspace
/// iteration, but correct at any size.
///
/// # Errors
///
/// Propagates factorisation and convergence failures.
pub fn generalized_eigen_dense(k: &DMatrix, m: &DMatrix) -> Result<(Vec<f64>, DMatrix), FemError> {
    let n = k.nrows();
    let chol = Cholesky::factor(m)?;
    // C = L⁻¹ K L⁻ᵀ, built column-wise.
    let mut c = DMatrix::zeros(n, n);
    for j in 0..n {
        // e_j -> L⁻ᵀ e_j is a backward solve.
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let linv_t_col = chol.backward(&e);
        let k_col = k.matvec(&linv_t_col);
        let c_col = chol.forward(&k_col);
        c.set_column(j, &c_col);
    }
    // Symmetrise against round-off.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (c[(i, j)] + c[(j, i)]);
            c[(i, j)] = avg;
            c[(j, i)] = avg;
        }
    }
    let (vals, y) = jacobi_eigen(&c)?;
    // x = L⁻ᵀ y per column.
    let mut x = DMatrix::zeros(n, n);
    for j in 0..n {
        let col = chol.backward(&y.column(j));
        x.set_column(j, &col);
    }
    Ok((vals, x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn lu_solves_small_system() {
        let a = DMatrix::from_rows(3, 3, vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[4.0, 5.0, 6.0]);
        // Exact solution: x = [6, 15, -23].
        assert!(approx(x[0], 6.0, 1e-12));
        assert!(approx(x[1], 15.0, 1e-12));
        assert!(approx(x[2], -23.0, 1e-12));
    }

    #[test]
    fn lu_detects_singularity() {
        let a = DMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            Lu::factor(&a),
            Err(FemError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn lu_inverse_roundtrip() {
        let a = DMatrix::from_rows(3, 3, vec![4.0, 1.0, 0.5, 1.0, 5.0, 1.5, 0.5, 1.5, 6.0]);
        let inv = Lu::factor(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_matches_lu_on_spd() {
        let a = DMatrix::from_rows(3, 3, vec![4.0, 1.0, 0.5, 1.0, 5.0, 1.5, 0.5, 1.5, 6.0]);
        let b = [1.0, 2.0, 3.0];
        let x1 = Cholesky::factor(&a).unwrap().solve(&b);
        let x2 = Lu::factor(&a).unwrap().solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
        let a = DMatrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = jacobi_eigen(&a).unwrap();
        assert!(approx(vals[0], 1.0, 1e-10));
        assert!(approx(vals[1], 3.0, 1e-10));
        // A v = λ v check.
        let v0 = vecs.column(0);
        let av0 = a.matvec(&v0);
        for i in 0..2 {
            assert!((av0[i] - vals[0] * v0[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn generalized_eigen_mass_spring_chain() {
        // Two-DOF chain: m=1 each, k=1 each (fixed-free):
        // K = [[2,-1],[-1,1]], M = I. λ = (3 ∓ √5)/2.
        let k = DMatrix::from_rows(2, 2, vec![2.0, -1.0, -1.0, 1.0]);
        let m = DMatrix::identity(2);
        let (vals, vecs) = generalized_eigen_dense(&k, &m).unwrap();
        let exact0 = (3.0 - 5f64.sqrt()) / 2.0;
        let exact1 = (3.0 + 5f64.sqrt()) / 2.0;
        assert!(approx(vals[0], exact0, 1e-10));
        assert!(approx(vals[1], exact1, 1e-10));
        // M-orthonormality.
        let g = vecs.t_matmul(&m.matmul(&vecs));
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn generalized_eigen_with_nontrivial_mass() {
        // K = diag(2, 8), M = diag(1, 2) → λ = {2, 4}.
        let k = DMatrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 8.0]);
        let m = DMatrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 2.0]);
        let (vals, _) = generalized_eigen_dense(&k, &m).unwrap();
        assert!(approx(vals[0], 2.0, 1e-10));
        assert!(approx(vals[1], 4.0, 1e-10));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = DMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose();
        let g = a.matmul(&at); // 2x2 Gram matrix
        assert!(approx(g[(0, 0)], 14.0, 1e-14));
        assert!(approx(g[(0, 1)], 32.0, 1e-14));
        assert!(approx(g[(1, 1)], 77.0, 1e-14));
        // t_matmul(a, a) = aᵀ a must equal transpose().matmul(a).
        let gt1 = a.t_matmul(&a);
        let gt2 = at.matmul(&a);
        assert_eq!(gt1, gt2);
    }
}
