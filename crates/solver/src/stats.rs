//! Solve observability: method/preconditioner tags and per-solve
//! statistics.

use std::fmt;
use std::time::Duration;

/// The solution method behind a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Preconditioned conjugate gradient (SPD systems).
    Pcg,
    /// Dense Cholesky factorisation (SPD systems).
    Cholesky,
    /// Dense LU factorisation with partial pivoting (general systems).
    Lu,
    /// Scalar bisection (used by the nonlinear operating-point solvers
    /// — rack flow, SEB balance — for their stats reporting).
    Bisection,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Pcg => "PCG",
            Self::Cholesky => "Cholesky",
            Self::Lu => "LU",
            Self::Bisection => "bisection",
        })
    }
}

/// Preconditioner applied inside the iterative methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precond {
    /// No preconditioning.
    None,
    /// Diagonal (Jacobi) scaling.
    Jacobi,
    /// Symmetric successive over-relaxation with ω = 1 (symmetric
    /// Gauss–Seidel). Requires explicit sparse storage.
    Ssor,
    /// Incomplete Cholesky IC(0): a sparse factorisation on the matrix's
    /// own sparsity pattern, applied as forward/backward triangular
    /// solves. Requires explicit sparse storage; the factor is cached in
    /// the [`PcgWorkspace`](crate::PcgWorkspace) and reused across
    /// solves of the same matrix (a power sweep factors once and applies
    /// many times). By default the system is RCM-reordered first — see
    /// [`Reorder`](crate::Reorder).
    Ic0,
}

impl fmt::Display for Precond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::None => "none",
            Self::Jacobi => "Jacobi",
            Self::Ssor => "SSOR",
            Self::Ic0 => "IC(0)",
        })
    }
}

/// Setup-phase statistics of a factorisation-based preconditioner
/// (IC(0)): what the factorisation cost, how it was scheduled and
/// whether this solve could reuse a cached factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorStats {
    /// Wall time of the numeric factorisation (zero when `reused`).
    pub factor_time: Duration,
    /// Stored non-zeros in the triangular factor.
    pub fill_nnz: usize,
    /// Dependency levels of the forward (lower) triangular solve — the
    /// parallelism ceiling of the level-scheduled application.
    pub forward_levels: usize,
    /// Dependency levels of the backward (upper) triangular solve.
    pub backward_levels: usize,
    /// Diagonal shift `α` applied on breakdown (`A + α·diag(A)`); 0 for
    /// a clean factorisation.
    pub diagonal_shift: f64,
    /// Whether the workspace's cached factor was reused (no numeric
    /// factorisation ran for this solve).
    pub reused: bool,
    /// Whether the system was RCM-reordered before factorisation.
    pub reordered: bool,
}

/// Statistics of one solve: what ran, how hard it worked and how well
/// it converged. Returned inside every [`Solution`](crate::Solution)
/// and cached by the model types behind their `last_solve_stats()`
/// accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverStats {
    /// What was being solved (human-readable tag).
    pub context: &'static str,
    /// The method that ran.
    pub method: Method,
    /// The preconditioner used (meaningful for iterative methods).
    pub preconditioner: Precond,
    /// Number of unknowns.
    pub unknowns: usize,
    /// Worker threads used by the kernels.
    pub threads: usize,
    /// Iterations performed (0 for direct factorisations).
    pub iterations: usize,
    /// Relative residual after each iteration (empty for direct
    /// methods).
    pub residual_history: Vec<f64>,
    /// Achieved relative residual `‖b − A·x‖ / ‖b‖`.
    pub final_residual: f64,
    /// The tolerance that was requested.
    pub tolerance: f64,
    /// Wall-clock time of the solve.
    pub wall_time: Duration,
    /// Setup-phase detail for factorisation-based preconditioners
    /// (IC(0)); `None` for preconditioners with no setup phase.
    pub factorization: Option<FactorStats>,
}

impl SolverStats {
    /// Stats skeleton for a direct (non-iterative) solve.
    pub fn direct(
        context: &'static str,
        method: Method,
        unknowns: usize,
        final_residual: f64,
        wall_time: Duration,
    ) -> Self {
        Self {
            context,
            method,
            preconditioner: Precond::None,
            unknowns,
            threads: 1,
            iterations: 0,
            residual_history: Vec::new(),
            final_residual,
            tolerance: 0.0,
            wall_time,
            factorization: None,
        }
    }

    /// Whether the solve met its requested tolerance (direct solves
    /// report `true`).
    pub fn converged(&self) -> bool {
        self.iterations == 0 || self.final_residual <= self.tolerance
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({}) n={} threads={} iters={} residual={:.2e} in {:.2} ms",
            self.context,
            self.method,
            self.preconditioner,
            self.unknowns,
            self.threads,
            self.iterations,
            self.final_residual,
            self.wall_time.as_secs_f64() * 1e3,
        )
    }
}
