//! Solve observability: method/preconditioner tags and per-solve
//! statistics.

use std::fmt;
use std::time::Duration;

/// The solution method behind a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Preconditioned conjugate gradient (SPD systems).
    Pcg,
    /// Dense Cholesky factorisation (SPD systems).
    Cholesky,
    /// Dense LU factorisation with partial pivoting (general systems).
    Lu,
    /// Scalar bisection (used by the nonlinear operating-point solvers
    /// — rack flow, SEB balance — for their stats reporting).
    Bisection,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Pcg => "PCG",
            Self::Cholesky => "Cholesky",
            Self::Lu => "LU",
            Self::Bisection => "bisection",
        })
    }
}

/// Preconditioner applied inside the iterative methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precond {
    /// No preconditioning.
    None,
    /// Diagonal (Jacobi) scaling.
    Jacobi,
    /// Symmetric successive over-relaxation with ω = 1 (symmetric
    /// Gauss–Seidel). Requires explicit sparse storage.
    Ssor,
    /// Incomplete Cholesky IC(0): a sparse factorisation on the matrix's
    /// own sparsity pattern, applied as forward/backward triangular
    /// solves. Requires explicit sparse storage; the factor is cached in
    /// the [`PcgWorkspace`](crate::PcgWorkspace) and reused across
    /// solves of the same matrix (a power sweep factors once and applies
    /// many times). By default the system is RCM-reordered first — see
    /// [`Reorder`](crate::Reorder).
    Ic0,
    /// `k`-step Chebyshev polynomial preconditioning on the
    /// Jacobi-scaled operator `D⁻¹A`. Purely algebraic — only SpMV and
    /// diagonal scaling, no triangular solves, so the application
    /// parallelises with no sequential dependency at all. The spectral
    /// bounds are estimated by a few power-method iterations and cached
    /// in the [`PcgWorkspace`](crate::PcgWorkspace). `k` must be ≥ 1
    /// (`k = 1` degenerates to damped Jacobi).
    Chebyshev(usize),
    /// Geometric multigrid V-cycle built from the structured-grid shape
    /// declared via
    /// [`SolverConfig::grid_dims`](crate::SolverConfig::grid_dims):
    /// 2×2×2 cell aggregation with smoothed prolongation, Galerkin
    /// coarse operators, Chebyshev smoothing and a dense Cholesky
    /// coarse solve. Iteration counts become essentially
    /// mesh-independent. When no grid shape is available (FEM /
    /// unstructured matrices) the solve falls back to
    /// [`Precond::Chebyshev`] automatically. The hierarchy is cached in
    /// the [`PcgWorkspace`](crate::PcgWorkspace).
    Multigrid,
    /// Additive Schwarz over `k` axis-aligned subdomain slabs
    /// (`k = 0` picks a slab count from the grid shape automatically).
    /// Each slab extends one cell plane into its neighbours, carries
    /// its own IC(0) factor, and solves independently — no level
    /// scheduling, no barriers — then its full extended-range solution
    /// is accumulated in fixed slab order (the symmetric Schwarz sum
    /// `Σᵢ Rᵢᵀ Ãᵢ⁻¹ Rᵢ`, which PCG requires), so the application is
    /// deterministic at any thread count. Requires explicit sparse storage; slabs
    /// follow the last grid axis of
    /// [`SolverConfig::grid_dims`](crate::SolverConfig::grid_dims)
    /// when declared and degenerate to contiguous index ranges
    /// otherwise. The factors are cached in the
    /// [`PcgWorkspace`](crate::PcgWorkspace).
    AdditiveSchwarz(usize),
}

impl Precond {
    /// A stable small-integer code for fingerprinting and wire formats.
    /// The first four values match the historical enum discriminants,
    /// so fingerprints of Jacobi/SSOR/IC(0) configurations are
    /// unchanged by the addition of the data-carrying variants.
    pub fn code(self) -> u8 {
        match self {
            Self::None => 0,
            Self::Jacobi => 1,
            Self::Ssor => 2,
            Self::Ic0 => 3,
            Self::Chebyshev(_) => 4,
            Self::Multigrid => 5,
            Self::AdditiveSchwarz(_) => 6,
        }
    }

    /// The data payload of the data-carrying variants — the polynomial
    /// step count for [`Precond::Chebyshev`], the subdomain count for
    /// [`Precond::AdditiveSchwarz`] — and 0 for every other variant (a
    /// fingerprint companion to [`Precond::code`]).
    pub fn degree(self) -> usize {
        match self {
            Self::Chebyshev(k) => k,
            Self::AdditiveSchwarz(k) => k,
            _ => 0,
        }
    }
}

impl fmt::Display for Precond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::None => f.write_str("none"),
            Self::Jacobi => f.write_str("Jacobi"),
            Self::Ssor => f.write_str("SSOR"),
            Self::Ic0 => f.write_str("IC(0)"),
            Self::Chebyshev(k) => write!(f, "Chebyshev({k})"),
            Self::Multigrid => f.write_str("MG"),
            Self::AdditiveSchwarz(k) => write!(f, "AS-IC(0)×{k}"),
        }
    }
}

/// Setup-phase statistics of a factorisation-based preconditioner
/// (IC(0)): what the factorisation cost, how it was scheduled and
/// whether this solve could reuse a cached factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorStats {
    /// Wall time of the numeric factorisation (zero when `reused`).
    pub factor_time: Duration,
    /// Stored non-zeros in the triangular factor.
    pub fill_nnz: usize,
    /// Dependency levels of the forward (lower) triangular solve — the
    /// parallelism ceiling of the level-scheduled application.
    pub forward_levels: usize,
    /// Dependency levels of the backward (upper) triangular solve.
    pub backward_levels: usize,
    /// Diagonal shift `α` applied on breakdown (`A + α·diag(A)`); 0 for
    /// a clean factorisation.
    pub diagonal_shift: f64,
    /// Whether the workspace's cached factor was reused (no numeric
    /// factorisation ran for this solve).
    pub reused: bool,
    /// Whether the system was RCM-reordered before factorisation.
    pub reordered: bool,
}

/// Setup-phase statistics of the spectral preconditioners (Chebyshev
/// polynomial and multigrid): the estimated eigenvalue interval, the
/// hierarchy shape and whether the cached setup was reused. The bench
/// JSON surfaces these as the smoother/level/eig-bound metadata of the
/// `fv_large` rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralStats {
    /// Grid levels in the multigrid hierarchy (1 for Chebyshev — the
    /// fine level only).
    pub levels: usize,
    /// Smoother (multigrid) or polynomial (Chebyshev) family tag.
    pub smoother: &'static str,
    /// Chebyshev step count: the polynomial steps per application
    /// (Chebyshev preconditioner) or per smoothing pass (multigrid).
    pub degree: usize,
    /// Lower edge of the target eigenvalue interval of the
    /// Jacobi-scaled fine operator `D⁻¹A`.
    pub eig_low: f64,
    /// Upper edge of the target eigenvalue interval (power-method
    /// estimate with a safety factor).
    pub eig_high: f64,
    /// Unknowns on the coarsest multigrid level (0 for Chebyshev).
    pub coarse_unknowns: usize,
    /// Stored non-zeros across all coarse-level operators and transfer
    /// operators (0 for Chebyshev).
    pub hierarchy_nnz: usize,
    /// Whether the workspace's cached setup (bounds or hierarchy) was
    /// reused — no power iterations or Galerkin products ran.
    pub reused: bool,
}

/// Setup and application statistics of the domain-decomposition layer
/// ([`Precond::AdditiveSchwarz`] and the sharded-solve driver): how the
/// problem was partitioned and what the halo traffic cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdStats {
    /// Subdomain slabs in the additive-Schwarz ladder (the *resolved*
    /// count when the request was auto).
    pub subdomains: usize,
    /// Execution shards the solve ran over (1 for the in-process
    /// preconditioner path; the worker count for sharded drivers).
    pub shards: usize,
    /// Overlap cells: cells that live in a neighbouring subdomain's
    /// extended region and travel on every halo exchange.
    pub halo_cells: usize,
    /// Wall-clock seconds spent staging and exchanging halo/overlap
    /// data across the whole solve.
    pub exchange_seconds: f64,
}

/// Statistics of one solve: what ran, how hard it worked and how well
/// it converged. Returned inside every [`Solution`](crate::Solution)
/// and cached by the model types behind their `last_solve_stats()`
/// accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverStats {
    /// What was being solved (human-readable tag).
    pub context: &'static str,
    /// The method that ran.
    pub method: Method,
    /// The preconditioner that actually **ran** — after automatic
    /// resolution, so a [`Precond::Multigrid`] request without grid
    /// dims reports the Chebyshev fallback here, and an auto
    /// [`Precond::AdditiveSchwarz`]`(0)` request reports the resolved
    /// subdomain count.
    pub preconditioner: Precond,
    /// The preconditioner the configuration **asked for**, before any
    /// automatic fallback or resolution. Equal to `preconditioner`
    /// when no substitution happened.
    pub requested_preconditioner: Precond,
    /// Number of unknowns.
    pub unknowns: usize,
    /// Worker threads used by the kernels.
    pub threads: usize,
    /// Iterations performed (0 for direct factorisations).
    pub iterations: usize,
    /// Relative residual after each iteration (empty for direct
    /// methods).
    pub residual_history: Vec<f64>,
    /// Achieved relative residual `‖b − A·x‖ / ‖b‖`.
    pub final_residual: f64,
    /// The tolerance that was requested.
    pub tolerance: f64,
    /// Wall-clock time of the solve (setup + iteration).
    pub wall_time: Duration,
    /// Wall-clock seconds of the preconditioner setup phase: diagonal
    /// screening, reordering, IC(0) factorisation, eigenvalue
    /// estimation, multigrid hierarchy construction. Near zero when the
    /// workspace caches hit.
    pub setup_seconds: f64,
    /// Wall-clock seconds of the iteration loop itself (the PCG
    /// iterations, or the whole factor-solve for direct methods).
    pub iterate_seconds: f64,
    /// Setup-phase detail for factorisation-based preconditioners
    /// (IC(0)); `None` for preconditioners with no setup phase.
    pub factorization: Option<FactorStats>,
    /// Setup-phase detail for the spectral preconditioners (Chebyshev /
    /// multigrid); `None` otherwise.
    pub spectral: Option<SpectralStats>,
    /// Partition/halo detail for domain-decomposed solves
    /// ([`Precond::AdditiveSchwarz`], sharded drivers); `None`
    /// otherwise.
    pub dd: Option<DdStats>,
}

impl SolverStats {
    /// Stats skeleton for a direct (non-iterative) solve.
    pub fn direct(
        context: &'static str,
        method: Method,
        unknowns: usize,
        final_residual: f64,
        wall_time: Duration,
    ) -> Self {
        Self {
            context,
            method,
            preconditioner: Precond::None,
            requested_preconditioner: Precond::None,
            unknowns,
            threads: 1,
            iterations: 0,
            residual_history: Vec::new(),
            final_residual,
            tolerance: 0.0,
            wall_time,
            setup_seconds: 0.0,
            iterate_seconds: wall_time.as_secs_f64(),
            factorization: None,
            spectral: None,
            dd: None,
        }
    }

    /// Whether the solve met its requested tolerance (direct solves
    /// report `true`).
    pub fn converged(&self) -> bool {
        self.iterations == 0 || self.final_residual <= self.tolerance
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({}) n={} threads={} iters={} residual={:.2e} in {:.2} ms",
            self.context,
            self.method,
            self.preconditioner,
            self.unknowns,
            self.threads,
            self.iterations,
            self.final_residual,
            self.wall_time.as_secs_f64() * 1e3,
        )
    }
}
