//! Chebyshev polynomial preconditioning and power-method eigenvalue
//! estimation for the Jacobi-scaled operator `D⁻¹A`.
//!
//! The Chebyshev preconditioner applies a fixed polynomial `q(D⁻¹A)`
//! chosen to approximate the inverse over a target eigenvalue interval
//! `[λ_lo, λ_hi]`. Unlike SSOR or IC(0) it needs **no triangular
//! solves** — each step is one SpMV plus elementwise work — so its
//! application has no sequential dependency and parallelises exactly
//! like the SpMV kernel, staying bitwise identical at any thread
//! count. The same routine doubles as the multigrid smoother, where
//! the target interval covers only the upper (oscillatory) part of the
//! spectrum.
//!
//! The interval comes from a few power-method iterations on `D⁻¹A`
//! (Rayleigh quotients in the `D`-weighted inner product, where the
//! scaled operator is symmetric), run once at setup and cached in the
//! [`PcgWorkspace`](crate::PcgWorkspace). Safety factors inflate the
//! upper bound — the polynomial stays positive on `(0, λ_hi]`, so an
//! *over*-estimated interval only degrades convergence slightly, while
//! an under-estimated `λ_hi` could make the even-degree polynomial
//! change sign beyond it and break positive definiteness.

use crate::csr::CsrMatrix;

/// Safety inflation applied to the power-method estimate of the
/// largest eigenvalue before it is used as the Chebyshev interval top.
pub(crate) const EIG_HIGH_SAFETY: f64 = 1.1;
/// Safety deflation applied to the smallest-eigenvalue estimate.
pub(crate) const EIG_LOW_SAFETY: f64 = 0.9;
/// Power-method iterations run at preconditioner setup.
pub(crate) const POWER_ITERS: usize = 12;
/// Chebyshev step count used when [`Precond::Multigrid`]
/// (crate::Precond::Multigrid) falls back to the polynomial
/// preconditioner on matrices with no declared grid shape.
pub(crate) const FALLBACK_CHEB_STEPS: usize = 4;

/// An estimated eigenvalue interval of the Jacobi-scaled operator
/// `D⁻¹A`, as returned by [`estimate_dinv_spectrum`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EigBounds {
    /// Smallest-eigenvalue estimate (power method on the shifted
    /// operator `λ_hi·I − D⁻¹A`).
    pub low: f64,
    /// Largest-eigenvalue estimate (raw Rayleigh quotient, no safety
    /// factor applied).
    pub high: f64,
}

/// Deterministic pseudo-random start vector for the power method: a
/// SplitMix64-style bit mix of the index, mapped to `[-0.5, 0.5)`.
/// Mixed signs and no structure keep the overlap with every
/// eigenvector generic, and determinism keeps solves reproducible.
fn seed_into(v: &mut [f64]) {
    for (i, vi) in v.iter_mut().enumerate() {
        let mut h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 31)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        *vi = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        let inv = 1.0 / norm;
        for x in v.iter_mut() {
            *x *= inv;
        }
    }
}

/// `D`-weighted Rayleigh quotient `(v, w)_D / (v, v)_D` where
/// `w = B·v` — the Rayleigh quotient of the symmetrised scaled
/// operator `D^{-1/2} A D^{-1/2}`.
fn rayleigh(diag: &[f64], v: &[f64], w: &[f64]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..v.len() {
        num += diag[i] * v[i] * w[i];
        den += diag[i] * v[i] * v[i];
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Power-method estimate of the extreme eigenvalues of `D⁻¹A`, for any
/// operator given as an apply closure. Runs `iters` iterations for the
/// top of the spectrum, then `iters` more on the shifted operator
/// `λ_hi·I − D⁻¹A` for the bottom. Allocates its own scratch — this is
/// a setup-phase routine; the result is cached by the callers.
pub(crate) fn estimate_bounds_with<F>(apply: &F, diag: &[f64], iters: usize) -> EigBounds
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = diag.len();
    if n == 0 {
        return EigBounds {
            low: 1.0,
            high: 1.0,
        };
    }
    let mut v = vec![0.0; n];
    let mut w = vec![0.0; n];
    seed_into(&mut v);
    normalize(&mut v);
    let mut high = 1.0;
    for _ in 0..iters {
        apply(&v, &mut w);
        for i in 0..n {
            w[i] /= diag[i];
        }
        high = rayleigh(diag, &v, &w);
        std::mem::swap(&mut v, &mut w);
        normalize(&mut v);
    }
    aeropack_obs::counter!("solver.cheb.power_iterations", iters);
    // Bottom of the spectrum: power method on `s·I − B` whose top
    // eigenvalue is `s − λ_min`. The shift `s` is the (possibly
    // slightly low) λ_max estimate — eigenvalues marginally above it
    // contribute tiny magnitudes and do not disturb the dominance of
    // `s − λ_min`.
    let s = high;
    seed_into(&mut v);
    normalize(&mut v);
    let mut shifted_top = 0.0;
    for _ in 0..iters {
        apply(&v, &mut w);
        for i in 0..n {
            w[i] = s * v[i] - w[i] / diag[i];
        }
        shifted_top = rayleigh(diag, &v, &w);
        std::mem::swap(&mut v, &mut w);
        normalize(&mut v);
    }
    aeropack_obs::counter!("solver.cheb.power_iterations", iters);
    let low = (s - shifted_top).max(0.0);
    EigBounds { low, high }
}

/// Power-method estimate of the eigenvalue interval of `D⁻¹A` for a
/// sparse matrix: `iters` iterations for each end of the spectrum
/// (Rayleigh quotients in the `D`-weighted inner product). The
/// estimates are *raw* — the preconditioner setup applies its own
/// safety factors on top. Deterministic: the start vector is a fixed
/// hash of the index.
///
/// # Panics
///
/// Panics if the matrix has a non-positive diagonal entry.
pub fn estimate_dinv_spectrum(a: &CsrMatrix, iters: usize) -> EigBounds {
    let diag = a.diag();
    assert!(
        diag.iter().all(|&d| d > 0.0),
        "power-method spectrum estimation needs a positive diagonal"
    );
    estimate_bounds_with(&|x, y| a.spmv_into(x, y, 1), &diag, iters)
}

/// Reusable scratch of one Chebyshev application: the scaled residual,
/// the direction and the SpMV output buffer. Held by the workspace
/// cache (preconditioner) or per multigrid level (smoother) so warm
/// applications are allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChebWork {
    rs: Vec<f64>,
    d: Vec<f64>,
    w: Vec<f64>,
}

impl ChebWork {
    pub(crate) fn ensure(&mut self, n: usize) {
        self.rs.resize(n, 0.0);
        self.d.resize(n, 0.0);
        self.w.resize(n, 0.0);
    }
}

/// Runs `steps` Chebyshev steps for `A·x ≈ r` from a zero initial
/// guess, over the Jacobi-scaled operator `B = D⁻¹A` with target
/// interval `[low, high]` (Saad, *Iterative Methods*, Alg. 12.1, in
/// scaled-residual form). `x` is overwritten with the polynomial
/// application `q(B)·D⁻¹·r`; the map is linear, symmetric and positive
/// definite, which is what PCG requires of a preconditioner. Costs
/// `steps − 1` SpMVs plus elementwise work; no triangular solves.
///
/// Allocation-free once `work` is warm.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cheb_apply<F>(
    apply: &F,
    diag: &[f64],
    low: f64,
    high: f64,
    steps: usize,
    r: &[f64],
    x: &mut [f64],
    work: &mut ChebWork,
) where
    F: Fn(&[f64], &mut [f64]),
{
    let n = r.len();
    work.ensure(n);
    let ChebWork { rs, d, w } = work;
    let theta = 0.5 * (high + low);
    let delta = 0.5 * (high - low);
    // Degenerate interval (λ_lo = λ_hi, e.g. an identity-like
    // operator): one exact scaled-Jacobi step.
    if delta <= 0.0 || steps <= 1 {
        for i in 0..n {
            x[i] = r[i] / (diag[i] * theta);
        }
        return;
    }
    let sigma1 = theta / delta;
    let mut rho = 1.0 / sigma1;
    for i in 0..n {
        rs[i] = r[i] / diag[i];
        d[i] = rs[i] / theta;
        x[i] = d[i];
    }
    for _ in 1..steps {
        apply(d, w);
        for i in 0..n {
            rs[i] -= w[i] / diag[i];
        }
        let rho_new = 1.0 / (2.0 * sigma1 - rho);
        let a_coef = rho_new * rho;
        let b_coef = 2.0 * rho_new / delta;
        for i in 0..n {
            d[i] = a_coef * d[i] + b_coef * rs[i];
            x[i] += d[i];
        }
        rho = rho_new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> CsrMatrix {
        CsrMatrix::from_row_fn(n, 1, |i, row| {
            if i > 0 {
                row.push((i - 1, -1.0));
            }
            row.push((i, 2.0));
            if i + 1 < n {
                row.push((i + 1, -1.0));
            }
        })
    }

    #[test]
    fn power_method_recovers_tridiagonal_spectrum() {
        // For tridiag(-1, 2, -1) the scaled operator D⁻¹A has the
        // analytic spectrum λ_k = 1 − cos(kπ/(n+1)), k = 1..n.
        let n = 16;
        let a = tridiag(n);
        let h = std::f64::consts::PI / (n as f64 + 1.0);
        let exact_low = 1.0 - h.cos();
        let exact_high = 1.0 - (n as f64 * h).cos();
        let est = estimate_dinv_spectrum(&a, 120);
        assert!(
            (est.high - exact_high).abs() <= 0.02 * exact_high,
            "λ_max estimate {} vs analytic {exact_high}",
            est.high
        );
        assert!(
            (est.low - exact_low).abs() <= 0.15 * exact_low + 1e-12,
            "λ_min estimate {} vs analytic {exact_low}",
            est.low
        );
        // The production safety factors must bracket the spectrum.
        assert!(est.high * EIG_HIGH_SAFETY >= exact_high);
        assert!(est.low * EIG_LOW_SAFETY <= exact_low);
    }

    #[test]
    fn power_method_is_deterministic() {
        let a = tridiag(33);
        let e1 = estimate_dinv_spectrum(&a, 20);
        let e2 = estimate_dinv_spectrum(&a, 20);
        assert_eq!(e1.high.to_bits(), e2.high.to_bits());
        assert_eq!(e1.low.to_bits(), e2.low.to_bits());
    }

    #[test]
    fn cheb_apply_reduces_error_with_degree() {
        // Higher-degree polynomials approximate A⁻¹ better: the
        // residual of x_k = q_k(B) D⁻¹ r must shrink as k grows.
        let n = 32;
        let a = tridiag(n);
        let diag = a.diag();
        let bounds = estimate_dinv_spectrum(&a, 60);
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.2).collect();
        let apply = |x: &[f64], y: &mut [f64]| a.spmv_into(x, y, 1);
        let mut work = ChebWork::default();
        let mut last = f64::INFINITY;
        for steps in [1, 3, 6, 12] {
            let mut x = vec![0.0; n];
            cheb_apply(
                &apply,
                &diag,
                bounds.low * EIG_LOW_SAFETY,
                bounds.high * EIG_HIGH_SAFETY,
                steps,
                &r,
                &mut x,
                &mut work,
            );
            let mut ax = vec![0.0; n];
            a.spmv_into(&x, &mut ax, 1);
            let resid = r
                .iter()
                .zip(&ax)
                .map(|(b, y)| (b - y) * (b - y))
                .sum::<f64>()
                .sqrt();
            assert!(resid < last, "steps={steps}: residual {resid} vs {last}");
            last = resid;
        }
    }
}
