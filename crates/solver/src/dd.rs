//! Domain decomposition: slab partitions, additive-Schwarz IC(0)
//! preconditioning, and the sharded PCG driver.
//!
//! The structured grid is cut into axis-aligned slabs along its last
//! (slowest-varying) axis, so every subdomain's owned and extended cell
//! ranges are contiguous in the global index space. Two layers build on
//! the [`Partition`]:
//!
//! - [`Precond::AdditiveSchwarz`] (wired through `solve_sparse`):
//!   additive Schwarz over the partition's *tiles*,
//!   `M⁻¹ = Σᵢ Rᵢᵀ Ãᵢ⁻¹ Rᵢ`. Each tile carries an IC(0) factor of its
//!   extended-range principal submatrix (couplings leaving the
//!   extended range are dropped — Dirichlet truncation) and solves it
//!   serially; tiles are independent, so the preconditioner applies
//!   barrier-free and parallelises across tiles instead of across the
//!   level schedule of one global trisolve. Tiles contribute their
//!   *full* extended-range solutions (summed in fixed tile order —
//!   keeping `M⁻¹` symmetric positive definite, which CG needs; the
//!   cheaper "restricted" owned-only write-back is nonsymmetric and
//!   stalls CG near tight tolerances), so the result is bit-identical
//!   at any thread count.
//! - [`ShardedSolve`]: a PCG driver that groups tiles into *shards*
//!   executed by [`SlabOperator`]s — in-process [`SlabWorker`]s or
//!   remote worker processes fed a serialisable [`SlabSpec`] over the
//!   `aeropack-serve` frame codec. Shard boundaries always align with
//!   tile boundaries and global dot products use a fixed-order tree
//!   reduction, so the solution is bit-identical at any shard count and
//!   any thread count.
//!
//! The tile ladder is the *mathematical* knob (it changes the
//! preconditioner and hence the iteration count); the shard count is
//! purely an *execution* knob (it never changes a single bit of the
//! result). The `AEROPACK_SHARDS` environment variable picks the
//! latter; see [`shards_from_env`].

use std::ops::Range;
use std::time::{Duration, Instant};

use crate::config::{Reorder, Solution, SolverConfig};
use crate::csr::CsrMatrix;
use crate::error::SolverError;
use crate::halo::HaloExchange;
use crate::ic0::Ic0Factor;
use crate::stats::{DdStats, FactorStats, Method, Precond, SolverStats};

/// Auto tile sizing: one tile per this many grid planes (so a 64³ grid
/// resolves `Precond::AdditiveSchwarz(0)` to 8 tiles).
const AUTO_PLANES_PER_TILE: usize = 8;

/// Fixed reduction block of the deterministic tree dot product.
const DOT_BLOCK: usize = 1024;

/// One axis-aligned slab of the grid: a contiguous range of *owned*
/// planes plus an *extended* range that adds at most one halo plane on
/// each side (clipped at the domain boundary). All fields are plane
/// indices; multiply by the plane size for cell indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slab {
    /// First owned plane.
    pub own_start: usize,
    /// One past the last owned plane.
    pub own_end: usize,
    /// First plane of the extended (owned + halo) range.
    pub ext_start: usize,
    /// One past the last plane of the extended range.
    pub ext_end: usize,
}

impl Slab {
    fn new(own_start: usize, own_end: usize, nplanes: usize) -> Self {
        Self {
            own_start,
            own_end,
            ext_start: own_start.saturating_sub(1),
            ext_end: (own_end + 1).min(nplanes),
        }
    }

    /// Owned cell range in the global vector (`plane` cells per plane).
    pub fn owned_cells(&self, plane: usize) -> Range<usize> {
        self.own_start * plane..self.own_end * plane
    }

    /// Extended (owned + halo) cell range in the global vector.
    pub fn ext_cells(&self, plane: usize) -> Range<usize> {
        self.ext_start * plane..self.ext_end * plane
    }

    /// Halo cells of this slab (extended minus owned).
    pub fn halo_cells(&self, plane: usize) -> usize {
        ((self.own_start - self.ext_start) + (self.ext_end - self.own_end)) * plane
    }
}

/// A slab partition of the structured grid: the grid's plane shape plus
/// the ordered tile list. Built from [`SolverConfig::grid_dims`] when
/// available (slabs cut along `nz`); without grid dims the vector is
/// treated as a 1-D chain of `n` single-cell planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    n: usize,
    plane: usize,
    nplanes: usize,
    tiles: Vec<Slab>,
}

impl Partition {
    /// Partitions `n` unknowns into `requested` tiles (0 = auto: one
    /// tile per [`AUTO_PLANES_PER_TILE`] planes). `grid_dims` must
    /// multiply out to `n` when given; the tile count is clamped so
    /// every tile owns at least **two** planes. The floor is a
    /// bit-identity requirement, not a tuning choice: with two-plane
    /// tiles each cell lies in at most two tiles' extended ranges, so
    /// a shard boundary can only ever split a two-term overlap sum —
    /// which re-associates bit-exactly. One-plane tiles would put
    /// three contributions on a cell, and pre-summing them per shard
    /// would round differently at different shard counts.
    pub fn new(
        n: usize,
        grid_dims: Option<(usize, usize, usize)>,
        requested: usize,
    ) -> Result<Self, SolverError> {
        if n == 0 {
            return Err(SolverError::invalid("cannot partition an empty system"));
        }
        let (plane, nplanes) = match grid_dims {
            Some((nx, ny, nz)) => {
                if nx * ny * nz != n {
                    return Err(SolverError::invalid(format!(
                        "grid dims {nx}×{ny}×{nz} do not match {n} unknowns"
                    )));
                }
                (nx * ny, nz)
            }
            None => (1, n),
        };
        let max_tiles = (nplanes / 2).max(1);
        let count = if requested == 0 {
            nplanes.div_ceil(AUTO_PLANES_PER_TILE).min(max_tiles)
        } else {
            requested.min(max_tiles)
        };
        let mut tiles = Vec::with_capacity(count);
        for (start, end) in split_ranges(nplanes, count) {
            tiles.push(Slab::new(start, end, nplanes));
        }
        Ok(Self {
            n,
            plane,
            nplanes,
            tiles,
        })
    }

    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cells per grid plane (1 without grid dims).
    pub fn plane(&self) -> usize {
        self.plane
    }

    /// Grid planes along the partition axis.
    pub fn nplanes(&self) -> usize {
        self.nplanes
    }

    /// The ordered tile list.
    pub fn tiles(&self) -> &[Slab] {
        &self.tiles
    }

    /// Number of tiles (the resolved subdomain count).
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Total halo cells across all tiles.
    pub fn halo_cells(&self) -> usize {
        self.tiles.iter().map(|t| t.halo_cells(self.plane)).sum()
    }

    /// Groups the tiles into `count` contiguous shards (clamped to the
    /// tile count). Returns each shard's slab plus the range of tile
    /// indices it owns; shard boundaries always coincide with tile
    /// boundaries, which is what keeps the sharded solve bit-identical
    /// to the single-process one.
    pub fn shard_layout(&self, count: usize) -> Vec<(Slab, Range<usize>)> {
        let shards = count.clamp(1, self.tiles.len());
        let mut layout = Vec::with_capacity(shards);
        for (lo, hi) in split_ranges(self.tiles.len(), shards) {
            let own_start = self.tiles[lo].own_start;
            let own_end = self.tiles[hi - 1].own_end;
            layout.push((Slab::new(own_start, own_end, self.nplanes), lo..hi));
        }
        layout
    }
}

/// Splits `len` items into `count` contiguous near-even ranges (the
/// first `len % count` ranges get one extra item).
fn split_ranges(len: usize, count: usize) -> impl Iterator<Item = (usize, usize)> {
    let count = count.clamp(1, len.max(1));
    let base = len / count;
    let rem = len % count;
    let mut start = 0;
    (0..count).map(move |i| {
        let size = base + usize::from(i < rem);
        let range = (start, start + size);
        start += size;
        range
    })
}

/// Deterministic dot product: serial sums over fixed
/// 1024-element blocks combined by a pairwise tree. The block
/// boundaries and combine order depend only on the vector length, so
/// the result is bit-identical at any partition, shard, or thread
/// count — this is the reduction every [`ShardedSolve`] global dot
/// product goes through.
pub fn tree_dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    dot_blocks(a, b, 0, a.len().div_ceil(DOT_BLOCK))
}

fn dot_blocks(a: &[f64], b: &[f64], first: usize, count: usize) -> f64 {
    if count == 1 {
        let lo = first * DOT_BLOCK;
        let hi = (lo + DOT_BLOCK).min(a.len());
        let mut sum = 0.0;
        for i in lo..hi {
            sum += a[i] * b[i];
        }
        return sum;
    }
    let half = count / 2;
    dot_blocks(a, b, first, half) + dot_blocks(a, b, first + half, count - half)
}

/// `‖a‖₂` through the same fixed-order reduction as [`tree_dot`].
pub fn tree_norm(a: &[f64]) -> f64 {
    tree_dot(a, a).sqrt()
}

/// Reads the `AEROPACK_SHARDS` environment knob: how many worker
/// shards sharded drivers should use. `None` when unset, unparsable,
/// or zero.
pub fn shards_from_env() -> Option<usize> {
    std::env::var("AEROPACK_SHARDS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&s| s >= 1)
}

/// One tile's IC(0) solver: the extended-range principal submatrix
/// (local indices, Dirichlet truncation at the extended boundary), its
/// factor, and pre-allocated staging scratch.
#[derive(Debug, Clone)]
struct TileSolver {
    /// Extended cell range, global coordinates.
    ext: Range<usize>,
    local: CsrMatrix,
    /// Source value index feeding each local value (allocation-free
    /// numeric refresh when the matrix values change in place).
    val_map: Vec<usize>,
    factor: Ic0Factor,
    shift_retries: usize,
    rhs: Vec<f64>,
    sol: Vec<f64>,
    /// Cumulative seconds staging `r`/`z` slices in and out.
    exchange_seconds: f64,
}

impl TileSolver {
    /// Extracts the tile's extended principal submatrix from `src`,
    /// whose rows cover global cells `src_base..src_base + src.n()`,
    /// and factors it. The tile's extended range must lie within the
    /// source rows.
    fn build(
        src: &CsrMatrix,
        src_base: usize,
        slab: Slab,
        plane: usize,
        context: &'static str,
    ) -> Result<Self, SolverError> {
        let ext = slab.ext_cells(plane);
        let m = ext.len();
        let rp = src.row_offsets();
        let ci = src.col_indices();
        let va = src.values();
        let mut row_ptr = Vec::with_capacity(m + 1);
        row_ptr.push(0);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut val_map = Vec::new();
        for cell in ext.clone() {
            let r = cell - src_base;
            for k in rp[r]..rp[r + 1] {
                let gc = ci[k] + src_base;
                if ext.contains(&gc) {
                    cols.push(gc - ext.start);
                    vals.push(va[k]);
                    val_map.push(k);
                }
            }
            row_ptr.push(cols.len());
        }
        let local = CsrMatrix::from_parts(m, row_ptr, cols, vals);
        let (factor, shift_retries) =
            Ic0Factor::new(&local).map_err(|_| SolverError::Singular { context })?;
        Ok(Self {
            ext,
            local,
            val_map,
            factor,
            shift_retries,
            rhs: vec![0.0; m],
            sol: vec![0.0; m],
            exchange_seconds: 0.0,
        })
    }

    /// Refreshes the local values from `src` (same pattern, new
    /// numbers) and refactors in place. Allocation-free.
    fn refresh(&mut self, src: &CsrMatrix, context: &'static str) -> Result<usize, SolverError> {
        let sv = src.values();
        let lv = self.local.values_mut();
        for (dst, &k) in lv.iter_mut().zip(&self.val_map) {
            *dst = sv[k];
        }
        self.shift_retries = self
            .factor
            .refactor(&self.local)
            .map_err(|_| SolverError::Singular { context })?;
        Ok(self.shift_retries)
    }

    /// Stage `r[ext]` in and solve the tile factor into `self.sol`.
    /// `r` starts at global cell `r_base`. The inner trisolve is
    /// always serial — tiles are the unit of parallelism.
    fn solve(&mut self, r_base: usize, r: &[f64]) {
        let t0 = Instant::now();
        self.rhs
            .copy_from_slice(&r[self.ext.start - r_base..self.ext.end - r_base]);
        self.exchange_seconds += t0.elapsed().as_secs_f64();
        self.factor.apply(&self.rhs, &mut self.sol, 1);
    }

    /// Accumulates the tile's full extended-range solution into `z`
    /// (`z[cell] += sol[cell]`, `z` starting at global cell `z_base`).
    /// Overlap cells receive one contribution per covering tile —
    /// `M⁻¹ = Σᵢ Rᵢᵀ Ãᵢ⁻¹ Rᵢ` — which keeps the summed operator
    /// symmetric positive definite. (Restricted owned-only writes are
    /// cheaper but nonsymmetric, and CG stalls on them just short of
    /// tight tolerances.)
    fn accumulate(&mut self, z_base: usize, z: &mut [f64]) {
        let t0 = Instant::now();
        for (dst, &s) in z[self.ext.start - z_base..self.ext.end - z_base]
            .iter_mut()
            .zip(&self.sol)
        {
            *dst += s;
        }
        self.exchange_seconds += t0.elapsed().as_secs_f64();
    }
}

/// The additive-Schwarz preconditioner: one [`TileSolver`] per tile,
/// summing full extended-range contributions (`M⁻¹ = Σᵢ Rᵢᵀ Ãᵢ⁻¹ Rᵢ`,
/// SPD and therefore CG-safe). The trisolves are independent and may
/// run on scoped threads; the accumulation pass is always serial in
/// tile-index order, so the result is bit-identical at any thread
/// count — and at any shard count, because shards hold contiguous tile
/// runs and accumulate in the same global order.
#[derive(Debug, Clone)]
pub(crate) struct SchwarzSet {
    tiles: Vec<TileSolver>,
}

impl SchwarzSet {
    /// Builds and factors every tile of `slabs` against `src` (rows
    /// covering global cells `src_base..`).
    pub(crate) fn build(
        src: &CsrMatrix,
        src_base: usize,
        slabs: &[Slab],
        plane: usize,
        context: &'static str,
    ) -> Result<Self, SolverError> {
        let mut tiles = Vec::with_capacity(slabs.len());
        for &slab in slabs {
            tiles.push(TileSolver::build(src, src_base, slab, plane, context)?);
        }
        aeropack_obs::counter!("solver.dd.tile_factorizations", tiles.len());
        Ok(Self { tiles })
    }

    /// Number of tiles.
    pub(crate) fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Refreshes every tile factor from new matrix values (same
    /// pattern). Returns the summed diagonal-shift retries.
    pub(crate) fn refresh(
        &mut self,
        src: &CsrMatrix,
        context: &'static str,
    ) -> Result<usize, SolverError> {
        let mut retries = 0;
        for tile in &mut self.tiles {
            retries += tile.refresh(src, context)?;
        }
        aeropack_obs::counter!("solver.dd.tile_refactorizations", self.tiles.len());
        Ok(retries)
    }

    /// Applies `z = M⁻¹·r` additive-Schwarz style. `r` is a slice
    /// starting at global cell `r_base` and must cover every tile's
    /// extended range; `z` starts at `z_base` and must cover every
    /// extended range too. The covered region of `z` is zeroed, then
    /// each tile's full extended-range solution is accumulated in
    /// tile-index order. With `threads > 1` the trisolves run on
    /// scoped threads over contiguous tile chunks; the accumulation
    /// stays serial, so the result is bit-identical to serial.
    pub(crate) fn apply(
        &mut self,
        r_base: usize,
        r: &[f64],
        z_base: usize,
        z: &mut [f64],
        threads: usize,
    ) {
        aeropack_obs::counter!("solver.dd.applies");
        let lo = self.tiles[0].ext.start;
        let hi = self.tiles[self.tiles.len() - 1].ext.end;
        z[lo - z_base..hi - z_base].fill(0.0);
        let workers = threads.clamp(1, self.tiles.len());
        if workers <= 1 {
            for tile in &mut self.tiles {
                tile.solve(r_base, r);
                tile.accumulate(z_base, z);
            }
            return;
        }
        let chunk = self.tiles.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for group in self.tiles.chunks_mut(chunk) {
                scope.spawn(move || {
                    for tile in group {
                        tile.solve(r_base, r);
                    }
                });
            }
        });
        for tile in &mut self.tiles {
            tile.accumulate(z_base, z);
        }
    }

    /// Cumulative staging seconds across all tiles.
    pub(crate) fn exchange_seconds(&self) -> f64 {
        self.tiles.iter().map(|t| t.exchange_seconds).sum()
    }

    /// Aggregated factor statistics: summed fill, per-tile level maxima
    /// (the serial depth of the *largest* tile — the whole point is
    /// that tiles never synchronise with each other).
    pub(crate) fn factor_stats(&self, factor_time: Duration, reused: bool) -> FactorStats {
        FactorStats {
            factor_time,
            fill_nnz: self.tiles.iter().map(|t| t.factor.fill_nnz()).sum(),
            forward_levels: self
                .tiles
                .iter()
                .map(|t| t.factor.forward_levels())
                .max()
                .unwrap_or(0),
            backward_levels: self
                .tiles
                .iter()
                .map(|t| t.factor.backward_levels())
                .max()
                .unwrap_or(0),
            diagonal_shift: self
                .tiles
                .iter()
                .map(|t| t.factor.shift())
                .fold(0.0, f64::max),
            reused,
            reordered: false,
        }
    }

    /// Summed diagonal-shift retries of the last (re)factorisation.
    pub(crate) fn shift_retries(&self) -> usize {
        self.tiles.iter().map(|t| t.shift_retries).sum()
    }
}

/// Everything a worker needs to act as one shard of a sharded solve:
/// the shard's slab, its tiles, and the extended-range rows of the
/// global matrix (square over the extended cells, columns truncated to
/// the extended range, local indices). Plain vectors so it serialises
/// over the `aeropack-serve` frame codec.
#[derive(Debug, Clone, PartialEq)]
pub struct SlabSpec {
    /// Cells per grid plane.
    pub plane: usize,
    /// Total planes in the global grid.
    pub nplanes: usize,
    /// This shard's slab.
    pub slab: Slab,
    /// The tiles this shard owns (global plane coordinates).
    pub tiles: Vec<Slab>,
    /// CSR row pointers of the extended-range submatrix.
    pub row_ptr: Vec<usize>,
    /// CSR column indices (local to the extended range).
    pub col_idx: Vec<usize>,
    /// CSR values.
    pub vals: Vec<f64>,
}

impl SlabSpec {
    /// Extracts the shard submatrix for `slab` from the global matrix.
    /// Fails when an *owned* row couples outside the extended range —
    /// the slab protocol carries exactly one halo plane, so the matrix
    /// bandwidth along the partition axis must not exceed one plane.
    pub fn extract(
        a: &CsrMatrix,
        part: &Partition,
        slab: Slab,
        tiles: &[Slab],
    ) -> Result<Self, SolverError> {
        let plane = part.plane();
        let ext = slab.ext_cells(plane);
        let own = slab.owned_cells(plane);
        let rp = a.row_offsets();
        let ci = a.col_indices();
        let va = a.values();
        let mut row_ptr = Vec::with_capacity(ext.len() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for cell in ext.clone() {
            let owned = own.contains(&cell);
            for k in rp[cell]..rp[cell + 1] {
                let c = ci[k];
                if ext.contains(&c) {
                    col_idx.push(c - ext.start);
                    vals.push(va[k]);
                } else if owned {
                    return Err(SolverError::invalid(format!(
                        "sharded solve needs matrix bandwidth of at most one grid \
                         plane: row {cell} couples to column {c} outside its \
                         subdomain halo"
                    )));
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Self {
            plane,
            nplanes: part.nplanes(),
            slab,
            tiles: tiles.to_vec(),
            row_ptr,
            col_idx,
            vals,
        })
    }
}

/// One shard of a sharded solve. The driver stages the shard's
/// extended-range slices; the operator applies the shard's matrix rows
/// (owned-range output) and its Schwarz tiles (extended-range output,
/// accumulated across shards by the coordinator). Implemented
/// in-process by [`SlabWorker`] and across processes by the
/// `aeropack-serve` shard worker protocol.
pub trait SlabOperator: Send {
    /// The shard's slab.
    fn slab(&self) -> Slab;
    /// `y_own = A_slab · x_ext` — exact global matrix rows for the
    /// owned cells (no truncation on owned rows).
    fn apply_a(&mut self, x_ext: &[f64], y_own: &mut [f64]) -> Result<(), SolverError>;
    /// `z_ext = Σᵢ Rᵢᵀ Ãᵢ⁻¹ Rᵢ · r_ext` over this shard's tiles — the
    /// full extended-range Schwarz contribution. The coordinator sums
    /// shard contributions in shard order, which together with the
    /// in-shard tile order makes the global accumulation sequence
    /// identical at every shard count.
    fn apply_m(&mut self, r_ext: &[f64], z_ext: &mut [f64]) -> Result<(), SolverError>;
    /// Cumulative staging seconds spent on the operator side.
    fn exchange_seconds(&self) -> f64 {
        0.0
    }
}

/// In-process shard worker: owns the extended-range submatrix and the
/// shard's tile factors. Also the compute core of the out-of-process
/// serve worker (which feeds it a [`SlabSpec`] decoded off the wire) —
/// one implementation on both sides is what makes cross-process solves
/// bit-identical to in-process ones by construction.
#[derive(Debug, Clone)]
pub struct SlabWorker {
    plane: usize,
    slab: Slab,
    local: CsrMatrix,
    schwarz: SchwarzSet,
}

impl SlabWorker {
    /// Builds a worker from a spec (validates shapes, factors tiles).
    pub fn new(spec: SlabSpec, context: &'static str) -> Result<Self, SolverError> {
        let ext = spec.slab.ext_cells(spec.plane);
        let m = ext.len();
        if spec.row_ptr.len() != m + 1
            || spec.col_idx.len() != spec.vals.len()
            || spec.row_ptr.last() != Some(&spec.col_idx.len())
            || spec.col_idx.iter().any(|&c| c >= m)
        {
            return Err(SolverError::invalid(
                "slab spec submatrix shape does not match its slab",
            ));
        }
        for t in &spec.tiles {
            if t.ext_start < spec.slab.ext_start || t.ext_end > spec.slab.ext_end {
                return Err(SolverError::invalid(
                    "slab spec tile reaches outside the shard's extended range",
                ));
            }
        }
        let local = CsrMatrix::from_parts(m, spec.row_ptr, spec.col_idx, spec.vals);
        let schwarz = SchwarzSet::build(&local, ext.start, &spec.tiles, spec.plane, context)?;
        Ok(Self {
            plane: spec.plane,
            slab: spec.slab,
            local,
            schwarz,
        })
    }

    /// Convenience: extract + build against the global matrix.
    pub fn from_global(
        a: &CsrMatrix,
        part: &Partition,
        slab: Slab,
        tiles: &[Slab],
        context: &'static str,
    ) -> Result<Self, SolverError> {
        Self::new(SlabSpec::extract(a, part, slab, tiles)?, context)
    }
}

impl SlabOperator for SlabWorker {
    fn slab(&self) -> Slab {
        self.slab
    }

    fn apply_a(&mut self, x_ext: &[f64], y_own: &mut [f64]) -> Result<(), SolverError> {
        let ext = self.slab.ext_cells(self.plane);
        let own = self.slab.owned_cells(self.plane);
        if x_ext.len() != ext.len() || y_own.len() != own.len() {
            return Err(SolverError::invalid("shard apply_a slice length mismatch"));
        }
        let rp = self.local.row_offsets();
        let ci = self.local.col_indices();
        let va = self.local.values();
        let first = own.start - ext.start;
        for (o, y) in y_own.iter_mut().enumerate() {
            let r = first + o;
            let mut sum = 0.0;
            for k in rp[r]..rp[r + 1] {
                sum += va[k] * x_ext[ci[k]];
            }
            *y = sum;
        }
        Ok(())
    }

    fn apply_m(&mut self, r_ext: &[f64], z_ext: &mut [f64]) -> Result<(), SolverError> {
        let ext = self.slab.ext_cells(self.plane);
        if r_ext.len() != ext.len() || z_ext.len() != ext.len() {
            return Err(SolverError::invalid("shard apply_m slice length mismatch"));
        }
        self.schwarz.apply(ext.start, r_ext, ext.start, z_ext, 1);
        Ok(())
    }

    fn exchange_seconds(&self) -> f64 {
        self.schwarz.exchange_seconds()
    }
}

/// Additive-Schwarz PCG across shards: the coordinator owns
/// the global vectors, runs the (serial, fixed-order) vector updates
/// and tree-reduced dot products, and fans matrix/preconditioner
/// applications out to the [`SlabOperator`]s through a pre-allocated
/// [`HaloExchange`]. Bit-identical at any shard count and any thread
/// count; warm [`ShardedSolve::solve_into`] calls are allocation-free
/// at `threads = 1`.
pub struct ShardedSolve {
    part: Partition,
    slabs: Vec<Slab>,
    ops: Vec<Box<dyn SlabOperator>>,
    halo: HaloExchange,
    ext: Vec<Vec<f64>>,
    zext: Vec<Vec<f64>>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    history: Vec<f64>,
    cfg: SolverConfig,
    exchange_seconds: f64,
}

impl ShardedSolve {
    /// Builds an in-process sharded solver: partitions the grid per the
    /// config (an `AdditiveSchwarz(k)` preconditioner fixes the tile
    /// ladder; anything else gets the auto ladder), groups tiles into
    /// `shards` [`SlabWorker`]s. RCM reordering is incompatible with
    /// slab partitioning and is rejected.
    pub fn new(a: &CsrMatrix, cfg: &SolverConfig, shards: usize) -> Result<Self, SolverError> {
        if cfg.get_reorder() == Reorder::Rcm {
            return Err(SolverError::invalid(
                "RCM reordering scrambles the slab partition a sharded solve is \
                 built on (use Reorder::None or Reorder::Auto)",
            ));
        }
        let requested = match cfg.get_preconditioner() {
            Precond::AdditiveSchwarz(k) => k,
            _ => 0,
        };
        let part = Partition::new(a.n(), cfg.get_grid_dims(), requested)?;
        let mut ops: Vec<Box<dyn SlabOperator>> = Vec::new();
        for (slab, tile_range) in part.shard_layout(shards) {
            ops.push(Box::new(SlabWorker::from_global(
                a,
                &part,
                slab,
                &part.tiles()[tile_range],
                cfg.get_context(),
            )?));
        }
        Self::from_operators(part, ops, cfg)
    }

    /// Builds the driver from already-constructed shard operators (the
    /// serve layer passes a mix of in-process and remote shards). The
    /// operators must be in slab order and cover the partition.
    pub fn from_operators(
        part: Partition,
        ops: Vec<Box<dyn SlabOperator>>,
        cfg: &SolverConfig,
    ) -> Result<Self, SolverError> {
        if ops.is_empty() {
            return Err(SolverError::invalid(
                "sharded solve needs at least one shard",
            ));
        }
        let slabs: Vec<Slab> = ops.iter().map(|o| o.slab()).collect();
        let mut cursor = 0;
        for slab in &slabs {
            if slab.own_start != cursor {
                return Err(SolverError::invalid(
                    "shard slabs must be contiguous, ordered, and cover the grid",
                ));
            }
            cursor = slab.own_end;
        }
        if cursor != part.nplanes() {
            return Err(SolverError::invalid(
                "shard slabs must cover every grid plane",
            ));
        }
        let plane = part.plane();
        let n = part.n();
        let ext: Vec<Vec<f64>> = slabs
            .iter()
            .map(|s| vec![0.0; s.ext_cells(plane).len()])
            .collect();
        let zext = ext.clone();
        let halo = HaloExchange::new(plane, &slabs);
        aeropack_obs::counter!("solver.dd.sharded_solvers");
        Ok(Self {
            part,
            slabs,
            ops,
            halo,
            ext,
            zext,
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
            history: Vec::new(),
            cfg: cfg.clone(),
            exchange_seconds: 0.0,
        })
    }

    /// The partition this solver runs over.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.ops.len()
    }

    /// Solves `A·x = b` from a zero initial guess.
    pub fn solve(&mut self, b: &[f64]) -> Result<Solution, SolverError> {
        let mut x = vec![0.0; self.part.n()];
        let stats = self.solve_into(b, &mut x)?;
        Ok(Solution { x, stats })
    }

    /// Solves into a caller-owned `x` (overwritten; zero initial
    /// guess). Warm calls are allocation-free at `threads = 1` when
    /// residual history is off.
    pub fn solve_into(&mut self, b: &[f64], x: &mut [f64]) -> Result<SolverStats, SolverError> {
        let n = self.part.n();
        if b.len() != n || x.len() != n {
            return Err(SolverError::invalid(format!(
                "sharded solve dimension mismatch: matrix is {n}, rhs {}, x {}",
                b.len(),
                x.len()
            )));
        }
        let t0 = Instant::now();
        aeropack_obs::counter!("solver.dd.sharded_solves");
        let Self {
            part,
            slabs,
            ops,
            halo,
            ext,
            zext,
            r,
            z,
            p,
            ap,
            history,
            cfg,
            exchange_seconds,
        } = self;
        let plane = part.plane();
        let threads = cfg.get_threads().max(1);
        let tolerance = cfg.get_tolerance();
        let budget = cfg.iteration_budget(n);
        let record = cfg.get_record_history();
        let context = cfg.get_context();
        history.clear();
        x.fill(0.0);
        let tile_count = part.tile_count();
        let shard_count = ops.len();
        let halo_cells: usize = slabs.iter().map(|s| s.halo_cells(plane)).sum();
        let requested = cfg.get_preconditioner();
        let stats = move |iterations: usize,
                          residual: f64,
                          history: &Vec<f64>,
                          exchange_total: f64| SolverStats {
            context,
            method: Method::Pcg,
            preconditioner: Precond::AdditiveSchwarz(tile_count),
            requested_preconditioner: requested,
            unknowns: n,
            threads,
            iterations,
            residual_history: history.clone(),
            final_residual: residual,
            tolerance,
            wall_time: t0.elapsed(),
            setup_seconds: 0.0,
            iterate_seconds: t0.elapsed().as_secs_f64(),
            factorization: None,
            spectral: None,
            dd: Some(DdStats {
                subdomains: tile_count,
                shards: shard_count,
                halo_cells,
                exchange_seconds: exchange_total,
            }),
        };
        let exchange_total = |exchange_seconds: &f64, ops: &[Box<dyn SlabOperator>]| {
            *exchange_seconds + ops.iter().map(|o| o.exchange_seconds()).sum::<f64>()
        };
        let bnorm = tree_norm(b);
        if bnorm == 0.0 {
            return Ok(stats(
                0,
                0.0,
                history,
                exchange_total(exchange_seconds, ops),
            ));
        }
        r.copy_from_slice(b);
        fan_out(
            ops,
            slabs,
            plane,
            halo,
            ext,
            zext,
            exchange_seconds,
            r,
            z,
            threads,
            false,
        )?;
        p.copy_from_slice(z);
        let mut rz = tree_dot(r, z);
        let mut rel = tree_norm(r) / bnorm;
        if rel <= tolerance {
            return Ok(stats(
                0,
                rel,
                history,
                exchange_total(exchange_seconds, ops),
            ));
        }
        let mut iterations = 0;
        loop {
            if iterations >= budget {
                aeropack_obs::counter!("solver.dd.iterations", iterations);
                return Err(SolverError::NotConverged {
                    context,
                    iterations,
                    residual: rel,
                });
            }
            fan_out(
                ops,
                slabs,
                plane,
                halo,
                ext,
                zext,
                exchange_seconds,
                p,
                ap,
                threads,
                true,
            )?;
            let pap = tree_dot(p, ap);
            if pap <= 0.0 || !pap.is_finite() {
                aeropack_obs::counter!("solver.dd.iterations", iterations);
                return Err(SolverError::Singular { context });
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            iterations += 1;
            rel = tree_norm(r) / bnorm;
            if record {
                history.push(rel);
            }
            if rel <= tolerance {
                break;
            }
            fan_out(
                ops,
                slabs,
                plane,
                halo,
                ext,
                zext,
                exchange_seconds,
                r,
                z,
                threads,
                false,
            )?;
            let rz_new = tree_dot(r, z);
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        aeropack_obs::counter!("solver.dd.iterations", iterations);
        Ok(stats(
            iterations,
            rel,
            history,
            exchange_total(exchange_seconds, ops),
        ))
    }
}

/// Stages `src` through the halo exchange and applies every shard
/// operator. Matrix applications (`matrix = true`) write disjoint
/// owned slices of `out`; Schwarz applications write full
/// extended-range contributions into `zext`, which are then summed
/// into `out` serially in shard order. Shards hold contiguous tile
/// runs, so the per-cell accumulation sequence is the global
/// tile-index order at every shard count — and with `threads > 1`
/// only the independent per-shard applications move to scoped
/// threads, so the result is bit-identical to serial.
#[allow(clippy::too_many_arguments)]
fn fan_out(
    ops: &mut [Box<dyn SlabOperator>],
    slabs: &[Slab],
    plane: usize,
    halo: &mut HaloExchange,
    ext: &mut [Vec<f64>],
    zext: &mut [Vec<f64>],
    exchange_seconds: &mut f64,
    src: &[f64],
    out: &mut [f64],
    threads: usize,
    matrix: bool,
) -> Result<(), SolverError> {
    let t0 = Instant::now();
    halo.exchange(src, slabs, ext);
    *exchange_seconds += t0.elapsed().as_secs_f64();
    if threads <= 1 || ops.len() == 1 {
        if matrix {
            for ((op, buf), slab) in ops.iter_mut().zip(ext.iter()).zip(slabs) {
                op.apply_a(buf, &mut out[slab.owned_cells(plane)])?;
            }
        } else {
            for ((op, buf), zb) in ops.iter_mut().zip(ext.iter()).zip(zext.iter_mut()) {
                op.apply_m(buf, zb)?;
            }
            accumulate_zext(slabs, plane, zext, exchange_seconds, out);
        }
        return Ok(());
    }
    let result = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ops.len());
        if matrix {
            let mut rest = &mut *out;
            let mut cursor = 0;
            for ((op, buf), slab) in ops.iter_mut().zip(ext.iter()).zip(slabs) {
                let own = slab.owned_cells(plane);
                let (_, tail) = rest.split_at_mut(own.start - cursor);
                let (mine, tail) = tail.split_at_mut(own.len());
                rest = tail;
                cursor = own.end;
                handles.push(scope.spawn(move || op.apply_a(buf, mine)));
            }
        } else {
            for ((op, buf), zb) in ops.iter_mut().zip(ext.iter()).zip(zext.iter_mut()) {
                handles.push(scope.spawn(move || op.apply_m(buf, zb)));
            }
        }
        let mut result = Ok(());
        for h in handles {
            let r = h.join().expect("shard worker panicked");
            if r.is_err() && result.is_ok() {
                result = r;
            }
        }
        result
    });
    result?;
    if !matrix {
        accumulate_zext(slabs, plane, zext, exchange_seconds, out);
    }
    Ok(())
}

/// Serial shard-order sum of extended-range Schwarz contributions into
/// the global vector. `out` is zeroed first; each shard's slice is
/// added over its extended cell range, in shard (and therefore global
/// tile) order.
fn accumulate_zext(
    slabs: &[Slab],
    plane: usize,
    zext: &[Vec<f64>],
    exchange_seconds: &mut f64,
    out: &mut [f64],
) {
    let t0 = Instant::now();
    out.fill(0.0);
    for (zb, slab) in zext.iter().zip(slabs) {
        for (dst, &s) in out[slab.ext_cells(plane)].iter_mut().zip(zb) {
            *dst += s;
        }
    }
    *exchange_seconds += t0.elapsed().as_secs_f64();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcg::solve_sparse;

    /// 7-point Poisson operator on a structured grid (Dirichlet
    /// boundaries folded into the diagonal).
    fn poisson3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
        let idx = move |ix: usize, iy: usize, iz: usize| ix + nx * (iy + ny * iz);
        CsrMatrix::from_row_fn(nx * ny * nz, 2, move |i, row| {
            let ix = i % nx;
            let iy = (i / nx) % ny;
            let iz = i / (nx * ny);
            row.push((i, 6.5));
            if ix > 0 {
                row.push((idx(ix - 1, iy, iz), -1.0));
            }
            if ix + 1 < nx {
                row.push((idx(ix + 1, iy, iz), -1.0));
            }
            if iy > 0 {
                row.push((idx(ix, iy - 1, iz), -1.0));
            }
            if iy + 1 < ny {
                row.push((idx(ix, iy + 1, iz), -1.0));
            }
            if iz > 0 {
                row.push((idx(ix, iy, iz - 1), -1.0));
            }
            if iz + 1 < nz {
                row.push((idx(ix, iy, iz + 1), -1.0));
            }
        })
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.0 + (i as f64 * 0.17).sin()).collect()
    }

    #[test]
    fn partition_auto_picks_one_tile_per_eight_planes() {
        let part = Partition::new(64 * 64 * 64, Some((64, 64, 64)), 0).unwrap();
        assert_eq!(part.tile_count(), 8);
        assert_eq!(part.plane(), 64 * 64);
        // Without grid dims the vector is a chain of single-cell planes.
        let chain = Partition::new(100, None, 0).unwrap();
        assert_eq!(chain.plane(), 1);
        assert_eq!(chain.nplanes(), 100);
        assert_eq!(chain.tile_count(), 13);
    }

    #[test]
    fn partition_tiles_cover_and_clip() {
        let part = Partition::new(3 * 3 * 10, Some((3, 3, 10)), 4).unwrap();
        let tiles = part.tiles();
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0].own_start, 0);
        assert_eq!(tiles.last().unwrap().own_end, 10);
        for pair in tiles.windows(2) {
            assert_eq!(pair[0].own_end, pair[1].own_start);
        }
        // Halos are one plane, clipped at the domain boundary.
        assert_eq!(tiles[0].ext_start, 0);
        assert_eq!(tiles[0].ext_end, tiles[0].own_end + 1);
        assert_eq!(tiles.last().unwrap().ext_end, 10);
        // Tiles are at least two planes wide (bit-identity floor), so an
        // oversized request clamps to nplanes / 2 — one tile on a 2-plane grid.
        let clamped = Partition::new(8, Some((2, 2, 2)), 99).unwrap();
        assert_eq!(clamped.tile_count(), 1);
        let clamped = Partition::new(2 * 2 * 10, Some((2, 2, 10)), 99).unwrap();
        assert_eq!(clamped.tile_count(), 5);
        // Mismatched dims are rejected.
        assert!(Partition::new(7, Some((2, 2, 2)), 1).is_err());
    }

    #[test]
    fn shard_layout_groups_whole_tiles() {
        let part = Partition::new(4 * 4 * 16, Some((4, 4, 16)), 8).unwrap();
        for shards in [1, 2, 3, 4, 8, 99] {
            let layout = part.shard_layout(shards);
            assert_eq!(layout.len(), shards.min(8));
            let mut plane_cursor = 0;
            let mut tile_cursor = 0;
            for (slab, tiles) in &layout {
                assert_eq!(slab.own_start, plane_cursor);
                assert_eq!(tiles.start, tile_cursor);
                assert_eq!(slab.own_start, part.tiles()[tiles.start].own_start);
                assert_eq!(slab.own_end, part.tiles()[tiles.end - 1].own_end);
                plane_cursor = slab.own_end;
                tile_cursor = tiles.end;
            }
            assert_eq!(plane_cursor, 16);
            assert_eq!(tile_cursor, 8);
        }
    }

    #[test]
    fn tree_dot_matches_serial_sum() {
        let a: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.01).cos()).collect();
        let b: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.02).sin()).collect();
        let serial: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let tree = tree_dot(&a, &b);
        assert!((tree - serial).abs() <= 1e-9 * serial.abs().max(1.0));
        assert_eq!(tree_dot(&[], &[]), 0.0);
    }

    #[test]
    fn single_tile_schwarz_matches_global_ic0_apply() {
        let a = poisson3d(4, 4, 6);
        let part = Partition::new(a.n(), Some((4, 4, 6)), 1).unwrap();
        let mut set = SchwarzSet::build(&a, 0, part.tiles(), part.plane(), "test").unwrap();
        let (global, _) = Ic0Factor::new(&a).unwrap();
        let r = rhs(a.n());
        let mut z_set = vec![0.0; a.n()];
        let mut z_glob = vec![0.0; a.n()];
        set.apply(0, &r, 0, &mut z_set, 1);
        global.apply(&r, &mut z_glob, 1);
        for (p, q) in z_set.iter().zip(&z_glob) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn schwarz_apply_is_thread_count_invariant() {
        let a = poisson3d(5, 4, 12);
        let part = Partition::new(a.n(), Some((5, 4, 12)), 4).unwrap();
        let mut set = SchwarzSet::build(&a, 0, part.tiles(), part.plane(), "test").unwrap();
        let r = rhs(a.n());
        let mut serial = vec![0.0; a.n()];
        set.apply(0, &r, 0, &mut serial, 1);
        for threads in [2, 3, 8] {
            let mut threaded = vec![0.0; a.n()];
            set.apply(0, &r, 0, &mut threaded, threads);
            for (p, q) in threaded.iter().zip(&serial) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn schwarz_refresh_tracks_new_values() {
        let a = poisson3d(3, 3, 9);
        let part = Partition::new(a.n(), Some((3, 3, 9)), 3).unwrap();
        let mut set = SchwarzSet::build(&a, 0, part.tiles(), part.plane(), "test").unwrap();
        // Same pattern, scaled values.
        let scaled = CsrMatrix::from_pattern_row_fn(&a.pattern(), 1, |i, row| {
            let rp = a.row_offsets();
            for k in rp[i]..rp[i + 1] {
                row.push((a.col_indices()[k], a.values()[k] * 2.0));
            }
        });
        set.refresh(&scaled, "test").unwrap();
        let mut fresh = SchwarzSet::build(&scaled, 0, part.tiles(), part.plane(), "test").unwrap();
        let r = rhs(a.n());
        let mut z_refreshed = vec![0.0; a.n()];
        let mut z_fresh = vec![0.0; a.n()];
        set.apply(0, &r, 0, &mut z_refreshed, 1);
        fresh.apply(0, &r, 0, &mut z_fresh, 1);
        for (p, q) in z_refreshed.iter().zip(&z_fresh) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn slab_spec_rejects_wide_bandwidth() {
        // A chain matrix with a coupling two planes away cannot be
        // served by a one-plane halo.
        let n = 12;
        let a = CsrMatrix::from_row_fn(n, 1, |i, row| {
            if i >= 2 {
                row.push((i - 2, -1.0));
            }
            row.push((i, 4.0));
            if i + 2 < n {
                row.push((i + 2, -1.0));
            }
        });
        let part = Partition::new(n, None, 3).unwrap();
        let layout = part.shard_layout(3);
        let (slab, tiles) = &layout[1];
        let err = SlabSpec::extract(&a, &part, *slab, &part.tiles()[tiles.clone()]);
        assert!(matches!(err, Err(SolverError::InvalidInput { .. })));
    }

    #[test]
    fn sharded_solve_matches_single_domain_bitwise() {
        let (nx, ny, nz) = (6, 5, 16);
        let a = poisson3d(nx, ny, nz);
        let b = rhs(a.n());
        let cfg = SolverConfig::new()
            .preconditioner(Precond::AdditiveSchwarz(4))
            .grid_dims((nx, ny, nz))
            .tolerance(1e-11);
        let mut reference = ShardedSolve::new(&a, &cfg, 1).unwrap();
        let base = reference.solve(&b).unwrap();
        assert!(base.stats.converged());
        assert_eq!(base.stats.dd.unwrap().shards, 1);
        for shards in [2, 3, 4] {
            let mut driver = ShardedSolve::new(&a, &cfg, shards).unwrap();
            assert_eq!(driver.shard_count(), shards);
            let sol = driver.solve(&b).unwrap();
            assert_eq!(sol.stats.iterations, base.stats.iterations);
            assert_eq!(sol.stats.dd.unwrap().shards, shards);
            for (p, q) in sol.x.iter().zip(&base.x) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn sharded_solve_is_thread_count_invariant() {
        let (nx, ny, nz) = (5, 5, 12);
        let a = poisson3d(nx, ny, nz);
        let b = rhs(a.n());
        let base_cfg = SolverConfig::new()
            .preconditioner(Precond::AdditiveSchwarz(4))
            .grid_dims((nx, ny, nz))
            .tolerance(1e-11);
        let mut reference = ShardedSolve::new(&a, &base_cfg, 4).unwrap();
        let base = reference.solve(&b).unwrap();
        for threads in [2, 8] {
            let cfg = base_cfg.clone().threads(threads);
            let mut driver = ShardedSolve::new(&a, &cfg, 4).unwrap();
            let sol = driver.solve(&b).unwrap();
            assert_eq!(sol.stats.iterations, base.stats.iterations);
            for (p, q) in sol.x.iter().zip(&base.x) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn sharded_solve_agrees_with_direct_pcg() {
        let (nx, ny, nz) = (4, 4, 10);
        let a = poisson3d(nx, ny, nz);
        let b = rhs(a.n());
        let cfg = SolverConfig::new().grid_dims((nx, ny, nz)).tolerance(1e-12);
        let mut driver = ShardedSolve::new(&a, &cfg, 2).unwrap();
        let sharded = driver.solve(&b).unwrap();
        let plain = solve_sparse(&a, &b, &cfg).unwrap();
        for (p, q) in sharded.x.iter().zip(&plain.x) {
            assert!((p - q).abs() < 1e-8, "sharded {p} vs plain {q}");
        }
        let dd = sharded.stats.dd.unwrap();
        assert_eq!(dd.shards, 2);
        assert!(dd.halo_cells > 0);
        assert!(dd.exchange_seconds >= 0.0);
    }

    #[test]
    fn sharded_solve_rejects_rcm() {
        let a = poisson3d(3, 3, 6);
        let cfg = SolverConfig::new()
            .grid_dims((3, 3, 6))
            .reorder(Reorder::Rcm);
        assert!(matches!(
            ShardedSolve::new(&a, &cfg, 2),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn shards_env_knob_parses() {
        // Not set in the test environment by default.
        std::env::remove_var("AEROPACK_SHARDS");
        assert_eq!(shards_from_env(), None);
        std::env::set_var("AEROPACK_SHARDS", "4");
        assert_eq!(shards_from_env(), Some(4));
        std::env::set_var("AEROPACK_SHARDS", "0");
        assert_eq!(shards_from_env(), None);
        std::env::set_var("AEROPACK_SHARDS", "not a number");
        assert_eq!(shards_from_env(), None);
        std::env::remove_var("AEROPACK_SHARDS");
    }
}
