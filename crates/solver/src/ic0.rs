//! Incomplete Cholesky IC(0) factorisation and its level-scheduled
//! triangular application.
//!
//! IC(0) computes a lower-triangular `L` restricted to the sparsity
//! pattern of `A` itself (no fill-in) such that `L·Lᵀ ≈ A`, and
//! preconditions CG with `M⁻¹ = (L·Lᵀ)⁻¹` applied as one forward and
//! one backward triangular solve. On the Poisson-like SPD operators the
//! FV and FEM stacks assemble, this cuts iteration counts far below
//! Jacobi — the factorisation is paid once per operator and amortised
//! across a sweep by the [`PcgWorkspace`](crate::PcgWorkspace) cache.
//!
//! Two properties matter for the rest of the workspace:
//!
//! * **Breakdown safety.** IC(0) of a general SPD matrix can hit a
//!   non-positive pivot. The factorisation then retries on the shifted
//!   matrix `A + α·diag(A)` with `α` doubling from `10⁻³`; the shift
//!   weakens the preconditioner slightly but never affects *what* is
//!   solved (CG still iterates on `A`).
//! * **Determinism.** The triangular solves are scheduled by dependency
//!   *levels*: every row within a level depends only on earlier levels,
//!   so levels run their rows in parallel with a barrier between
//!   levels. Each row's accumulation order is fixed by the CSR layout
//!   regardless of which worker executes it, so the parallel apply is
//!   bitwise identical to the serial one at any thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use crate::csr::CsrMatrix;

/// Problem size below which the triangular applies stay serial: the
/// per-level barrier cost only pays for itself on large grids.
pub(crate) const IC0_PARALLEL_GRAIN: usize = 16_384;

/// Largest diagonal shift attempted before declaring the matrix
/// un-factorisable (a positively-screened diagonal always succeeds far
/// below this).
const MAX_SHIFT: f64 = 1.0e4;

/// IC(0) pivot breakdown that no diagonal shift up to [`MAX_SHIFT`]
/// could repair — the operator is too indefinite to precondition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Ic0Breakdown;

/// An IC(0) factor of a [`CsrMatrix`], with precomputed transpose
/// storage for the backward solve and level schedules for both sweeps.
///
/// The symbolic phase (pattern extraction, transpose, level sets) runs
/// once per sparsity structure; [`Ic0Factor::refactor`] redoes only the
/// numeric phase in place — allocation-free — when the same structure
/// returns with new coefficients, which is what a power sweep does.
#[derive(Debug)]
pub(crate) struct Ic0Factor {
    n: usize,
    /// Diagonal shift `α` that made the factorisation succeed.
    shift: f64,
    /// Strict lower triangle of `L` in CSR (columns ascending).
    l_row_ptr: Vec<usize>,
    l_col: Vec<usize>,
    l_val: Vec<f64>,
    /// Source index into `A.values()` for each `l_val` slot.
    l_src: Vec<usize>,
    /// `L[i][i]`.
    diag: Vec<f64>,
    /// Source index into `A.values()` for each diagonal entry.
    diag_src: Vec<usize>,
    /// Strict upper triangle `Lᵀ` in CSR (row `i` holds `L[j][i]` for
    /// `j > i`), for the backward solve.
    u_row_ptr: Vec<usize>,
    u_col: Vec<usize>,
    u_val: Vec<f64>,
    /// Source index into `l_val` for each `u_val` slot.
    u_map: Vec<usize>,
    /// Forward-solve level schedule: rows of level `l` are
    /// `fwd_rows[fwd_level_ptr[l]..fwd_level_ptr[l + 1]]`.
    fwd_level_ptr: Vec<usize>,
    fwd_rows: Vec<usize>,
    /// Backward-solve level schedule.
    bwd_level_ptr: Vec<usize>,
    bwd_rows: Vec<usize>,
    /// Shared intermediate for the parallel apply (f64 bits; plain
    /// slices cannot be written from multiple scoped threads without
    /// `unsafe`, which this crate forbids).
    scratch: Vec<AtomicU64>,
}

impl Clone for Ic0Factor {
    fn clone(&self) -> Self {
        Self {
            n: self.n,
            shift: self.shift,
            l_row_ptr: self.l_row_ptr.clone(),
            l_col: self.l_col.clone(),
            l_val: self.l_val.clone(),
            l_src: self.l_src.clone(),
            diag: self.diag.clone(),
            diag_src: self.diag_src.clone(),
            u_row_ptr: self.u_row_ptr.clone(),
            u_col: self.u_col.clone(),
            u_val: self.u_val.clone(),
            u_map: self.u_map.clone(),
            fwd_level_ptr: self.fwd_level_ptr.clone(),
            fwd_rows: self.fwd_rows.clone(),
            bwd_level_ptr: self.bwd_level_ptr.clone(),
            bwd_rows: self.bwd_rows.clone(),
            scratch: (0..self.n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl Ic0Factor {
    /// Builds the symbolic structure from `a`'s pattern and runs the
    /// numeric factorisation. Returns the factor and the number of
    /// shift retries the factorisation needed.
    pub(crate) fn new(a: &CsrMatrix) -> Result<(Self, usize), Ic0Breakdown> {
        let n = a.n();
        let row_ptr = a.row_offsets();
        let cols = a.col_indices();

        // Strict lower triangle + diagonal slots of A.
        let mut l_row_ptr = Vec::with_capacity(n + 1);
        let mut l_col = Vec::new();
        let mut l_src = Vec::new();
        let mut diag_src = Vec::with_capacity(n);
        l_row_ptr.push(0);
        for i in 0..n {
            let mut diag_at = None;
            for (off, &j) in cols[row_ptr[i]..row_ptr[i + 1]].iter().enumerate() {
                let idx = row_ptr[i] + off;
                if j < i {
                    l_col.push(j);
                    l_src.push(idx);
                } else if j == i {
                    diag_at = Some(idx);
                }
            }
            diag_src.push(diag_at.ok_or(Ic0Breakdown)?);
            l_row_ptr.push(l_col.len());
        }
        let lnnz = l_col.len();

        // Transpose of the strict lower triangle (CSR of Lᵀ). Walking
        // rows ascending keeps each transpose row's columns ascending.
        let mut u_row_ptr = vec![0usize; n + 1];
        for &j in l_col.iter() {
            u_row_ptr[j + 1] += 1;
        }
        for i in 0..n {
            u_row_ptr[i + 1] += u_row_ptr[i];
        }
        let mut cursor = u_row_ptr[..n].to_vec();
        let mut u_col = vec![0usize; lnnz];
        let mut u_map = vec![0usize; lnnz];
        for i in 0..n {
            for (off, &j) in l_col[l_row_ptr[i]..l_row_ptr[i + 1]].iter().enumerate() {
                u_col[cursor[j]] = i;
                u_map[cursor[j]] = l_row_ptr[i] + off;
                cursor[j] += 1;
            }
        }

        // Dependency levels of the forward solve: row i waits on every
        // strict-lower neighbour.
        let mut lev = vec![0usize; n];
        let mut nlev = 0usize;
        for i in 0..n {
            let mut l = 0usize;
            for k in l_row_ptr[i]..l_row_ptr[i + 1] {
                l = l.max(lev[l_col[k]] + 1);
            }
            lev[i] = l;
            nlev = nlev.max(l + 1);
        }
        let (fwd_level_ptr, fwd_rows) = bucket_levels(&lev, nlev);

        // Backward solve: row i waits on every strict-upper neighbour.
        nlev = 0;
        for i in (0..n).rev() {
            let mut l = 0usize;
            for k in u_row_ptr[i]..u_row_ptr[i + 1] {
                l = l.max(lev[u_col[k]] + 1);
            }
            lev[i] = l;
            nlev = nlev.max(l + 1);
        }
        let (bwd_level_ptr, bwd_rows) = bucket_levels(&lev, nlev);

        let mut factor = Self {
            n,
            shift: 0.0,
            l_row_ptr,
            l_col,
            l_val: vec![0.0; lnnz],
            l_src,
            diag: vec![0.0; n],
            diag_src,
            u_row_ptr,
            u_col,
            u_val: vec![0.0; lnnz],
            u_map,
            fwd_level_ptr,
            fwd_rows,
            bwd_level_ptr,
            bwd_rows,
            scratch: (0..n).map(|_| AtomicU64::new(0)).collect(),
        };
        let retries = factor.refactor(a)?;
        Ok((factor, retries))
    }

    /// Re-runs the numeric factorisation against `a`, which must have
    /// the exact structure this factor was built from. Allocation-free;
    /// returns the number of diagonal-shift retries.
    pub(crate) fn refactor(&mut self, a: &CsrMatrix) -> Result<usize, Ic0Breakdown> {
        let mut alpha = 0.0f64;
        let mut retries = 0usize;
        loop {
            if self.try_factor(a, alpha) {
                self.shift = alpha;
                self.refresh_transpose();
                return Ok(retries);
            }
            retries += 1;
            alpha = if alpha == 0.0 { 1.0e-3 } else { alpha * 2.0 };
            if alpha > MAX_SHIFT {
                return Err(Ic0Breakdown);
            }
        }
    }

    /// One numeric factorisation attempt on `A + α·diag(A)`.
    fn try_factor(&mut self, a: &CsrMatrix, alpha: f64) -> bool {
        let avals = a.values();
        for (v, &s) in self.l_val.iter_mut().zip(self.l_src.iter()) {
            *v = avals[s];
        }
        for (d, &s) in self.diag.iter_mut().zip(self.diag_src.iter()) {
            *d = avals[s] * (1.0 + alpha);
        }
        for i in 0..self.n {
            let row = self.l_row_ptr[i]..self.l_row_ptr[i + 1];
            for k in row.clone() {
                let j = self.l_col[k];
                // L[i][j] = (A[i][j] − Σ_{c<j} L[i][c]·L[j][c]) / L[j][j],
                // the sum running over the shared sparse prefix.
                let mut s = self.l_val[k];
                let mut p = row.start;
                let mut q = self.l_row_ptr[j];
                let qend = self.l_row_ptr[j + 1];
                while p < k && q < qend {
                    match self.l_col[p].cmp(&self.l_col[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            s -= self.l_val[p] * self.l_val[q];
                            p += 1;
                            q += 1;
                        }
                    }
                }
                self.l_val[k] = s / self.diag[j];
            }
            let mut d = self.diag[i];
            for k in row {
                d -= self.l_val[k] * self.l_val[k];
            }
            // NaN pivots fall through to the is_finite() arm.
            if d <= 0.0 || !d.is_finite() {
                return false;
            }
            self.diag[i] = d.sqrt();
        }
        true
    }

    /// Copies the factored values into the transpose storage.
    fn refresh_transpose(&mut self) {
        for (v, &m) in self.u_val.iter_mut().zip(self.u_map.iter()) {
            *v = self.l_val[m];
        }
    }

    /// Applies the preconditioner: `z = (L·Lᵀ)⁻¹·r`. Serial below
    /// [`IC0_PARALLEL_GRAIN`] or at one thread; otherwise
    /// level-scheduled across `threads` workers, bitwise identical to
    /// the serial sweep.
    pub(crate) fn apply(&self, r: &[f64], z: &mut [f64], threads: usize) {
        if threads <= 1 || self.n < IC0_PARALLEL_GRAIN {
            self.apply_serial(r, z);
        } else {
            self.apply_parallel(r, z, threads);
        }
    }

    fn apply_serial(&self, r: &[f64], z: &mut [f64]) {
        // Forward: L·y = r, y stored in z.
        for i in 0..self.n {
            let mut acc = r[i];
            for k in self.l_row_ptr[i]..self.l_row_ptr[i + 1] {
                acc -= self.l_val[k] * z[self.l_col[k]];
            }
            z[i] = acc / self.diag[i];
        }
        // Backward: Lᵀ·z = y, in place (row i reads only z[j], j > i,
        // already final, plus its own forward value).
        for i in (0..self.n).rev() {
            let mut acc = z[i];
            for k in self.u_row_ptr[i]..self.u_row_ptr[i + 1] {
                acc -= self.u_val[k] * z[self.u_col[k]];
            }
            z[i] = acc / self.diag[i];
        }
    }

    /// Level-parallel apply. Rows within a level are independent, so
    /// workers take contiguous slices of each level and a barrier
    /// separates levels; the barrier's release/acquire ordering makes
    /// the `Relaxed` per-cell operations race-free. Each row performs
    /// the same accumulation sequence as the serial sweep, so results
    /// are bitwise identical.
    fn apply_parallel(&self, r: &[f64], z: &mut [f64], threads: usize) {
        let workers = threads.min(self.n).max(1);
        let barrier = Barrier::new(workers);
        let scratch = &self.scratch;
        std::thread::scope(|scope| {
            for t in 0..workers {
                let barrier = &barrier;
                scope.spawn(move || {
                    for lvl in 0..self.fwd_level_ptr.len() - 1 {
                        let rows =
                            &self.fwd_rows[self.fwd_level_ptr[lvl]..self.fwd_level_ptr[lvl + 1]];
                        let chunk = rows.len().div_ceil(workers);
                        let lo = (t * chunk).min(rows.len());
                        let hi = ((t + 1) * chunk).min(rows.len());
                        for &i in &rows[lo..hi] {
                            let mut acc = r[i];
                            for k in self.l_row_ptr[i]..self.l_row_ptr[i + 1] {
                                let dep =
                                    f64::from_bits(scratch[self.l_col[k]].load(Ordering::Relaxed));
                                acc -= self.l_val[k] * dep;
                            }
                            scratch[i].store((acc / self.diag[i]).to_bits(), Ordering::Relaxed);
                        }
                        barrier.wait();
                    }
                    for lvl in 0..self.bwd_level_ptr.len() - 1 {
                        let rows =
                            &self.bwd_rows[self.bwd_level_ptr[lvl]..self.bwd_level_ptr[lvl + 1]];
                        let chunk = rows.len().div_ceil(workers);
                        let lo = (t * chunk).min(rows.len());
                        let hi = ((t + 1) * chunk).min(rows.len());
                        for &i in &rows[lo..hi] {
                            let mut acc = f64::from_bits(scratch[i].load(Ordering::Relaxed));
                            for k in self.u_row_ptr[i]..self.u_row_ptr[i + 1] {
                                let dep =
                                    f64::from_bits(scratch[self.u_col[k]].load(Ordering::Relaxed));
                                acc -= self.u_val[k] * dep;
                            }
                            scratch[i].store((acc / self.diag[i]).to_bits(), Ordering::Relaxed);
                        }
                        barrier.wait();
                    }
                });
            }
        });
        for (zi, cell) in z.iter_mut().zip(scratch.iter()) {
            *zi = f64::from_bits(cell.load(Ordering::Relaxed));
        }
    }

    /// Stored non-zeros in the factor (strict lower plus diagonal).
    pub(crate) fn fill_nnz(&self) -> usize {
        self.l_val.len() + self.n
    }

    /// Forward-solve dependency levels.
    pub(crate) fn forward_levels(&self) -> usize {
        self.fwd_level_ptr.len() - 1
    }

    /// Backward-solve dependency levels.
    pub(crate) fn backward_levels(&self) -> usize {
        self.bwd_level_ptr.len() - 1
    }

    /// The diagonal shift the last factorisation needed (0 when clean).
    pub(crate) fn shift(&self) -> f64 {
        self.shift
    }
}

/// Groups rows by level: returns `(level_ptr, rows)` with the rows of
/// level `l` in ascending index order at
/// `rows[level_ptr[l]..level_ptr[l + 1]]`.
fn bucket_levels(lev: &[usize], nlev: usize) -> (Vec<usize>, Vec<usize>) {
    let n = lev.len();
    let mut level_ptr = vec![0usize; nlev + 1];
    for &l in lev.iter() {
        level_ptr[l + 1] += 1;
    }
    for l in 0..nlev {
        level_ptr[l + 1] += level_ptr[l];
    }
    let mut cursor = level_ptr[..nlev].to_vec();
    let mut rows = vec![0usize; n];
    for (i, &l) in lev.iter().enumerate() {
        rows[cursor[l]] = i;
        cursor[l] += 1;
    }
    (level_ptr, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian(n: usize) -> CsrMatrix {
        CsrMatrix::from_row_fn(n, 1, |i, row| {
            if i > 0 {
                row.push((i - 1, -1.0));
            }
            row.push((i, 2.0));
            if i + 1 < n {
                row.push((i + 1, -1.0));
            }
        })
    }

    /// 2-D 5-point Laplacian on an `m × m` grid.
    fn laplacian2d(m: usize) -> CsrMatrix {
        CsrMatrix::from_row_fn(m * m, 1, |c, row| {
            let (x, y) = (c % m, c / m);
            row.push((c, 4.0));
            if x > 0 {
                row.push((c - 1, -1.0));
            }
            if x + 1 < m {
                row.push((c + 1, -1.0));
            }
            if y > 0 {
                row.push((c - m, -1.0));
            }
            if y + 1 < m {
                row.push((c + m, -1.0));
            }
        })
    }

    #[test]
    fn tridiagonal_ic0_is_the_exact_cholesky_factor() {
        // A tridiagonal SPD matrix has a bidiagonal Cholesky factor —
        // no fill exists to drop, so L·Lᵀ must reconstruct A exactly.
        let n = 24;
        let a = laplacian(n);
        let (f, retries) = Ic0Factor::new(&a).unwrap();
        assert_eq!(retries, 0);
        assert_eq!(f.shift(), 0.0);
        assert_eq!(f.fill_nnz(), (a.nnz() - n) / 2 + n);
        for i in 0..n {
            for j in 0..=i {
                // (L·Lᵀ)[i][j] = Σ_k L[i][k]·L[j][k].
                let mut s = 0.0;
                for k in 0..=j {
                    let lik = if k == i { f.diag[i] } else { l_entry(&f, i, k) };
                    let ljk = if k == j { f.diag[j] } else { l_entry(&f, j, k) };
                    s += lik * ljk;
                }
                assert!(
                    (s - a.get(i, j)).abs() < 1e-12,
                    "({i},{j}): {s} vs {}",
                    a.get(i, j)
                );
            }
        }
    }

    fn l_entry(f: &Ic0Factor, i: usize, j: usize) -> f64 {
        for k in f.l_row_ptr[i]..f.l_row_ptr[i + 1] {
            if f.l_col[k] == j {
                return f.l_val[k];
            }
        }
        0.0
    }

    #[test]
    fn apply_inverts_llt() {
        // z = (L·Lᵀ)⁻¹·r means L·Lᵀ·z must reproduce r.
        let a = laplacian2d(7);
        let n = a.n();
        let (f, _) = Ic0Factor::new(&a).unwrap();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin() + 1.5).collect();
        let mut z = vec![0.0; n];
        f.apply(&r, &mut z, 1);
        // y = Lᵀ·z, then check L·y == r.
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = f.diag[i] * z[i];
            for k in f.u_row_ptr[i]..f.u_row_ptr[i + 1] {
                y[i] += f.u_val[k] * z[f.u_col[k]];
            }
        }
        for i in 0..n {
            let mut v = f.diag[i] * y[i];
            for k in f.l_row_ptr[i]..f.l_row_ptr[i + 1] {
                v += f.l_val[k] * y[f.l_col[k]];
            }
            assert!((v - r[i]).abs() < 1e-10 * r[i].abs().max(1.0), "row {i}");
        }
    }

    #[test]
    fn parallel_apply_is_bitwise_identical_to_serial() {
        let a = laplacian2d(13);
        let n = a.n();
        let (f, _) = Ic0Factor::new(&a).unwrap();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() * 3.0).collect();
        let mut serial = vec![0.0; n];
        f.apply_serial(&r, &mut serial);
        for threads in [2, 3, 8] {
            let mut par = vec![0.0; n];
            f.apply_parallel(&r, &mut par, threads);
            for (s, p) in serial.iter().zip(par.iter()) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn breakdown_engages_the_diagonal_shift() {
        // Positive diagonal but indefinite: IC(0) hits a negative pivot
        // and must fall back to a shifted factorisation.
        let a = CsrMatrix::from_row_fn(2, 1, |i, row| {
            row.push((i, 1.0));
            row.push((1 - i, 2.0));
        });
        let (f, retries) = Ic0Factor::new(&a).unwrap();
        assert!(retries > 0);
        assert!(f.shift() > 0.0);
        assert!(f.diag.iter().all(|d| d.is_finite() && *d > 0.0));
    }

    #[test]
    fn missing_diagonal_entry_is_a_breakdown() {
        let a = CsrMatrix::from_row_fn(3, 1, |i, row| {
            if i == 1 {
                row.push((0, 1.0));
            } else {
                row.push((i, 1.0));
            }
        });
        assert_eq!(Ic0Factor::new(&a).unwrap_err(), Ic0Breakdown);
    }

    #[test]
    fn refactor_tracks_new_values_without_restructuring() {
        let a = laplacian2d(5);
        let (mut f, _) = Ic0Factor::new(&a).unwrap();
        let scaled = CsrMatrix::from_pattern_row_fn(&a.pattern(), 1, |i, row| {
            for idx in a.row_offsets()[i]..a.row_offsets()[i + 1] {
                row.push((a.col_indices()[idx], 2.0 * a.values()[idx]));
            }
        });
        f.refactor(&scaled).unwrap();
        let (fresh, _) = Ic0Factor::new(&scaled).unwrap();
        assert_eq!(f.l_val, fresh.l_val);
        assert_eq!(f.diag, fresh.diag);
    }

    #[test]
    fn level_schedule_covers_every_row_once() {
        let a = laplacian2d(9);
        let (f, _) = Ic0Factor::new(&a).unwrap();
        for rows in [&f.fwd_rows, &f.bwd_rows] {
            let mut seen = vec![false; a.n()];
            for &i in rows.iter() {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
        // The 2-D grid must expose real level parallelism (far fewer
        // levels than rows), unlike a 1-D chain.
        assert!(f.forward_levels() < a.n() / 2);
        assert!(f.backward_levels() < a.n() / 2);
    }
}
