//! Dense direct factorisations over row-major storage: Cholesky for
//! SPD systems (thermal networks, FEM stiffness) and LU with partial
//! pivoting for general systems.

use std::time::Instant;

use crate::config::{Solution, SolverConfig};
use crate::error::SolverError;
use crate::stats::{Method, SolverStats};

/// A Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, stored as the row-major lower factor.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCholesky {
    n: usize,
    l: Vec<f64>,
}

impl DenseCholesky {
    /// Factorises a row-major `n × n` SPD matrix (only the lower
    /// triangle is read).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Singular`] when the matrix is not
    /// positive definite, and [`SolverError::InvalidInput`] on a length
    /// mismatch.
    pub fn factor(a: &[f64], n: usize, context: &'static str) -> Result<Self, SolverError> {
        if a.len() != n * n {
            return Err(SolverError::invalid(format!(
                "matrix length {} does not match n²={}",
                a.len(),
                n * n
            )));
        }
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[i * n + j];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(SolverError::Singular { context });
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        aeropack_obs::counter!("solver.cholesky.factorizations");
        Ok(Self { n, l })
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The row-major lower factor (entries above the diagonal are
    /// zero).
    pub fn l_raw(&self) -> &[f64] {
        &self.l
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        aeropack_obs::counter!("solver.cholesky.solves");
        self.backward(&self.forward(b))
    }

    /// Allocation-free counterpart of [`DenseCholesky::solve`]: writes
    /// the solution into `x`. Bitwise identical to `solve` (the same
    /// substitution arithmetic runs in place). Used by the multigrid
    /// coarse-level solve, which must stay allocation-free on warm
    /// workspaces.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` has the wrong length.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(x.len(), n, "solution length mismatch");
        aeropack_obs::counter!("solver.cholesky.solves");
        x.copy_from_slice(b);
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.l[i * n + k] * x[k];
            }
            x[i] /= self.l[i * n + i];
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[k * n + i] * x[k];
            }
            x[i] /= self.l[i * n + i];
        }
    }

    /// Solves `A·X = B` for `k` right-hand sides stored contiguously in
    /// `b` (`k·n` values, one RHS after another), with a single
    /// traversal of the factor applied to all columns at each
    /// elimination step — the true multi-column substitution batched
    /// solves use. Returns the solutions in the same contiguous layout.
    ///
    /// Column `j` of the result is bitwise identical to
    /// `self.solve(&b[j*n..(j+1)*n])`: the per-column arithmetic and
    /// its order are unchanged, only the loop nest is interchanged.
    ///
    /// # Panics
    ///
    /// Panics if `b` is empty or not a multiple of `n` in length.
    pub fn solve_multi(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert!(
            n > 0 && !b.is_empty() && b.len().is_multiple_of(n),
            "rhs block length {} is not a positive multiple of n={n}",
            b.len()
        );
        let k = b.len() / n;
        aeropack_obs::counter!("solver.cholesky.solves", k);
        let mut x = b.to_vec();
        // Forward: L·Y = B, all k columns advanced together per row i.
        for i in 0..n {
            for j in 0..k {
                let col = &mut x[j * n..(j + 1) * n];
                let mut yi = col[i];
                for (m, lim) in self.l[i * n..i * n + i].iter().enumerate() {
                    yi -= lim * col[m];
                }
                col[i] = yi / self.l[i * n + i];
            }
        }
        // Backward: Lᵀ·X = Y.
        for i in (0..n).rev() {
            for j in 0..k {
                let col = &mut x[j * n..(j + 1) * n];
                let mut xi = col[i];
                for (m, &cm) in col.iter().enumerate().skip(i + 1) {
                    xi -= self.l[m * n + i] * cm;
                }
                col[i] = xi / self.l[i * n + i];
            }
        }
        x
    }

    /// Forward substitution only: solves `L·y = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn forward(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[i * n + k] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        y
    }

    /// Back substitution only: solves `Lᵀ·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn backward(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[k * n + i] * x[k];
            }
            x[i] /= self.l[i * n + i];
        }
        x
    }
}

/// An LU factorisation with partial pivoting over row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLu {
    n: usize,
    lu: Vec<f64>,
    pivots: Vec<usize>,
}

impl DenseLu {
    /// Factorises a row-major `n × n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Singular`] if a pivot underflows, and
    /// [`SolverError::InvalidInput`] on a length mismatch.
    pub fn factor(a: &[f64], n: usize, context: &'static str) -> Result<Self, SolverError> {
        if a.len() != n * n {
            return Err(SolverError::invalid(format!(
                "matrix length {} does not match n²={}",
                a.len(),
                n * n
            )));
        }
        let mut lu = a.to_vec();
        let mut pivots = vec![0usize; n];
        for k in 0..n {
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err(SolverError::Singular { context });
            }
            pivots[k] = p;
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
            }
            let inv = 1.0 / lu[k * n + k];
            for i in (k + 1)..n {
                let f = lu[i * n + k] * inv;
                lu[i * n + k] = f;
                for j in (k + 1)..n {
                    let v = lu[k * n + j];
                    lu[i * n + j] -= f * v;
                }
            }
        }
        aeropack_obs::counter!("solver.lu.factorizations");
        Ok(Self { n, lu, pivots })
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        aeropack_obs::counter!("solver.lu.solves");
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut x = b.to_vec();
        // Apply the full row permutation first; the stored multipliers
        // are in final (fully pivoted) row order.
        for k in 0..n {
            x.swap(k, self.pivots[k]);
        }
        for k in 0..n {
            for i in (k + 1)..n {
                x[i] -= self.lu[i * n + k] * x[k];
            }
        }
        for k in (0..n).rev() {
            for j in (k + 1)..n {
                x[k] -= self.lu[k * n + j] * x[j];
            }
            x[k] /= self.lu[k * n + k];
        }
        x
    }
}

/// Solves a dense row-major `n × n` system through the configured
/// direct method ([`Method::Cholesky`] or [`Method::Lu`]), returning
/// the solution together with its [`SolverStats`] (the achieved
/// residual is measured against the intact input matrix).
///
/// # Errors
///
/// Returns [`SolverError::Singular`] for indefinite/singular matrices,
/// and [`SolverError::InvalidInput`] for dimension mismatches or an
/// iterative method selection (use [`solve_sparse`](crate::solve_sparse)
/// for those).
pub fn solve_dense(
    a: &[f64],
    n: usize,
    b: &[f64],
    cfg: &SolverConfig,
) -> Result<Solution, SolverError> {
    if b.len() != n {
        return Err(SolverError::invalid(format!(
            "rhs length {} does not match n={n}",
            b.len()
        )));
    }
    let context = cfg.get_context();
    let start = Instant::now();
    let (x, method) = match cfg.get_method() {
        Method::Cholesky => (
            DenseCholesky::factor(a, n, context)?.solve(b),
            Method::Cholesky,
        ),
        Method::Lu => (DenseLu::factor(a, n, context)?.solve(b), Method::Lu),
        other => {
            return Err(SolverError::invalid(format!(
                "solve_dense supports Cholesky/LU, not {other}"
            )))
        }
    };
    // Relative residual against the intact matrix.
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let mut r_norm = 0.0f64;
    for i in 0..n {
        let ax: f64 = a[i * n..(i + 1) * n]
            .iter()
            .zip(&x)
            .map(|(p, q)| p * q)
            .sum();
        r_norm += (b[i] - ax).powi(2);
    }
    let final_residual = if b_norm > 0.0 {
        r_norm.sqrt() / b_norm
    } else {
        0.0
    };
    Ok(Solution {
        x,
        stats: SolverStats::direct(context, method, n, final_residual, start.elapsed()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Precond;

    #[test]
    fn cholesky_solves_spd() {
        let a = [4.0, 1.0, 1.0, 3.0];
        let x = DenseCholesky::factor(&a, 2, "test")
            .unwrap()
            .solve(&[1.0, 2.0]);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn solve_multi_matches_column_by_column() {
        let n = 4;
        // SPD: diagonally dominant symmetric matrix.
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j {
                    6.0 + i as f64
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                };
            }
        }
        let chol = DenseCholesky::factor(&a, n, "test").unwrap();
        let k = 3;
        let block: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
        let multi = chol.solve_multi(&block);
        for j in 0..k {
            let single = chol.solve(&block[j * n..(j + 1) * n]);
            assert_eq!(&multi[j * n..(j + 1) * n], single.as_slice(), "column {j}");
        }
    }

    #[test]
    #[should_panic(expected = "not a positive multiple")]
    fn solve_multi_rejects_ragged_block() {
        let a = [4.0, 1.0, 1.0, 3.0];
        let chol = DenseCholesky::factor(&a, 2, "test").unwrap();
        let _ = chol.solve_multi(&[1.0; 3]);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = [1.0, 2.0, 2.0, 1.0];
        assert!(matches!(
            DenseCholesky::factor(&a, 2, "test"),
            Err(SolverError::Singular { context: "test" })
        ));
    }

    #[test]
    fn lu_solves_unsymmetric() {
        let a = [2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0];
        let x = DenseLu::factor(&a, 3, "test")
            .unwrap()
            .solve(&[4.0, 5.0, 6.0]);
        assert!((x[0] - 6.0).abs() < 1e-12);
        assert!((x[1] - 15.0).abs() < 1e-12);
        assert!((x[2] + 23.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(DenseLu::factor(&a, 2, "test").is_err());
    }

    #[test]
    fn solve_dense_reports_stats() {
        let a = [4.0, 1.0, 1.0, 3.0];
        let cfg = SolverConfig::new()
            .method(Method::Cholesky)
            .context("stats test");
        let sol = solve_dense(&a, 2, &[1.0, 2.0], &cfg).unwrap();
        assert_eq!(sol.stats.method, Method::Cholesky);
        assert_eq!(sol.stats.preconditioner, Precond::None);
        assert_eq!(sol.stats.iterations, 0);
        assert!(sol.stats.final_residual < 1e-14);
        assert!(sol.stats.converged());
        assert!(sol.stats.to_string().contains("stats test"));
    }

    #[test]
    fn solve_dense_rejects_iterative_method() {
        let a = [1.0];
        let cfg = SolverConfig::new().method(Method::Pcg);
        assert!(matches!(
            solve_dense(&a, 1, &[1.0], &cfg),
            Err(SolverError::InvalidInput { .. })
        ));
    }
}
