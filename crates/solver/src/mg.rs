//! Geometric multigrid V-cycle preconditioning for structured-grid
//! operators.
//!
//! The finite-volume thermal models assemble Poisson-like operators on
//! a structured `nx × ny × nz` grid (row `i = ix + nx·(iy + ny·iz)`) —
//! the textbook multigrid case. This module builds a grid hierarchy by
//! **2×2×2 cell aggregation** (ceil division per axis, so odd extents
//! coarsen cleanly), forms **smoothed-aggregation prolongation**
//! `P = (I − ω·D⁻¹A)·P₀` with the standard damping `ω = 4/(3·λ_max)`,
//! assembles **Galerkin coarse operators** `A_c = Pᵀ·A·P`, and solves
//! the coarsest level directly with the existing dense Cholesky. Each
//! level smooths with a short Chebyshev polynomial targeted at the
//! upper (oscillatory) part of the spectrum — no triangular solves
//! anywhere, so unlike IC(0) the application has **no sequential
//! dependency**: every kernel is SpMV-shaped and stays bitwise
//! identical at any thread count.
//!
//! One V-cycle per PCG preconditioner application makes iteration
//! counts essentially mesh-independent, which is what lets 64³+ grids
//! win on wall clock rather than just on iteration count.
//!
//! The hierarchy is deterministic end to end: aggregation is a pure
//! index map, setup products are accumulated serially in fixed order,
//! and the smoothers/transfers partition by contiguous row blocks.

use crate::cheb::{cheb_apply, estimate_bounds_with, ChebWork, EIG_HIGH_SAFETY, POWER_ITERS};
use crate::csr::CsrMatrix;
use crate::dense::DenseCholesky;
use crate::error::SolverError;
use crate::stats::SpectralStats;

/// Coarsest-level size at which the hierarchy stops and a dense
/// Cholesky factorisation takes over.
const COARSE_DIRECT_MAX: usize = 600;
/// Hard cap on grid levels (a 2×2×2 coarsening from any practical
/// grid bottoms out far earlier).
const MAX_LEVELS: usize = 12;
/// Chebyshev steps per pre-/post-smoothing pass.
const SMOOTH_STEPS: usize = 3;
/// The smoother targets the eigenvalue interval
/// `[SMOOTH_LOW_FRACTION·λ_max, EIG_HIGH_SAFETY·λ_max]` — the upper
/// part of the spectrum that coarse-grid correction cannot see. The
/// 2×2×2 aggregates coarsen aggressively (8×), so only the lowest
/// ~eighth of the spectrum is coarse-representable and the smoother
/// covers a correspondingly wide band.
const SMOOTH_LOW_FRACTION: f64 = 1.0 / 7.0;

/// A rectangular sparse transfer operator `P` (fine rows × coarse
/// columns), stored row-major for prolongation together with its
/// transpose for restriction.
#[derive(Debug, Clone)]
struct Transfer {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// Transpose layout (coarse rows → fine columns) for `Pᵀ·r`.
    t_row_ptr: Vec<usize>,
    t_cols: Vec<usize>,
    t_vals: Vec<f64>,
}

impl Transfer {
    fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `xf += P·xc` (prolongation of a coarse correction).
    fn prolong_add(&self, xc: &[f64], xf: &mut [f64]) {
        for (i, xfi) in xf.iter_mut().enumerate().take(self.nrows) {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[idx] * xc[self.cols[idx]];
            }
            *xfi += acc;
        }
    }

    /// `rc = Pᵀ·rf` (restriction of a fine residual).
    fn restrict_into(&self, rf: &[f64], rc: &mut [f64]) {
        for (cr, rci) in rc.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.t_row_ptr[cr]..self.t_row_ptr[cr + 1] {
                acc += self.t_vals[idx] * rf[self.t_cols[idx]];
            }
            *rci = acc;
        }
    }

    /// Builds the transpose layout by counting sort (deterministic:
    /// fine rows are visited ascending, so columns within each
    /// transpose row come out ascending too).
    fn with_transpose(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        cols: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        let mut counts = vec![0usize; ncols + 1];
        for &c in &cols {
            counts[c + 1] += 1;
        }
        for j in 0..ncols {
            counts[j + 1] += counts[j];
        }
        let t_row_ptr = counts.clone();
        let mut cursor = counts;
        let mut t_cols = vec![0usize; cols.len()];
        let mut t_vals = vec![0.0f64; cols.len()];
        for i in 0..nrows {
            for idx in row_ptr[i]..row_ptr[i + 1] {
                let c = cols[idx];
                let slot = cursor[c];
                cursor[c] += 1;
                t_cols[slot] = i;
                t_vals[slot] = vals[idx];
            }
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            cols,
            vals,
            t_row_ptr,
            t_cols,
            t_vals,
        }
    }
}

/// One grid level of the hierarchy: the operator (owned for coarse
/// levels, external for level 0), its diagonal and smoothing interval,
/// the prolongation from the next-coarser level, and warm scratch so
/// V-cycles are allocation-free.
#[derive(Debug, Clone)]
struct MgLevel {
    /// The level operator; `None` at level 0, where the caller's
    /// (possibly SELL-accelerated) fine operator is used instead.
    a: Option<CsrMatrix>,
    diag: Vec<f64>,
    /// Chebyshev smoothing interval `[smooth_low, smooth_high]`
    /// derived from the power-method λ_max estimate of `D⁻¹A` at this
    /// level.
    smooth_low: f64,
    smooth_high: f64,
    /// Prolongation from the next-coarser level into this one.
    p: Transfer,
    // V-cycle scratch, sized to this level.
    x: Vec<f64>,
    r: Vec<f64>,
    resid: Vec<f64>,
    corr: Vec<f64>,
    cheb: ChebWork,
}

/// The assembled multigrid hierarchy, cached in the
/// [`PcgWorkspace`](crate::PcgWorkspace) by pattern key and value
/// snapshot. Applying it runs one V-cycle; warm applications perform
/// no heap allocation.
#[derive(Debug, Clone)]
pub(crate) struct MgHierarchy {
    levels: Vec<MgLevel>,
    chol: DenseCholesky,
    coarse_b: Vec<f64>,
    coarse_x: Vec<f64>,
    hierarchy_nnz: usize,
    fine_eig_high: f64,
}

/// The aggregate (coarse-cell) id of every fine cell under 2×2×2
/// coarsening of `dims` into `cdims`.
fn aggregate_ids(dims: (usize, usize, usize), cdims: (usize, usize, usize)) -> Vec<usize> {
    let (nx, ny, nz) = dims;
    let (cnx, cny, _) = cdims;
    let mut agg = Vec::with_capacity(nx * ny * nz);
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                agg.push(ix / 2 + cnx * (iy / 2 + cny * (iz / 2)));
            }
        }
    }
    agg
}

/// Jacobi-smoothing passes applied to the tentative prolongation. One
/// pass is the classic smoothed-aggregation choice; the second buys a
/// noticeably better low-mode interpolation (the V-cycle limiter under
/// 8× coarsening) for a modest stencil-growth cost.
const PROLONG_SMOOTH_PASSES: usize = 2;

/// Builds the smoothed-aggregation prolongation
/// `P = (I − ω·D⁻¹·A)^s · P₀` where `P₀[i, agg(i)] = 1` and
/// `s = `[`PROLONG_SMOOTH_PASSES`]. Row `i` of `P` spans the
/// aggregates of `i`'s `s`-hop stencil neighbourhood.
fn smoothed_prolongation(a: &CsrMatrix, agg: &[usize], ncoarse: usize, omega: f64) -> Transfer {
    let n = a.n();
    let mut row_ptr: Vec<usize> = (0..=n).collect();
    let mut cols: Vec<usize> = agg.to_vec();
    let mut vals: Vec<f64> = vec![1.0; n];
    for _ in 0..PROLONG_SMOOTH_PASSES {
        (row_ptr, cols, vals) = jacobi_smooth_transfer(a, &row_ptr, &cols, &vals, omega);
    }
    Transfer::with_transpose(n, ncoarse, row_ptr, cols, vals)
}

/// One application of `S = I − ω·D⁻¹·A` to a sparse transfer operator
/// given as CSR triplets, with fixed (sorted-merge) accumulation order
/// so the product is deterministic.
fn jacobi_smooth_transfer(
    a: &CsrMatrix,
    p_row_ptr: &[usize],
    p_cols: &[usize],
    p_vals: &[f64],
    omega: f64,
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let n = a.n();
    let row_ptr_a = a.row_offsets();
    let cols_a = a.col_indices();
    let vals_a = a.values();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    let mut entries: Vec<(usize, f64)> = Vec::with_capacity(32);
    for i in 0..n {
        entries.clear();
        // Identity part: row i of P as-is.
        for k in p_row_ptr[i]..p_row_ptr[i + 1] {
            entries.push((p_cols[k], p_vals[k]));
        }
        let scale_i = -omega / a.get(i, i);
        for idx in row_ptr_a[i]..row_ptr_a[i + 1] {
            let j = cols_a[idx];
            let w = scale_i * vals_a[idx];
            for k in p_row_ptr[j]..p_row_ptr[j + 1] {
                entries.push((p_cols[k], w * p_vals[k]));
            }
        }
        entries.sort_by_key(|e| e.0);
        let mut k = 0;
        while k < entries.len() {
            let (col, mut acc) = entries[k];
            k += 1;
            while k < entries.len() && entries[k].0 == col {
                acc += entries[k].1;
                k += 1;
            }
            cols.push(col);
            vals.push(acc);
        }
        row_ptr.push(cols.len());
    }
    (row_ptr, cols, vals)
}

/// Assembles the Galerkin coarse operator `A_c = Pᵀ·A·P` serially with
/// a fixed accumulation order (sparse accumulator + ascending-column
/// emission), so the product is deterministic.
fn galerkin_product(a: &CsrMatrix, p: &Transfer) -> CsrMatrix {
    let n = a.n();
    let nc = p.ncols;
    // Stage 1: AP (fine rows × coarse cols).
    let mut ap_row_ptr = Vec::with_capacity(n + 1);
    let mut ap_cols = Vec::new();
    let mut ap_vals = Vec::new();
    ap_row_ptr.push(0);
    let mut acc = vec![0.0f64; nc];
    let mut touched: Vec<usize> = Vec::with_capacity(64);
    for i in 0..n {
        for idx in a.row_offsets()[i]..a.row_offsets()[i + 1] {
            let j = a.col_indices()[idx];
            let aij = a.values()[idx];
            for pidx in p.row_ptr[j]..p.row_ptr[j + 1] {
                let cj = p.cols[pidx];
                if acc[cj] == 0.0 && !touched.contains(&cj) {
                    touched.push(cj);
                }
                acc[cj] += aij * p.vals[pidx];
            }
        }
        touched.sort_unstable();
        for &cj in &touched {
            ap_cols.push(cj);
            ap_vals.push(acc[cj]);
            acc[cj] = 0.0;
        }
        touched.clear();
        ap_row_ptr.push(ap_cols.len());
    }
    // Stage 2: A_c = Pᵀ·(AP) (coarse rows).
    let mut c_row_ptr = Vec::with_capacity(nc + 1);
    let mut c_cols = Vec::new();
    let mut c_vals = Vec::new();
    c_row_ptr.push(0);
    let mut cacc = vec![0.0f64; nc];
    for cr in 0..nc {
        for tidx in p.t_row_ptr[cr]..p.t_row_ptr[cr + 1] {
            let i = p.t_cols[tidx];
            let w = p.t_vals[tidx];
            for apidx in ap_row_ptr[i]..ap_row_ptr[i + 1] {
                let cj = ap_cols[apidx];
                if cacc[cj] == 0.0 && !touched.contains(&cj) {
                    touched.push(cj);
                }
                cacc[cj] += w * ap_vals[apidx];
            }
        }
        touched.sort_unstable();
        for &cj in &touched {
            c_cols.push(cj);
            c_vals.push(cacc[cj]);
            cacc[cj] = 0.0;
        }
        touched.clear();
        c_row_ptr.push(c_cols.len());
    }
    CsrMatrix::from_parts(nc, c_row_ptr, c_cols, c_vals)
}

impl MgHierarchy {
    /// Builds the hierarchy for the fine operator `a` on the declared
    /// grid shape. `dims` must multiply out to `a.n()` (validated by
    /// the caller). Setup is serial and allocation-heavy by design —
    /// the result is cached and every *application* is allocation-free.
    ///
    /// # Errors
    ///
    /// [`SolverError::Singular`] if the coarsest Galerkin operator is
    /// not positive definite.
    pub(crate) fn build(
        a: &CsrMatrix,
        dims: (usize, usize, usize),
        context: &'static str,
    ) -> Result<Self, SolverError> {
        let mut levels: Vec<MgLevel> = Vec::new();
        let mut hierarchy_nnz = 0usize;
        let mut fine_eig_high = 0.0f64;
        // The operator being coarsened this round: level 0 borrows
        // `a`, deeper rounds own their Galerkin product.
        let mut current: Option<CsrMatrix> = None;
        let mut cur_dims = dims;
        loop {
            let op: &CsrMatrix = current.as_ref().unwrap_or(a);
            let n = op.n();
            let diag = op.diag();
            let bounds = estimate_bounds_with(
                &|x: &[f64], y: &mut [f64]| op.spmv_into(x, y, 1),
                &diag,
                POWER_ITERS,
            );
            if levels.is_empty() {
                fine_eig_high = bounds.high;
            }
            let (cnx, cny, cnz) = (
                cur_dims.0.div_ceil(2).max(1),
                cur_dims.1.div_ceil(2).max(1),
                cur_dims.2.div_ceil(2).max(1),
            );
            let ncoarse = cnx * cny * cnz;
            if n <= COARSE_DIRECT_MAX || ncoarse >= n || levels.len() + 1 >= MAX_LEVELS {
                // This level becomes the direct coarse solve.
                let mut dense = vec![0.0f64; n * n];
                for i in 0..n {
                    for idx in op.row_offsets()[i]..op.row_offsets()[i + 1] {
                        dense[i * n + op.col_indices()[idx]] = op.values()[idx];
                    }
                }
                let chol = DenseCholesky::factor(&dense, n, context)?;
                aeropack_obs::counter!("solver.mg.setups");
                aeropack_obs::counter!("solver.mg.levels", levels.len() + 1);
                aeropack_obs::histogram!("solver.mg.coarse_unknowns", n);
                return Ok(Self {
                    levels,
                    chol,
                    coarse_b: vec![0.0; n],
                    coarse_x: vec![0.0; n],
                    hierarchy_nnz,
                    fine_eig_high,
                });
            }
            let agg = aggregate_ids(cur_dims, (cnx, cny, cnz));
            let omega = 4.0 / (3.0 * bounds.high.max(f64::MIN_POSITIVE));
            let p = smoothed_prolongation(op, &agg, ncoarse, omega);
            let coarse = galerkin_product(op, &p);
            hierarchy_nnz += p.nnz() + coarse.nnz();
            levels.push(MgLevel {
                a: current.take(),
                diag,
                smooth_low: SMOOTH_LOW_FRACTION * bounds.high,
                smooth_high: EIG_HIGH_SAFETY * bounds.high,
                p,
                x: vec![0.0; n],
                r: vec![0.0; n],
                resid: vec![0.0; n],
                corr: vec![0.0; n],
                cheb: ChebWork::default(),
            });
            current = Some(coarse);
            cur_dims = (cnx, cny, cnz);
        }
    }

    /// Grid levels including the direct coarse level.
    pub(crate) fn level_count(&self) -> usize {
        self.levels.len() + 1
    }

    /// Unknowns on the direct-solve coarse level.
    pub(crate) fn coarse_unknowns(&self) -> usize {
        self.coarse_b.len()
    }

    /// The metadata block reported through
    /// [`SolverStats::spectral`](crate::SolverStats).
    pub(crate) fn spectral_stats(&self, reused: bool) -> SpectralStats {
        let (low, high) = self
            .levels
            .first()
            .map(|l| (l.smooth_low, l.smooth_high))
            .unwrap_or((0.0, self.fine_eig_high));
        SpectralStats {
            levels: self.level_count(),
            smoother: "chebyshev",
            degree: SMOOTH_STEPS,
            eig_low: low,
            eig_high: high,
            coarse_unknowns: self.coarse_unknowns(),
            hierarchy_nnz: self.hierarchy_nnz,
            reused,
        }
    }

    /// One V-cycle: `z ≈ A⁻¹·r`. `fine_op` is the level-0 operator
    /// apply (the caller's SELL-accelerated SpMV), `threads` the worker
    /// count for the coarse-level kernels. Allocation-free on a warm
    /// hierarchy and bitwise identical at any thread count.
    pub(crate) fn apply<F>(&mut self, fine_op: &F, r: &[f64], z: &mut [f64], threads: usize)
    where
        F: Fn(&[f64], &mut [f64]),
    {
        aeropack_obs::counter!("solver.mg.vcycles");
        let nlev = self.levels.len();
        if nlev == 0 {
            // Degenerate hierarchy: the whole problem fit the direct
            // coarse solve.
            self.coarse_b.copy_from_slice(r);
            self.chol.solve_into(&self.coarse_b, &mut self.coarse_x);
            z.copy_from_slice(&self.coarse_x);
            return;
        }
        self.levels[0].r.copy_from_slice(r);
        // Downward sweep: pre-smooth, form the residual, restrict.
        for l in 0..nlev {
            let (head, tail) = self.levels.split_at_mut(l + 1);
            let lvl = &mut head[l];
            let MgLevel {
                a,
                diag,
                smooth_low,
                smooth_high,
                p,
                x,
                r,
                resid,
                corr: _,
                cheb,
            } = lvl;
            let a: &Option<CsrMatrix> = a;
            let op = |v: &[f64], y: &mut [f64]| match a {
                None => fine_op(v, y),
                Some(m) => m.spmv_into(v, y, threads),
            };
            cheb_apply(
                &op,
                diag,
                *smooth_low,
                *smooth_high,
                SMOOTH_STEPS,
                r,
                x,
                cheb,
            );
            op(x, resid);
            for i in 0..resid.len() {
                resid[i] = r[i] - resid[i];
            }
            let next_r: &mut Vec<f64> = match tail.first_mut() {
                Some(next) => &mut next.r,
                None => &mut self.coarse_b,
            };
            p.restrict_into(resid, next_r);
        }
        self.chol.solve_into(&self.coarse_b, &mut self.coarse_x);
        // Upward sweep: prolong the correction, post-smooth.
        for l in (0..nlev).rev() {
            let (head, tail) = self.levels.split_at_mut(l + 1);
            let lvl = &mut head[l];
            let MgLevel {
                a,
                diag,
                smooth_low,
                smooth_high,
                p,
                x,
                r,
                resid,
                corr,
                cheb,
            } = lvl;
            let a: &Option<CsrMatrix> = a;
            let xc: &[f64] = match tail.first() {
                Some(next) => &next.x,
                None => &self.coarse_x,
            };
            p.prolong_add(xc, x);
            let op = |v: &[f64], y: &mut [f64]| match a {
                None => fine_op(v, y),
                Some(m) => m.spmv_into(v, y, threads),
            };
            op(x, resid);
            for i in 0..resid.len() {
                resid[i] = r[i] - resid[i];
            }
            cheb_apply(
                &op,
                diag,
                *smooth_low,
                *smooth_high,
                SMOOTH_STEPS,
                resid,
                corr,
                cheb,
            );
            for i in 0..x.len() {
                x[i] += corr[i];
            }
        }
        z.copy_from_slice(&self.levels[0].x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 7-point Poisson operator on an `nx × ny × nz` grid with
    /// Dirichlet boundaries folded into the diagonal.
    fn poisson3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
        let idx = move |ix: usize, iy: usize, iz: usize| ix + nx * (iy + ny * iz);
        CsrMatrix::from_row_fn(nx * ny * nz, 2, move |i, row| {
            let ix = i % nx;
            let iy = (i / nx) % ny;
            let iz = i / (nx * ny);
            row.push((i, 6.0));
            if ix > 0 {
                row.push((idx(ix - 1, iy, iz), -1.0));
            }
            if ix + 1 < nx {
                row.push((idx(ix + 1, iy, iz), -1.0));
            }
            if iy > 0 {
                row.push((idx(ix, iy - 1, iz), -1.0));
            }
            if iy + 1 < ny {
                row.push((idx(ix, iy + 1, iz), -1.0));
            }
            if iz > 0 {
                row.push((idx(ix, iy, iz - 1), -1.0));
            }
            if iz + 1 < nz {
                row.push((idx(ix, iy, iz + 1), -1.0));
            }
        })
    }

    #[test]
    fn vcycle_convergence_factor_below_0_2_on_33cubed_poisson() {
        // The stationary iteration x ← x + B(b − A·x) with B one
        // V-cycle must contract the error by at least 5× per sweep on
        // the 33³ Poisson problem (odd extents exercise the ceil
        // coarsening). The asymptotic factor is measured over late
        // iterations, after the easy error components are gone.
        let (nx, ny, nz) = (33, 33, 33);
        let a = poisson3d(nx, ny, nz);
        let n = a.n();
        let mut mg = MgHierarchy::build(&a, (nx, ny, nz), "mg test").unwrap();
        assert!(mg.level_count() >= 3, "33³ must coarsen more than once");
        let b = vec![0.0; n];
        let mut x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 97) as f64 / 97.0).collect();
        let fine_op = |v: &[f64], y: &mut [f64]| a.spmv_into(v, y, 1);
        let mut resid = vec![0.0; n];
        let mut z = vec![0.0; n];
        let norm = |v: &[f64]| v.iter().map(|t| t * t).sum::<f64>().sqrt();
        let mut factors = Vec::new();
        let mut prev = norm(&x);
        for _ in 0..12 {
            fine_op(&x, &mut resid);
            for i in 0..n {
                resid[i] = b[i] - resid[i];
            }
            mg.apply(&fine_op, &resid, &mut z, 1);
            for i in 0..n {
                x[i] += z[i];
            }
            let e = norm(&x);
            factors.push(e / prev);
            prev = e;
        }
        let late = &factors[factors.len() - 4..];
        let rho = late.iter().product::<f64>().powf(1.0 / late.len() as f64);
        assert!(rho < 0.2, "V-cycle convergence factor {rho} ≥ 0.2");
    }

    #[test]
    fn vcycle_is_deterministic_across_thread_counts() {
        let (nx, ny, nz) = (12, 10, 6);
        let a = poisson3d(nx, ny, nz);
        let n = a.n();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() + 1.5).collect();
        let mut reference = vec![0.0; n];
        {
            let mut mg = MgHierarchy::build(&a, (nx, ny, nz), "mg det").unwrap();
            mg.apply(
                &|v: &[f64], y: &mut [f64]| a.spmv_into(v, y, 1),
                &r,
                &mut reference,
                1,
            );
        }
        for threads in [2, 8] {
            let mut mg = MgHierarchy::build(&a, (nx, ny, nz), "mg det").unwrap();
            let mut z = vec![0.0; n];
            mg.apply(
                &|v: &[f64], y: &mut [f64]| a.spmv_into(v, y, threads),
                &r,
                &mut z,
                threads,
            );
            for (p, q) in reference.iter().zip(&z) {
                assert_eq!(p.to_bits(), q.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn degenerate_small_grid_uses_direct_solve_only() {
        let a = poisson3d(4, 4, 4);
        let mut mg = MgHierarchy::build(&a, (4, 4, 4), "mg tiny").unwrap();
        assert_eq!(mg.level_count(), 1);
        let n = a.n();
        let r = vec![1.0; n];
        let mut z = vec![0.0; n];
        mg.apply(
            &|v: &[f64], y: &mut [f64]| a.spmv_into(v, y, 1),
            &r,
            &mut z,
            1,
        );
        // The "preconditioner" is exact here: A·z must equal r.
        let az = a.spmv(&z);
        for (p, q) in az.iter().zip(&r) {
            assert!((p - q).abs() < 1e-9);
        }
    }
}
