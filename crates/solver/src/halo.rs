//! Deterministic halo exchange between slab subdomains.
//!
//! A [`HaloExchange`] owns one pair of pre-allocated plane buffers per
//! face shared by two adjacent slabs. [`HaloExchange::exchange`] stages
//! a global vector into each slab's extended-range buffer: owned cells
//! copy straight through, while the two boundary planes of every face
//! travel through the link buffers. Routing the boundary planes through
//! explicit per-edge buffers makes the send/receive pair observable —
//! what the left slab sends right is byte-for-byte what the right slab
//! receives as its lower halo — which is the property the cross-process
//! transport in `aeropack-serve` relies on, and what the reciprocity
//! tests below pin down. All copies are plain `memcpy`s in a fixed
//! order, so staging is bit-exact at any thread or partition count.

use crate::dd::Slab;

/// The pair of pre-allocated send buffers for one face shared by two
/// adjacent slabs ("left" owns the lower planes, "right" the upper).
#[derive(Debug, Clone)]
pub struct HaloLink {
    /// Last owned plane of the left slab, travelling right (it becomes
    /// the right slab's lower halo).
    left_to_right: Vec<f64>,
    /// First owned plane of the right slab, travelling left (it becomes
    /// the left slab's upper halo).
    right_to_left: Vec<f64>,
}

impl HaloLink {
    /// The plane the left slab sent towards the right slab.
    pub fn left_to_right(&self) -> &[f64] {
        &self.left_to_right
    }

    /// The plane the right slab sent towards the left slab.
    pub fn right_to_left(&self) -> &[f64] {
        &self.right_to_left
    }
}

/// Pre-allocated halo staging for an ordered, contiguous list of slabs.
#[derive(Debug, Clone)]
pub struct HaloExchange {
    plane: usize,
    links: Vec<HaloLink>,
}

impl HaloExchange {
    /// Builds the per-face link buffers for `slabs`, which must be the
    /// ordered, contiguous slab list of one partition (slab `i + 1`
    /// starts at the plane where slab `i` ends).
    pub fn new(plane: usize, slabs: &[Slab]) -> Self {
        let faces = slabs.len().saturating_sub(1);
        let mut links = Vec::with_capacity(faces);
        for pair in slabs.windows(2) {
            debug_assert_eq!(
                pair[0].own_end, pair[1].own_start,
                "slabs must be contiguous and ordered"
            );
            links.push(HaloLink {
                left_to_right: vec![0.0; plane],
                right_to_left: vec![0.0; plane],
            });
        }
        Self { plane, links }
    }

    /// Cells in one grid plane (the unit every link buffer holds).
    pub fn plane(&self) -> usize {
        self.plane
    }

    /// The per-face link buffers, in slab order (link `i` sits between
    /// slab `i` and slab `i + 1`).
    pub fn links(&self) -> &[HaloLink] {
        &self.links
    }

    /// Total halo cells moved per exchange: two planes per face.
    pub fn halo_cells(&self) -> usize {
        2 * self.links.len() * self.plane
    }

    /// Stages `src` (a global cell vector) into each slab's
    /// extended-range buffer `ext[i]` (length `slabs[i].ext_cells`).
    /// Returns the number of halo cells moved through link buffers.
    pub fn exchange(&mut self, src: &[f64], slabs: &[Slab], ext: &mut [Vec<f64>]) -> usize {
        let p = self.plane;
        debug_assert_eq!(slabs.len(), ext.len());
        for (link, pair) in self.links.iter_mut().zip(slabs.windows(2)) {
            let (left, right) = (pair[0], pair[1]);
            link.left_to_right
                .copy_from_slice(&src[(left.own_end - 1) * p..left.own_end * p]);
            link.right_to_left
                .copy_from_slice(&src[right.own_start * p..(right.own_start + 1) * p]);
        }
        let mut moved = 0;
        for (s, (slab, buf)) in slabs.iter().zip(ext.iter_mut()).enumerate() {
            let own = slab.owned_cells(p);
            let off = (slab.own_start - slab.ext_start) * p;
            buf[off..off + own.len()].copy_from_slice(&src[own]);
            if slab.ext_start < slab.own_start {
                buf[..p].copy_from_slice(&self.links[s - 1].left_to_right);
                moved += p;
            }
            if slab.ext_end > slab.own_end {
                let tail = buf.len() - p;
                buf[tail..].copy_from_slice(&self.links[s].right_to_left);
                moved += p;
            }
        }
        aeropack_obs::counter!("solver.dd.exchanges");
        aeropack_obs::counter!("solver.dd.halo_cells_moved", moved);
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dd::Partition;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64).sin() + i as f64 * 0.01).collect()
    }

    fn ext_buffers(plane: usize, slabs: &[Slab]) -> Vec<Vec<f64>> {
        slabs
            .iter()
            .map(|s| vec![0.0; s.ext_cells(plane).len()])
            .collect()
    }

    #[test]
    fn exchange_reconstructs_extended_ranges() {
        let part = Partition::new(4 * 3 * 10, Some((4, 3, 10)), 4).unwrap();
        let slabs = part.tiles().to_vec();
        let plane = part.plane();
        let src = ramp(part.n());
        let mut ext = ext_buffers(plane, &slabs);
        let mut halo = HaloExchange::new(plane, &slabs);
        let moved = halo.exchange(&src, &slabs, &mut ext);
        // Every extended buffer must equal the matching global slice.
        for (slab, buf) in slabs.iter().zip(&ext) {
            let want = &src[slab.ext_cells(plane)];
            assert_eq!(buf.len(), want.len());
            for (a, b) in buf.iter().zip(want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Interior faces carry two planes each.
        assert_eq!(moved, 2 * (slabs.len() - 1) * plane);
        assert_eq!(moved, halo.halo_cells());
    }

    #[test]
    fn send_and_receive_planes_are_exact_mirrors() {
        let part = Partition::new(5 * 5 * 8, Some((5, 5, 8)), 2).unwrap();
        let slabs = part.tiles().to_vec();
        let plane = part.plane();
        let src = ramp(part.n());
        let mut ext = ext_buffers(plane, &slabs);
        let mut halo = HaloExchange::new(plane, &slabs);
        halo.exchange(&src, &slabs, &mut ext);
        let link = &halo.links()[0];
        // What the left slab sent right is exactly the right slab's
        // lower halo, and exactly the source plane it came from.
        let recv_right = &ext[1][..plane];
        let sent_left = &src[(slabs[0].own_end - 1) * plane..slabs[0].own_end * plane];
        for i in 0..plane {
            assert_eq!(link.left_to_right()[i].to_bits(), recv_right[i].to_bits());
            assert_eq!(link.left_to_right()[i].to_bits(), sent_left[i].to_bits());
        }
        // And symmetrically for the plane travelling left.
        let left_ext = &ext[0];
        let recv_left = &left_ext[left_ext.len() - plane..];
        let sent_right = &src[slabs[1].own_start * plane..(slabs[1].own_start + 1) * plane];
        for i in 0..plane {
            assert_eq!(link.right_to_left()[i].to_bits(), recv_left[i].to_bits());
            assert_eq!(link.right_to_left()[i].to_bits(), sent_right[i].to_bits());
        }
    }

    #[test]
    fn single_slab_moves_no_halo() {
        let part = Partition::new(24, Some((2, 3, 4)), 1).unwrap();
        let slabs = part.tiles().to_vec();
        let src = ramp(part.n());
        let mut ext = ext_buffers(part.plane(), &slabs);
        let mut halo = HaloExchange::new(part.plane(), &slabs);
        assert_eq!(halo.exchange(&src, &slabs, &mut ext), 0);
        assert!(halo.links().is_empty());
        for (a, b) in ext[0].iter().zip(&src) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
