//! Error type shared by every solver backend.

use std::error::Error;
use std::fmt;

/// Error returned by the linear solver backends. The physics crates
/// convert it into their own error types via `From` implementations so
/// call sites keep their established error enums.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The matrix is singular or not positive definite (a factorisation
    /// pivot failed, or the operator has a non-positive diagonal).
    Singular {
        /// What was being solved.
        context: &'static str,
    },
    /// An iterative method exhausted its iteration budget.
    NotConverged {
        /// Which solve.
        context: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Relative residual at the last iteration.
        residual: f64,
    },
    /// The inputs do not describe a solvable problem (dimension
    /// mismatch, unsupported method/preconditioner combination, …).
    InvalidInput {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Singular { context } => {
                write!(f, "singular or non-positive-definite system in {context}")
            }
            Self::NotConverged {
                context,
                iterations,
                residual,
            } => write!(
                f,
                "{context} did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            Self::InvalidInput { reason } => write!(f, "invalid solver input: {reason}"),
        }
    }
}

impl Error for SolverError {}

impl SolverError {
    /// Shorthand for [`SolverError::InvalidInput`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        Self::InvalidInput {
            reason: reason.into(),
        }
    }
}
