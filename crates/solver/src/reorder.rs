//! Reverse Cuthill–McKee (RCM) bandwidth-reducing reordering.
//!
//! FV and FEM grids assemble SPD operators whose graph is a mesh; RCM
//! renumbers the unknowns so that every row's neighbours sit close to
//! the diagonal. That tightens the profile the IC(0) factor lives on,
//! improves the factor's quality (fewer dropped couplings outside the
//! band) and gives the level-scheduled triangular solves shallower
//! dependency chains and better cache locality.
//!
//! Reordering is purely internal to the solver: the system is permuted,
//! solved, and the solution permuted back before it leaves
//! [`solve_sparse_into`](crate::solve_sparse_into). The permutation is
//! a deterministic function of the sparsity pattern alone (BFS with
//! degree-then-index tie-breaking), so results are reproducible across
//! runs and thread counts.

use crate::csr::{CsrMatrix, CsrPattern};

/// Computes the reverse Cuthill–McKee permutation of a symmetric
/// sparsity pattern. The result maps *new* index to *old*:
/// `perm[new] = old`.
///
/// Each connected component is ordered by a breadth-first traversal
/// from a pseudo-peripheral vertex, visiting neighbours in increasing
/// degree (ties broken by index), and the concatenated order is
/// reversed. The permutation depends only on the pattern, never on the
/// values, so one grid yields one permutation for a whole sweep.
pub fn rcm_permutation(pattern: &CsrPattern) -> Vec<usize> {
    let n = pattern.n();
    let row_ptr = pattern.row_offsets();
    let col_idx = pattern.col_indices();
    let degree = |v: usize| row_ptr[v + 1] - row_ptr[v];

    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // BFS scratch for the pseudo-peripheral search, reset per component.
    let mut dist = vec![usize::MAX; n];
    let mut frontier = Vec::new();
    let mut next = Vec::new();
    let mut touched = Vec::new();
    let mut nbrs = Vec::new();

    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        // Pseudo-peripheral start: repeat rooted BFS, re-rooting at a
        // minimum-degree vertex of the deepest level, until the
        // eccentricity stops growing.
        let mut start = seed;
        let mut ecc = 0usize;
        loop {
            touched.clear();
            frontier.clear();
            frontier.push(start);
            dist[start] = 0;
            touched.push(start);
            let mut depth = 0usize;
            let mut last_level: Vec<usize> = vec![start];
            while !frontier.is_empty() {
                next.clear();
                for &u in frontier.iter() {
                    for &v in &col_idx[row_ptr[u]..row_ptr[u + 1]] {
                        if v != u && dist[v] == usize::MAX {
                            dist[v] = dist[u] + 1;
                            touched.push(v);
                            next.push(v);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                depth += 1;
                last_level.clone_from(&next);
                std::mem::swap(&mut frontier, &mut next);
            }
            let candidate = last_level
                .iter()
                .copied()
                .min_by_key(|&v| (degree(v), v))
                .unwrap_or(start);
            for &v in touched.iter() {
                dist[v] = usize::MAX;
            }
            if depth > ecc {
                ecc = depth;
                start = candidate;
            } else {
                break;
            }
        }

        // Cuthill–McKee breadth-first ordering of the component.
        let head0 = order.len();
        order.push(start);
        visited[start] = true;
        let mut head = head0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            nbrs.clear();
            for &v in &col_idx[row_ptr[u]..row_ptr[u + 1]] {
                if v != u && !visited[v] {
                    visited[v] = true;
                    nbrs.push(v);
                }
            }
            nbrs.sort_unstable_by_key(|&v| (degree(v), v));
            order.extend_from_slice(&nbrs);
        }
    }

    order.reverse();
    order
}

/// The bandwidth of a pattern: `max |i − j|` over stored entries.
pub fn bandwidth(pattern: &CsrPattern) -> usize {
    let row_ptr = pattern.row_offsets();
    let col_idx = pattern.col_indices();
    let mut bw = 0usize;
    for i in 0..pattern.n() {
        for &j in &col_idx[row_ptr[i]..row_ptr[i + 1]] {
            bw = bw.max(i.abs_diff(j));
        }
    }
    bw
}

/// A symmetrically permuted copy of a matrix, `B = P·A·Pᵀ`, together
/// with the scatter map needed to refresh its values in place when the
/// source matrix changes coefficients but not structure — the
/// allocation-free path a warm workspace takes across a sweep.
#[derive(Debug, Clone)]
pub(crate) struct PermutedSystem {
    /// `perm[new] = old`.
    perm: Vec<usize>,
    /// The permuted matrix `B` with sorted rows.
    matrix: CsrMatrix,
    /// `B.values()[k] = A.values()[val_map[k]]`.
    val_map: Vec<usize>,
}

impl PermutedSystem {
    /// Builds the permuted matrix and its value-scatter map.
    pub(crate) fn build(a: &CsrMatrix, perm: Vec<usize>) -> Self {
        let n = a.n();
        assert_eq!(perm.len(), n, "permutation length must equal n");
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let a_row_ptr = a.row_offsets();
        let a_cols = a.col_indices();
        let a_vals = a.values();
        let nnz = a_cols.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut val_map = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        let mut entries: Vec<(usize, usize)> = Vec::new();
        row_ptr.push(0);
        for &old_i in perm.iter() {
            entries.clear();
            for idx in a_row_ptr[old_i]..a_row_ptr[old_i + 1] {
                entries.push((inv[a_cols[idx]], idx));
            }
            entries.sort_unstable_by_key(|e| e.0);
            for &(j, idx) in entries.iter() {
                col_idx.push(j);
                val_map.push(idx);
                vals.push(a_vals[idx]);
            }
            row_ptr.push(col_idx.len());
        }
        let matrix = CsrMatrix::from_parts(n, row_ptr, col_idx, vals);
        Self {
            perm,
            matrix,
            val_map,
        }
    }

    /// The permuted matrix `B = P·A·Pᵀ`.
    pub(crate) fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Copies fresh values out of `a` (same structure as at build time)
    /// into the permuted matrix. Allocation-free.
    pub(crate) fn refresh_values(&mut self, a: &CsrMatrix) {
        let src = a.values();
        assert_eq!(src.len(), self.val_map.len(), "structure changed");
        let vals = self.matrix.values_mut();
        for (k, &s) in self.val_map.iter().enumerate() {
            vals[k] = src[s];
        }
    }

    /// Gathers a vector into permuted order: `out[new] = x[perm[new]]`.
    pub(crate) fn permute_into(&self, x: &[f64], out: &mut [f64]) {
        for (o, &p) in out.iter_mut().zip(self.perm.iter()) {
            *o = x[p];
        }
    }

    /// Scatters a permuted vector back: `out[perm[new]] = xp[new]`.
    pub(crate) fn scatter_back(&self, xp: &[f64], out: &mut [f64]) {
        for (v, &p) in xp.iter().zip(self.perm.iter()) {
            out[p] = *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    /// A 1-D Laplacian whose unknowns have been scrambled by a fixed
    /// stride permutation — large bandwidth, mesh connectivity intact.
    fn scrambled_laplacian(n: usize, stride: usize) -> CsrMatrix {
        let map: Vec<usize> = (0..n).map(|i| (i * stride) % n).collect();
        let mut inv = vec![0usize; n];
        for (i, &m) in map.iter().enumerate() {
            inv[m] = i;
        }
        CsrMatrix::from_row_fn(n, 1, |r, row| {
            let i = inv[r];
            if i > 0 {
                row.push((map[i - 1], -1.0));
            }
            row.push((r, 2.0));
            if i + 1 < n {
                row.push((map[i + 1], -1.0));
            }
        })
    }

    #[test]
    fn rcm_is_a_valid_permutation() {
        let a = scrambled_laplacian(101, 37);
        let perm = rcm_permutation(&a.pattern());
        let mut seen = [false; 101];
        for &p in perm.iter() {
            assert!(p < 101 && !seen[p], "duplicate or out-of-range index");
            seen[p] = true;
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_on_a_scrambled_band() {
        let a = scrambled_laplacian(144, 89);
        let before = bandwidth(&a.pattern());
        let sys = PermutedSystem::build(&a, rcm_permutation(&a.pattern()));
        let after = bandwidth(&sys.matrix().pattern());
        assert!(
            after < before / 4,
            "RCM should shrink bandwidth sharply: {before} -> {after}"
        );
        // A path graph renumbered by RCM has the minimal bandwidth 1.
        assert_eq!(after, 1);
    }

    #[test]
    fn rcm_handles_disconnected_components_and_isolated_vertices() {
        // Two 4-cliques plus an isolated diagonal-only vertex.
        let a = CsrMatrix::from_row_fn(9, 1, |i, row| {
            row.push((i, 4.0));
            if i < 8 {
                let base = (i / 4) * 4;
                for j in base..base + 4 {
                    if j != i {
                        row.push((j, -1.0));
                    }
                }
            }
        });
        let perm = rcm_permutation(&a.pattern());
        let mut seen = [false; 9];
        for &p in perm.iter() {
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permuted_system_matches_explicit_permutation() {
        let a = scrambled_laplacian(60, 23);
        let perm = rcm_permutation(&a.pattern());
        let sys = PermutedSystem::build(&a, perm.clone());
        let b = sys.matrix();
        for new_i in 0..60 {
            for new_j in 0..60 {
                assert_eq!(b.get(new_i, new_j), a.get(perm[new_i], perm[new_j]));
            }
        }
    }

    #[test]
    fn permute_and_scatter_round_trip() {
        let a = scrambled_laplacian(31, 11);
        let sys = PermutedSystem::build(&a, rcm_permutation(&a.pattern()));
        let x: Vec<f64> = (0..31).map(|i| (i as f64 * 0.61).sin()).collect();
        let mut xp = vec![0.0; 31];
        let mut back = vec![0.0; 31];
        sys.permute_into(&x, &mut xp);
        sys.scatter_back(&xp, &mut back);
        assert_eq!(x, back);
    }

    #[test]
    fn refresh_values_tracks_the_source_matrix() {
        let a = scrambled_laplacian(40, 13);
        let perm = rcm_permutation(&a.pattern());
        let mut sys = PermutedSystem::build(&a, perm.clone());
        // Rebuild the source with scaled coefficients (same structure).
        let scaled = CsrMatrix::from_pattern_row_fn(&a.pattern(), 1, |r, row| {
            for idx in a.row_offsets()[r]..a.row_offsets()[r + 1] {
                row.push((a.col_indices()[idx], 3.0 * a.values()[idx]));
            }
        });
        sys.refresh_values(&scaled);
        let b = sys.matrix();
        for (new_i, &old_i) in perm.iter().enumerate() {
            assert_eq!(
                b.get(new_i, new_i),
                scaled.get(old_i, old_i),
                "diagonal mismatch after refresh"
            );
        }
    }
}
