//! Shared linear solver backend for the aeropack workspace.
//!
//! Every quantitative result of the reproduction — the three-level
//! thermal procedure, the Fig 10 ΔT-vs-power curves, the modal and PSD
//! qualification margins — bottoms out in a linear solve. This crate is
//! the single implementation both physics stacks (`aeropack-thermal`
//! and `aeropack-fem`) route through:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with multithreaded
//!   SpMV and parallel row-block assembly built on
//!   [`std::thread::scope`] (no external dependencies). Row
//!   partitioning keeps the result bitwise identical at any thread
//!   count.
//! * [`solve_sparse`] — preconditioned conjugate gradient with
//!   pluggable [`Precond::Jacobi`] / [`Precond::Ssor`] /
//!   [`Precond::Ic0`] / [`Precond::Chebyshev`] /
//!   [`Precond::Multigrid`] preconditioners. IC(0) factors on the
//!   matrix's own sparsity pattern (with diagonal-shift breakdown
//!   fallback), caches the factor in the [`PcgWorkspace`] for reuse
//!   across a sweep, applies it through level-scheduled parallel
//!   triangular solves, and by default runs on a reverse
//!   Cuthill–McKee reordering of the system ([`Reorder`]) for better
//!   factor quality and locality. Multigrid builds a smoothed-
//!   aggregation hierarchy from [`SolverConfig::grid_dims`] with
//!   Galerkin coarse operators, Chebyshev smoothers and a dense
//!   Cholesky coarse solve; Chebyshev is its pure-algebraic fallback
//!   (power-method spectral bounds cached in the workspace). Large
//!   solves route SpMV through a cache-blocked SELL-style layout
//!   ([`SellMatrix`]), and [`SolverConfig::mixed_precision`] opts into
//!   f32 inner sweeps wrapped in f64 iterative refinement.
//! * [`ShardedSolve`] — domain-decomposed PCG: the structured grid
//!   partitions into slab subdomains ([`Partition`]) with one-plane
//!   halos ([`HaloExchange`]), [`Precond::AdditiveSchwarz`] applies
//!   barrier-free per-subdomain IC(0) factors, and shards execute
//!   in-process or across worker processes over the `aeropack-serve`
//!   wire — bit-identical at any shard count and any thread count.
//! * [`DenseCholesky`] / [`DenseLu`] — the dense direct factorisations
//!   behind resistive networks and the FEM eigen solvers, reachable
//!   through the same [`SolverConfig`] front door via [`solve_dense`].
//! * [`SolverStats`] — the observability layer: every solve returns a
//!   [`Solution`] carrying iteration counts, the residual history, the
//!   achieved tolerance and wall time, so experiment binaries can print
//!   convergence tables.
//!
//! # Example
//!
//! ```
//! use aeropack_solver::{CsrMatrix, Method, Precond, SolverConfig};
//!
//! // 1-D Laplacian chain with Dirichlet ends.
//! let n = 64;
//! let a = CsrMatrix::from_row_fn(n, 1, |i, row| {
//!     if i > 0 { row.push((i - 1, -1.0)); }
//!     row.push((i, 2.0));
//!     if i + 1 < n { row.push((i + 1, -1.0)); }
//! });
//! let cfg = SolverConfig::new()
//!     .method(Method::Pcg)
//!     .preconditioner(Precond::Ssor)
//!     .tolerance(1e-12);
//! let sol = aeropack_solver::solve_sparse(&a, &vec![1.0; n], &cfg).unwrap();
//! assert!(sol.stats.final_residual <= 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cheb;
mod config;
mod csr;
mod dd;
mod dense;
mod error;
mod fingerprint;
mod halo;
mod ic0;
mod mg;
mod pcg;
mod reorder;
mod stats;

pub use cheb::{estimate_dinv_spectrum, EigBounds};
pub use config::{Reorder, Solution, SolverConfig};
pub use csr::{CsrMatrix, CsrPattern, SellMatrix};
pub use dd::{
    shards_from_env, tree_dot, tree_norm, Partition, ShardedSolve, Slab, SlabOperator, SlabSpec,
    SlabWorker,
};
pub use dense::{solve_dense, DenseCholesky, DenseLu};
pub use error::SolverError;
pub use fingerprint::Fingerprint;
pub use halo::{HaloExchange, HaloLink};
pub use pcg::{
    solve_multi_rhs, solve_multi_rhs_with, solve_operator, solve_sparse, solve_sparse_into,
    solve_sparse_with, PcgWorkspace,
};
pub use reorder::{bandwidth, rcm_permutation};
pub use stats::{DdStats, FactorStats, Method, Precond, SolverStats, SpectralStats};

/// A symmetric (or general) linear operator `y = A·x` — the
/// architectural seam the physics crates program against. Sparse
/// matrices, dense matrices and matrix-free stencils all implement it.
pub trait LinearOperator {
    /// Problem dimension `n` (the operator is `n × n`).
    fn dim(&self) -> usize;

    /// Computes `y = A·x`. Both slices have length [`dim`](Self::dim).
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// The matrix diagonal, used by the Jacobi preconditioner and for
    /// positivity screening of SPD systems.
    fn diagonal(&self) -> Vec<f64>;
}
