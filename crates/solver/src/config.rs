//! The solver front door: a builder-style configuration and the
//! solution-with-stats return type.

use crate::stats::{Method, Precond, SolverStats};

/// Symmetric reordering applied to the system before an iterative
/// solve. Reordering never changes what is solved — the solution is
/// permuted back before it leaves the solver — but it changes the
/// factor quality and memory locality of factorisation-based
/// preconditioners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Reorder {
    /// Reorder when the preconditioner benefits from it: reverse
    /// Cuthill–McKee for [`Precond::Ic0`], natural ordering otherwise.
    /// This is the default.
    #[default]
    Auto,
    /// Never reorder (natural ordering).
    None,
    /// Always apply reverse Cuthill–McKee bandwidth reduction.
    Rcm,
}

impl Reorder {
    /// Whether RCM actually engages for the given preconditioner.
    pub fn engages(self, precond: Precond) -> bool {
        match self {
            Self::Auto => precond == Precond::Ic0,
            Self::None => false,
            Self::Rcm => true,
        }
    }
}

/// Configuration for a linear solve, built fluently:
///
/// ```
/// use aeropack_solver::{Method, Precond, SolverConfig};
///
/// let cfg = SolverConfig::new()
///     .method(Method::Pcg)
///     .preconditioner(Precond::Ssor)
///     .tolerance(1e-11)
///     .threads(4);
/// assert_eq!(cfg.get_threads(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    method: Method,
    precond: Precond,
    tolerance: f64,
    max_iterations: Option<usize>,
    threads: usize,
    context: &'static str,
    record_history: bool,
    reorder: Reorder,
    mixed_precision: bool,
    grid_dims: Option<(usize, usize, usize)>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            method: Method::Pcg,
            precond: Precond::Jacobi,
            tolerance: 1e-11,
            max_iterations: None,
            threads: 1,
            context: "linear solve",
            record_history: true,
            reorder: Reorder::Auto,
            mixed_precision: false,
            grid_dims: None,
        }
    }
}

impl SolverConfig {
    /// The default configuration: PCG with Jacobi preconditioning,
    /// relative tolerance `1e-11`, one thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the solution method.
    #[must_use]
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Selects the preconditioner for iterative methods.
    #[must_use]
    pub fn preconditioner(mut self, precond: Precond) -> Self {
        self.precond = precond;
        self
    }

    /// Sets the relative residual tolerance `‖b − A·x‖ ≤ tol·‖b‖`.
    #[must_use]
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Caps the iteration budget (the default scales with the problem
    /// size: `40·max(n, 100)`).
    #[must_use]
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Sets the number of worker threads for the sparse kernels. Row
    /// partitioning keeps results bitwise identical at any count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Tags the solve for error messages and stats lines.
    #[must_use]
    pub fn context(mut self, context: &'static str) -> Self {
        self.context = context;
        self
    }

    /// Enables or disables per-iteration residual recording (on by
    /// default). Disabling it keeps
    /// [`SolverStats::residual_history`](crate::SolverStats) empty and
    /// makes warm-workspace solves fully allocation-free — the mode
    /// sweep engines run in.
    #[must_use]
    pub fn record_history(mut self, record: bool) -> Self {
        self.record_history = record;
        self
    }

    /// The configured method.
    pub fn get_method(&self) -> Method {
        self.method
    }

    /// The configured preconditioner.
    pub fn get_preconditioner(&self) -> Precond {
        self.precond
    }

    /// The configured relative tolerance.
    pub fn get_tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The iteration budget for a problem of size `n`.
    pub fn iteration_budget(&self, n: usize) -> usize {
        self.max_iterations.unwrap_or(40 * n.max(100))
    }

    /// The configured thread count (≥ 1).
    pub fn get_threads(&self) -> usize {
        self.threads
    }

    /// The context tag.
    pub fn get_context(&self) -> &'static str {
        self.context
    }

    /// Whether per-iteration residuals are recorded into the stats.
    pub fn get_record_history(&self) -> bool {
        self.record_history
    }

    /// Selects the symmetric reordering policy (default
    /// [`Reorder::Auto`]: RCM engages with [`Precond::Ic0`]).
    #[must_use]
    pub fn reorder(mut self, reorder: Reorder) -> Self {
        self.reorder = reorder;
        self
    }

    /// The configured reordering policy.
    pub fn get_reorder(&self) -> Reorder {
        self.reorder
    }

    /// Enables the opt-in mixed-precision solve path: an `f32` inner
    /// Jacobi-PCG wrapped in an `f64` iterative-refinement outer loop.
    /// The inner sweeps run at double the effective memory bandwidth;
    /// the outer loop recovers full `f64` accuracy by re-solving for
    /// the residual correction until the requested tolerance is met in
    /// `f64` arithmetic. **Off by default** — the default path is
    /// bit-exact with previous releases and all golden snapshots. Only
    /// [`Precond::Jacobi`] and [`Precond::None`] are supported while
    /// the mode is on (the inner iteration preconditioner is Jacobi).
    #[must_use]
    pub fn mixed_precision(mut self, on: bool) -> Self {
        self.mixed_precision = on;
        self
    }

    /// Whether the mixed-precision path is enabled.
    pub fn get_mixed_precision(&self) -> bool {
        self.mixed_precision
    }

    /// Declares the structured-grid shape `(nx, ny, nz)` behind the
    /// matrix (row index `i = ix + nx·(iy + ny·iz)`), which lets
    /// [`Precond::Multigrid`] build its geometric coarsening hierarchy.
    /// The thermal finite-volume models inject their grid shape
    /// automatically; matrix-free callers set it by hand. Without it,
    /// `Precond::Multigrid` falls back to Chebyshev polynomial
    /// preconditioning.
    #[must_use]
    pub fn grid_dims(mut self, dims: (usize, usize, usize)) -> Self {
        self.grid_dims = Some(dims);
        self
    }

    /// The declared structured-grid shape, if any.
    pub fn get_grid_dims(&self) -> Option<(usize, usize, usize)> {
        self.grid_dims
    }

    /// Whether RCM reordering actually engages for this configuration.
    pub fn rcm_engages(&self) -> bool {
        self.reorder.engages(self.precond)
    }
}

/// A solved system: the solution vector plus the statistics of the
/// solve that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The solution vector `x` of `A·x = b`.
    pub x: Vec<f64>,
    /// How the solve went.
    pub stats: SolverStats,
}
