//! Canonical content fingerprinting for solver inputs and models.
//!
//! The symbolic cache in [`CsrPattern`](crate::CsrPattern) keys on
//! reference identity — two `Arc`s to the same index arrays. That is
//! the right key *within* one model instance, but a result cache that
//! outlives individual models (the `aeropack-serve` content-addressed
//! cache) needs a key derived from the *values* a model is built from,
//! stable across processes and independent of construction order
//! details. [`Fingerprint`] is that key: a 64-bit FNV-1a accumulator
//! with a canonical encoding for every input class.
//!
//! # Canonicalisation rules
//!
//! * **Floats** are hashed through their IEEE-754 bit pattern after
//!   mapping `-0.0` to `+0.0`, so the two zero encodings — which
//!   compare equal and behave identically in every solve — cannot
//!   split the cache. `NaN` inputs are rejected with a panic: a NaN
//!   never equals itself, so no cache key containing one can ever be
//!   meaningfully re-hit, and the panic surfaces the corrupted model
//!   at fingerprint time instead of as a silent permanent cache miss.
//! * **Strings and byte slices** are length-prefixed, so adjacent
//!   fields cannot alias (`"ab" + "c"` ≠ `"a" + "bc"`).
//! * **Field order is the caller's contract**: hash fields in one
//!   canonical (declaration) order. Order *invariance* for payloads
//!   that are semantically sets — e.g. power boxes painted onto an FV
//!   grid — comes from hashing the accumulated per-cell state rather
//!   than the construction calls, which the model fingerprints in this
//!   workspace do.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An order-sensitive 64-bit content hasher with canonical float
/// handling. See the module docs for the encoding rules.
///
/// # Examples
///
/// ```
/// use aeropack_solver::Fingerprint;
///
/// let mut a = Fingerprint::new("demo");
/// a.write_f64(-0.0);
/// let mut b = Fingerprint::new("demo");
/// b.write_f64(0.0);
/// assert_eq!(a.finish(), b.finish()); // -0.0 canonicalises to +0.0
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Fingerprint {
    /// Starts a fingerprint for the named domain. The tag separates
    /// key spaces: an FV model and an FEM plate with coincidentally
    /// equal field bytes must not collide.
    pub fn new(tag: &str) -> Self {
        let mut fp = Self { state: FNV_OFFSET };
        fp.write_str(tag);
        fp
    }

    /// Folds raw bytes into the hash (no length prefix — used by the
    /// typed writers below).
    fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a byte slice, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_raw(bytes);
    }

    /// Hashes a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Hashes one `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_raw(&v.to_le_bytes());
    }

    /// Hashes one `usize` (as `u64`, platform-independent).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hashes one discriminant byte (enum variant tags).
    pub fn write_u8(&mut self, v: u8) {
        self.write_raw(&[v]);
    }

    /// Hashes one `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Hashes one finite float through its canonical bit pattern.
    ///
    /// # Panics
    ///
    /// Panics when `v` is NaN — a NaN in a cache key can never be
    /// re-hit, so it is a model-construction bug, not a valid input.
    pub fn write_f64(&mut self, v: f64) {
        assert!(!v.is_nan(), "fingerprint input is NaN");
        let canonical = if v == 0.0 { 0.0f64 } else { v };
        self.write_raw(&canonical.to_bits().to_le_bytes());
    }

    /// Hashes a float slice, length-prefixed, each element canonical.
    ///
    /// # Panics
    ///
    /// Panics when any element is NaN.
    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_u64(vs.len() as u64);
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::Fingerprint;

    #[test]
    fn identical_inputs_hash_identically() {
        let build = || {
            let mut fp = Fingerprint::new("t");
            fp.write_f64s(&[1.0, 2.5, -3.25]);
            fp.write_str("plate");
            fp.write_u64(7);
            fp.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn negative_zero_is_canonical() {
        let mut a = Fingerprint::new("t");
        a.write_f64s(&[0.0, -0.0]);
        let mut b = Fingerprint::new("t");
        b.write_f64s(&[-0.0, 0.0]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = Fingerprint::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tag_separates_domains() {
        let mut a = Fingerprint::new("fv");
        a.write_u64(1);
        let mut b = Fingerprint::new("fem");
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    #[should_panic(expected = "fingerprint input is NaN")]
    fn nan_input_panics() {
        let mut fp = Fingerprint::new("t");
        fp.write_f64(f64::NAN);
    }
}
