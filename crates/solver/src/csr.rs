//! Compressed sparse row matrices with multithreaded kernels.
//!
//! Both the assembly constructor and the SpMV kernel partition work by
//! contiguous *row blocks*, so the floating-point accumulation order of
//! every row is fixed by the CSR layout alone — results are bitwise
//! identical at any thread count.

use std::sync::Arc;

use crate::LinearOperator;

/// A square sparse matrix in compressed sparse row format. Column
/// indices inside each row are sorted ascending and duplicate entries
/// are summed at construction.
///
/// The symbolic structure (`row_ptr` + `col_idx`) is held behind
/// [`Arc`]s so that [`CsrMatrix::pattern`] can hand it out for reuse:
/// re-assembling a matrix with the same sparsity through
/// [`CsrMatrix::from_pattern_row_fn`] rebuilds only the coefficient
/// values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Arc<Vec<usize>>,
    col_idx: Arc<Vec<usize>>,
    vals: Vec<f64>,
}

/// The symbolic (structure-only) part of a [`CsrMatrix`]: row pointers
/// and sorted column indices, shared cheaply via [`Arc`]. Obtained from
/// [`CsrMatrix::pattern`] and consumed by
/// [`CsrMatrix::from_pattern_row_fn`], which skips the sort/merge
/// symbolic phase entirely — the caching layer behind fast scenario
/// sweeps whose matrices share one grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrPattern {
    n: usize,
    row_ptr: Arc<Vec<usize>>,
    col_idx: Arc<Vec<usize>>,
}

impl CsrPattern {
    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Structural non-zero count.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row offsets (`n + 1` entries).
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, sorted ascending within each row.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// A key identifying this symbolic structure by the shared index
    /// arrays themselves: two patterns obtained from the same cached
    /// structure (via [`CsrMatrix::pattern`] /
    /// [`CsrMatrix::from_pattern_row_fn`]) compare equal in O(1). Used
    /// by the workspace caches (RCM permutation, IC(0) schedule) to
    /// recognise "same grid, new coefficients" without scanning.
    pub fn key(&self) -> (usize, usize) {
        (
            Arc::as_ptr(&self.row_ptr) as usize,
            Arc::as_ptr(&self.col_idx) as usize,
        )
    }
}

/// Debug-time guard behind the ordered-row contract: IC(0), RCM and
/// [`CsrMatrix::get`]'s binary search all rely on strictly ascending
/// column indices inside every row.
fn debug_assert_sorted_rows(n: usize, row_ptr: &[usize], col_idx: &[usize]) {
    if cfg!(debug_assertions) {
        for i in 0..n {
            let cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            debug_assert!(
                cols.windows(2).all(|w| w[0] < w[1]),
                "row {i} columns are not strictly ascending"
            );
        }
    }
}

impl CsrMatrix {
    /// Assembles an `n × n` matrix by calling `row_fn(i, &mut row)` for
    /// every row `i`; the callback pushes `(column, value)` entries
    /// (any order, duplicates allowed — they are summed). Rows are
    /// assembled in parallel blocks across `threads` workers using
    /// [`std::thread::scope`]; the assembled matrix is identical for
    /// every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the callback emits a column index `≥ n`.
    pub fn from_row_fn<F>(n: usize, threads: usize, row_fn: F) -> Self
    where
        F: Fn(usize, &mut Vec<(usize, f64)>) + Sync,
    {
        let nthreads = threads.max(1).min(n.max(1));
        let chunk = n.div_ceil(nthreads.max(1)).max(1);
        let mut blocks: Vec<(Vec<usize>, Vec<f64>, Vec<usize>)> = Vec::with_capacity(nthreads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nthreads);
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                let row_fn = &row_fn;
                handles.push(scope.spawn(move || assemble_rows(start, end, n, row_fn)));
                start = end;
            }
            for h in handles {
                blocks.push(h.join().expect("assembly worker panicked"));
            }
        });
        let nnz: usize = blocks.iter().map(|b| b.0.len()).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for (cols, vs, counts) in blocks {
            for c in counts {
                row_ptr.push(row_ptr.last().copied().unwrap_or(0) + c);
            }
            col_idx.extend_from_slice(&cols);
            vals.extend_from_slice(&vs);
        }
        debug_assert_sorted_rows(n, &row_ptr, &col_idx);
        Self {
            n,
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            vals,
        }
    }

    /// Builds a matrix directly from raw CSR arrays. Used by the
    /// reordering layer, which computes permuted index arrays itself.
    /// Column indices must be strictly ascending within each row
    /// (checked in debug builds).
    pub(crate) fn from_parts(
        n: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), n + 1);
        debug_assert_eq!(col_idx.len(), vals.len());
        debug_assert_sorted_rows(n, &row_ptr, &col_idx);
        Self {
            n,
            row_ptr: Arc::new(row_ptr),
            col_idx: Arc::new(col_idx),
            vals,
        }
    }

    /// The symbolic structure of this matrix, shared by reference
    /// counting — no copy of the index arrays is made.
    pub fn pattern(&self) -> CsrPattern {
        CsrPattern {
            n: self.n,
            row_ptr: Arc::clone(&self.row_ptr),
            col_idx: Arc::clone(&self.col_idx),
        }
    }

    /// Re-assembles a matrix over a cached [`CsrPattern`]: only the
    /// coefficient values are computed — the per-row sort, duplicate
    /// merge and index-array construction of
    /// [`CsrMatrix::from_row_fn`] are skipped. The callback contract is
    /// identical, and for the same callback the numeric result is
    /// bitwise identical to a full assembly (duplicates are summed in
    /// the same stable order). Rows are filled in parallel blocks
    /// across `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if the callback emits a column absent from the pattern
    /// (the pattern may be a superset; missing entries stay 0).
    pub fn from_pattern_row_fn<F>(pattern: &CsrPattern, threads: usize, row_fn: F) -> Self
    where
        F: Fn(usize, &mut Vec<(usize, f64)>) + Sync,
    {
        let n = pattern.n;
        let row_ptr: &[usize] = &pattern.row_ptr;
        let col_idx: &[usize] = &pattern.col_idx;
        let mut vals = vec![0.0f64; col_idx.len()];
        let nthreads = threads.max(1).min(n.max(1));
        if nthreads <= 1 {
            fill_pattern_rows(0, n, 0, row_ptr, col_idx, &mut vals, &row_fn);
            return Self {
                n,
                row_ptr: Arc::clone(&pattern.row_ptr),
                col_idx: Arc::clone(&pattern.col_idx),
                vals,
            };
        }
        let chunk = n.div_ceil(nthreads).max(1);
        std::thread::scope(|scope| {
            let mut rest = vals.as_mut_slice();
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                let base = row_ptr[start];
                let (block, tail) = rest.split_at_mut(row_ptr[end] - base);
                rest = tail;
                let row_fn = &row_fn;
                scope.spawn(move || {
                    fill_pattern_rows(start, end, base, row_ptr, col_idx, block, row_fn)
                });
                start = end;
            }
        });
        Self {
            n,
            row_ptr: Arc::clone(&pattern.row_ptr),
            col_idx: Arc::clone(&pattern.col_idx),
            vals,
        }
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored (structural) non-zero count.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row offsets (`n + 1` entries).
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, sorted ascending within each row.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored values, aligned with [`CsrMatrix::col_indices`].
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable access to the stored values (structure is immutable).
    pub(crate) fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// The stored value at `(i, j)`, zero if not present.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        match self.col_idx[range.clone()].binary_search(&j) {
            Ok(k) => self.vals[range.start + k],
            Err(_) => 0.0,
        }
    }

    /// The matrix diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// Writes the matrix diagonal into `out`, reusing its capacity —
    /// the allocation-free counterpart of [`CsrMatrix::diag`] used by
    /// the workspace solve path.
    pub fn diag_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n).map(|i| self.get(i, i)));
    }

    /// Computes `y = A·x` over the row range `[start, end)`, writing
    /// into `y_block` (whose index 0 corresponds to row `start`).
    fn spmv_rows(&self, start: usize, end: usize, x: &[f64], y_block: &mut [f64]) {
        for (k, i) in (start..end).enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[idx] * x[self.col_idx[idx]];
            }
            y_block[k] = acc;
        }
    }

    /// Multithreaded SpMV `y = A·x` across `threads` workers. Rows are
    /// split into contiguous blocks, so the result is bitwise identical
    /// for every thread count.
    ///
    /// # Panics
    ///
    /// Panics on slice length mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.n, "x length must equal n");
        assert_eq!(y.len(), self.n, "y length must equal n");
        let nthreads = threads.max(1).min(self.n.max(1));
        if nthreads <= 1 {
            self.spmv_rows(0, self.n, x, y);
            return;
        }
        let chunk = self.n.div_ceil(nthreads).max(1);
        std::thread::scope(|scope| {
            let mut rest = y;
            let mut start = 0;
            while start < self.n {
                let end = (start + chunk).min(self.n);
                let (block, tail) = rest.split_at_mut(end - start);
                rest = tail;
                scope.spawn(move || self.spmv_rows(start, end, x, block));
                start = end;
            }
        });
    }

    /// Serial SpMV convenience wrapper.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.spmv_rows(0, self.n, x, &mut y);
        y
    }

    /// Applies one SSOR (ω = 1, symmetric Gauss–Seidel) preconditioner
    /// solve `z = M⁻¹·r` with `M = (D + L)·D⁻¹·(D + U)`, using `diag`
    /// as the (pre-screened, positive) diagonal.
    pub(crate) fn ssor_apply(&self, diag: &[f64], r: &[f64], z: &mut [f64]) {
        let n = self.n;
        // Forward sweep: (D + L)·u = r, stored into z.
        for i in 0..n {
            let mut acc = r[i];
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[idx];
                if j >= i {
                    break;
                }
                acc -= self.vals[idx] * z[j];
            }
            z[i] = acc / diag[i];
        }
        // Scale by D, then backward sweep: (D + U)·z = D·u.
        for i in 0..n {
            z[i] *= diag[i];
        }
        for i in (0..n).rev() {
            let mut acc = z[i];
            for idx in (self.row_ptr[i]..self.row_ptr[i + 1]).rev() {
                let j = self.col_idx[idx];
                if j <= i {
                    break;
                }
                acc -= self.vals[idx] * z[j];
            }
            z[i] = acc / diag[i];
        }
    }
}

/// Row-block width of the SELL-style layout: how many rows share one
/// slot-major block.
const SELL_LANES: usize = 8;

/// A cache-blocked, SELL-style re-layout of a [`CsrMatrix`] for faster
/// SpMV: rows are grouped into fixed-width blocks of [`SELL_LANES`]
/// lanes, sorted inside each block by descending row length, and the
/// entries are stored **slot-major** (entry `s` of every lane in a
/// block is contiguous). The inner kernel loop then runs across lanes
/// over contiguous value/column words instead of one short
/// strided-access row at a time, amortising loop overhead and keeping
/// the value stream dense — there is no zero padding because the
/// descending-length sort makes the active lanes of every slot a
/// prefix.
///
/// The per-row accumulation order is exactly the CSR order (slot `s`
/// of a lane is the `s`-th stored entry of that row), so
/// [`SellMatrix::spmv_into`] is **bitwise identical** to
/// [`CsrMatrix::spmv_into`] at any thread count — the layout is a pure
/// speed change, invisible to golden snapshots and the determinism
/// contract.
///
/// Built once per sparsity pattern (cached in the
/// [`PcgWorkspace`](crate::PcgWorkspace) by pattern key) and refreshed
/// allocation-free when only the coefficient values change.
#[derive(Debug, Clone)]
pub struct SellMatrix {
    n: usize,
    /// Per-block offset into `slot_active`; block `b` owns slots
    /// `slot_ptr[b]..slot_ptr[b + 1]` (its width in slots).
    slot_ptr: Vec<usize>,
    /// Active lane count of each slot (a non-increasing sequence
    /// within a block).
    slot_active: Vec<usize>,
    /// Entry offset where each block's slot-major data starts.
    block_entry: Vec<usize>,
    /// Row id of each lane, block-major (`n` entries; lanes of block
    /// `b` start at `b·SELL_LANES`).
    lane_rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
    /// Source index into the CSR value array per stored entry, for
    /// allocation-free numeric refresh.
    src: Vec<usize>,
}

impl SellMatrix {
    /// Re-lays `a` out into blocked slot-major form.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let n = a.n();
        let row_ptr = a.row_offsets();
        let nblocks = n.div_ceil(SELL_LANES);
        let mut slot_ptr = Vec::with_capacity(nblocks + 1);
        let mut block_entry = Vec::with_capacity(nblocks + 1);
        let mut slot_active = Vec::new();
        let mut lane_rows = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(a.nnz());
        let mut src = Vec::with_capacity(a.nnz());
        slot_ptr.push(0);
        block_entry.push(0);
        let row_len = |i: usize| row_ptr[i + 1] - row_ptr[i];
        for b in 0..nblocks {
            let start = b * SELL_LANES;
            let end = (start + SELL_LANES).min(n);
            let lane_base = lane_rows.len();
            lane_rows.extend(start..end);
            // Stable descending-length sort: equal-length rows keep
            // their natural order, so the layout is deterministic.
            lane_rows[lane_base..].sort_by_key(|&i| std::cmp::Reverse(row_len(i)));
            let lanes = &lane_rows[lane_base..];
            let width = row_len(lanes[0]);
            for s in 0..width {
                let active = lanes.iter().take_while(|&&i| row_len(i) > s).count();
                slot_active.push(active);
                for &i in &lanes[..active] {
                    let idx = row_ptr[i] + s;
                    cols.push(a.col_indices()[idx]);
                    src.push(idx);
                }
            }
            slot_ptr.push(slot_active.len());
            block_entry.push(cols.len());
        }
        let mut sell = Self {
            n,
            slot_ptr,
            slot_active,
            block_entry,
            lane_rows,
            cols,
            vals: vec![0.0; src.len()],
            src,
        };
        sell.refresh_values(a);
        sell
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Copies the current CSR values into the blocked layout without
    /// allocating — the "same grid, new coefficients" refresh path.
    ///
    /// # Panics
    ///
    /// Panics if `a` has a different non-zero count than the matrix
    /// this layout was built from.
    pub fn refresh_values(&mut self, a: &CsrMatrix) {
        let csr_vals = a.values();
        for (v, &idx) in self.vals.iter_mut().zip(&self.src) {
            *v = csr_vals[idx];
        }
    }

    /// Blocked SpMV `y = A·x` over the block range `[b0, b1)`, writing
    /// into `y_block` (whose index 0 corresponds to row
    /// `b0 · SELL_LANES`).
    fn spmv_blocks(&self, b0: usize, b1: usize, x: &[f64], y_block: &mut [f64]) {
        let row_base = b0 * SELL_LANES;
        for b in b0..b1 {
            let lane_base = b * SELL_LANES;
            let nlanes = (self.n - lane_base).min(SELL_LANES);
            let mut acc = [0.0f64; SELL_LANES];
            let mut off = self.block_entry[b];
            for s in self.slot_ptr[b]..self.slot_ptr[b + 1] {
                let active = self.slot_active[s];
                let vals = &self.vals[off..off + active];
                let cols = &self.cols[off..off + active];
                for l in 0..active {
                    acc[l] += vals[l] * x[cols[l]];
                }
                off += active;
            }
            for l in 0..nlanes {
                y_block[self.lane_rows[lane_base + l] - row_base] = acc[l];
            }
        }
    }

    /// Multithreaded blocked SpMV `y = A·x`, bitwise identical to
    /// [`CsrMatrix::spmv_into`] on the source matrix at any thread
    /// count (work is split at block boundaries, and the per-row
    /// accumulation order is the CSR order).
    ///
    /// # Panics
    ///
    /// Panics on slice length mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.n, "x length must equal n");
        assert_eq!(y.len(), self.n, "y length must equal n");
        let nblocks = self.n.div_ceil(SELL_LANES);
        let nthreads = threads.max(1).min(nblocks.max(1));
        if nthreads <= 1 {
            self.spmv_blocks(0, nblocks, x, y);
            return;
        }
        let chunk = nblocks.div_ceil(nthreads).max(1);
        std::thread::scope(|scope| {
            let mut rest = y;
            let mut b0 = 0;
            while b0 < nblocks {
                let b1 = (b0 + chunk).min(nblocks);
                let rows = (b1 * SELL_LANES).min(self.n) - b0 * SELL_LANES;
                let (block, tail) = rest.split_at_mut(rows);
                rest = tail;
                scope.spawn(move || self.spmv_blocks(b0, b1, x, block));
                b0 = b1;
            }
        });
    }
}

/// Serial `f32` SpMV over shared CSR index arrays — the inner kernel
/// of the mixed-precision solve path, which keeps the `f64` structure
/// and carries only a single-precision copy of the values.
pub(crate) fn spmv_f32(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f32],
    x: &[f32],
    y: &mut [f32],
) {
    for (i, yi) in y.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for idx in row_ptr[i]..row_ptr[i + 1] {
            acc += vals[idx] * x[col_idx[idx]];
        }
        *yi = acc;
    }
}

/// Numeric-only row fill over a cached pattern: sorts the emitted
/// entries (stable, so duplicate summation order matches a full
/// assembly) and scatters them into the pattern's slots.
fn fill_pattern_rows<F>(
    start: usize,
    end: usize,
    base: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    vals_block: &mut [f64],
    row_fn: &F,
) where
    F: Fn(usize, &mut Vec<(usize, f64)>),
{
    let mut row: Vec<(usize, f64)> = Vec::new();
    for i in start..end {
        row.clear();
        row_fn(i, &mut row);
        row.sort_by_key(|e| e.0);
        let cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
        let out = &mut vals_block[row_ptr[i] - base..row_ptr[i + 1] - base];
        let mut k = 0;
        for &(j, v) in row.iter() {
            while k < cols.len() && cols[k] < j {
                k += 1;
            }
            assert!(
                k < cols.len() && cols[k] == j,
                "column {j} of row {i} is not in the cached pattern"
            );
            out[k] += v;
        }
    }
}

fn assemble_rows<F>(
    start: usize,
    end: usize,
    n: usize,
    row_fn: &F,
) -> (Vec<usize>, Vec<f64>, Vec<usize>)
where
    F: Fn(usize, &mut Vec<(usize, f64)>),
{
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    let mut counts = Vec::with_capacity(end - start);
    let mut row: Vec<(usize, f64)> = Vec::new();
    for i in start..end {
        row.clear();
        row_fn(i, &mut row);
        row.sort_by_key(|e| e.0);
        let before = cols.len();
        for &(j, v) in row.iter() {
            assert!(j < n, "column {j} out of range for n={n}");
            if cols.len() > before && cols.last() == Some(&j) {
                let last = vals.last_mut().expect("cols and vals stay in sync");
                *last += v;
            } else {
                cols.push(j);
                vals.push(v);
            }
        }
        counts.push(cols.len() - before);
    }
    (cols, vals, counts)
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_rows(0, self.n, x, y);
    }

    fn diagonal(&self) -> Vec<f64> {
        self.diag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian(n: usize, threads: usize) -> CsrMatrix {
        CsrMatrix::from_row_fn(n, threads, |i, row| {
            if i > 0 {
                row.push((i - 1, -1.0));
            }
            row.push((i, 2.0));
            if i + 1 < n {
                row.push((i + 1, -1.0));
            }
        })
    }

    #[test]
    fn assembly_sorts_and_sums_duplicates() {
        let a = CsrMatrix::from_row_fn(3, 1, |i, row| {
            row.push((2, 1.0));
            row.push((i, 4.0));
            row.push((i, 1.0));
        });
        assert!((a.get(0, 0) - 5.0).abs() < 1e-15);
        assert!((a.get(1, 1) - 5.0).abs() < 1e-15);
        assert!((a.get(2, 2) - 6.0).abs() < 1e-15); // 1 + 4 + 1
        assert!((a.get(0, 2) - 1.0).abs() < 1e-15);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn threaded_assembly_is_identical_to_serial() {
        for threads in [2, 3, 4, 7] {
            assert_eq!(laplacian(101, 1), laplacian(101, threads));
        }
    }

    #[test]
    fn threaded_spmv_is_bitwise_identical() {
        let a = laplacian(97, 1);
        let x: Vec<f64> = (0..97).map(|i| (i as f64 * 0.37).sin()).collect();
        let serial = a.spmv(&x);
        for threads in [1, 2, 4, 9] {
            let mut y = vec![0.0; 97];
            a.spmv_into(&x, &mut y, threads);
            assert_eq!(serial, y, "threads={threads}");
        }
    }

    #[test]
    fn diag_and_nnz() {
        let a = laplacian(10, 2);
        assert_eq!(a.nnz(), 28);
        assert_eq!(a.diag(), vec![2.0; 10]);
        assert_eq!(a.n(), 10);
        let mut d = Vec::new();
        a.diag_into(&mut d);
        assert_eq!(d, a.diag());
    }

    #[test]
    fn pattern_reassembly_is_bitwise_identical() {
        let n = 53;
        let value_fn = |scale: f64| {
            move |i: usize, row: &mut Vec<(usize, f64)>| {
                if i > 0 {
                    row.push((i - 1, -scale * (i as f64 * 0.11).sin()));
                }
                // Duplicate diagonal entries, pushed out of order, to
                // exercise the stable merge.
                row.push((i, 1.5 * scale));
                if i + 1 < n {
                    row.push((i + 1, -scale));
                }
                row.push((i, 2.5 * scale + (i as f64 * 0.07).cos()));
            }
        };
        let full = CsrMatrix::from_row_fn(n, 3, value_fn(2.0));
        let pattern = CsrMatrix::from_row_fn(n, 1, value_fn(1.0)).pattern();
        assert_eq!(pattern.n(), n);
        assert_eq!(pattern.nnz(), full.nnz());
        for threads in [1, 2, 4, 7] {
            let refilled = CsrMatrix::from_pattern_row_fn(&pattern, threads, value_fn(2.0));
            assert_eq!(full, refilled, "threads={threads}");
        }
    }

    #[test]
    fn pattern_superset_leaves_structural_zeros() {
        // Pattern from a tridiagonal stencil, values from a diagonal-only
        // callback: off-diagonal slots must stay exactly 0.
        let pattern = laplacian(8, 1).pattern();
        let a = CsrMatrix::from_pattern_row_fn(&pattern, 2, |i, row| {
            row.push((i, 3.0));
        });
        assert_eq!(a.nnz(), pattern.nnz());
        assert_eq!(a.diag(), vec![3.0; 8]);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn sell_spmv_is_bitwise_identical_to_csr() {
        // Ragged rows: row i keeps between 1 and ~9 entries, so blocks
        // mix widths and the active-lane prefixes actually shrink.
        let n = 131;
        let a = CsrMatrix::from_row_fn(n, 3, |i, row| {
            row.push((i, 4.0 + (i as f64 * 0.01)));
            for k in 1..=(i % 9) {
                let j = (i + k * k) % n;
                if j != i {
                    row.push((j, -0.1 * (k as f64) * ((i + j) as f64 * 0.13).sin()));
                }
            }
        });
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos() + 0.5).collect();
        let reference = a.spmv(&x);
        let sell = SellMatrix::from_csr(&a);
        for threads in [1, 2, 4, 7] {
            let mut y = vec![0.0; n];
            sell.spmv_into(&x, &mut y, threads);
            for (p, q) in reference.iter().zip(&y) {
                assert_eq!(p.to_bits(), q.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn sell_refresh_tracks_new_values() {
        let a = laplacian(40, 1);
        let mut sell = SellMatrix::from_csr(&a);
        let scaled = CsrMatrix::from_pattern_row_fn(&a.pattern(), 1, |i, row| {
            for idx in a.row_offsets()[i]..a.row_offsets()[i + 1] {
                row.push((a.col_indices()[idx], 3.0 * a.values()[idx]));
            }
        });
        sell.refresh_values(&scaled);
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y = vec![0.0; 40];
        sell.spmv_into(&x, &mut y, 2);
        assert_eq!(y, scaled.spmv(&x));
    }

    #[test]
    #[should_panic(expected = "not in the cached pattern")]
    fn pattern_rejects_unknown_column() {
        let pattern = CsrMatrix::from_row_fn(4, 1, |i, row| row.push((i, 1.0))).pattern();
        let _ = CsrMatrix::from_pattern_row_fn(&pattern, 1, |i, row| {
            row.push((i, 1.0));
            row.push(((i + 1) % 4, 1.0));
        });
    }
}
