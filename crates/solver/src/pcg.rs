//! Preconditioned conjugate gradient on SPD operators, with reusable
//! workspaces and batched multi-RHS solves.
//!
//! Three tiers of entry point, from convenient to allocation-free:
//!
//! * [`solve_sparse`] / [`solve_operator`] — one-shot solves that
//!   allocate a private [`PcgWorkspace`] internally.
//! * [`solve_sparse_with`] — borrows a caller-owned workspace, so a
//!   scenario sweep reuses the r/z/p/Ap buffers and the screened
//!   preconditioner diagonal across solves.
//! * [`solve_sparse_into`] — additionally writes the solution into a
//!   caller buffer; with residual-history recording disabled
//!   ([`SolverConfig::record_history`]) it performs **zero heap
//!   allocations** once the workspace is warm.
//!
//! [`solve_multi_rhs`] solves `k` right-hand sides against one matrix,
//! screening/preconditioning once and reusing the same CSR traversal.

use std::time::{Duration, Instant};

use crate::cheb::{
    cheb_apply, estimate_bounds_with, ChebWork, EIG_HIGH_SAFETY, EIG_LOW_SAFETY,
    FALLBACK_CHEB_STEPS, POWER_ITERS,
};
use crate::config::{Solution, SolverConfig};
use crate::csr::{spmv_f32, CsrMatrix, SellMatrix};
use crate::dd::{Partition, SchwarzSet};
use crate::error::SolverError;
use crate::ic0::Ic0Factor;
use crate::mg::MgHierarchy;
use crate::reorder::{rcm_permutation, PermutedSystem};
use crate::stats::{DdStats, FactorStats, Method, Precond, SolverStats, SpectralStats};
use crate::LinearOperator;

/// Systems at or above this size run their SpMVs through the blocked
/// SELL layout ([`SellMatrix`]) cached in the workspace; smaller
/// systems stay on plain CSR, where the re-layout cost would not
/// amortise. The kernels are bitwise identical, so the threshold is a
/// pure speed knob.
const SELL_MIN_ROWS: usize = 1024;

enum Preconditioner<'a> {
    None,
    Jacobi(&'a [f64]),
    Ssor {
        matrix: &'a CsrMatrix,
        diag: &'a [f64],
    },
    Ic0 {
        factor: &'a Ic0Factor,
        threads: usize,
    },
    Chebyshev {
        matrix: &'a CsrMatrix,
        sell: Option<&'a SellMatrix>,
        diag: &'a [f64],
        low: f64,
        high: f64,
        steps: usize,
        work: &'a mut ChebWork,
        threads: usize,
    },
    Multigrid {
        matrix: &'a CsrMatrix,
        sell: Option<&'a SellMatrix>,
        hier: &'a mut MgHierarchy,
        threads: usize,
    },
    Schwarz {
        set: &'a mut SchwarzSet,
        threads: usize,
    },
}

impl Preconditioner<'_> {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        match self {
            Self::None => z.copy_from_slice(r),
            Self::Jacobi(diag) => {
                for ((zi, ri), di) in z.iter_mut().zip(r).zip(*diag) {
                    *zi = ri / di;
                }
            }
            Self::Ssor { matrix, diag } => matrix.ssor_apply(diag, r, z),
            Self::Ic0 { factor, threads } => factor.apply(r, z, *threads),
            Self::Chebyshev {
                matrix,
                sell,
                diag,
                low,
                high,
                steps,
                work,
                threads,
            } => {
                aeropack_obs::counter!("solver.cheb.applies");
                let threads = *threads;
                let sell = *sell;
                let matrix: &CsrMatrix = matrix;
                let op = |v: &[f64], y: &mut [f64]| match sell {
                    Some(s) => s.spmv_into(v, y, threads),
                    None => matrix.spmv_into(v, y, threads),
                };
                cheb_apply(&op, diag, *low, *high, *steps, r, z, work);
            }
            Self::Multigrid {
                matrix,
                sell,
                hier,
                threads,
            } => {
                let threads = *threads;
                let sell = *sell;
                let matrix: &CsrMatrix = matrix;
                let op = |v: &[f64], y: &mut [f64]| match sell {
                    Some(s) => s.spmv_into(v, y, threads),
                    None => matrix.spmv_into(v, y, threads),
                };
                hier.apply(&op, r, z, threads);
            }
            Self::Schwarz { set, threads } => set.apply(0, r, 0, z, *threads),
        }
    }
}

/// The workspace's cached RCM permutation + permuted matrix, keyed on
/// the source pattern's shared index arrays with an exact value
/// snapshot so "same grid, new coefficients" refreshes values in place
/// (allocation-free) and "same coefficients" does nothing at all.
#[derive(Debug, Clone)]
struct ReorderCache {
    key: (usize, usize),
    sys: PermutedSystem,
    vals_snapshot: Vec<f64>,
}

/// The workspace's cached IC(0) factor, keyed like [`ReorderCache`] on
/// the pattern of the matrix that was factored (the permuted matrix
/// when RCM engages). A matching snapshot means the factor is reused
/// outright; a matching pattern with new values refactors numerically
/// in place.
#[derive(Debug, Clone)]
struct Ic0Cache {
    key: (usize, usize),
    factor: Ic0Factor,
    vals_snapshot: Vec<f64>,
}

/// The workspace's cached Chebyshev setup: the safety-adjusted
/// eigenvalue interval of `D⁻¹A` plus the polynomial scratch, keyed
/// like [`Ic0Cache`]. A value change re-runs the power method (the
/// spectrum moved); a pure pattern hit reuses the bounds outright.
#[derive(Debug, Clone)]
struct ChebCache {
    key: (usize, usize),
    vals_snapshot: Vec<f64>,
    low: f64,
    high: f64,
    work: ChebWork,
}

/// The workspace's cached multigrid hierarchy, keyed like
/// [`Ic0Cache`]. New values with the same pattern rebuild the numeric
/// hierarchy (smoothed prolongation and Galerkin products depend on
/// the coefficients); a snapshot hit reuses everything including the
/// coarse factorisation.
#[derive(Debug, Clone)]
struct MgCache {
    key: (usize, usize),
    vals_snapshot: Vec<f64>,
    hier: MgHierarchy,
}

/// The workspace's cached SELL re-layout of the iteration matrix,
/// keyed like [`Ic0Cache`]; a value change refreshes the blocked value
/// stream in place without allocating.
#[derive(Debug, Clone)]
struct SellCache {
    key: (usize, usize),
    vals_snapshot: Vec<f64>,
    sell: SellMatrix,
}

/// The workspace's cached additive-Schwarz tile set, keyed like
/// [`Ic0Cache`] on the unpermuted system pattern (additive Schwarz
/// never reorders) plus the resolved tile count. A snapshot hit reuses
/// every tile factor outright; a pattern hit with new values refactors
/// each tile numerically in place, allocation-free.
#[derive(Debug, Clone)]
struct AsCache {
    key: (usize, usize),
    vals_snapshot: Vec<f64>,
    requested: usize,
    grid_dims: Option<(usize, usize, usize)>,
    part: Partition,
    set: SchwarzSet,
}

/// The workspace's mixed-precision state: the `f32` shadow of the
/// matrix values and diagonal plus the inner-CG buffers, keyed like
/// [`Ic0Cache`].
#[derive(Debug, Clone)]
struct MixedCache {
    key: (usize, usize),
    vals_snapshot: Vec<f64>,
    vals32: Vec<f32>,
    diag32: Vec<f32>,
    b32: Vec<f32>,
    d32: Vec<f32>,
    r32: Vec<f32>,
    z32: Vec<f32>,
    p32: Vec<f32>,
    ap32: Vec<f32>,
    rd: Vec<f64>,
}

/// Reusable PCG scratch space: the residual/search/preconditioner
/// buffers, the screened diagonal, and — for [`Precond::Ic0`] — the
/// cached RCM permutation and IC(0) factor. Create one per solving
/// context (a sweep worker, a transient stepper) and pass it to
/// [`solve_sparse_with`] / [`solve_sparse_into`]; after the first solve
/// of a given size the buffers are warm and the iteration loop runs
/// without touching the allocator. The factor cache makes a power
/// sweep over one operator factor once and apply many times.
#[derive(Debug, Clone, Default)]
pub struct PcgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    diag: Vec<f64>,
    history: Vec<f64>,
    /// Permuted-order right-hand side and solution buffers.
    bp: Vec<f64>,
    xp: Vec<f64>,
    reorder: Option<ReorderCache>,
    ic0: Option<Ic0Cache>,
    cheb: Option<ChebCache>,
    mg: Option<MgCache>,
    sell: Option<SellCache>,
    mixed: Option<MixedCache>,
    schwarz: Option<AsCache>,
}

impl PcgWorkspace {
    /// An empty workspace; buffers grow to the problem size on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for `n` unknowns, so even the first solve
    /// allocates nothing inside the iteration loop.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::default();
        ws.ensure(n);
        ws
    }

    fn ensure(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
        self.history.clear();
    }
}

/// Solves the SPD system `A·x = b` with `A` in CSR form through the
/// configured iterative method. This is the entry point the
/// finite-volume solvers use; it supports every [`Precond`], including
/// [`Precond::Ssor`] which needs the explicit sparse storage.
///
/// Allocates a fresh [`PcgWorkspace`] per call — prefer
/// [`solve_sparse_with`] when solving repeatedly.
///
/// # Errors
///
/// * [`SolverError::Singular`] — non-positive diagonal or an indefinite
///   operator detected during iteration.
/// * [`SolverError::NotConverged`] — iteration budget exhausted.
/// * [`SolverError::InvalidInput`] — dimension mismatch or a direct
///   method selection (use [`solve_dense`](crate::solve_dense)).
pub fn solve_sparse(a: &CsrMatrix, b: &[f64], cfg: &SolverConfig) -> Result<Solution, SolverError> {
    let mut ws = PcgWorkspace::new();
    solve_sparse_with(&mut ws, a, b, cfg)
}

/// Like [`solve_sparse`], but borrows a caller-owned [`PcgWorkspace`]
/// instead of allocating: across a sweep of same-sized systems the
/// work vectors and the screened diagonal buffer are reused, and the
/// PCG iteration loop performs no heap allocation after the first
/// solve.
///
/// # Errors
///
/// Same contract as [`solve_sparse`].
pub fn solve_sparse_with(
    ws: &mut PcgWorkspace,
    a: &CsrMatrix,
    b: &[f64],
    cfg: &SolverConfig,
) -> Result<Solution, SolverError> {
    let mut x = vec![0.0; a.n()];
    let stats = solve_sparse_into(ws, a, b, &mut x, cfg)?;
    Ok(Solution { x, stats })
}

/// The fully allocation-free entry point: solves `A·x = b` writing the
/// solution into `x` (which must be zeroed or hold any starting values
/// — it is overwritten). With residual-history recording disabled via
/// [`SolverConfig::record_history`]`(false)`, a warm workspace makes
/// the whole call zero-allocation.
///
/// # Errors
///
/// Same contract as [`solve_sparse`], plus [`SolverError::InvalidInput`]
/// when `x` has the wrong length.
pub fn solve_sparse_into(
    ws: &mut PcgWorkspace,
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    cfg: &SolverConfig,
) -> Result<SolverStats, SolverError> {
    if cfg.get_method() != Method::Pcg {
        return Err(SolverError::invalid(format!(
            "solve_sparse supports PCG, not {} (use solve_dense)",
            cfg.get_method()
        )));
    }
    let n = a.n();
    if x.len() != n {
        return Err(SolverError::invalid(format!(
            "solution length {} does not match n={n}",
            x.len()
        )));
    }
    let setup_start = Instant::now();
    ws.ensure(n);
    a.diag_into(&mut ws.diag);
    if ws.diag.iter().any(|&d| d <= 0.0) {
        return Err(SolverError::Singular {
            context: cfg.get_context(),
        });
    }
    // Resolve the effective preconditioner: Multigrid needs a declared
    // grid shape to coarsen; without one it falls back to the purely
    // algebraic Chebyshev polynomial.
    let mut precond_kind = cfg.get_preconditioner();
    if precond_kind == Precond::Multigrid {
        match cfg.get_grid_dims() {
            Some((nx, ny, nz)) if nx * ny * nz == n => {}
            Some((nx, ny, nz)) => {
                return Err(SolverError::invalid(format!(
                    "grid dims {nx}×{ny}×{nz} do not multiply out to n={n}"
                )));
            }
            None => {
                aeropack_obs::counter!("solver.mg.fallbacks");
                precond_kind = Precond::Chebyshev(FALLBACK_CHEB_STEPS);
            }
        }
    }
    if let Precond::Chebyshev(k) = precond_kind {
        if k == 0 {
            return Err(SolverError::invalid(
                "Chebyshev step count must be at least 1",
            ));
        }
    }
    if matches!(precond_kind, Precond::AdditiveSchwarz(_)) && cfg.rcm_engages() {
        return Err(SolverError::invalid(
            "RCM reordering scrambles the slab partition additive Schwarz \
             is built on (use Reorder::None or Reorder::Auto)",
        ));
    }
    if cfg.get_mixed_precision() {
        if !matches!(precond_kind, Precond::Jacobi | Precond::None) {
            return Err(SolverError::invalid(
                "mixed-precision solves support Precond::Jacobi / Precond::None \
                 (the inner f32 iteration is Jacobi-preconditioned)",
            ));
        }
        if cfg.rcm_engages() {
            return Err(SolverError::invalid(
                "mixed-precision solves do not support RCM reordering",
            ));
        }
        return solve_mixed_into(ws, a, b, x, cfg, setup_start);
    }
    let threads = cfg.get_threads();
    let use_rcm = cfg.rcm_engages() && n > 1;
    if use_rcm && precond_kind == Precond::Multigrid {
        return Err(SolverError::invalid(
            "RCM reordering scrambles the structured grid the multigrid \
             hierarchy coarsens (use Reorder::None or Reorder::Auto)",
        ));
    }
    let PcgWorkspace {
        r,
        z,
        p,
        ap,
        diag,
        history,
        bp,
        xp,
        reorder,
        ic0,
        cheb,
        mg,
        sell,
        mixed: _,
        schwarz,
    } = ws;
    if use_rcm {
        ensure_reorder(reorder, a);
    }
    let sys: Option<&PermutedSystem> = if use_rcm {
        reorder.as_ref().map(|c| &c.sys)
    } else {
        None
    };
    let system: &CsrMatrix = sys.map_or(a, |s| s.matrix());
    if sys.is_some() {
        // Preconditioners act on the permuted operator.
        system.diag_into(diag);
    }
    // Blocked SpMV layout: the iteration operator (and the fine level
    // of the preconditioners) runs through the SELL re-layout above
    // the size threshold, bitwise identical to plain CSR.
    if n >= SELL_MIN_ROWS {
        ensure_sell(sell, system);
    }
    let sell_ref: Option<&SellMatrix> = if n >= SELL_MIN_ROWS {
        sell.as_ref().map(|c| &c.sell)
    } else {
        None
    };
    // Additive Schwarz resolves its tile ladder from the grid shape
    // (0 = auto) and reports the resolved count as the effective kind.
    // The partition and tile factors live in the workspace cache, so a
    // warm solve allocates nothing.
    let mut dd_info: Option<(usize, usize)> = None;
    let mut as_stats: Option<FactorStats> = None;
    if let Precond::AdditiveSchwarz(requested) = precond_kind {
        as_stats = Some(ensure_as(
            schwarz,
            system,
            cfg.get_grid_dims(),
            requested,
            cfg.get_context(),
        )?);
        let c = schwarz.as_ref().expect("tiles ensured above");
        precond_kind = Precond::AdditiveSchwarz(c.part.tile_count());
        dd_info = Some((c.part.tile_count(), c.part.halo_cells()));
    }
    let factorization = match precond_kind {
        Precond::Ic0 => Some(ensure_ic0(ic0, system, use_rcm, cfg.get_context())?),
        Precond::AdditiveSchwarz(_) => as_stats,
        _ => None,
    };
    let spectral = match precond_kind {
        Precond::Chebyshev(k) => Some(ensure_cheb(cheb, system, sell_ref, k, threads)),
        Precond::Multigrid => {
            let dims = cfg.get_grid_dims().expect("grid dims validated above");
            Some(ensure_mg(mg, system, dims, cfg.get_context())?)
        }
        _ => None,
    };
    let mut precond = match precond_kind {
        Precond::None => Preconditioner::None,
        Precond::Jacobi => Preconditioner::Jacobi(diag),
        Precond::Ssor => Preconditioner::Ssor {
            matrix: system,
            diag,
        },
        Precond::Ic0 => Preconditioner::Ic0 {
            factor: &ic0.as_ref().expect("factor ensured above").factor,
            threads,
        },
        Precond::Chebyshev(k) => {
            let c = cheb.as_mut().expect("bounds ensured above");
            Preconditioner::Chebyshev {
                matrix: system,
                sell: sell_ref,
                diag,
                low: c.low,
                high: c.high,
                steps: k,
                work: &mut c.work,
                threads,
            }
        }
        Precond::Multigrid => Preconditioner::Multigrid {
            matrix: system,
            sell: sell_ref,
            hier: &mut mg.as_mut().expect("hierarchy ensured above").hier,
            threads,
        },
        Precond::AdditiveSchwarz(_) => Preconditioner::Schwarz {
            set: &mut schwarz.as_mut().expect("tiles ensured above").set,
            threads,
        },
    };
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let mut stats = if let Some(sys) = sys {
        bp.resize(n, 0.0);
        xp.resize(n, 0.0);
        sys.permute_into(b, bp);
        let stats = pcg_loop(
            |v, y| match sell_ref {
                Some(s) => s.spmv_into(v, y, threads),
                None => system.spmv_into(v, y, threads),
            },
            &mut precond,
            precond_kind,
            bp,
            xp,
            (r, z, p, ap),
            history,
            cfg,
            n,
            (factorization, spectral, setup_seconds),
        )?;
        sys.scatter_back(xp, x);
        stats
    } else {
        pcg_loop(
            |v, y| match sell_ref {
                Some(s) => s.spmv_into(v, y, threads),
                None => system.spmv_into(v, y, threads),
            },
            &mut precond,
            precond_kind,
            b,
            x,
            (r, z, p, ap),
            history,
            cfg,
            n,
            (factorization, spectral, setup_seconds),
        )?
    };
    if let (Some((subdomains, halo_cells)), Preconditioner::Schwarz { set, .. }) =
        (dd_info, &precond)
    {
        stats.dd = Some(DdStats {
            subdomains,
            shards: 1,
            halo_cells,
            exchange_seconds: set.exchange_seconds(),
        });
    }
    Ok(stats)
}

/// Brings the workspace's RCM cache in sync with `a`: a pattern hit
/// with identical values is free, a pattern hit with new values
/// refreshes the permuted copy in place, and a new pattern recomputes
/// the permutation.
fn ensure_reorder(cache: &mut Option<ReorderCache>, a: &CsrMatrix) {
    let key = a.pattern().key();
    if let Some(c) = cache {
        if c.key == key {
            if c.vals_snapshot.as_slice() != a.values() {
                c.sys.refresh_values(a);
                c.vals_snapshot.copy_from_slice(a.values());
            }
            return;
        }
    }
    aeropack_obs::counter!("solver.rcm.reorders");
    let sys = PermutedSystem::build(a, rcm_permutation(&a.pattern()));
    *cache = Some(ReorderCache {
        key,
        sys,
        vals_snapshot: a.values().to_vec(),
    });
}

/// Brings the workspace's IC(0) cache in sync with `m` (the matrix the
/// iteration actually runs on — permuted when RCM engages) and returns
/// the factorisation stats for this solve.
fn ensure_ic0(
    cache: &mut Option<Ic0Cache>,
    m: &CsrMatrix,
    reordered: bool,
    context: &'static str,
) -> Result<FactorStats, SolverError> {
    let key = m.pattern().key();
    if let Some(c) = cache {
        if c.key == key && c.vals_snapshot.as_slice() == m.values() {
            aeropack_obs::counter!("solver.ic0.factor_reuses");
            return Ok(FactorStats {
                factor_time: Duration::ZERO,
                fill_nnz: c.factor.fill_nnz(),
                forward_levels: c.factor.forward_levels(),
                backward_levels: c.factor.backward_levels(),
                diagonal_shift: c.factor.shift(),
                reused: true,
                reordered,
            });
        }
        if c.key == key {
            let t0 = Instant::now();
            match c.factor.refactor(m) {
                Ok(retries) => {
                    c.vals_snapshot.copy_from_slice(m.values());
                    return Ok(record_factor(&c.factor, t0.elapsed(), retries, reordered));
                }
                Err(_) => {
                    // The numeric content is now garbage; drop the
                    // cache so a future solve rebuilds from scratch.
                    *cache = None;
                    return Err(SolverError::Singular { context });
                }
            }
        }
    }
    let t0 = Instant::now();
    let (factor, retries) = Ic0Factor::new(m).map_err(|_| SolverError::Singular { context })?;
    let stats = record_factor(&factor, t0.elapsed(), retries, reordered);
    *cache = Some(Ic0Cache {
        key,
        factor,
        vals_snapshot: m.values().to_vec(),
    });
    Ok(stats)
}

/// Brings the workspace's additive-Schwarz cache in sync with `m` (the
/// unpermuted system — AS rejects RCM) and the resolved partition, and
/// returns aggregated factorisation stats for this solve. Pattern hits
/// with new values refactor every tile in place, allocation-free.
fn ensure_as(
    cache: &mut Option<AsCache>,
    m: &CsrMatrix,
    grid_dims: Option<(usize, usize, usize)>,
    requested: usize,
    context: &'static str,
) -> Result<FactorStats, SolverError> {
    let key = m.pattern().key();
    if let Some(c) = cache.as_mut() {
        if c.key == key && c.requested == requested && c.grid_dims == grid_dims {
            if c.vals_snapshot.as_slice() == m.values() {
                aeropack_obs::counter!("solver.dd.tile_reuses", c.set.tile_count());
                return Ok(c.set.factor_stats(Duration::ZERO, true));
            }
            let t0 = Instant::now();
            match c.set.refresh(m, context) {
                Ok(retries) => {
                    if retries > 0 {
                        aeropack_obs::counter!("solver.dd.shift_retries", retries);
                    }
                    c.vals_snapshot.copy_from_slice(m.values());
                    return Ok(c.set.factor_stats(t0.elapsed(), false));
                }
                Err(e) => {
                    // Numeric content is now garbage; drop the cache so
                    // a future solve rebuilds from scratch.
                    *cache = None;
                    return Err(e);
                }
            }
        }
    }
    let part = Partition::new(m.n(), grid_dims, requested)?;
    let t0 = Instant::now();
    let set = SchwarzSet::build(m, 0, part.tiles(), part.plane(), context)?;
    let retries = set.shift_retries();
    if retries > 0 {
        aeropack_obs::counter!("solver.dd.shift_retries", retries);
    }
    let stats = set.factor_stats(t0.elapsed(), false);
    aeropack_obs::histogram!("solver.dd.factor_seconds", stats.factor_time.as_secs_f64());
    *cache = Some(AsCache {
        key,
        vals_snapshot: m.values().to_vec(),
        requested,
        grid_dims,
        part,
        set,
    });
    Ok(stats)
}

fn record_factor(
    factor: &Ic0Factor,
    elapsed: Duration,
    retries: usize,
    reordered: bool,
) -> FactorStats {
    aeropack_obs::counter!("solver.ic0.factorizations");
    aeropack_obs::counter!("solver.ic0.fill_nnz", factor.fill_nnz());
    if retries > 0 {
        aeropack_obs::counter!("solver.ic0.shift_retries", retries);
    }
    aeropack_obs::histogram!("solver.ic0.factor_seconds", elapsed.as_secs_f64());
    aeropack_obs::histogram!("solver.ic0.levels", factor.forward_levels());
    FactorStats {
        factor_time: elapsed,
        fill_nnz: factor.fill_nnz(),
        forward_levels: factor.forward_levels(),
        backward_levels: factor.backward_levels(),
        diagonal_shift: factor.shift(),
        reused: false,
        reordered,
    }
}

/// Brings the workspace's SELL layout in sync with `m`: pattern hits
/// with changed values refresh in place (no allocation), new patterns
/// rebuild the block layout.
fn ensure_sell(cache: &mut Option<SellCache>, m: &CsrMatrix) {
    let key = m.pattern().key();
    if let Some(c) = cache {
        if c.key == key {
            if c.vals_snapshot.as_slice() != m.values() {
                c.sell.refresh_values(m);
                c.vals_snapshot.copy_from_slice(m.values());
            }
            return;
        }
    }
    aeropack_obs::counter!("solver.pcg.sell_builds");
    *cache = Some(SellCache {
        key,
        sell: SellMatrix::from_csr(m),
        vals_snapshot: m.values().to_vec(),
    });
}

/// Brings the workspace's Chebyshev spectral bounds in sync with `m`.
/// New values re-run the power method (the spectrum moved); a clean
/// hit reuses the cached interval for free.
fn ensure_cheb(
    cache: &mut Option<ChebCache>,
    m: &CsrMatrix,
    sell: Option<&SellMatrix>,
    steps: usize,
    threads: usize,
) -> SpectralStats {
    let key = m.pattern().key();
    let reused =
        matches!(cache, Some(c) if c.key == key && c.vals_snapshot.as_slice() == m.values());
    if reused {
        aeropack_obs::counter!("solver.cheb.reuses");
    } else {
        aeropack_obs::counter!("solver.cheb.setups");
        let diag = m.diag();
        let op = |v: &[f64], y: &mut [f64]| match sell {
            Some(s) => s.spmv_into(v, y, threads),
            None => m.spmv_into(v, y, threads),
        };
        let bounds = estimate_bounds_with(&op, &diag, POWER_ITERS);
        // Overestimating the top of the spectrum is safe; clipping it
        // risks an indefinite polynomial. The lower bound only trades
        // smoothing for conditioning, so a floor is enough.
        let high = bounds.high * EIG_HIGH_SAFETY;
        let low = (bounds.low * EIG_LOW_SAFETY).max(high * 1e-8);
        match cache {
            Some(c) if c.key == key => {
                c.vals_snapshot.copy_from_slice(m.values());
                c.low = low;
                c.high = high;
            }
            _ => {
                *cache = Some(ChebCache {
                    key,
                    vals_snapshot: m.values().to_vec(),
                    low,
                    high,
                    work: ChebWork::default(),
                })
            }
        }
    }
    let c = cache.as_ref().expect("cheb cache ensured above");
    SpectralStats {
        levels: 1,
        smoother: "polynomial",
        degree: steps,
        eig_low: c.low,
        eig_high: c.high,
        coarse_unknowns: 0,
        hierarchy_nnz: 0,
        reused,
    }
}

/// Brings the workspace's multigrid hierarchy in sync with `m`. Value
/// changes rebuild the whole hierarchy — the Galerkin coarse operators
/// and spectral bounds all depend on the numeric content, and power
/// sweeps that share matrix values hit the reuse path anyway.
fn ensure_mg(
    cache: &mut Option<MgCache>,
    m: &CsrMatrix,
    dims: (usize, usize, usize),
    context: &'static str,
) -> Result<SpectralStats, SolverError> {
    let key = m.pattern().key();
    if let Some(c) = cache {
        if c.key == key && c.vals_snapshot.as_slice() == m.values() {
            aeropack_obs::counter!("solver.mg.reuses");
            return Ok(c.hier.spectral_stats(true));
        }
        if c.key == key {
            aeropack_obs::counter!("solver.mg.rebuilds");
        }
    }
    let hier = MgHierarchy::build(m, dims, context)?;
    let stats = hier.spectral_stats(false);
    *cache = Some(MgCache {
        key,
        vals_snapshot: m.values().to_vec(),
        hier,
    });
    Ok(stats)
}

/// Relative tolerance for the inner f32 Jacobi-CG sweep. Tighter than
/// single-precision roundoff buys nothing; looser wastes outer
/// refinement passes.
const MIXED_INNER_TOL: f32 = 1e-4;
/// Refinement passes before the mixed solve gives up.
const MIXED_MAX_OUTER: usize = 60;
/// An outer pass must shrink the f64 residual by at least this factor,
/// otherwise refinement has stalled at the f32 accuracy floor.
const MIXED_STALL_FACTOR: f64 = 0.9;

/// Mixed-precision solve: f32 Jacobi-CG inner sweeps wrapped in f64
/// iterative refinement. Each outer pass scales the f64 residual by
/// its ∞-norm (so it spans the f32 range), solves the correction in
/// single precision, and re-forms the true f64 residual.
fn solve_mixed_into(
    ws: &mut PcgWorkspace,
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    cfg: &SolverConfig,
    setup_start: Instant,
) -> Result<SolverStats, SolverError> {
    let n = a.n();
    let threads = cfg.get_threads();
    let context = cfg.get_context();
    ensure_mixed(&mut ws.mixed, a);
    if n >= SELL_MIN_ROWS {
        ensure_sell(&mut ws.sell, a);
    }
    let PcgWorkspace {
        history,
        sell,
        mixed,
        ..
    } = ws;
    let mx = mixed.as_mut().expect("mixed cache ensured above");
    if mx.diag32.iter().any(|&d| d <= 0.0) {
        // A positive f64 diagonal can still underflow to zero in f32.
        return Err(SolverError::Singular { context });
    }
    let sell_ref: Option<&SellMatrix> = if n >= SELL_MIN_ROWS {
        sell.as_ref().map(|c| &c.sell)
    } else {
        None
    };
    let setup_seconds = setup_start.elapsed().as_secs_f64();
    let iter_start = Instant::now();
    aeropack_obs::counter!("solver.pcg.mixed_solves");
    let tol = cfg.get_tolerance();
    let record = cfg.get_record_history();
    let budget = cfg.iteration_budget(n);
    history.clear();
    x.fill(0.0);
    let stats = |iterations: usize, history: Vec<f64>, final_residual: f64| {
        let iterate_seconds = iter_start.elapsed().as_secs_f64();
        aeropack_obs::counter!("solver.pcg.solves");
        aeropack_obs::counter!("solver.pcg.iterations", iterations);
        SolverStats {
            context,
            method: Method::Pcg,
            preconditioner: cfg.get_preconditioner(),
            requested_preconditioner: cfg.get_preconditioner(),
            unknowns: n,
            threads: cfg.get_threads(),
            iterations,
            residual_history: history,
            final_residual,
            tolerance: tol,
            wall_time: Duration::from_secs_f64(setup_seconds + iterate_seconds),
            setup_seconds,
            iterate_seconds,
            factorization: None,
            spectral: None,
            dd: None,
        }
    };
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        return Ok(stats(0, Vec::new(), 0.0));
    }
    mx.rd.copy_from_slice(b);
    let mut total_inner = 0usize;
    let mut rel = 1.0f64;
    let mut prev_rel = f64::INFINITY;
    for _outer in 0..MIXED_MAX_OUTER {
        aeropack_obs::counter!("solver.pcg.mixed_refinements");
        let scale = mx.rd.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if scale == 0.0 {
            rel = 0.0;
            break;
        }
        for (b32, rd) in mx.b32.iter_mut().zip(mx.rd.iter()) {
            *b32 = (rd / scale) as f32;
        }
        let remaining = budget.saturating_sub(total_inner).max(1);
        total_inner += inner_cg_f32(a, mx, MIXED_INNER_TOL, remaining);
        for (xi, d) in x.iter_mut().zip(mx.d32.iter()) {
            *xi += scale * f64::from(*d);
        }
        match sell_ref {
            Some(s) => s.spmv_into(x, &mut mx.rd, threads),
            None => a.spmv_into(x, &mut mx.rd, threads),
        }
        for (rd, bi) in mx.rd.iter_mut().zip(b.iter()) {
            *rd = bi - *rd;
        }
        rel = mx.rd.iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm;
        if record {
            history.push(rel);
        }
        if rel <= tol {
            let recorded = if record { history.clone() } else { Vec::new() };
            return Ok(stats(total_inner, recorded, rel));
        }
        if rel >= prev_rel * MIXED_STALL_FACTOR || total_inner >= budget {
            break;
        }
        prev_rel = rel;
    }
    if rel <= tol {
        let recorded = if record { history.clone() } else { Vec::new() };
        return Ok(stats(total_inner, recorded, rel));
    }
    aeropack_obs::counter!("solver.pcg.not_converged");
    Err(SolverError::NotConverged {
        context,
        iterations: total_inner,
        residual: rel,
    })
}

/// Brings the workspace's f32 shadow of `a` (values + diagonal +
/// iteration scratch) in sync; pattern hits with changed values
/// re-demote in place without allocating.
fn ensure_mixed(cache: &mut Option<MixedCache>, a: &CsrMatrix) {
    let key = a.pattern().key();
    if let Some(c) = cache {
        if c.key == key {
            if c.vals_snapshot.as_slice() != a.values() {
                for (v32, &v) in c.vals32.iter_mut().zip(a.values()) {
                    *v32 = v as f32;
                }
                for (i, d32) in c.diag32.iter_mut().enumerate() {
                    *d32 = a.get(i, i) as f32;
                }
                c.vals_snapshot.copy_from_slice(a.values());
            }
            return;
        }
    }
    let n = a.n();
    *cache = Some(MixedCache {
        key,
        vals_snapshot: a.values().to_vec(),
        vals32: a.values().iter().map(|&v| v as f32).collect(),
        diag32: (0..n).map(|i| a.get(i, i) as f32).collect(),
        b32: vec![0.0; n],
        d32: vec![0.0; n],
        r32: vec![0.0; n],
        z32: vec![0.0; n],
        p32: vec![0.0; n],
        ap32: vec![0.0; n],
        rd: vec![0.0; n],
    });
}

/// Jacobi-preconditioned CG entirely in f32, solving `A·d = b32` into
/// `mx.d32`. Returns the iteration count; bails early (letting the
/// outer refinement recover) when f32 roundoff makes the curvature
/// non-positive or non-finite.
fn inner_cg_f32(a: &CsrMatrix, mx: &mut MixedCache, tol: f32, max_iter: usize) -> usize {
    let n = a.n();
    let row_ptr = a.row_offsets();
    let cols = a.col_indices();
    let MixedCache {
        vals32,
        diag32,
        b32,
        d32,
        r32,
        z32,
        p32,
        ap32,
        ..
    } = mx;
    d32.fill(0.0);
    r32.copy_from_slice(b32);
    let bn = r32.iter().map(|v| v * v).sum::<f32>().sqrt();
    if bn == 0.0 {
        return 0;
    }
    for (z, (r, d)) in z32.iter_mut().zip(r32.iter().zip(diag32.iter())) {
        *z = r / d;
    }
    p32.copy_from_slice(z32);
    let mut rz: f32 = r32.iter().zip(z32.iter()).map(|(a, b)| a * b).sum();
    for iter in 0..max_iter {
        spmv_f32(row_ptr, cols, vals32, p32, ap32);
        let pap: f32 = p32.iter().zip(ap32.iter()).map(|(a, b)| a * b).sum();
        if pap <= 0.0 || !pap.is_finite() {
            return iter;
        }
        let alpha = rz / pap;
        for i in 0..n {
            d32[i] += alpha * p32[i];
            r32[i] -= alpha * ap32[i];
        }
        let rel = r32.iter().map(|v| v * v).sum::<f32>().sqrt() / bn;
        if rel <= tol {
            return iter + 1;
        }
        for (z, (r, d)) in z32.iter_mut().zip(r32.iter().zip(diag32.iter())) {
            *z = r / d;
        }
        let rz_new: f32 = r32.iter().zip(z32.iter()).map(|(a, b)| a * b).sum();
        if rz_new <= 0.0 || !rz_new.is_finite() {
            return iter + 1;
        }
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p32[i] = z32[i] + beta * p32[i];
        }
    }
    max_iter
}

/// Solves the SPD system `A·x = b` for any [`LinearOperator`]
/// (matrix-free stencils included). [`Precond::Ssor`] needs explicit
/// storage and is rejected here — use [`solve_sparse`].
///
/// # Errors
///
/// Same contract as [`solve_sparse`].
pub fn solve_operator(
    a: &dyn LinearOperator,
    b: &[f64],
    cfg: &SolverConfig,
) -> Result<Solution, SolverError> {
    if cfg.get_method() != Method::Pcg {
        return Err(SolverError::invalid(format!(
            "solve_operator supports PCG, not {} (use solve_dense)",
            cfg.get_method()
        )));
    }
    let n = a.dim();
    let mut ws = PcgWorkspace::with_capacity(n);
    ws.diag = a.diagonal();
    if ws.diag.iter().any(|&d| d <= 0.0) {
        return Err(SolverError::Singular {
            context: cfg.get_context(),
        });
    }
    let PcgWorkspace {
        r,
        z,
        p,
        ap,
        diag,
        history,
        ..
    } = &mut ws;
    let mut precond = match cfg.get_preconditioner() {
        Precond::None => Preconditioner::None,
        Precond::Jacobi => Preconditioner::Jacobi(diag),
        Precond::Ssor => {
            return Err(SolverError::invalid(
                "SSOR preconditioning needs explicit CSR storage (use solve_sparse)",
            ))
        }
        Precond::Ic0 => {
            return Err(SolverError::invalid(
                "IC(0) preconditioning needs explicit CSR storage (use solve_sparse)",
            ))
        }
        Precond::Chebyshev(_) | Precond::Multigrid => {
            return Err(SolverError::invalid(
                "spectral preconditioning needs explicit CSR storage (use solve_sparse)",
            ))
        }
        Precond::AdditiveSchwarz(_) => {
            return Err(SolverError::invalid(
                "additive-Schwarz preconditioning needs explicit CSR storage \
                 (use solve_sparse or ShardedSolve)",
            ))
        }
    };
    let mut x = vec![0.0; n];
    let stats = pcg_loop(
        |v, y| a.apply(v, y),
        &mut precond,
        cfg.get_preconditioner(),
        b,
        &mut x,
        (r, z, p, ap),
        history,
        cfg,
        n,
        (None, None, 0.0),
    )?;
    Ok(Solution { x, stats })
}

/// Solves `k` right-hand sides against one matrix: `rhs_block` holds
/// the RHS vectors contiguously (`k·n` values), and the returned
/// solutions are in the same order. The diagonal is screened and the
/// preconditioner set up **once**, and every solve reuses the same
/// workspace and CSR traversal — the batched path scenario sweeps use
/// when many load cases share one operator.
///
/// A `k = 0` batch (empty `rhs_block`) is a well-defined degenerate
/// case and returns an empty solution list; a `k = 1` batch is
/// bit-identical to the corresponding [`solve_sparse`] call.
///
/// # Errors
///
/// [`SolverError::InvalidInput`] when the matrix is empty or
/// `rhs_block` is not a multiple of `n`; otherwise the per-RHS
/// contract of [`solve_sparse`] (the first failing RHS aborts the
/// batch).
pub fn solve_multi_rhs(
    a: &CsrMatrix,
    rhs_block: &[f64],
    cfg: &SolverConfig,
) -> Result<Vec<Solution>, SolverError> {
    let mut ws = PcgWorkspace::new();
    solve_multi_rhs_with(&mut ws, a, rhs_block, cfg)
}

/// [`solve_multi_rhs`] over a caller-owned workspace.
///
/// # Errors
///
/// Same contract as [`solve_multi_rhs`].
pub fn solve_multi_rhs_with(
    ws: &mut PcgWorkspace,
    a: &CsrMatrix,
    rhs_block: &[f64],
    cfg: &SolverConfig,
) -> Result<Vec<Solution>, SolverError> {
    let n = a.n();
    if n == 0 {
        return Err(SolverError::invalid("matrix has no rows"));
    }
    if !rhs_block.len().is_multiple_of(n) {
        return Err(SolverError::invalid(format!(
            "rhs block length {} is not a multiple of n={n}",
            rhs_block.len()
        )));
    }
    let k = rhs_block.len() / n;
    let mut out = Vec::with_capacity(k);
    for b in rhs_block.chunks_exact(n) {
        out.push(solve_sparse_with(ws, a, b, cfg)?);
    }
    Ok(out)
}

/// The PCG iteration. All scratch comes in through `bufs`/`history`;
/// the loop body performs no allocation (history pushes reuse warm
/// capacity and are skipped entirely when recording is off).
#[allow(clippy::too_many_arguments)]
fn pcg_loop<F>(
    apply: F,
    precond: &mut Preconditioner<'_>,
    precond_kind: Precond,
    b: &[f64],
    x: &mut [f64],
    bufs: (&mut Vec<f64>, &mut Vec<f64>, &mut Vec<f64>, &mut Vec<f64>),
    history: &mut Vec<f64>,
    cfg: &SolverConfig,
    n: usize,
    setup: (Option<FactorStats>, Option<SpectralStats>, f64),
) -> Result<SolverStats, SolverError>
where
    F: Fn(&[f64], &mut [f64]),
{
    if b.len() != n {
        return Err(SolverError::invalid(format!(
            "rhs length {} does not match n={n}",
            b.len()
        )));
    }
    let (r, z, p, ap) = bufs;
    let (factorization, spectral, setup_seconds) = setup;
    let context = cfg.get_context();
    let tol = cfg.get_tolerance();
    let record = cfg.get_record_history();
    let max_iter = cfg.iteration_budget(n);
    let start = Instant::now();
    let stats = |iterations: usize, history: Vec<f64>, final_residual: f64| {
        let iterate_seconds = start.elapsed().as_secs_f64();
        let wall_time = Duration::from_secs_f64(setup_seconds + iterate_seconds);
        aeropack_obs::counter!("solver.pcg.solves");
        aeropack_obs::counter!("solver.pcg.iterations", iterations);
        aeropack_obs::counter!(
            match precond_kind {
                Precond::None => "solver.pcg.iterations.none",
                Precond::Jacobi => "solver.pcg.iterations.jacobi",
                Precond::Ssor => "solver.pcg.iterations.ssor",
                Precond::Ic0 => "solver.pcg.iterations.ic0",
                Precond::Chebyshev(_) => "solver.pcg.iterations.chebyshev",
                Precond::Multigrid => "solver.pcg.iterations.mg",
                Precond::AdditiveSchwarz(_) => "solver.pcg.iterations.schwarz",
            },
            iterations
        );
        if precond_kind != cfg.get_preconditioner() {
            aeropack_obs::counter!("solver.pcg.precond_substitutions");
        }
        aeropack_obs::histogram!("solver.pcg.final_residual", final_residual);
        aeropack_obs::histogram!("solver.pcg.solve_seconds", wall_time.as_secs_f64());
        SolverStats {
            context,
            method: Method::Pcg,
            preconditioner: precond_kind,
            requested_preconditioner: cfg.get_preconditioner(),
            unknowns: n,
            threads: cfg.get_threads(),
            iterations,
            residual_history: history,
            final_residual,
            tolerance: tol,
            wall_time,
            setup_seconds,
            iterate_seconds,
            factorization,
            spectral,
            dd: None,
        }
    };

    x.fill(0.0);
    r.copy_from_slice(b);
    let b_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        return Ok(stats(0, Vec::new(), 0.0));
    }
    precond.apply(r, z);
    p.copy_from_slice(z);
    let mut rz: f64 = r.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
    for iter in 0..max_iter {
        apply(p, ap);
        let pap: f64 = p.iter().zip(ap.iter()).map(|(a, b)| a * b).sum();
        if pap <= 0.0 {
            return Err(SolverError::Singular { context });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rel = r.iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm;
        if record {
            history.push(rel);
        }
        if rel <= tol {
            let recorded = if record { history.clone() } else { Vec::new() };
            return Ok(stats(iter + 1, recorded, rel));
        }
        precond.apply(r, z);
        let rz_new: f64 = r.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rel = history.last().copied().unwrap_or(1.0);
    aeropack_obs::counter!("solver.pcg.not_converged");
    Err(SolverError::NotConverged {
        context,
        iterations: max_iter,
        residual: rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Reorder;
    use crate::stats::Precond;

    fn laplacian(n: usize) -> CsrMatrix {
        CsrMatrix::from_row_fn(n, 1, |i, row| {
            if i > 0 {
                row.push((i - 1, -1.0));
            }
            row.push((i, 2.0));
            if i + 1 < n {
                row.push((i + 1, -1.0));
            }
        })
    }

    #[test]
    fn pcg_solves_laplacian_chain_every_precond() {
        let n = 50;
        let a = laplacian(n);
        let b = vec![1.0; n];
        for precond in [Precond::None, Precond::Jacobi, Precond::Ssor, Precond::Ic0] {
            let cfg = SolverConfig::new()
                .preconditioner(precond)
                .tolerance(1e-12)
                .context("laplacian");
            let sol = solve_sparse(&a, &b, &cfg).unwrap();
            for (i, &xi) in sol.x.iter().enumerate() {
                let k = (i + 1) as f64;
                let exact = k * (n as f64 + 1.0 - k) / 2.0;
                assert!(
                    (xi - exact).abs() < 1e-6 * exact.max(1.0),
                    "{precond}: i={i}"
                );
            }
            assert!(sol.stats.iterations > 0);
            assert_eq!(sol.stats.residual_history.len(), sol.stats.iterations);
            assert!(sol.stats.converged());
        }
    }

    #[test]
    fn ssor_converges_faster_than_jacobi() {
        let n = 200;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let jacobi =
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(Precond::Jacobi)).unwrap();
        let ssor =
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(Precond::Ssor)).unwrap();
        assert!(
            ssor.stats.iterations < jacobi.stats.iterations,
            "SSOR {} vs Jacobi {}",
            ssor.stats.iterations,
            jacobi.stats.iterations
        );
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = laplacian(8);
        let sol = solve_sparse(&a, &[0.0; 8], &SolverConfig::new()).unwrap();
        assert_eq!(sol.x, vec![0.0; 8]);
        assert_eq!(sol.stats.iterations, 0);
    }

    #[test]
    fn non_positive_diagonal_is_singular() {
        let a = CsrMatrix::from_row_fn(3, 1, |i, row| {
            row.push((i, if i == 1 { 0.0 } else { 1.0 }));
        });
        assert!(matches!(
            solve_sparse(&a, &[1.0; 3], &SolverConfig::new()),
            Err(SolverError::Singular { .. })
        ));
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let a = laplacian(100);
        let cfg = SolverConfig::new().tolerance(1e-14).max_iterations(3);
        assert!(matches!(
            solve_sparse(&a, &vec![1.0; 100], &cfg),
            Err(SolverError::NotConverged { iterations: 3, .. })
        ));
    }

    #[test]
    fn operator_path_matches_sparse_path() {
        let n = 40;
        let a = laplacian(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let cfg = SolverConfig::new().tolerance(1e-12);
        let s1 = solve_sparse(&a, &b, &cfg).unwrap();
        let s2 = solve_operator(&a, &b, &cfg).unwrap();
        assert_eq!(s1.x, s2.x);
    }

    #[test]
    fn operator_path_rejects_ssor() {
        let a = laplacian(4);
        let cfg = SolverConfig::new().preconditioner(Precond::Ssor);
        assert!(matches!(
            solve_operator(&a, &[1.0; 4], &cfg),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn operator_path_rejects_ic0() {
        let a = laplacian(4);
        let cfg = SolverConfig::new().preconditioner(Precond::Ic0);
        assert!(matches!(
            solve_operator(&a, &[1.0; 4], &cfg),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn ic0_converges_in_fewer_iterations_than_jacobi_and_ssor() {
        let n = 400;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let iters = |precond| {
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(precond))
                .unwrap()
                .stats
                .iterations
        };
        let (jacobi, ssor, ic0) = (
            iters(Precond::Jacobi),
            iters(Precond::Ssor),
            iters(Precond::Ic0),
        );
        assert!(ic0 < ssor, "IC(0) {ic0} vs SSOR {ssor}");
        assert!(ic0 * 2 <= jacobi, "IC(0) {ic0} vs Jacobi {jacobi}");
    }

    #[test]
    fn ic0_factor_is_cached_across_a_workspace_sweep() {
        let n = 120;
        let a = laplacian(n);
        let cfg = SolverConfig::new()
            .preconditioner(Precond::Ic0)
            .tolerance(1e-12);
        let mut ws = PcgWorkspace::new();
        let first = solve_sparse_with(&mut ws, &a, &vec![1.0; n], &cfg).unwrap();
        let f1 = first
            .stats
            .factorization
            .expect("IC(0) reports factor stats");
        assert!(!f1.reused);
        assert!(f1.reordered, "Reorder::Auto engages RCM with IC(0)");
        assert!(f1.fill_nnz > 0);
        let second = solve_sparse_with(&mut ws, &a, &vec![2.0; n], &cfg).unwrap();
        let f2 = second.stats.factorization.unwrap();
        assert!(f2.reused, "same matrix must reuse the cached factor");
        assert_eq!(f2.factor_time, Duration::ZERO);
        // A same-pattern matrix with new values refactors in place.
        let scaled = CsrMatrix::from_pattern_row_fn(&a.pattern(), 1, |i, row| {
            for idx in a.row_offsets()[i]..a.row_offsets()[i + 1] {
                row.push((a.col_indices()[idx], 2.0 * a.values()[idx]));
            }
        });
        let third = solve_sparse_with(&mut ws, &scaled, &vec![1.0; n], &cfg).unwrap();
        assert!(!third.stats.factorization.unwrap().reused);
    }

    #[test]
    fn rcm_reordering_does_not_change_what_is_solved() {
        use crate::config::Reorder;
        let n = 150;
        let a = laplacian(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() + 2.0).collect();
        for precond in [Precond::Jacobi, Precond::Ssor, Precond::Ic0] {
            let plain = solve_sparse(
                &a,
                &b,
                &SolverConfig::new()
                    .preconditioner(precond)
                    .reorder(Reorder::None)
                    .tolerance(1e-12),
            )
            .unwrap();
            let rcm = solve_sparse(
                &a,
                &b,
                &SolverConfig::new()
                    .preconditioner(precond)
                    .reorder(Reorder::Rcm)
                    .tolerance(1e-12),
            )
            .unwrap();
            for (p, q) in plain.x.iter().zip(rcm.x.iter()) {
                assert!((p - q).abs() < 1e-8 * p.abs().max(1.0), "{precond}");
            }
        }
    }

    #[test]
    fn reused_workspace_is_bitwise_identical_to_fresh_solves() {
        let n = 60;
        let a = laplacian(n);
        let rhs: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                (0..n)
                    .map(|i| ((i + k) as f64 * 0.07).sin() + 2.0)
                    .collect()
            })
            .collect();
        for precond in [Precond::None, Precond::Jacobi, Precond::Ssor, Precond::Ic0] {
            let cfg = SolverConfig::new().preconditioner(precond).tolerance(1e-12);
            let mut ws = PcgWorkspace::new();
            for b in &rhs {
                let fresh = solve_sparse(&a, b, &cfg).unwrap();
                let reused = solve_sparse_with(&mut ws, &a, b, &cfg).unwrap();
                assert_eq!(fresh.x, reused.x, "{precond}");
                assert_eq!(fresh.stats.iterations, reused.stats.iterations);
                assert_eq!(fresh.stats.residual_history, reused.stats.residual_history);
            }
        }
    }

    #[test]
    fn solve_into_writes_caller_buffer_and_skips_history() {
        let n = 30;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = SolverConfig::new().record_history(false);
        let mut ws = PcgWorkspace::with_capacity(n);
        let mut x = vec![7.0; n]; // stale values must be overwritten
        let stats = solve_sparse_into(&mut ws, &a, &b, &mut x, &cfg).unwrap();
        let reference = solve_sparse(&a, &b, &SolverConfig::new()).unwrap();
        assert_eq!(x, reference.x);
        assert_eq!(stats.iterations, reference.stats.iterations);
        assert!(stats.residual_history.is_empty());
        assert!(stats.converged());
    }

    #[test]
    fn solve_into_rejects_wrong_solution_length() {
        let a = laplacian(5);
        let mut ws = PcgWorkspace::new();
        let mut x = vec![0.0; 4];
        assert!(matches!(
            solve_sparse_into(&mut ws, &a, &[1.0; 5], &mut x, &SolverConfig::new()),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn multi_rhs_matches_independent_solves() {
        let n = 48;
        let a = laplacian(n);
        let k = 5;
        let mut block = Vec::with_capacity(k * n);
        for j in 0..k {
            for i in 0..n {
                block.push(((i * (j + 1)) as f64 * 0.05).cos() + 1.5);
            }
        }
        let cfg = SolverConfig::new().tolerance(1e-12);
        let batch = solve_multi_rhs(&a, &block, &cfg).unwrap();
        assert_eq!(batch.len(), k);
        for (j, sol) in batch.iter().enumerate() {
            let single = solve_sparse(&a, &block[j * n..(j + 1) * n], &cfg).unwrap();
            assert_eq!(sol.x, single.x, "rhs {j}");
            assert_eq!(sol.stats.iterations, single.stats.iterations);
        }
    }

    #[test]
    fn multi_rhs_rejects_ragged_block() {
        let a = laplacian(4);
        assert!(matches!(
            solve_multi_rhs(&a, &[1.0; 7], &SolverConfig::new()),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn multi_rhs_degenerate_batches() {
        let a = laplacian(6);
        // k = 0: a well-defined empty batch, not an error.
        let empty = solve_multi_rhs(&a, &[], &SolverConfig::new()).unwrap();
        assert!(empty.is_empty());
        // k = 1: bit-identical to the single-RHS path.
        let b: Vec<f64> = (0..6).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
        let cfg = SolverConfig::new().tolerance(1e-12);
        let batch = solve_multi_rhs(&a, &b, &cfg).unwrap();
        let single = solve_sparse(&a, &b, &cfg).unwrap();
        assert_eq!(batch.len(), 1);
        for (p, q) in batch[0].x.iter().zip(&single.x) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        assert_eq!(batch[0].stats.iterations, single.stats.iterations);
    }

    /// 7-point Poisson operator on a structured grid (Dirichlet
    /// boundaries folded into the diagonal).
    fn poisson3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
        let idx = move |ix: usize, iy: usize, iz: usize| ix + nx * (iy + ny * iz);
        CsrMatrix::from_row_fn(nx * ny * nz, 2, move |i, row| {
            let ix = i % nx;
            let iy = (i / nx) % ny;
            let iz = i / (nx * ny);
            row.push((i, 6.0));
            if ix > 0 {
                row.push((idx(ix - 1, iy, iz), -1.0));
            }
            if ix + 1 < nx {
                row.push((idx(ix + 1, iy, iz), -1.0));
            }
            if iy > 0 {
                row.push((idx(ix, iy - 1, iz), -1.0));
            }
            if iy + 1 < ny {
                row.push((idx(ix, iy + 1, iz), -1.0));
            }
            if iz > 0 {
                row.push((idx(ix, iy, iz - 1), -1.0));
            }
            if iz + 1 < nz {
                row.push((idx(ix, iy, iz + 1), -1.0));
            }
        })
    }

    #[test]
    fn chebyshev_solves_and_reports_spectral_stats() {
        let n = 120;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = SolverConfig::new()
            .preconditioner(Precond::Chebyshev(4))
            .tolerance(1e-11);
        let sol = solve_sparse(&a, &b, &cfg).unwrap();
        assert!(sol.stats.converged());
        let spec = sol
            .stats
            .spectral
            .expect("chebyshev reports spectral stats");
        assert_eq!(spec.levels, 1);
        assert_eq!(spec.degree, 4);
        assert!(spec.eig_high > spec.eig_low && spec.eig_low > 0.0);
        assert!(!spec.reused);
        for (i, &xi) in sol.x.iter().enumerate() {
            let k = (i + 1) as f64;
            let exact = k * (n as f64 + 1.0 - k) / 2.0;
            assert!((xi - exact).abs() < 1e-5 * exact.max(1.0), "i={i}");
        }
        // Degree 0 is not a polynomial.
        assert!(matches!(
            solve_sparse(
                &a,
                &b,
                &SolverConfig::new().preconditioner(Precond::Chebyshev(0))
            ),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn multigrid_solves_poisson_with_declared_dims() {
        let (nx, ny, nz) = (12, 10, 8);
        let a = poisson3d(nx, ny, nz);
        let n = a.n();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() + 1.5).collect();
        let cfg = SolverConfig::new()
            .preconditioner(Precond::Multigrid)
            .grid_dims((nx, ny, nz))
            .tolerance(1e-11);
        let sol = solve_sparse(&a, &b, &cfg).unwrap();
        assert!(sol.stats.converged());
        assert_eq!(sol.stats.preconditioner, Precond::Multigrid);
        let spec = sol.stats.spectral.expect("mg reports spectral stats");
        assert!(spec.levels >= 2);
        assert!(spec.coarse_unknowns > 0 && spec.coarse_unknowns < n);
        assert_eq!(spec.smoother, "chebyshev");
        // The hierarchy shrinks the iteration count well below Jacobi.
        let jacobi = solve_sparse(
            &a,
            &b,
            &SolverConfig::new()
                .preconditioner(Precond::Jacobi)
                .tolerance(1e-11),
        )
        .unwrap();
        assert!(
            sol.stats.iterations * 2 < jacobi.stats.iterations,
            "MG {} vs Jacobi {}",
            sol.stats.iterations,
            jacobi.stats.iterations
        );
        // Residual parity with the Jacobi solution.
        for (p, q) in sol.x.iter().zip(&jacobi.x) {
            assert!((p - q).abs() < 1e-6 * q.abs().max(1.0));
        }
    }

    #[test]
    fn multigrid_without_dims_falls_back_to_chebyshev() {
        let n = 90;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = SolverConfig::new()
            .preconditioner(Precond::Multigrid)
            .tolerance(1e-11);
        let sol = solve_sparse(&a, &b, &cfg).unwrap();
        assert!(sol.stats.converged());
        // The effective preconditioner is reported, not the requested one
        // — and the requested one stays visible alongside it.
        assert_eq!(
            sol.stats.preconditioner,
            Precond::Chebyshev(crate::cheb::FALLBACK_CHEB_STEPS)
        );
        assert_eq!(sol.stats.requested_preconditioner, Precond::Multigrid);
        assert!(sol.stats.spectral.is_some());
        // When nothing substitutes, the two fields agree.
        let plain =
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(Precond::Jacobi)).unwrap();
        assert_eq!(plain.stats.preconditioner, Precond::Jacobi);
        assert_eq!(plain.stats.requested_preconditioner, Precond::Jacobi);
    }

    #[test]
    fn additive_schwarz_solves_and_reports_resolved_tiles() {
        let (nx, ny, nz) = (5, 4, 24);
        let a = poisson3d(nx, ny, nz);
        let b: Vec<f64> = (0..a.n()).map(|i| 1.0 + (i as f64 * 0.11).sin()).collect();
        // Auto ladder: 24 planes resolve to 3 tiles of 8 planes.
        let cfg = SolverConfig::new()
            .preconditioner(Precond::AdditiveSchwarz(0))
            .grid_dims((nx, ny, nz))
            .tolerance(1e-11);
        let sol = solve_sparse(&a, &b, &cfg).unwrap();
        assert!(sol.stats.converged());
        assert_eq!(sol.stats.preconditioner, Precond::AdditiveSchwarz(3));
        assert_eq!(
            sol.stats.requested_preconditioner,
            Precond::AdditiveSchwarz(0)
        );
        let dd = sol.stats.dd.expect("AS reports partition stats");
        assert_eq!(dd.subdomains, 3);
        assert_eq!(dd.shards, 1);
        assert!(dd.halo_cells > 0);
        let factor = sol.stats.factorization.expect("AS reports factor stats");
        assert!(factor.fill_nnz > 0);
        assert!(!factor.reordered);
        // The answer is right: cross-check against level-scheduled IC(0).
        let ic0 = solve_sparse(
            &a,
            &b,
            &SolverConfig::new()
                .preconditioner(Precond::Ic0)
                .tolerance(1e-11),
        )
        .unwrap();
        for (p, q) in sol.x.iter().zip(&ic0.x) {
            assert!((p - q).abs() < 1e-8, "AS {p} vs IC0 {q}");
        }
        // One tile over the whole grid degenerates to (unreordered)
        // global IC(0) and must match its iteration count.
        let one = solve_sparse(
            &a,
            &b,
            &SolverConfig::new()
                .preconditioner(Precond::AdditiveSchwarz(1))
                .grid_dims((nx, ny, nz))
                .tolerance(1e-11),
        )
        .unwrap();
        let plain_ic0 = solve_sparse(
            &a,
            &b,
            &SolverConfig::new()
                .preconditioner(Precond::Ic0)
                .reorder(crate::config::Reorder::None)
                .tolerance(1e-11),
        )
        .unwrap();
        assert_eq!(one.stats.iterations, plain_ic0.stats.iterations);
    }

    #[test]
    fn additive_schwarz_is_thread_count_invariant_and_caches() {
        let (nx, ny, nz) = (4, 4, 16);
        let a = poisson3d(nx, ny, nz);
        let b: Vec<f64> = (0..a.n()).map(|i| 0.5 + (i as f64 * 0.07).cos()).collect();
        let base_cfg = SolverConfig::new()
            .preconditioner(Precond::AdditiveSchwarz(4))
            .grid_dims((nx, ny, nz))
            .tolerance(1e-11);
        let mut ws = PcgWorkspace::new();
        let base = solve_sparse_with(&mut ws, &a, &b, &base_cfg).unwrap();
        assert!(!base.stats.factorization.unwrap().reused);
        // Second solve through the same workspace reuses every tile.
        let again = solve_sparse_with(&mut ws, &a, &b, &base_cfg).unwrap();
        assert!(again.stats.factorization.unwrap().reused);
        assert_eq!(again.stats.iterations, base.stats.iterations);
        for (p, q) in again.x.iter().zip(&base.x) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // Thread count changes nothing, bit for bit.
        for threads in [2, 8] {
            let cfg = base_cfg.clone().threads(threads);
            let sol = solve_sparse(&a, &b, &cfg).unwrap();
            assert_eq!(sol.stats.iterations, base.stats.iterations);
            for (p, q) in sol.x.iter().zip(&base.x) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn additive_schwarz_rejects_rcm_and_operator_solves() {
        let a = poisson3d(3, 3, 6);
        let b = vec![1.0; a.n()];
        assert!(matches!(
            solve_sparse(
                &a,
                &b,
                &SolverConfig::new()
                    .preconditioner(Precond::AdditiveSchwarz(2))
                    .grid_dims((3, 3, 6))
                    .reorder(crate::config::Reorder::Rcm)
            ),
            Err(SolverError::InvalidInput { .. })
        ));
        assert!(matches!(
            solve_operator(
                &a,
                &b,
                &SolverConfig::new().preconditioner(Precond::AdditiveSchwarz(2))
            ),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn multigrid_rejects_wrong_dims_and_rcm() {
        let a = poisson3d(4, 4, 4);
        let b = vec![1.0; a.n()];
        assert!(matches!(
            solve_sparse(
                &a,
                &b,
                &SolverConfig::new()
                    .preconditioner(Precond::Multigrid)
                    .grid_dims((4, 4, 5))
            ),
            Err(SolverError::InvalidInput { .. })
        ));
        assert!(matches!(
            solve_sparse(
                &a,
                &b,
                &SolverConfig::new()
                    .preconditioner(Precond::Multigrid)
                    .grid_dims((4, 4, 4))
                    .reorder(Reorder::Rcm)
            ),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn spectral_caches_are_reused_across_a_workspace_sweep() {
        let (nx, ny, nz) = (8, 8, 6);
        let a = poisson3d(nx, ny, nz);
        let n = a.n();
        let b = vec![1.0; n];
        let cfg = SolverConfig::new()
            .preconditioner(Precond::Multigrid)
            .grid_dims((nx, ny, nz))
            .tolerance(1e-10);
        let mut ws = PcgWorkspace::new();
        let first = solve_sparse_with(&mut ws, &a, &b, &cfg).unwrap();
        assert!(!first.stats.spectral.unwrap().reused);
        let second = solve_sparse_with(&mut ws, &a, &b, &cfg).unwrap();
        assert!(second.stats.spectral.unwrap().reused);
        for (p, q) in first.x.iter().zip(&second.x) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // Same story for the Chebyshev bounds cache.
        let cfg = SolverConfig::new()
            .preconditioner(Precond::Chebyshev(3))
            .tolerance(1e-10);
        let mut ws = PcgWorkspace::new();
        let first = solve_sparse_with(&mut ws, &a, &b, &cfg).unwrap();
        assert!(!first.stats.spectral.unwrap().reused);
        let second = solve_sparse_with(&mut ws, &a, &b, &cfg).unwrap();
        assert!(second.stats.spectral.unwrap().reused);
    }

    #[test]
    fn mixed_precision_reaches_f64_tolerance_on_ill_conditioned_system() {
        // Diagonal spread of 1e6 on top of the Laplacian coupling:
        // single precision alone stalls near 1e-7, so hitting 1e-12
        // proves the f64 refinement loop is doing its job.
        let n = 400;
        let a = CsrMatrix::from_row_fn(n, 1, |i, row| {
            let d = 1.0 + 1.0e6 * (i as f64 / (n - 1) as f64);
            if i > 0 {
                row.push((i - 1, -1.0));
            }
            row.push((i, d + 2.0));
            if i + 1 < n {
                row.push((i + 1, -1.0));
            }
        });
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.11).cos() * 3.0).collect();
        let cfg = SolverConfig::new()
            .preconditioner(Precond::Jacobi)
            .mixed_precision(true)
            .tolerance(1e-12);
        let sol = solve_sparse(&a, &b, &cfg).unwrap();
        assert!(sol.stats.converged());
        assert!(sol.stats.final_residual <= 1e-12);
        // Cross-check against the plain f64 path.
        let f64_sol = solve_sparse(
            &a,
            &b,
            &SolverConfig::new()
                .preconditioner(Precond::Jacobi)
                .tolerance(1e-12),
        )
        .unwrap();
        for (p, q) in sol.x.iter().zip(&f64_sol.x) {
            assert!((p - q).abs() <= 1e-9 * q.abs().max(1.0));
        }
    }

    #[test]
    fn mixed_precision_rejects_unsupported_preconditioners() {
        let a = laplacian(16);
        let b = vec![1.0; 16];
        for precond in [Precond::Ssor, Precond::Ic0, Precond::Multigrid] {
            let cfg = SolverConfig::new()
                .preconditioner(precond)
                .mixed_precision(true);
            assert!(
                matches!(
                    solve_sparse(&a, &b, &cfg),
                    Err(SolverError::InvalidInput { .. })
                ),
                "{precond} should be rejected under mixed precision"
            );
        }
    }

    #[test]
    fn operator_path_rejects_spectral_preconditioners() {
        struct Op(CsrMatrix);
        impl LinearOperator for Op {
            fn dim(&self) -> usize {
                self.0.n()
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                self.0.spmv_into(x, y, 1);
            }
            fn diagonal(&self) -> Vec<f64> {
                self.0.diag()
            }
        }
        let op = Op(laplacian(12));
        let b = vec![1.0; 12];
        for precond in [Precond::Chebyshev(3), Precond::Multigrid] {
            assert!(matches!(
                solve_operator(&op, &b, &SolverConfig::new().preconditioner(precond)),
                Err(SolverError::InvalidInput { .. })
            ));
        }
    }

    #[test]
    fn setup_and_iterate_seconds_partition_the_wall_time() {
        let a = laplacian(64);
        let b = vec![1.0; 64];
        let sol = solve_sparse(
            &a,
            &b,
            &SolverConfig::new().preconditioner(Precond::Chebyshev(3)),
        )
        .unwrap();
        let s = &sol.stats;
        assert!(s.setup_seconds >= 0.0 && s.iterate_seconds >= 0.0);
        let sum = s.setup_seconds + s.iterate_seconds;
        assert!((s.wall_time.as_secs_f64() - sum).abs() <= 1e-9 + 1e-6 * sum);
    }
}
