//! Preconditioned conjugate gradient on SPD operators.

use std::time::Instant;

use crate::config::{Solution, SolverConfig};
use crate::csr::CsrMatrix;
use crate::error::SolverError;
use crate::stats::{Method, Precond, SolverStats};
use crate::LinearOperator;

enum Preconditioner<'a> {
    None,
    Jacobi(&'a [f64]),
    Ssor {
        matrix: &'a CsrMatrix,
        diag: &'a [f64],
    },
}

impl Preconditioner<'_> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            Self::None => z.copy_from_slice(r),
            Self::Jacobi(diag) => {
                for ((zi, ri), di) in z.iter_mut().zip(r).zip(*diag) {
                    *zi = ri / di;
                }
            }
            Self::Ssor { matrix, diag } => matrix.ssor_apply(diag, r, z),
        }
    }
}

/// Solves the SPD system `A·x = b` with `A` in CSR form through the
/// configured iterative method. This is the entry point the
/// finite-volume solvers use; it supports every [`Precond`], including
/// [`Precond::Ssor`] which needs the explicit sparse storage.
///
/// # Errors
///
/// * [`SolverError::Singular`] — non-positive diagonal or an indefinite
///   operator detected during iteration.
/// * [`SolverError::NotConverged`] — iteration budget exhausted.
/// * [`SolverError::InvalidInput`] — dimension mismatch or a direct
///   method selection (use [`solve_dense`](crate::solve_dense)).
pub fn solve_sparse(a: &CsrMatrix, b: &[f64], cfg: &SolverConfig) -> Result<Solution, SolverError> {
    if cfg.get_method() != Method::Pcg {
        return Err(SolverError::invalid(format!(
            "solve_sparse supports PCG, not {} (use solve_dense)",
            cfg.get_method()
        )));
    }
    let diag = screened_diagonal(a, cfg)?;
    let precond = match cfg.get_preconditioner() {
        Precond::None => Preconditioner::None,
        Precond::Jacobi => Preconditioner::Jacobi(&diag),
        Precond::Ssor => Preconditioner::Ssor {
            matrix: a,
            diag: &diag,
        },
    };
    let threads = cfg.get_threads();
    pcg_loop(|x, y| a.spmv_into(x, y, threads), &precond, b, cfg, a.n())
}

/// Solves the SPD system `A·x = b` for any [`LinearOperator`]
/// (matrix-free stencils included). [`Precond::Ssor`] needs explicit
/// storage and is rejected here — use [`solve_sparse`].
///
/// # Errors
///
/// Same contract as [`solve_sparse`].
pub fn solve_operator(
    a: &dyn LinearOperator,
    b: &[f64],
    cfg: &SolverConfig,
) -> Result<Solution, SolverError> {
    if cfg.get_method() != Method::Pcg {
        return Err(SolverError::invalid(format!(
            "solve_operator supports PCG, not {} (use solve_dense)",
            cfg.get_method()
        )));
    }
    let diag = screened_diagonal(a, cfg)?;
    let precond = match cfg.get_preconditioner() {
        Precond::None => Preconditioner::None,
        Precond::Jacobi => Preconditioner::Jacobi(&diag),
        Precond::Ssor => {
            return Err(SolverError::invalid(
                "SSOR preconditioning needs explicit CSR storage (use solve_sparse)",
            ))
        }
    };
    pcg_loop(|x, y| a.apply(x, y), &precond, b, cfg, a.dim())
}

fn screened_diagonal(
    a: &(impl LinearOperator + ?Sized),
    cfg: &SolverConfig,
) -> Result<Vec<f64>, SolverError> {
    let diag = a.diagonal();
    if diag.iter().any(|&d| d <= 0.0) {
        return Err(SolverError::Singular {
            context: cfg.get_context(),
        });
    }
    Ok(diag)
}

fn pcg_loop<F>(
    apply: F,
    precond: &Preconditioner<'_>,
    b: &[f64],
    cfg: &SolverConfig,
    n: usize,
) -> Result<Solution, SolverError>
where
    F: Fn(&[f64], &mut [f64]),
{
    if b.len() != n {
        return Err(SolverError::invalid(format!(
            "rhs length {} does not match n={n}",
            b.len()
        )));
    }
    let context = cfg.get_context();
    let tol = cfg.get_tolerance();
    let max_iter = cfg.iteration_budget(n);
    let start = Instant::now();
    let stats = |iterations, history: Vec<f64>, final_residual| SolverStats {
        context,
        method: Method::Pcg,
        preconditioner: cfg.get_preconditioner(),
        unknowns: n,
        threads: cfg.get_threads(),
        iterations,
        residual_history: history,
        final_residual,
        tolerance: tol,
        wall_time: start.elapsed(),
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let b_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        return Ok(Solution {
            x,
            stats: stats(0, Vec::new(), 0.0),
        });
    }
    let mut z = vec![0.0; n];
    precond.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let mut ap = vec![0.0; n];
    let mut history = Vec::new();
    for iter in 0..max_iter {
        apply(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap <= 0.0 {
            return Err(SolverError::Singular { context });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rel = r.iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm;
        history.push(rel);
        if rel <= tol {
            return Ok(Solution {
                x,
                stats: stats(iter + 1, history, rel),
            });
        }
        precond.apply(&r, &mut z);
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rel = history.last().copied().unwrap_or(1.0);
    Err(SolverError::NotConverged {
        context,
        iterations: max_iter,
        residual: rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian(n: usize) -> CsrMatrix {
        CsrMatrix::from_row_fn(n, 1, |i, row| {
            if i > 0 {
                row.push((i - 1, -1.0));
            }
            row.push((i, 2.0));
            if i + 1 < n {
                row.push((i + 1, -1.0));
            }
        })
    }

    #[test]
    fn pcg_solves_laplacian_chain_every_precond() {
        let n = 50;
        let a = laplacian(n);
        let b = vec![1.0; n];
        for precond in [Precond::None, Precond::Jacobi, Precond::Ssor] {
            let cfg = SolverConfig::new()
                .preconditioner(precond)
                .tolerance(1e-12)
                .context("laplacian");
            let sol = solve_sparse(&a, &b, &cfg).unwrap();
            for (i, &xi) in sol.x.iter().enumerate() {
                let k = (i + 1) as f64;
                let exact = k * (n as f64 + 1.0 - k) / 2.0;
                assert!(
                    (xi - exact).abs() < 1e-6 * exact.max(1.0),
                    "{precond}: i={i}"
                );
            }
            assert!(sol.stats.iterations > 0);
            assert_eq!(sol.stats.residual_history.len(), sol.stats.iterations);
            assert!(sol.stats.converged());
        }
    }

    #[test]
    fn ssor_converges_faster_than_jacobi() {
        let n = 200;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let jacobi =
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(Precond::Jacobi)).unwrap();
        let ssor =
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(Precond::Ssor)).unwrap();
        assert!(
            ssor.stats.iterations < jacobi.stats.iterations,
            "SSOR {} vs Jacobi {}",
            ssor.stats.iterations,
            jacobi.stats.iterations
        );
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = laplacian(8);
        let sol = solve_sparse(&a, &[0.0; 8], &SolverConfig::new()).unwrap();
        assert_eq!(sol.x, vec![0.0; 8]);
        assert_eq!(sol.stats.iterations, 0);
    }

    #[test]
    fn non_positive_diagonal_is_singular() {
        let a = CsrMatrix::from_row_fn(3, 1, |i, row| {
            row.push((i, if i == 1 { 0.0 } else { 1.0 }));
        });
        assert!(matches!(
            solve_sparse(&a, &[1.0; 3], &SolverConfig::new()),
            Err(SolverError::Singular { .. })
        ));
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let a = laplacian(100);
        let cfg = SolverConfig::new().tolerance(1e-14).max_iterations(3);
        assert!(matches!(
            solve_sparse(&a, &vec![1.0; 100], &cfg),
            Err(SolverError::NotConverged { iterations: 3, .. })
        ));
    }

    #[test]
    fn operator_path_matches_sparse_path() {
        let n = 40;
        let a = laplacian(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let cfg = SolverConfig::new().tolerance(1e-12);
        let s1 = solve_sparse(&a, &b, &cfg).unwrap();
        let s2 = solve_operator(&a, &b, &cfg).unwrap();
        assert_eq!(s1.x, s2.x);
    }

    #[test]
    fn operator_path_rejects_ssor() {
        let a = laplacian(4);
        let cfg = SolverConfig::new().preconditioner(Precond::Ssor);
        assert!(matches!(
            solve_operator(&a, &[1.0; 4], &cfg),
            Err(SolverError::InvalidInput { .. })
        ));
    }
}
