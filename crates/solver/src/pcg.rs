//! Preconditioned conjugate gradient on SPD operators, with reusable
//! workspaces and batched multi-RHS solves.
//!
//! Three tiers of entry point, from convenient to allocation-free:
//!
//! * [`solve_sparse`] / [`solve_operator`] — one-shot solves that
//!   allocate a private [`PcgWorkspace`] internally.
//! * [`solve_sparse_with`] — borrows a caller-owned workspace, so a
//!   scenario sweep reuses the r/z/p/Ap buffers and the screened
//!   preconditioner diagonal across solves.
//! * [`solve_sparse_into`] — additionally writes the solution into a
//!   caller buffer; with residual-history recording disabled
//!   ([`SolverConfig::record_history`]) it performs **zero heap
//!   allocations** once the workspace is warm.
//!
//! [`solve_multi_rhs`] solves `k` right-hand sides against one matrix,
//! screening/preconditioning once and reusing the same CSR traversal.

use std::time::{Duration, Instant};

use crate::config::{Solution, SolverConfig};
use crate::csr::CsrMatrix;
use crate::error::SolverError;
use crate::ic0::Ic0Factor;
use crate::reorder::{rcm_permutation, PermutedSystem};
use crate::stats::{FactorStats, Method, Precond, SolverStats};
use crate::LinearOperator;

enum Preconditioner<'a> {
    None,
    Jacobi(&'a [f64]),
    Ssor {
        matrix: &'a CsrMatrix,
        diag: &'a [f64],
    },
    Ic0 {
        factor: &'a Ic0Factor,
        threads: usize,
    },
}

impl Preconditioner<'_> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            Self::None => z.copy_from_slice(r),
            Self::Jacobi(diag) => {
                for ((zi, ri), di) in z.iter_mut().zip(r).zip(*diag) {
                    *zi = ri / di;
                }
            }
            Self::Ssor { matrix, diag } => matrix.ssor_apply(diag, r, z),
            Self::Ic0 { factor, threads } => factor.apply(r, z, *threads),
        }
    }
}

/// The workspace's cached RCM permutation + permuted matrix, keyed on
/// the source pattern's shared index arrays with an exact value
/// snapshot so "same grid, new coefficients" refreshes values in place
/// (allocation-free) and "same coefficients" does nothing at all.
#[derive(Debug, Clone)]
struct ReorderCache {
    key: (usize, usize),
    sys: PermutedSystem,
    vals_snapshot: Vec<f64>,
}

/// The workspace's cached IC(0) factor, keyed like [`ReorderCache`] on
/// the pattern of the matrix that was factored (the permuted matrix
/// when RCM engages). A matching snapshot means the factor is reused
/// outright; a matching pattern with new values refactors numerically
/// in place.
#[derive(Debug, Clone)]
struct Ic0Cache {
    key: (usize, usize),
    factor: Ic0Factor,
    vals_snapshot: Vec<f64>,
}

/// Reusable PCG scratch space: the residual/search/preconditioner
/// buffers, the screened diagonal, and — for [`Precond::Ic0`] — the
/// cached RCM permutation and IC(0) factor. Create one per solving
/// context (a sweep worker, a transient stepper) and pass it to
/// [`solve_sparse_with`] / [`solve_sparse_into`]; after the first solve
/// of a given size the buffers are warm and the iteration loop runs
/// without touching the allocator. The factor cache makes a power
/// sweep over one operator factor once and apply many times.
#[derive(Debug, Clone, Default)]
pub struct PcgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    diag: Vec<f64>,
    history: Vec<f64>,
    /// Permuted-order right-hand side and solution buffers.
    bp: Vec<f64>,
    xp: Vec<f64>,
    reorder: Option<ReorderCache>,
    ic0: Option<Ic0Cache>,
}

impl PcgWorkspace {
    /// An empty workspace; buffers grow to the problem size on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for `n` unknowns, so even the first solve
    /// allocates nothing inside the iteration loop.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = Self::default();
        ws.ensure(n);
        ws
    }

    fn ensure(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
        self.history.clear();
    }
}

/// Solves the SPD system `A·x = b` with `A` in CSR form through the
/// configured iterative method. This is the entry point the
/// finite-volume solvers use; it supports every [`Precond`], including
/// [`Precond::Ssor`] which needs the explicit sparse storage.
///
/// Allocates a fresh [`PcgWorkspace`] per call — prefer
/// [`solve_sparse_with`] when solving repeatedly.
///
/// # Errors
///
/// * [`SolverError::Singular`] — non-positive diagonal or an indefinite
///   operator detected during iteration.
/// * [`SolverError::NotConverged`] — iteration budget exhausted.
/// * [`SolverError::InvalidInput`] — dimension mismatch or a direct
///   method selection (use [`solve_dense`](crate::solve_dense)).
pub fn solve_sparse(a: &CsrMatrix, b: &[f64], cfg: &SolverConfig) -> Result<Solution, SolverError> {
    let mut ws = PcgWorkspace::new();
    solve_sparse_with(&mut ws, a, b, cfg)
}

/// Like [`solve_sparse`], but borrows a caller-owned [`PcgWorkspace`]
/// instead of allocating: across a sweep of same-sized systems the
/// work vectors and the screened diagonal buffer are reused, and the
/// PCG iteration loop performs no heap allocation after the first
/// solve.
///
/// # Errors
///
/// Same contract as [`solve_sparse`].
pub fn solve_sparse_with(
    ws: &mut PcgWorkspace,
    a: &CsrMatrix,
    b: &[f64],
    cfg: &SolverConfig,
) -> Result<Solution, SolverError> {
    let mut x = vec![0.0; a.n()];
    let stats = solve_sparse_into(ws, a, b, &mut x, cfg)?;
    Ok(Solution { x, stats })
}

/// The fully allocation-free entry point: solves `A·x = b` writing the
/// solution into `x` (which must be zeroed or hold any starting values
/// — it is overwritten). With residual-history recording disabled via
/// [`SolverConfig::record_history`]`(false)`, a warm workspace makes
/// the whole call zero-allocation.
///
/// # Errors
///
/// Same contract as [`solve_sparse`], plus [`SolverError::InvalidInput`]
/// when `x` has the wrong length.
pub fn solve_sparse_into(
    ws: &mut PcgWorkspace,
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    cfg: &SolverConfig,
) -> Result<SolverStats, SolverError> {
    if cfg.get_method() != Method::Pcg {
        return Err(SolverError::invalid(format!(
            "solve_sparse supports PCG, not {} (use solve_dense)",
            cfg.get_method()
        )));
    }
    let n = a.n();
    if x.len() != n {
        return Err(SolverError::invalid(format!(
            "solution length {} does not match n={n}",
            x.len()
        )));
    }
    ws.ensure(n);
    a.diag_into(&mut ws.diag);
    if ws.diag.iter().any(|&d| d <= 0.0) {
        return Err(SolverError::Singular {
            context: cfg.get_context(),
        });
    }
    let threads = cfg.get_threads();
    let use_rcm = cfg.rcm_engages() && n > 1;
    let PcgWorkspace {
        r,
        z,
        p,
        ap,
        diag,
        history,
        bp,
        xp,
        reorder,
        ic0,
    } = ws;
    if use_rcm {
        ensure_reorder(reorder, a);
    }
    let sys: Option<&PermutedSystem> = if use_rcm {
        reorder.as_ref().map(|c| &c.sys)
    } else {
        None
    };
    let system: &CsrMatrix = sys.map_or(a, |s| s.matrix());
    if sys.is_some() {
        // Preconditioners act on the permuted operator.
        system.diag_into(diag);
    }
    let factorization = if cfg.get_preconditioner() == Precond::Ic0 {
        Some(ensure_ic0(ic0, system, use_rcm, cfg.get_context())?)
    } else {
        None
    };
    let precond = match cfg.get_preconditioner() {
        Precond::None => Preconditioner::None,
        Precond::Jacobi => Preconditioner::Jacobi(diag),
        Precond::Ssor => Preconditioner::Ssor {
            matrix: system,
            diag,
        },
        Precond::Ic0 => Preconditioner::Ic0 {
            factor: &ic0.as_ref().expect("factor ensured above").factor,
            threads,
        },
    };
    if let Some(sys) = sys {
        bp.resize(n, 0.0);
        xp.resize(n, 0.0);
        sys.permute_into(b, bp);
        let stats = pcg_loop(
            |v, y| system.spmv_into(v, y, threads),
            &precond,
            bp,
            xp,
            (r, z, p, ap),
            history,
            cfg,
            n,
            factorization,
        )?;
        sys.scatter_back(xp, x);
        Ok(stats)
    } else {
        pcg_loop(
            |v, y| system.spmv_into(v, y, threads),
            &precond,
            b,
            x,
            (r, z, p, ap),
            history,
            cfg,
            n,
            factorization,
        )
    }
}

/// Brings the workspace's RCM cache in sync with `a`: a pattern hit
/// with identical values is free, a pattern hit with new values
/// refreshes the permuted copy in place, and a new pattern recomputes
/// the permutation.
fn ensure_reorder(cache: &mut Option<ReorderCache>, a: &CsrMatrix) {
    let key = a.pattern().key();
    if let Some(c) = cache {
        if c.key == key {
            if c.vals_snapshot.as_slice() != a.values() {
                c.sys.refresh_values(a);
                c.vals_snapshot.copy_from_slice(a.values());
            }
            return;
        }
    }
    aeropack_obs::counter!("solver.rcm.reorders");
    let sys = PermutedSystem::build(a, rcm_permutation(&a.pattern()));
    *cache = Some(ReorderCache {
        key,
        sys,
        vals_snapshot: a.values().to_vec(),
    });
}

/// Brings the workspace's IC(0) cache in sync with `m` (the matrix the
/// iteration actually runs on — permuted when RCM engages) and returns
/// the factorisation stats for this solve.
fn ensure_ic0(
    cache: &mut Option<Ic0Cache>,
    m: &CsrMatrix,
    reordered: bool,
    context: &'static str,
) -> Result<FactorStats, SolverError> {
    let key = m.pattern().key();
    if let Some(c) = cache {
        if c.key == key && c.vals_snapshot.as_slice() == m.values() {
            aeropack_obs::counter!("solver.ic0.factor_reuses");
            return Ok(FactorStats {
                factor_time: Duration::ZERO,
                fill_nnz: c.factor.fill_nnz(),
                forward_levels: c.factor.forward_levels(),
                backward_levels: c.factor.backward_levels(),
                diagonal_shift: c.factor.shift(),
                reused: true,
                reordered,
            });
        }
        if c.key == key {
            let t0 = Instant::now();
            match c.factor.refactor(m) {
                Ok(retries) => {
                    c.vals_snapshot.copy_from_slice(m.values());
                    return Ok(record_factor(&c.factor, t0.elapsed(), retries, reordered));
                }
                Err(_) => {
                    // The numeric content is now garbage; drop the
                    // cache so a future solve rebuilds from scratch.
                    *cache = None;
                    return Err(SolverError::Singular { context });
                }
            }
        }
    }
    let t0 = Instant::now();
    let (factor, retries) = Ic0Factor::new(m).map_err(|_| SolverError::Singular { context })?;
    let stats = record_factor(&factor, t0.elapsed(), retries, reordered);
    *cache = Some(Ic0Cache {
        key,
        factor,
        vals_snapshot: m.values().to_vec(),
    });
    Ok(stats)
}

fn record_factor(
    factor: &Ic0Factor,
    elapsed: Duration,
    retries: usize,
    reordered: bool,
) -> FactorStats {
    aeropack_obs::counter!("solver.ic0.factorizations");
    aeropack_obs::counter!("solver.ic0.fill_nnz", factor.fill_nnz());
    if retries > 0 {
        aeropack_obs::counter!("solver.ic0.shift_retries", retries);
    }
    aeropack_obs::histogram!("solver.ic0.factor_seconds", elapsed.as_secs_f64());
    aeropack_obs::histogram!("solver.ic0.levels", factor.forward_levels());
    FactorStats {
        factor_time: elapsed,
        fill_nnz: factor.fill_nnz(),
        forward_levels: factor.forward_levels(),
        backward_levels: factor.backward_levels(),
        diagonal_shift: factor.shift(),
        reused: false,
        reordered,
    }
}

/// Solves the SPD system `A·x = b` for any [`LinearOperator`]
/// (matrix-free stencils included). [`Precond::Ssor`] needs explicit
/// storage and is rejected here — use [`solve_sparse`].
///
/// # Errors
///
/// Same contract as [`solve_sparse`].
pub fn solve_operator(
    a: &dyn LinearOperator,
    b: &[f64],
    cfg: &SolverConfig,
) -> Result<Solution, SolverError> {
    if cfg.get_method() != Method::Pcg {
        return Err(SolverError::invalid(format!(
            "solve_operator supports PCG, not {} (use solve_dense)",
            cfg.get_method()
        )));
    }
    let n = a.dim();
    let mut ws = PcgWorkspace::with_capacity(n);
    ws.diag = a.diagonal();
    if ws.diag.iter().any(|&d| d <= 0.0) {
        return Err(SolverError::Singular {
            context: cfg.get_context(),
        });
    }
    let PcgWorkspace {
        r,
        z,
        p,
        ap,
        diag,
        history,
        ..
    } = &mut ws;
    let precond = match cfg.get_preconditioner() {
        Precond::None => Preconditioner::None,
        Precond::Jacobi => Preconditioner::Jacobi(diag),
        Precond::Ssor => {
            return Err(SolverError::invalid(
                "SSOR preconditioning needs explicit CSR storage (use solve_sparse)",
            ))
        }
        Precond::Ic0 => {
            return Err(SolverError::invalid(
                "IC(0) preconditioning needs explicit CSR storage (use solve_sparse)",
            ))
        }
    };
    let mut x = vec![0.0; n];
    let stats = pcg_loop(
        |v, y| a.apply(v, y),
        &precond,
        b,
        &mut x,
        (r, z, p, ap),
        history,
        cfg,
        n,
        None,
    )?;
    Ok(Solution { x, stats })
}

/// Solves `k` right-hand sides against one matrix: `rhs_block` holds
/// the RHS vectors contiguously (`k·n` values), and the returned
/// solutions are in the same order. The diagonal is screened and the
/// preconditioner set up **once**, and every solve reuses the same
/// workspace and CSR traversal — the batched path scenario sweeps use
/// when many load cases share one operator.
///
/// A `k = 0` batch (empty `rhs_block`) is a well-defined degenerate
/// case and returns an empty solution list; a `k = 1` batch is
/// bit-identical to the corresponding [`solve_sparse`] call.
///
/// # Errors
///
/// [`SolverError::InvalidInput`] when the matrix is empty or
/// `rhs_block` is not a multiple of `n`; otherwise the per-RHS
/// contract of [`solve_sparse`] (the first failing RHS aborts the
/// batch).
pub fn solve_multi_rhs(
    a: &CsrMatrix,
    rhs_block: &[f64],
    cfg: &SolverConfig,
) -> Result<Vec<Solution>, SolverError> {
    let mut ws = PcgWorkspace::new();
    solve_multi_rhs_with(&mut ws, a, rhs_block, cfg)
}

/// [`solve_multi_rhs`] over a caller-owned workspace.
///
/// # Errors
///
/// Same contract as [`solve_multi_rhs`].
pub fn solve_multi_rhs_with(
    ws: &mut PcgWorkspace,
    a: &CsrMatrix,
    rhs_block: &[f64],
    cfg: &SolverConfig,
) -> Result<Vec<Solution>, SolverError> {
    let n = a.n();
    if n == 0 {
        return Err(SolverError::invalid("matrix has no rows"));
    }
    if !rhs_block.len().is_multiple_of(n) {
        return Err(SolverError::invalid(format!(
            "rhs block length {} is not a multiple of n={n}",
            rhs_block.len()
        )));
    }
    let k = rhs_block.len() / n;
    let mut out = Vec::with_capacity(k);
    for b in rhs_block.chunks_exact(n) {
        out.push(solve_sparse_with(ws, a, b, cfg)?);
    }
    Ok(out)
}

/// The PCG iteration. All scratch comes in through `bufs`/`history`;
/// the loop body performs no allocation (history pushes reuse warm
/// capacity and are skipped entirely when recording is off).
#[allow(clippy::too_many_arguments)]
fn pcg_loop<F>(
    apply: F,
    precond: &Preconditioner<'_>,
    b: &[f64],
    x: &mut [f64],
    bufs: (&mut Vec<f64>, &mut Vec<f64>, &mut Vec<f64>, &mut Vec<f64>),
    history: &mut Vec<f64>,
    cfg: &SolverConfig,
    n: usize,
    factorization: Option<FactorStats>,
) -> Result<SolverStats, SolverError>
where
    F: Fn(&[f64], &mut [f64]),
{
    if b.len() != n {
        return Err(SolverError::invalid(format!(
            "rhs length {} does not match n={n}",
            b.len()
        )));
    }
    let (r, z, p, ap) = bufs;
    let context = cfg.get_context();
    let tol = cfg.get_tolerance();
    let record = cfg.get_record_history();
    let max_iter = cfg.iteration_budget(n);
    let start = Instant::now();
    let stats = |iterations: usize, history: Vec<f64>, final_residual: f64| {
        let wall_time = start.elapsed();
        aeropack_obs::counter!("solver.pcg.solves");
        aeropack_obs::counter!("solver.pcg.iterations", iterations);
        aeropack_obs::counter!(
            match cfg.get_preconditioner() {
                Precond::None => "solver.pcg.iterations.none",
                Precond::Jacobi => "solver.pcg.iterations.jacobi",
                Precond::Ssor => "solver.pcg.iterations.ssor",
                Precond::Ic0 => "solver.pcg.iterations.ic0",
            },
            iterations
        );
        aeropack_obs::histogram!("solver.pcg.final_residual", final_residual);
        aeropack_obs::histogram!("solver.pcg.solve_seconds", wall_time.as_secs_f64());
        SolverStats {
            context,
            method: Method::Pcg,
            preconditioner: cfg.get_preconditioner(),
            unknowns: n,
            threads: cfg.get_threads(),
            iterations,
            residual_history: history,
            final_residual,
            tolerance: tol,
            wall_time,
            factorization,
        }
    };

    x.fill(0.0);
    r.copy_from_slice(b);
    let b_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        return Ok(stats(0, Vec::new(), 0.0));
    }
    precond.apply(r, z);
    p.copy_from_slice(z);
    let mut rz: f64 = r.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
    for iter in 0..max_iter {
        apply(p, ap);
        let pap: f64 = p.iter().zip(ap.iter()).map(|(a, b)| a * b).sum();
        if pap <= 0.0 {
            return Err(SolverError::Singular { context });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rel = r.iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm;
        if record {
            history.push(rel);
        }
        if rel <= tol {
            let recorded = if record { history.clone() } else { Vec::new() };
            return Ok(stats(iter + 1, recorded, rel));
        }
        precond.apply(r, z);
        let rz_new: f64 = r.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rel = history.last().copied().unwrap_or(1.0);
    aeropack_obs::counter!("solver.pcg.not_converged");
    Err(SolverError::NotConverged {
        context,
        iterations: max_iter,
        residual: rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Precond;

    fn laplacian(n: usize) -> CsrMatrix {
        CsrMatrix::from_row_fn(n, 1, |i, row| {
            if i > 0 {
                row.push((i - 1, -1.0));
            }
            row.push((i, 2.0));
            if i + 1 < n {
                row.push((i + 1, -1.0));
            }
        })
    }

    #[test]
    fn pcg_solves_laplacian_chain_every_precond() {
        let n = 50;
        let a = laplacian(n);
        let b = vec![1.0; n];
        for precond in [Precond::None, Precond::Jacobi, Precond::Ssor, Precond::Ic0] {
            let cfg = SolverConfig::new()
                .preconditioner(precond)
                .tolerance(1e-12)
                .context("laplacian");
            let sol = solve_sparse(&a, &b, &cfg).unwrap();
            for (i, &xi) in sol.x.iter().enumerate() {
                let k = (i + 1) as f64;
                let exact = k * (n as f64 + 1.0 - k) / 2.0;
                assert!(
                    (xi - exact).abs() < 1e-6 * exact.max(1.0),
                    "{precond}: i={i}"
                );
            }
            assert!(sol.stats.iterations > 0);
            assert_eq!(sol.stats.residual_history.len(), sol.stats.iterations);
            assert!(sol.stats.converged());
        }
    }

    #[test]
    fn ssor_converges_faster_than_jacobi() {
        let n = 200;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let jacobi =
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(Precond::Jacobi)).unwrap();
        let ssor =
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(Precond::Ssor)).unwrap();
        assert!(
            ssor.stats.iterations < jacobi.stats.iterations,
            "SSOR {} vs Jacobi {}",
            ssor.stats.iterations,
            jacobi.stats.iterations
        );
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = laplacian(8);
        let sol = solve_sparse(&a, &[0.0; 8], &SolverConfig::new()).unwrap();
        assert_eq!(sol.x, vec![0.0; 8]);
        assert_eq!(sol.stats.iterations, 0);
    }

    #[test]
    fn non_positive_diagonal_is_singular() {
        let a = CsrMatrix::from_row_fn(3, 1, |i, row| {
            row.push((i, if i == 1 { 0.0 } else { 1.0 }));
        });
        assert!(matches!(
            solve_sparse(&a, &[1.0; 3], &SolverConfig::new()),
            Err(SolverError::Singular { .. })
        ));
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let a = laplacian(100);
        let cfg = SolverConfig::new().tolerance(1e-14).max_iterations(3);
        assert!(matches!(
            solve_sparse(&a, &vec![1.0; 100], &cfg),
            Err(SolverError::NotConverged { iterations: 3, .. })
        ));
    }

    #[test]
    fn operator_path_matches_sparse_path() {
        let n = 40;
        let a = laplacian(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let cfg = SolverConfig::new().tolerance(1e-12);
        let s1 = solve_sparse(&a, &b, &cfg).unwrap();
        let s2 = solve_operator(&a, &b, &cfg).unwrap();
        assert_eq!(s1.x, s2.x);
    }

    #[test]
    fn operator_path_rejects_ssor() {
        let a = laplacian(4);
        let cfg = SolverConfig::new().preconditioner(Precond::Ssor);
        assert!(matches!(
            solve_operator(&a, &[1.0; 4], &cfg),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn operator_path_rejects_ic0() {
        let a = laplacian(4);
        let cfg = SolverConfig::new().preconditioner(Precond::Ic0);
        assert!(matches!(
            solve_operator(&a, &[1.0; 4], &cfg),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn ic0_converges_in_fewer_iterations_than_jacobi_and_ssor() {
        let n = 400;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let iters = |precond| {
            solve_sparse(&a, &b, &SolverConfig::new().preconditioner(precond))
                .unwrap()
                .stats
                .iterations
        };
        let (jacobi, ssor, ic0) = (
            iters(Precond::Jacobi),
            iters(Precond::Ssor),
            iters(Precond::Ic0),
        );
        assert!(ic0 < ssor, "IC(0) {ic0} vs SSOR {ssor}");
        assert!(ic0 * 2 <= jacobi, "IC(0) {ic0} vs Jacobi {jacobi}");
    }

    #[test]
    fn ic0_factor_is_cached_across_a_workspace_sweep() {
        let n = 120;
        let a = laplacian(n);
        let cfg = SolverConfig::new()
            .preconditioner(Precond::Ic0)
            .tolerance(1e-12);
        let mut ws = PcgWorkspace::new();
        let first = solve_sparse_with(&mut ws, &a, &vec![1.0; n], &cfg).unwrap();
        let f1 = first
            .stats
            .factorization
            .expect("IC(0) reports factor stats");
        assert!(!f1.reused);
        assert!(f1.reordered, "Reorder::Auto engages RCM with IC(0)");
        assert!(f1.fill_nnz > 0);
        let second = solve_sparse_with(&mut ws, &a, &vec![2.0; n], &cfg).unwrap();
        let f2 = second.stats.factorization.unwrap();
        assert!(f2.reused, "same matrix must reuse the cached factor");
        assert_eq!(f2.factor_time, Duration::ZERO);
        // A same-pattern matrix with new values refactors in place.
        let scaled = CsrMatrix::from_pattern_row_fn(&a.pattern(), 1, |i, row| {
            for idx in a.row_offsets()[i]..a.row_offsets()[i + 1] {
                row.push((a.col_indices()[idx], 2.0 * a.values()[idx]));
            }
        });
        let third = solve_sparse_with(&mut ws, &scaled, &vec![1.0; n], &cfg).unwrap();
        assert!(!third.stats.factorization.unwrap().reused);
    }

    #[test]
    fn rcm_reordering_does_not_change_what_is_solved() {
        use crate::config::Reorder;
        let n = 150;
        let a = laplacian(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() + 2.0).collect();
        for precond in [Precond::Jacobi, Precond::Ssor, Precond::Ic0] {
            let plain = solve_sparse(
                &a,
                &b,
                &SolverConfig::new()
                    .preconditioner(precond)
                    .reorder(Reorder::None)
                    .tolerance(1e-12),
            )
            .unwrap();
            let rcm = solve_sparse(
                &a,
                &b,
                &SolverConfig::new()
                    .preconditioner(precond)
                    .reorder(Reorder::Rcm)
                    .tolerance(1e-12),
            )
            .unwrap();
            for (p, q) in plain.x.iter().zip(rcm.x.iter()) {
                assert!((p - q).abs() < 1e-8 * p.abs().max(1.0), "{precond}");
            }
        }
    }

    #[test]
    fn reused_workspace_is_bitwise_identical_to_fresh_solves() {
        let n = 60;
        let a = laplacian(n);
        let rhs: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                (0..n)
                    .map(|i| ((i + k) as f64 * 0.07).sin() + 2.0)
                    .collect()
            })
            .collect();
        for precond in [Precond::None, Precond::Jacobi, Precond::Ssor, Precond::Ic0] {
            let cfg = SolverConfig::new().preconditioner(precond).tolerance(1e-12);
            let mut ws = PcgWorkspace::new();
            for b in &rhs {
                let fresh = solve_sparse(&a, b, &cfg).unwrap();
                let reused = solve_sparse_with(&mut ws, &a, b, &cfg).unwrap();
                assert_eq!(fresh.x, reused.x, "{precond}");
                assert_eq!(fresh.stats.iterations, reused.stats.iterations);
                assert_eq!(fresh.stats.residual_history, reused.stats.residual_history);
            }
        }
    }

    #[test]
    fn solve_into_writes_caller_buffer_and_skips_history() {
        let n = 30;
        let a = laplacian(n);
        let b = vec![1.0; n];
        let cfg = SolverConfig::new().record_history(false);
        let mut ws = PcgWorkspace::with_capacity(n);
        let mut x = vec![7.0; n]; // stale values must be overwritten
        let stats = solve_sparse_into(&mut ws, &a, &b, &mut x, &cfg).unwrap();
        let reference = solve_sparse(&a, &b, &SolverConfig::new()).unwrap();
        assert_eq!(x, reference.x);
        assert_eq!(stats.iterations, reference.stats.iterations);
        assert!(stats.residual_history.is_empty());
        assert!(stats.converged());
    }

    #[test]
    fn solve_into_rejects_wrong_solution_length() {
        let a = laplacian(5);
        let mut ws = PcgWorkspace::new();
        let mut x = vec![0.0; 4];
        assert!(matches!(
            solve_sparse_into(&mut ws, &a, &[1.0; 5], &mut x, &SolverConfig::new()),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn multi_rhs_matches_independent_solves() {
        let n = 48;
        let a = laplacian(n);
        let k = 5;
        let mut block = Vec::with_capacity(k * n);
        for j in 0..k {
            for i in 0..n {
                block.push(((i * (j + 1)) as f64 * 0.05).cos() + 1.5);
            }
        }
        let cfg = SolverConfig::new().tolerance(1e-12);
        let batch = solve_multi_rhs(&a, &block, &cfg).unwrap();
        assert_eq!(batch.len(), k);
        for (j, sol) in batch.iter().enumerate() {
            let single = solve_sparse(&a, &block[j * n..(j + 1) * n], &cfg).unwrap();
            assert_eq!(sol.x, single.x, "rhs {j}");
            assert_eq!(sol.stats.iterations, single.stats.iterations);
        }
    }

    #[test]
    fn multi_rhs_rejects_ragged_block() {
        let a = laplacian(4);
        assert!(matches!(
            solve_multi_rhs(&a, &[1.0; 7], &SolverConfig::new()),
            Err(SolverError::InvalidInput { .. })
        ));
    }

    #[test]
    fn multi_rhs_degenerate_batches() {
        let a = laplacian(6);
        // k = 0: a well-defined empty batch, not an error.
        let empty = solve_multi_rhs(&a, &[], &SolverConfig::new()).unwrap();
        assert!(empty.is_empty());
        // k = 1: bit-identical to the single-RHS path.
        let b: Vec<f64> = (0..6).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
        let cfg = SolverConfig::new().tolerance(1e-12);
        let batch = solve_multi_rhs(&a, &b, &cfg).unwrap();
        let single = solve_sparse(&a, &b, &cfg).unwrap();
        assert_eq!(batch.len(), 1);
        for (p, q) in batch[0].x.iter().zip(&single.x) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        assert_eq!(batch[0].stats.iterations, single.stats.iterations);
    }
}
