//! Golden tests: PCG (Jacobi and SSOR) against dense Cholesky on
//! shared SPD fixtures, plus the threading determinism contract.

use aeropack_solver::{solve_dense, solve_sparse, CsrMatrix, Method, Precond, SolverConfig};

/// Deterministic LCG so fixtures are reproducible without external
/// dependencies.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// A diagonally dominant (hence SPD) banded fixture with pseudo-random
/// off-diagonal couplings, in both dense and CSR forms.
fn spd_fixture(n: usize, band: usize, seed: u64) -> (Vec<f64>, CsrMatrix, Vec<f64>) {
    let mut rng = Lcg(seed);
    let mut dense = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..(i + band + 1).min(n) {
            let v = -rng.next_f64();
            dense[i * n + j] = v;
            dense[j * n + i] = v;
        }
    }
    for i in 0..n {
        let row_sum: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| dense[i * n + j].abs())
            .sum();
        dense[i * n + i] = row_sum + 0.5 + rng.next_f64();
    }
    let csr = CsrMatrix::from_row_fn(n, 1, |i, row| {
        for j in 0..n {
            let v = dense[i * n + j];
            if v != 0.0 {
                row.push((j, v));
            }
        }
    });
    let b: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
    (dense, csr, b)
}

#[test]
fn pcg_matches_dense_cholesky_on_spd_fixtures() {
    for (n, band, seed) in [(30, 2, 1u64), (75, 4, 2), (120, 3, 3)] {
        let (dense, csr, b) = spd_fixture(n, band, seed);
        let chol = solve_dense(
            &dense,
            n,
            &b,
            &SolverConfig::new()
                .method(Method::Cholesky)
                .context("golden dense"),
        )
        .unwrap();
        let x_norm = chol.x.iter().map(|v| v * v).sum::<f64>().sqrt();
        for precond in [
            Precond::Jacobi,
            Precond::Ssor,
            Precond::Ic0,
            Precond::Chebyshev(4),
            // No grid shape here, so this exercises the automatic
            // Multigrid → Chebyshev fallback against the same fixture.
            Precond::Multigrid,
        ] {
            let pcg = solve_sparse(
                &csr,
                &b,
                &SolverConfig::new()
                    .preconditioner(precond)
                    .tolerance(1e-12)
                    .context("golden pcg"),
            )
            .unwrap();
            let diff = chol
                .x
                .iter()
                .zip(&pcg.x)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(
                diff <= 1e-9 * x_norm.max(1.0),
                "n={n} {precond}: ‖Δx‖ = {diff:.3e}"
            );
        }
    }
}

#[test]
fn lu_agrees_with_cholesky_on_spd() {
    let (dense, _, b) = spd_fixture(40, 3, 9);
    let chol = solve_dense(
        &dense,
        40,
        &b,
        &SolverConfig::new().method(Method::Cholesky),
    )
    .unwrap();
    let lu = solve_dense(&dense, 40, &b, &SolverConfig::new().method(Method::Lu)).unwrap();
    for (a, b) in chol.x.iter().zip(&lu.x) {
        assert!((a - b).abs() < 1e-10);
    }
}

#[test]
fn threaded_spmv_and_assembly_are_deterministic() {
    let n = 64 * 64;
    let stencil = |i: usize, row: &mut Vec<(usize, f64)>| {
        let (x, y) = (i % 64, i / 64);
        let mut diag = 1e-3;
        let couple = |j: usize, g: f64, row: &mut Vec<(usize, f64)>, diag: &mut f64| {
            row.push((j, -g));
            *diag += g;
        };
        if x > 0 {
            couple(i - 1, 1.0 + (i as f64 * 0.01).sin().abs(), row, &mut diag);
        }
        if x + 1 < 64 {
            couple(
                i + 1,
                1.0 + ((i + 1) as f64 * 0.01).sin().abs(),
                row,
                &mut diag,
            );
        }
        if y > 0 {
            couple(i - 64, 2.0, row, &mut diag);
        }
        if y + 1 < 64 {
            couple(i + 64, 2.0, row, &mut diag);
        }
        row.push((i, diag));
    };
    let serial = CsrMatrix::from_row_fn(n, 1, stencil);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).cos()).collect();
    let y_serial = serial.spmv(&x);

    // threads(1): bitwise identical to the serial kernel.
    let mut y1 = vec![0.0; n];
    serial.spmv_into(&x, &mut y1, 1);
    assert_eq!(y_serial, y1);

    // threads(4): assembly and SpMV both row-partitioned → identical
    // layout and accumulation order, so well within the 1e-12 contract
    // (in fact bitwise equal).
    let par = CsrMatrix::from_row_fn(n, 4, stencil);
    assert_eq!(serial, par, "parallel assembly must match serial");
    let mut y4 = vec![0.0; n];
    par.spmv_into(&x, &mut y4, 4);
    for (a, b) in y_serial.iter().zip(&y4) {
        assert!((a - b).abs() <= 1e-12, "{a} vs {b}");
    }
    assert_eq!(y_serial, y4);
}

#[test]
fn threaded_pcg_solution_is_identical() {
    let n = 900;
    let stencil = |i: usize, row: &mut Vec<(usize, f64)>| {
        let (x, y) = (i % 30, i / 30);
        let mut diag = 0.0;
        if x > 0 {
            row.push((i - 1, -1.0));
            diag += 1.0;
        }
        if x + 1 < 30 {
            row.push((i + 1, -1.0));
            diag += 1.0;
        }
        if y > 0 {
            row.push((i - 30, -1.0));
            diag += 1.0;
        }
        if y + 1 < 30 {
            row.push((i + 30, -1.0));
            diag += 1.0;
        }
        row.push((i, diag + 1.0));
    };
    let a = CsrMatrix::from_row_fn(n, 1, stencil);
    let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
    for precond in [Precond::Jacobi, Precond::Ic0] {
        let s1 = solve_sparse(
            &a,
            &b,
            &SolverConfig::new()
                .preconditioner(precond)
                .threads(1)
                .tolerance(1e-12),
        )
        .unwrap();
        let s4 = solve_sparse(
            &a,
            &b,
            &SolverConfig::new()
                .preconditioner(precond)
                .threads(4)
                .tolerance(1e-12),
        )
        .unwrap();
        assert_eq!(s1.x, s4.x, "{precond}: PCG must be thread-count invariant");
        assert_eq!(s1.stats.iterations, s4.stats.iterations);
        assert_eq!(s4.stats.threads, 4);
    }
}

#[test]
fn rcm_reduces_bandwidth_of_a_grid_operator() {
    use aeropack_solver::{bandwidth, rcm_permutation};
    // A 2-D grid numbered row-major has bandwidth 30; RCM must not make
    // it worse, and on a scrambled numbering it must recover a tight
    // band. The permutation is also checked to be a bijection.
    let n = 900;
    let scramble = |i: usize| (i * 577) % n;
    let mut inv = vec![0usize; n];
    for i in 0..n {
        inv[scramble(i)] = i;
    }
    let a = CsrMatrix::from_row_fn(n, 1, |r, row| {
        let i = inv[r];
        let (x, y) = (i % 30, i / 30);
        row.push((r, 4.0));
        if x > 0 {
            row.push((scramble(i - 1), -1.0));
        }
        if x + 1 < 30 {
            row.push((scramble(i + 1), -1.0));
        }
        if y > 0 {
            row.push((scramble(i - 30), -1.0));
        }
        if y + 1 < 30 {
            row.push((scramble(i + 30), -1.0));
        }
    });
    let pattern = a.pattern();
    let before = bandwidth(&pattern);
    let perm = rcm_permutation(&pattern);
    let mut seen = vec![false; n];
    for &p in &perm {
        assert!(!seen[p], "permutation must be a bijection");
        seen[p] = true;
    }
    // Bandwidth of the permuted pattern, computed through the inverse.
    let mut new_of = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        new_of[old] = new;
    }
    let row_ptr = pattern.row_offsets();
    let cols = pattern.col_indices();
    let mut after = 0usize;
    for i in 0..n {
        for idx in row_ptr[i]..row_ptr[i + 1] {
            after = after.max(new_of[i].abs_diff(new_of[cols[idx]]));
        }
    }
    assert!(
        after * 4 < before,
        "RCM should sharply reduce the scrambled bandwidth: {before} -> {after}"
    );
    assert!(after <= 60, "a 30×30 grid should reorder to a tight band");
}
