//! Proves the zero-allocation contract of the warm PCG path: with a
//! reused [`PcgWorkspace`], history recording off and a caller-owned
//! solution buffer, `solve_sparse_into` performs **no heap allocation**.
//!
//! The library itself forbids `unsafe`; this integration test is its
//! own crate root, so it can install a counting [`GlobalAlloc`] without
//! weakening that guarantee.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use aeropack_solver::{solve_sparse_into, CsrMatrix, PcgWorkspace, Precond, SolverConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn laplacian(n: usize) -> CsrMatrix {
    CsrMatrix::from_row_fn(n, 1, |i, row| {
        if i > 0 {
            row.push((i - 1, -1.0));
        }
        row.push((i, 2.0));
        if i + 1 < n {
            row.push((i + 1, -1.0));
        }
    })
}

/// Kept as the single test in this file: the allocation counter is
/// process-global, and a concurrently running sibling test would
/// register its own allocations inside the measured window.
#[test]
fn warm_pcg_solve_performs_no_heap_allocation() {
    let n = 400;
    let a = laplacian(n);
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let cfg = SolverConfig::new()
        .preconditioner(Precond::Jacobi)
        .threads(1)
        .record_history(false)
        .context("zero-alloc proof");
    let mut ws = PcgWorkspace::with_capacity(n);

    // Warm-up: the first solve may size the diagonal buffer.
    let warm = solve_sparse_into(&mut ws, &a, &b, &mut x, &cfg).expect("warm solve");
    assert!(warm.converged(), "warm-up must converge");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stats = solve_sparse_into(&mut ws, &a, &b, &mut x, &cfg).expect("warm solve");
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(stats.converged(), "measured solve must converge");
    assert!(stats.iterations > 0, "solve must actually iterate");
    assert_eq!(
        after - before,
        0,
        "warm solve_sparse_into allocated {} time(s); the warm PCG loop must be allocation-free",
        after - before
    );

    // Sanity: the counter does observe ordinary allocations.
    let probe = ALLOCATIONS.load(Ordering::SeqCst);
    let v = std::hint::black_box(vec![0u8; 64]);
    assert!(
        ALLOCATIONS.load(Ordering::SeqCst) > probe,
        "allocation counter must be live"
    );
    drop(v);

    // The instrumented hot path emits obs events (solver.pcg.*). With
    // observability in its default disabled state — as measured above —
    // those events must cost nothing: the zero-alloc assertion already
    // covers them, since solve_sparse_into is instrumented. Now prove
    // the events are real when enabled...
    assert!(!aeropack_obs::enabled(), "obs must default to disabled");
    let reg = std::sync::Arc::new(aeropack_obs::Registry::new());
    {
        let _obs = aeropack_obs::scoped(reg.clone());
        let stats = solve_sparse_into(&mut ws, &a, &b, &mut x, &cfg).expect("observed solve");
        assert_eq!(reg.counter("solver.pcg.solves"), 1);
        assert_eq!(
            reg.counter("solver.pcg.iterations"),
            stats.iterations as u64
        );
    }
    // ...and that dropping back to disabled restores the allocation-free
    // warm path (the enable flag really is the only state consulted).
    assert!(!aeropack_obs::enabled(), "scope end must disable obs again");
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stats = solve_sparse_into(&mut ws, &a, &b, &mut x, &cfg).expect("re-disabled solve");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(stats.converged());
    assert_eq!(
        after - before,
        0,
        "obs disabled again: warm solve allocated {} time(s)",
        after - before
    );

    // IC(0) + RCM: the first solve builds the permutation, the permuted
    // matrix and the factor (all cached in the workspace); from then on
    // the triangular applies, the value-snapshot comparisons and the
    // permute/scatter steps must all run without touching the heap.
    let ic0_cfg = SolverConfig::new()
        .preconditioner(Precond::Ic0)
        .threads(1)
        .record_history(false)
        .context("zero-alloc IC(0) proof");
    let warm = solve_sparse_into(&mut ws, &a, &b, &mut x, &ic0_cfg).expect("IC(0) warm-up");
    assert!(warm.converged());
    let setup = warm.stats_factorization_reused();
    assert!(!setup, "first IC(0) solve must factor, not reuse");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stats = solve_sparse_into(&mut ws, &a, &b, &mut x, &ic0_cfg).expect("warm IC(0) solve");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    let factor = stats.factorization.expect("IC(0) reports factor stats");
    assert!(factor.reused, "warm IC(0) solve must reuse the factor");
    assert!(factor.reordered, "Reorder::Auto engages RCM for IC(0)");
    assert!(stats.converged());
    assert_eq!(
        after - before,
        0,
        "warm IC(0) solve allocated {} time(s); the factor-cached path must be allocation-free",
        after - before
    );

    // Chebyshev: the warm path reuses the cached spectral bounds and
    // the polynomial scratch, so applying a degree-k polynomial per
    // iteration must not touch the heap either.
    let cheb_cfg = SolverConfig::new()
        .preconditioner(Precond::Chebyshev(4))
        .threads(1)
        .record_history(false)
        .context("zero-alloc Chebyshev proof");
    let warm = solve_sparse_into(&mut ws, &a, &b, &mut x, &cheb_cfg).expect("Chebyshev warm-up");
    assert!(warm.converged());
    assert!(!warm.spectral.expect("spectral stats").reused);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stats =
        solve_sparse_into(&mut ws, &a, &b, &mut x, &cheb_cfg).expect("warm Chebyshev solve");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(stats.converged());
    assert!(stats.spectral.expect("spectral stats").reused);
    assert_eq!(
        after - before,
        0,
        "warm Chebyshev solve allocated {} time(s); the bounds-cached path must be allocation-free",
        after - before
    );

    // Multigrid: grid large enough to engage both the SELL re-layout
    // (n ≥ 1024) and a multi-level hierarchy. The first solve builds
    // everything; warm V-cycles must be allocation-free.
    let (nx, ny, nz) = (16, 10, 8);
    let pg = poisson3d(nx, ny, nz);
    let pn = pg.n();
    let pb = vec![1.0; pn];
    let mut px = vec![0.0; pn];
    let mg_cfg = SolverConfig::new()
        .preconditioner(Precond::Multigrid)
        .grid_dims((nx, ny, nz))
        .threads(1)
        .record_history(false)
        .context("zero-alloc multigrid proof");
    let mut mg_ws = PcgWorkspace::with_capacity(pn);
    let warm = solve_sparse_into(&mut mg_ws, &pg, &pb, &mut px, &mg_cfg).expect("MG warm-up");
    assert!(warm.converged());
    let spec = warm.spectral.expect("MG spectral stats");
    assert!(!spec.reused);
    assert!(spec.levels >= 2, "hierarchy must actually coarsen");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stats = solve_sparse_into(&mut mg_ws, &pg, &pb, &mut px, &mg_cfg).expect("warm MG solve");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(stats.converged());
    assert!(stats.spectral.expect("MG spectral stats").reused);
    assert_eq!(
        after - before,
        0,
        "warm multigrid solve allocated {} time(s); the hierarchy-cached path must be allocation-free",
        after - before
    );

    // Additive Schwarz: the tile IC(0) factors are cached in the
    // workspace; warm applications stage, trisolve and accumulate
    // entirely inside pre-allocated tile scratch.
    let as_cfg = SolverConfig::new()
        .preconditioner(Precond::AdditiveSchwarz(4))
        .grid_dims((nx, ny, nz))
        .threads(1)
        .record_history(false)
        .context("zero-alloc additive-Schwarz proof");
    let warm = solve_sparse_into(&mut mg_ws, &pg, &pb, &mut px, &as_cfg).expect("AS warm-up");
    assert!(warm.converged());
    assert_eq!(warm.dd.expect("dd stats").subdomains, 4);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stats = solve_sparse_into(&mut mg_ws, &pg, &pb, &mut px, &as_cfg).expect("warm AS solve");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(stats.converged());
    assert_eq!(stats.dd.expect("dd stats").subdomains, 4);
    assert_eq!(
        after - before,
        0,
        "warm additive-Schwarz solve allocated {} time(s); the tile-cached path must be allocation-free",
        after - before
    );

    // The sharded driver: halo buffers, extended-range staging and the
    // per-shard Schwarz output slices are all sized at construction, so
    // a warm `solve_into` at one thread must not touch the heap.
    let mut driver = aeropack_solver::ShardedSolve::new(&pg, &as_cfg, 2).expect("sharded driver");
    let warm = driver.solve_into(&pb, &mut px).expect("sharded warm-up");
    assert!(warm.converged());
    assert_eq!(warm.dd.expect("dd stats").shards, 2);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stats = driver.solve_into(&pb, &mut px).expect("warm sharded solve");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(stats.converged());
    assert_eq!(
        after - before,
        0,
        "warm sharded solve_into allocated {} time(s); the warm sharded PCG loop must be allocation-free",
        after - before
    );
}

fn poisson3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let idx = move |ix: usize, iy: usize, iz: usize| ix + nx * (iy + ny * iz);
    CsrMatrix::from_row_fn(nx * ny * nz, 2, move |i, row| {
        let ix = i % nx;
        let iy = (i / nx) % ny;
        let iz = i / (nx * ny);
        row.push((i, 6.0));
        if ix > 0 {
            row.push((idx(ix - 1, iy, iz), -1.0));
        }
        if ix + 1 < nx {
            row.push((idx(ix + 1, iy, iz), -1.0));
        }
        if iy > 0 {
            row.push((idx(ix, iy - 1, iz), -1.0));
        }
        if iy + 1 < ny {
            row.push((idx(ix, iy + 1, iz), -1.0));
        }
        if iz > 0 {
            row.push((idx(ix, iy, iz - 1), -1.0));
        }
        if iz + 1 < nz {
            row.push((idx(ix, iy, iz + 1), -1.0));
        }
    })
}

/// Small extension trait so the warm-up assertion reads cleanly without
/// unwrapping in the middle of the test.
trait FactorReused {
    fn stats_factorization_reused(&self) -> bool;
}

impl FactorReused for aeropack_solver::SolverStats {
    fn stats_factorization_reused(&self) -> bool {
        self.factorization.map(|f| f.reused).unwrap_or(false)
    }
}
