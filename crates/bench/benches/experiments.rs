//! Benches of the end-to-end experiments: one timed kernel per paper
//! figure/table, so regressions in any layer show up against the exact
//! workload the reproduction runs.
//!
//! Run with `cargo bench -p aeropack-bench --bench experiments`.

use aeropack_bench::{report, time_mean};
use aeropack_core::{
    analyze_module, representative_board, CoolingSelector, HotSpotStudy, SeatStructure, SebModel,
};
use aeropack_envqual::Do160Curve;
use aeropack_fem::{modal, random_response, Dof, HarmonicResponse, PlateMesh, PlateProperties};
use aeropack_materials::Material;
use aeropack_tim::{D5470Tester, TimJoint};
use aeropack_units::{Celsius, Length, Power, Pressure, TempDelta};

fn bench_exp01_modal() {
    let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(2.4))
        .expect("props")
        .with_smeared_mass(4.0);
    let mean = time_mean(1, 5, || {
        let mut mesh = PlateMesh::rectangular(0.14, 0.09, 6, 4, &props).expect("mesh");
        mesh.pin_all_edges().expect("bc");
        let modes = modal(&mesh.model, 3).expect("modal");
        let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("resp");
        random_response(&resp, mesh.center_node(), Dof::W, &Do160Curve::C1.psd()).expect("random")
    });
    report("exp01_board_modes_and_psd", mean);
}

fn bench_exp02_levels() {
    let pcb = representative_board("bench module", Power::new(30.0)).expect("board");
    let selector = CoolingSelector::default();
    let mean = time_mean(1, 5, || {
        analyze_module(&pcb, &selector, Celsius::new(55.0)).expect("chain")
    });
    report("exp02_three_level_chain", mean);
}

fn bench_exp04_hotspot() {
    let study = HotSpotStudy::ten_watt_per_cm2();
    let mean = time_mean(1, 5, || study.junction_temperature(2.0).expect("solve"));
    report("exp04_hotspot_solve", mean);
}

fn bench_exp05_seb() {
    let model =
        SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).expect("model");
    let mean = time_mean(1, 5, || {
        model
            .solve(Power::new(80.0), Celsius::new(25.0))
            .expect("solve")
    });
    report("exp05_seb_solve", mean);
    let mean = time_mean(0, 2, || {
        model
            .capability(TempDelta::new(60.0), Celsius::new(25.0))
            .expect("capability")
    });
    report("exp05_seb_capability_dt60", mean);
}

fn bench_exp08_tester() {
    let tester = D5470Tester::standard().expect("tester");
    let joint = TimJoint::nanopack_sphere_adhesive().expect("joint");
    let mean = time_mean(2, 10, || {
        tester
            .measure_averaged(&joint, Pressure::from_kilopascals(300.0), 25, 7)
            .expect("measure")
    });
    report("exp08_d5470_averaged_measurement", mean);
}

fn main() {
    println!(
        "{:<44} {:>12}",
        "experiment benches (mean per iteration)", "time"
    );
    bench_exp01_modal();
    bench_exp02_levels();
    bench_exp04_hotspot();
    bench_exp05_seb();
    bench_exp08_tester();
}
