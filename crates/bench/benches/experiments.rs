//! Criterion benches of the end-to-end experiments: one timed kernel
//! per paper figure/table, so regressions in any layer show up against
//! the exact workload the reproduction runs.

use criterion::{criterion_group, criterion_main, Criterion};

use aeropack_core::{
    analyze_module, representative_board, CoolingSelector, HotSpotStudy, SeatStructure, SebModel,
};
use aeropack_envqual::Do160Curve;
use aeropack_fem::{modal, random_response, Dof, HarmonicResponse, PlateMesh, PlateProperties};
use aeropack_materials::Material;
use aeropack_tim::{D5470Tester, TimJoint};
use aeropack_units::{Celsius, Length, Power, Pressure, TempDelta};

fn bench_exp01_modal(c: &mut Criterion) {
    let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(2.4))
        .expect("props")
        .with_smeared_mass(4.0);
    c.bench_function("exp01_board_modes_and_psd", |b| {
        b.iter(|| {
            let mut mesh = PlateMesh::rectangular(0.14, 0.09, 6, 4, &props).expect("mesh");
            mesh.pin_all_edges().expect("bc");
            let modes = modal(&mesh.model, 3).expect("modal");
            let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("resp");
            random_response(&resp, mesh.center_node(), Dof::W, &Do160Curve::C1.psd())
                .expect("random")
        });
    });
}

fn bench_exp02_levels(c: &mut Criterion) {
    let pcb = representative_board("bench module", Power::new(30.0)).expect("board");
    let selector = CoolingSelector::default();
    c.bench_function("exp02_three_level_chain", |b| {
        b.iter(|| analyze_module(&pcb, &selector, Celsius::new(55.0)).expect("chain"));
    });
}

fn bench_exp04_hotspot(c: &mut Criterion) {
    let study = HotSpotStudy::ten_watt_per_cm2();
    c.bench_function("exp04_hotspot_solve", |b| {
        b.iter(|| study.junction_temperature(2.0).expect("solve"));
    });
}

fn bench_exp05_seb(c: &mut Criterion) {
    let model =
        SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).expect("model");
    c.bench_function("exp05_seb_solve", |b| {
        b.iter(|| {
            model
                .solve(Power::new(80.0), Celsius::new(25.0))
                .expect("solve")
        });
    });
    let mut group = c.benchmark_group("exp05_seb_capability");
    group.sample_size(10);
    group.bench_function("capability_dt60", |b| {
        b.iter(|| {
            model
                .capability(TempDelta::new(60.0), Celsius::new(25.0))
                .expect("capability")
        });
    });
    group.finish();
}

fn bench_exp08_tester(c: &mut Criterion) {
    let tester = D5470Tester::standard().expect("tester");
    let joint = TimJoint::nanopack_sphere_adhesive().expect("joint");
    c.bench_function("exp08_d5470_averaged_measurement", |b| {
        b.iter(|| {
            tester
                .measure_averaged(&joint, Pressure::from_kilopascals(300.0), 25, 7)
                .expect("measure")
        });
    });
}

criterion_group!(
    benches,
    bench_exp01_modal,
    bench_exp02_levels,
    bench_exp04_hotspot,
    bench_exp05_seb,
    bench_exp08_tester
);
criterion_main!(benches);
