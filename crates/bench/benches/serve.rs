//! Analysis-service load benchmark: a ≥1000-request mixed workload
//! (SEB capability/operating points, FV plates, Level-2 boards, FEM
//! modal) driven through the in-process [`Client`] at several worker
//! pool sizes, plus a socket-transport leg, a cold-vs-cached latency
//! comparison and a coalescing bit-identity check. Emits
//! `BENCH_serve.json` at the repository root with p50/p90/p99 latency
//! and throughput per pool size, and **exits non-zero** if
//!
//! * any request in the load fails,
//! * cache-hit repeats are not at least 5× faster than cold solves, or
//! * a coalesced multi-RHS batch is not bit-identical to the same
//!   scales solved one at a time.
//!
//! Run with `cargo bench -p aeropack-bench --bench serve`; pass
//! `-- --smoke` for the small offline CI gate (120 requests, no JSON
//! file written).

use std::sync::Arc;
use std::time::{Duration, Instant};

use aeropack_bench::fmt_duration;
use aeropack_serve::{
    serve, AnalysisRequest, AnalysisResponse, BoardSpec, Client, CoolingModeSpec, FemPlateSpec,
    FvAnalysis, MaterialKind, PlateSpec, SeatKind, SebSpec, ServeConfig, Service, ServiceStats,
    SocketClient, Workload, Workspace,
};

fn seb_spec() -> SebSpec {
    SebSpec {
        seat: SeatKind::Aluminum,
        lhp: true,
        tilt_deg: 0.0,
        ambient_c: 25.0,
    }
}

fn plate_spec() -> PlateSpec {
    PlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        thickness_m: 0.0016,
        nx: 16,
        ny: 10,
        material: MaterialKind::Fr4,
        power_w: 15.0,
        h_w_m2k: 40.0,
        ambient_c: 40.0,
    }
}

fn board_spec() -> BoardSpec {
    BoardSpec {
        power_w: 25.0,
        mode: CoolingModeSpec::ForcedAir {
            flow_multiplier: 1.0,
        },
        ambient_c: 40.0,
        resolution_mm: 10.0,
    }
}

fn fem_spec() -> FemPlateSpec {
    FemPlateSpec {
        lx_m: 0.16,
        ly_m: 0.1,
        nx: 6,
        ny: 4,
        thickness_mm: 1.6,
        smeared_mass_kg_m2: 4.5,
        material: MaterialKind::Fr4,
    }
}

/// The generated load: `n` requests cycling over five analysis kinds.
/// Parameter cycles are shorter than the request count, so later laps
/// repeat earlier requests — the mix exercises the result cache and,
/// for the FV/board families (which share a model fingerprint across
/// scales), the multi-RHS coalescer.
fn mixed_load(n: usize) -> Vec<AnalysisRequest> {
    (0..n)
        .map(|i| match i % 5 {
            0 => AnalysisRequest::SebOperatingPoint {
                spec: seb_spec(),
                power_w: 20.0 + (i % 60) as f64,
            },
            1 => AnalysisRequest::FvSteady {
                spec: plate_spec(),
                scale: 0.5 + 0.01 * (i % 60) as f64,
            },
            2 => AnalysisRequest::BoardSteady {
                spec: board_spec(),
                scale: 0.5 + 0.01 * (i % 40) as f64,
            },
            3 => AnalysisRequest::SebCapability {
                spec: seb_spec(),
                dt_limit_k: 20.0 + (i % 25) as f64,
            },
            _ => AnalysisRequest::FemModal {
                spec: fem_spec(),
                n_modes: 3 + (i / 5) % 3,
            },
        })
        .collect()
}

/// Latency quantile over an unsorted sample, by nearest-rank on the
/// sorted order (q in [0, 1]).
fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One measured load run: the pool size, wall, throughput, the latency
/// distribution and the service counters at drain.
struct LoadRecord {
    workers: usize,
    requests: usize,
    wall: Duration,
    /// Sorted per-request latencies in milliseconds (admission-time
    /// cache hits contribute their submit-call duration).
    latencies_ms: Vec<f64>,
    stats: ServiceStats,
}

impl LoadRecord {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64()
    }
}

/// Drives the whole load through a fresh service at the given pool
/// size: submit everything (so the queue saturates and identical-model
/// requests stack up for the coalescer), then resolve every ticket.
fn run_load(load: &[AnalysisRequest], workers: usize) -> LoadRecord {
    let client = Client::start(
        ServeConfig::new()
            .workers(workers)
            .queue_capacity(load.len().max(1))
            .cache_capacity(512),
    );
    let start = Instant::now();
    let tickets: Vec<(Instant, _)> = load
        .iter()
        .map(|r| {
            let submitted = Instant::now();
            (submitted, client.submit(r.clone()))
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(load.len());
    for (i, (submitted, ticket)) in tickets.into_iter().enumerate() {
        // An admission-time cache hit resolves inside `submit`; its
        // latency is the submit call itself. Queued jobs report the
        // worker-measured submission-to-completion latency.
        let admitted = submitted.elapsed();
        let (result, timing) = ticket.wait_timed();
        if let Err(e) = result {
            eprintln!("serve load: request {i} failed: {e}");
            std::process::exit(1);
        }
        let latency = timing.map_or(admitted, |t| t.latency);
        latencies_ms.push(latency.as_secs_f64() * 1e3);
    }
    let wall = start.elapsed();
    let stats = client.service().stats();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    LoadRecord {
        workers,
        requests: load.len(),
        wall,
        latencies_ms,
        stats,
    }
}

/// Cold-vs-cached comparison on one service: a family of distinct
/// plate solves timed end to end, then the identical calls replayed —
/// the replay must be answered from the result cache at least 5×
/// faster.
fn bench_cache_speedup(n: usize) -> (f64, f64) {
    let client = Client::start(ServeConfig::new().workers(1));
    let requests: Vec<AnalysisRequest> = (0..n)
        .map(|i| AnalysisRequest::FvSteady {
            spec: plate_spec(),
            scale: 0.9 + 0.01 * i as f64,
        })
        .collect();
    let time_pass = |label: &str| -> f64 {
        let start = Instant::now();
        for r in &requests {
            if let Err(e) = client.call(r.clone()) {
                eprintln!("serve cache leg ({label}): {e}");
                std::process::exit(1);
            }
        }
        start.elapsed().as_secs_f64() * 1e3 / n as f64
    };
    let cold_ms = time_pass("cold");
    let hit_ms = time_pass("hit");
    let stats = client.service().stats();
    assert!(
        stats.cache_hits >= n as u64,
        "replay pass must be answered from the cache ({} hits of {n})",
        stats.cache_hits
    );
    (cold_ms, hit_ms)
}

/// Coalescing bit-identity: the same plate at several scales, solved
/// serially through the [`Workload`] interface and again through a
/// single-worker service where they stack behind an occupancy job and
/// are folded into one multi-RHS batch. The responses must be equal to
/// the last bit.
fn bench_coalesce_identity() -> (u64, u64) {
    let scales: Vec<f64> = (0..8).map(|i| 0.55 + 0.1 * i as f64).collect();
    let mut ws = Workspace::new();
    let serial: Vec<AnalysisResponse> = scales
        .iter()
        .map(|&scale| {
            FvAnalysis {
                spec: plate_spec(),
                scale,
            }
            .run(&mut ws)
            .expect("serial solve")
        })
        .collect();

    let service = Service::start(ServeConfig::new().workers(1).cache_capacity(0));
    let busy = service.submit(AnalysisRequest::FvSteady {
        spec: PlateSpec {
            nx: 48,
            ny: 48,
            ..plate_spec()
        },
        scale: 1.0,
    });
    let tickets: Vec<_> = scales
        .iter()
        .map(|&scale| {
            service.submit(AnalysisRequest::FvSteady {
                spec: plate_spec(),
                scale,
            })
        })
        .collect();
    busy.wait().expect("occupancy solve");
    let batched: Vec<AnalysisResponse> = tickets
        .into_iter()
        .map(|t| t.wait().expect("coalesced solve"))
        .collect();
    let stats = service.stats();
    assert!(
        stats.coalesced_batches >= 1 && stats.coalesced_jobs >= 2,
        "coalescing leg produced no multi-RHS batch: {stats:?}"
    );
    if batched != serial {
        eprintln!("COALESCE MISMATCH: batched multi-RHS responses differ from serial solves");
        std::process::exit(1);
    }
    (stats.coalesced_jobs, stats.coalesced_batches)
}

/// Socket-transport throughput: the first `n` load requests pipelined
/// over one TCP connection against a fresh two-worker daemon.
fn bench_socket(load: &[AnalysisRequest], n: usize) -> (usize, Duration) {
    let service = Arc::new(Service::start(
        ServeConfig::new().workers(2).queue_capacity(n),
    ));
    let mut daemon = serve(Arc::clone(&service), "127.0.0.1:0").expect("daemon start");
    let mut client = SocketClient::connect(daemon.addr()).expect("client connect");
    let batch: Vec<AnalysisRequest> = load.iter().take(n).cloned().collect();
    let n = batch.len();
    let start = Instant::now();
    let results = client.call_batch(batch).expect("socket batch");
    let wall = start.elapsed();
    for (i, r) in results.iter().enumerate() {
        if let Err(e) = r {
            eprintln!("serve socket leg: request {i} failed: {e}");
            std::process::exit(1);
        }
    }
    daemon.shutdown();
    service.shutdown();
    (n, wall)
}

fn emit_json(
    records: &[LoadRecord],
    cold_ms: f64,
    hit_ms: f64,
    coalesced: (u64, u64),
    socket: (usize, Duration),
    smoke: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"cargo bench -p aeropack-bench --bench serve\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"load\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workers\": {},\n", r.workers));
        out.push_str(&format!("      \"requests\": {},\n", r.requests));
        out.push_str(&format!(
            "      \"wall_seconds\": {:.6},\n",
            r.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "      \"throughput_rps\": {:.1},\n",
            r.throughput_rps()
        ));
        out.push_str(&format!(
            "      \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \
             \"max\": {:.3}}},\n",
            quantile_ms(&r.latencies_ms, 0.50),
            quantile_ms(&r.latencies_ms, 0.90),
            quantile_ms(&r.latencies_ms, 0.99),
            quantile_ms(&r.latencies_ms, 1.0),
        ));
        out.push_str(&format!("      \"cache_hits\": {},\n", r.stats.cache_hits));
        out.push_str(&format!(
            "      \"cache_misses\": {},\n",
            r.stats.cache_misses
        ));
        out.push_str(&format!(
            "      \"coalesced_jobs\": {},\n",
            r.stats.coalesced_jobs
        ));
        out.push_str(&format!(
            "      \"coalesced_batches\": {}\n",
            r.stats.coalesced_batches
        ));
        out.push_str(if i + 1 == records.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"cache\": {{\"cold_ms_mean\": {:.4}, \"hit_ms_mean\": {:.4}, \
         \"speedup\": {:.1}}},\n",
        cold_ms,
        hit_ms,
        cold_ms / hit_ms
    ));
    out.push_str(&format!(
        "  \"coalesce\": {{\"jobs\": {}, \"batches\": {}, \"bit_identical\": true}},\n",
        coalesced.0, coalesced.1
    ));
    out.push_str(&format!(
        "  \"socket\": {{\"requests\": {}, \"wall_seconds\": {:.6}, \
         \"throughput_rps\": {:.1}}}\n",
        socket.0,
        socket.1.as_secs_f64(),
        socket.0 as f64 / socket.1.as_secs_f64()
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_requests = if smoke { 120 } else { 1200 };
    let pool_sizes: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };

    aeropack_obs::init_from_env();
    aeropack_obs::set_enabled(true);

    println!(
        "serve benches ({} mode, {n_requests}-request mixed load)",
        if smoke { "smoke" } else { "full" }
    );
    let load = mixed_load(n_requests);

    let records: Vec<LoadRecord> = pool_sizes.iter().map(|&w| run_load(&load, w)).collect();
    for r in &records {
        println!(
            "\nload — workers={} wall {:>12}  {:7.1} req/s",
            r.workers,
            fmt_duration(r.wall),
            r.throughput_rps()
        );
        println!(
            "  latency p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            quantile_ms(&r.latencies_ms, 0.50),
            quantile_ms(&r.latencies_ms, 0.90),
            quantile_ms(&r.latencies_ms, 0.99),
            quantile_ms(&r.latencies_ms, 1.0),
        );
        println!(
            "  cache {} hits / {} misses, {} jobs coalesced into {} batches",
            r.stats.cache_hits,
            r.stats.cache_misses,
            r.stats.coalesced_jobs,
            r.stats.coalesced_batches
        );
        assert!(
            r.stats.cache_hits > 0,
            "mixed load with repeats must produce cache hits at workers={}",
            r.workers
        );
    }

    let (cold_ms, hit_ms) = bench_cache_speedup(if smoke { 10 } else { 40 });
    let speedup = cold_ms / hit_ms;
    println!(
        "\ncache — cold {cold_ms:.3} ms/req, cached replay {hit_ms:.4} ms/req ({speedup:.0}x)"
    );
    if speedup < 5.0 {
        eprintln!("CACHE GATE: cached replay only {speedup:.1}x faster than cold (need >= 5x)");
        std::process::exit(1);
    }

    let coalesced = bench_coalesce_identity();
    println!(
        "coalesce — {} jobs in {} multi-RHS batches, bit-identical to serial solves",
        coalesced.0, coalesced.1
    );

    let socket = bench_socket(&load, if smoke { 60 } else { 400 });
    println!(
        "socket — {} pipelined requests in {:>12}  {:7.1} req/s",
        socket.0,
        fmt_duration(socket.1),
        socket.0 as f64 / socket.1.as_secs_f64()
    );

    let json = emit_json(&records, cold_ms, hit_ms, coalesced, socket, smoke);
    let report = aeropack_obs::report_json();
    let summary = aeropack_obs::validate_report(&report).expect("run report must validate");
    if smoke {
        println!("\n{json}");
        println!("obs run report: {summary}");
    } else {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("BENCH_serve.json");
        std::fs::write(&path, &json).expect("write BENCH_serve.json");
        println!("\nwrote {}", path.display());
    }
    for prefix in ["serve.", "serve.cache.", "serve.coalesce."] {
        assert!(
            summary.counter_prefix_sum(prefix) > 0,
            "run report must carry `{prefix}*` counters"
        );
    }
    // Honour AEROPACK_OBS_REPORT in either mode, so the CI smoke gate
    // can obs_check the emitted counters without a full bench run.
    if let Some(path) = aeropack_obs::write_env_report().expect("write env-report") {
        println!("wrote {} (AEROPACK_OBS_REPORT)", path.display());
    }
    println!("serve bench: OK");
}
