//! Benches of the numerical solvers behind the experiments: the
//! finite-volume steady solve (including the threaded-SpMV scaling
//! check), the modal extraction, the resistive network, and the
//! two-phase device closures. These double as a performance regression
//! suite for the substrates.
//!
//! Run with `cargo bench -p aeropack-bench --bench solvers`.

use aeropack_bench::{report, time_mean};
use aeropack_fem::{modal, PlateMesh, PlateProperties};
use aeropack_materials::{Material, WorkingFluid};
use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel, Network};
use aeropack_twophase::{HeatPipe, LoopHeatPipe};
use aeropack_units::{Celsius, HeatTransferCoeff, Length, Power, ThermalResistance};

fn board_model(n: usize) -> FvModel {
    let grid = FvGrid::new((0.16, 0.10, 0.0016), (n, n * 5 / 8, 1)).expect("grid");
    let mut model = FvModel::new(grid, &Material::fr4());
    model
        .add_power_box(Power::new(30.0), (n / 3, n / 4, 0), (n / 2, n / 2, 1))
        .expect("source");
    model.set_face_bc(
        Face::ZMax,
        FaceBc::Convection {
            h: HeatTransferCoeff::new(50.0),
            ambient: Celsius::new(40.0),
        },
    );
    model
}

fn bench_fv_steady() {
    for n in [16usize, 32, 48] {
        let model = board_model(n);
        let mean = time_mean(1, 5, || model.solve_steady().expect("solve"));
        report(&format!("fv_steady/{n}"), mean);
    }
}

/// The acceptance scenario: a 48³ steady conduction brick solved with
/// one thread and with four. On a multicore host the threaded SpMV and
/// assembly give ≥2× wall-clock; both timings are printed so the
/// scaling is visible wherever the bench runs.
fn bench_fv_threads() {
    let build = |threads: usize| {
        let grid = FvGrid::new((0.096, 0.096, 0.096), (48, 48, 48)).expect("grid");
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(200.0), (16, 16, 16), (32, 32, 32))
            .expect("source");
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(30.0)));
        model.set_face_bc(Face::XMax, FaceBc::FixedTemperature(Celsius::new(30.0)));
        model.set_solver_config(model.solver_config().clone().threads(threads));
        model
    };
    let m1 = build(1);
    let m4 = build(4);
    let t1 = time_mean(1, 3, || m1.solve_steady().expect("solve"));
    let t4 = time_mean(1, 3, || m4.solve_steady().expect("solve"));
    report("fv_steady_48cubed/threads=1", t1);
    report("fv_steady_48cubed/threads=4", t4);
    println!(
        "{:<44} {:>11.2}x",
        "fv_steady_48cubed speedup (t1/t4)",
        t1.as_secs_f64() / t4.as_secs_f64()
    );
    if let Some(stats) = m4.last_solve_stats() {
        println!("  {stats}");
    }
}

fn bench_modal() {
    for n in [4usize, 6, 8] {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .expect("props");
        let mut mesh = PlateMesh::rectangular(0.3, 0.3, n, n, &props).expect("mesh");
        mesh.simply_support_edges().expect("bc");
        let mean = time_mean(1, 5, || modal(&mesh.model, 4).expect("modal"));
        report(&format!("modal_extraction/{n}"), mean);
    }
}

fn bench_network() {
    for n in [10usize, 50, 150] {
        // A ladder of n floating nodes to one ambient.
        let mut net = Network::new();
        let amb = net.add_fixed("ambient", Celsius::new(25.0));
        let mut prev = amb;
        for i in 0..n {
            let node = net.add_floating(format!("n{i}"));
            net.add_heat(node, Power::new(1.0)).expect("heat");
            net.connect(node, prev, ThermalResistance::new(0.3))
                .expect("edge");
            prev = node;
        }
        let mean = time_mean(2, 10, || net.solve().expect("solve"));
        report(&format!("network_solve/{n}"), mean);
    }
}

fn bench_two_phase() {
    let pipe = HeatPipe::copper_water_6mm(
        Length::from_millimeters(80.0),
        Length::from_millimeters(150.0),
        Length::from_millimeters(80.0),
    )
    .expect("pipe");
    report(
        "two_phase/heat_pipe_limits",
        time_mean(10, 100, || {
            pipe.limits(Celsius::new(60.0), 0.2).expect("limits")
        }),
    );
    let lhp = LoopHeatPipe::ammonia_seb(Length::new(0.8)).expect("lhp");
    report(
        "two_phase/lhp_operating_point",
        time_mean(10, 100, || {
            lhp.operating_point(Power::new(29.0), Celsius::new(35.0), 0.2)
                .expect("op")
        }),
    );
    let water = WorkingFluid::water();
    report(
        "two_phase/fluid_saturation",
        time_mean(10, 100, || {
            water.saturation(Celsius::new(80.0)).expect("sat")
        }),
    );
}

fn main() {
    println!(
        "{:<44} {:>12}",
        "solver benches (mean per iteration)", "time"
    );
    bench_fv_steady();
    bench_fv_threads();
    bench_modal();
    bench_network();
    bench_two_phase();
}
