//! Criterion benches of the numerical solvers behind the experiments:
//! the finite-volume steady solve, the modal extraction, the resistive
//! network, and the two-phase device closures. These double as a
//! performance regression suite for the substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aeropack_fem::{modal, PlateMesh, PlateProperties};
use aeropack_materials::{Material, WorkingFluid};
use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel, Network};
use aeropack_twophase::{HeatPipe, LoopHeatPipe};
use aeropack_units::{Celsius, HeatTransferCoeff, Length, Power, ThermalResistance};

fn bench_fv_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("fv_steady");
    group.sample_size(10);
    for n in [16usize, 32, 48] {
        let grid = FvGrid::new((0.16, 0.10, 0.0016), (n, n * 5 / 8, 1)).expect("grid");
        let mut model = FvModel::new(grid, &Material::fr4());
        model
            .add_power_box(Power::new(30.0), (n / 3, n / 4, 0), (n / 2, n / 2, 1))
            .expect("source");
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(50.0),
                ambient: Celsius::new(40.0),
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| m.solve_steady().expect("solve"));
        });
    }
    group.finish();
}

fn bench_modal(c: &mut Criterion) {
    let mut group = c.benchmark_group("modal_extraction");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let props = PlateProperties::from_material(
            &Material::aluminum_6061(),
            Length::from_millimeters(2.0),
        )
        .expect("props");
        let mut mesh = PlateMesh::rectangular(0.3, 0.3, n, n, &props).expect("mesh");
        mesh.simply_support_edges().expect("bc");
        group.bench_with_input(BenchmarkId::from_parameter(n), &mesh, |b, m| {
            b.iter(|| modal(&m.model, 4).expect("modal"));
        });
    }
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_solve");
    for n in [10usize, 50, 150] {
        // A ladder of n floating nodes to one ambient.
        let mut net = Network::new();
        let amb = net.add_fixed("ambient", Celsius::new(25.0));
        let mut prev = amb;
        for i in 0..n {
            let node = net.add_floating(format!("n{i}"));
            net.add_heat(node, Power::new(1.0)).expect("heat");
            net.connect(node, prev, ThermalResistance::new(0.3))
                .expect("edge");
            prev = node;
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, m| {
            b.iter(|| m.solve().expect("solve"));
        });
    }
    group.finish();
}

fn bench_two_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_phase");
    let pipe = HeatPipe::copper_water_6mm(
        Length::from_millimeters(80.0),
        Length::from_millimeters(150.0),
        Length::from_millimeters(80.0),
    )
    .expect("pipe");
    group.bench_function("heat_pipe_limits", |b| {
        b.iter(|| pipe.limits(Celsius::new(60.0), 0.2).expect("limits"));
    });
    let lhp = LoopHeatPipe::ammonia_seb(Length::new(0.8)).expect("lhp");
    group.bench_function("lhp_operating_point", |b| {
        b.iter(|| {
            lhp.operating_point(Power::new(29.0), Celsius::new(35.0), 0.2)
                .expect("op")
        });
    });
    group.bench_function("fluid_saturation", |b| {
        let water = WorkingFluid::water();
        b.iter(|| water.saturation(Celsius::new(80.0)).expect("sat"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fv_steady,
    bench_modal,
    bench_network,
    bench_two_phase
);
criterion_main!(benches);
