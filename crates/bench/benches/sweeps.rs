//! Sweep-engine benchmark: the Fig 10 power grid, a harmonic frequency
//! sweep, a random-vibration PSD integral, a finite-volume
//! power-derating sweep and a climb–cruise–descent mission sweep, each
//! run serially and in parallel at 1/2/4 threads, plus the 90-minute
//! orbit-cycle mission gates (≥ 10⁴ adaptive steps with factor reuse;
//! adaptive ≥ 3× fewer steps than fixed dt at equal final-field
//! error) and the NSGA-II optimizer gate (≥ 10⁶ scenario evaluations
//! with a bit-identical Pareto front at 1/2/8 threads).
//! Emits `BENCH_sweeps.json` at the repository root with
//! walls, speedups, rolled-up solver statistics and the pattern-cache
//! hit counts, plus the observability run report
//! (`BENCH_obs_report.json`), and **exits non-zero if any sweep is not
//! bit-identical across thread counts**.
//!
//! Rows timed with more threads than the machine has are tagged
//! `"oversubscribed": true` and excluded from the determinism/speedup
//! gate — their "speedups" measure scheduler contention, not the
//! engine.
//!
//! Run with `cargo bench -p aeropack-bench --bench sweeps`; pass
//! `-- --smoke` for the tiny offline CI gate (small grids, threads
//! 1 and 2, no JSON file written).

use std::time::{Duration, Instant};

use aeropack_bench::{fmt_duration, time_mean};
use aeropack_core::{representative_board, CoolingMode, Level2Model, SeatStructure, SebModel};
use aeropack_envqual::Do160Curve;
use aeropack_fem::{
    modal, random_response_with_stats, Dof, HarmonicResponse, PlateMesh, PlateProperties,
};
use aeropack_materials::Material;
use aeropack_mission::{
    sweep_missions, AdaptiveConfig, MissionConfig, MissionDriver, MissionProfile, Orbit,
    RadiatingFace, Scheme, StepControl,
};
use aeropack_optimize::{DesignSpace, EvalContext, Optimizer, OptimizerConfig};
use aeropack_solver::{Precond, SolverConfig, SpectralStats};
use aeropack_sweep::{ScenarioStats, Sweep, SweepStats};
use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel, FV_SWEEP_GRAIN};
use aeropack_units::{Celsius, Frequency, HeatTransferCoeff, Length, Power};

/// Environment variable through which `scripts/bench.sh` hands the real
/// hardware thread count (from `nproc`) to the bench, so the
/// oversubscription tagging reflects the machine even where
/// `available_parallelism` sees a cgroup limit instead of the CPUs.
const HW_THREADS_ENV: &str = "AEROPACK_HW_THREADS";

fn hardware_threads() -> usize {
    std::env::var(HW_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// One benchmarked sweep: timings per thread count, the stats roll-up
/// from the widest run, and the cross-thread-count determinism verdict.
struct SweepRecord {
    name: &'static str,
    scenarios: usize,
    /// `(threads, mean wall)` pairs, serial first.
    walls: Vec<(usize, Duration)>,
    stats: SweepStats,
    deterministic: bool,
}

impl SweepRecord {
    fn speedup(&self, threads: usize) -> Option<f64> {
        let serial = self.walls.iter().find(|(t, _)| *t == 1)?.1;
        let at = self.walls.iter().find(|(t, _)| *t == threads)?.1;
        Some(serial.as_secs_f64() / at.as_secs_f64())
    }

    /// Whether any timed configuration asked for more threads than the
    /// machine can actually run in parallel.
    fn oversubscribed(&self, hardware_threads: usize) -> bool {
        self.walls.iter().any(|(t, _)| *t > hardware_threads)
    }
}

/// Folds a deterministic error message into the fingerprint stream so
/// failed scenarios participate in the bit-identity check too.
fn fold_str(bits: &mut Vec<u64>, s: &str) {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    bits.push(h);
}

/// Runs `fingerprint` at every thread count and reports whether all
/// runs produced bit-identical streams.
fn check_identical(thread_counts: &[usize], fingerprint: impl Fn(usize) -> Vec<u64>) -> bool {
    let reference = fingerprint(1);
    thread_counts.iter().all(|&t| fingerprint(t) == reference)
}

fn seb_models(smoke: bool) -> Vec<SebModel> {
    let mut configs = vec![
        SebModel::cosee(SeatStructure::aluminum(), false, 0.0).expect("model"),
        SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model"),
    ];
    if !smoke {
        configs.push(
            SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).expect("model"),
        );
    }
    configs
}

/// The Level-2 board refinement behind the Fig 10 grid: a
/// conduction-cooled representative board whose power is rescaled per
/// grid point. Primed once so every sweep solve hits the symbolic
/// pattern cache — this is the FV hot path the seb_fig10 row used to
/// skip entirely (its lumped SEB solves are bisection-only, so the row
/// reported `cache_hits: 0`).
fn fig10_board(ambient: Celsius) -> Level2Model {
    let pcb = representative_board("fig10 board", Power::new(60.0)).expect("board");
    let mut board = Level2Model::new(
        &pcb,
        &CoolingMode::ConductionCooled {
            rail_temperature: Celsius::new(40.0),
        },
        ambient,
        Length::from_millimeters(5.0),
    )
    .expect("level-2 model");
    board.set_solver_config(SolverConfig::new().preconditioner(Precond::Ic0));
    board.solve().expect("prime solve");
    board
}

fn bench_seb_fig10(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let ambient = Celsius::new(25.0);
    let configs = seb_models(smoke);
    let n_powers = if smoke { 4 } else { 11 };
    let powers: Vec<Power> = (1..=n_powers)
        .map(|i| Power::new(10.0 * i as f64))
        .collect();
    let board = fig10_board(ambient);
    let board_scales: Vec<f64> = powers.iter().map(|p| p.value() / 60.0).collect();

    // One grid evaluation = the lumped SEB sweep plus the Level-2 board
    // refinement sweep. The board sweep gives each worker a clone of the
    // primed model (shared pattern, private workspace) and reports the
    // per-scenario pattern-cache delta, so the roll-up finally counts
    // real FV cache hits.
    let run = |threads: usize| {
        let (rows, mut stats) =
            SebModel::power_sweep(&configs, &powers, ambient, &Sweep::new(threads));
        let (board_temps, board_stats) = Sweep::new(threads)
            .grain_hint(FV_SWEEP_GRAIN)
            .map_stats_with(
                &board_scales,
                || (board.clone(), 0usize, 0usize),
                |(model, seen_hits, seen_misses), &scale| {
                    let field = model
                        .fv_model()
                        .solve_steady_scaled(scale)
                        .expect("board solve");
                    let solver = model.last_solve_stats().expect("board stats");
                    let (hits, misses) = model.pattern_cache_stats();
                    let s = ScenarioStats::from_solver(&solver)
                        .with_cache(hits - *seen_hits, misses - *seen_misses);
                    *seen_hits = hits;
                    *seen_misses = misses;
                    (field.summary().expect("non-degenerate board field").max, s)
                },
            );
        stats.scenarios += board_stats.scenarios;
        stats.total_iterations += board_stats.total_iterations;
        stats.total_solve_time += board_stats.total_solve_time;
        stats.cache_hits += board_stats.cache_hits;
        stats.cache_misses += board_stats.cache_misses;
        stats.converged += board_stats.converged;
        (rows, board_temps, stats)
    };
    let fingerprint = |threads: usize| {
        let (rows, board_temps, _) = run(threads);
        let mut bits = Vec::new();
        for row in &rows {
            for point in row {
                match point {
                    Ok(state) => bits.push(state.dt_pcb_air(ambient).kelvin().to_bits()),
                    Err(e) => fold_str(&mut bits, &e.to_string()),
                }
            }
        }
        for t in &board_temps {
            bits.push(t.value().to_bits());
        }
        bits
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 3 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let stats = run(*thread_counts.last().expect("thread counts")).2;

    SweepRecord {
        name: "seb_fig10",
        scenarios: configs.len() * powers.len() + board_scales.len(),
        walls,
        stats,
        deterministic,
    }
}

fn bench_harmonic(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(2.4))
        .expect("props")
        .with_smeared_mass(4.0);
    let mut mesh = PlateMesh::rectangular(0.14, 0.09, 6, 4, &props).expect("mesh");
    mesh.pin_all_edges().expect("bc");
    let modes = modal(&mesh.model, 4).expect("modal");
    let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("resp");
    let node = mesh.center_node();
    let points = if smoke { 40 } else { 600 };

    // `sweep_with_stats` records a real per-point `ScenarioStats` —
    // modal-sum work units and measured wall time — so the bench row no
    // longer reports the silent zeros of the old `Sweep::map` path.
    let run = |threads: usize| {
        resp.sweep_with_stats(
            &Sweep::new(threads),
            node,
            Dof::W,
            Frequency::new(20.0),
            Frequency::new(2000.0),
            points,
        )
        .expect("sweep")
    };
    let fingerprint = |threads: usize| {
        run(threads)
            .0
            .iter()
            .flat_map(|(f, a)| [f.value().to_bits(), a.to_bits()])
            .collect::<Vec<u64>>()
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 5 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let stats = run(*thread_counts.last().expect("thread counts")).1;

    SweepRecord {
        name: "harmonic_sweep",
        scenarios: points,
        walls,
        stats,
        deterministic,
    }
}

fn bench_random_psd(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(2.4))
        .expect("props")
        .with_smeared_mass(4.0);
    let (nx, ny) = if smoke { (4, 3) } else { (6, 4) };
    let mut mesh = PlateMesh::rectangular(0.14, 0.09, nx, ny, &props).expect("mesh");
    mesh.pin_all_edges().expect("bc");
    let modes = modal(&mesh.model, 4).expect("modal");
    let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("resp");
    let node = mesh.center_node();
    let psd = Do160Curve::C1.psd();

    let run = |threads: usize| {
        random_response_with_stats(&Sweep::new(threads), &resp, node, Dof::W, &psd)
            .expect("random response")
    };
    let fingerprint = |threads: usize| {
        let (r, _) = run(threads);
        vec![
            r.accel_grms.to_bits(),
            r.disp_rms.to_bits(),
            r.characteristic_frequency.value().to_bits(),
        ]
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 5 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let stats = run(*thread_counts.last().expect("thread counts")).1;

    SweepRecord {
        name: "random_psd",
        scenarios: stats.scenarios,
        walls,
        stats,
        deterministic,
    }
}

fn board_model(n: usize) -> FvModel {
    let grid = FvGrid::new((0.16, 0.10, 0.0016), (n, n * 5 / 8, 1)).expect("grid");
    let mut model = FvModel::new(grid, &Material::fr4());
    model
        .add_power_box(Power::new(30.0), (n / 3, n / 4, 0), (n / 2, n / 2, 1))
        .expect("source");
    model.set_face_bc(
        Face::ZMax,
        FaceBc::Convection {
            h: HeatTransferCoeff::new(50.0),
            ambient: Celsius::new(40.0),
        },
    );
    model
}

fn bench_fv_power_scale(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let mut base = board_model(if smoke { 8 } else { 32 });
    base.set_solver_config(SolverConfig::new().preconditioner(Precond::Ic0));
    // Prime the symbolic pattern once; every sweep clone then shares it
    // and reassembles values only.
    base.solve_steady().expect("prime solve");
    let n_scales = if smoke { 4 } else { 12 };
    let scales: Vec<f64> = (0..n_scales).map(|i| 0.5 + 0.1 * i as f64).collect();

    // One primed clone per *worker*, not per scenario: a worker's model
    // keeps its warm `PcgWorkspace` — with the cached RCM permutation
    // and IC(0) factor inside — across every scale in its block, which
    // is the sweep shape `solve_steady_scaled` exists for. The
    // `FV_SWEEP_GRAIN` hint routes short grids (this one: 12 points)
    // onto the serial fast path, where the old per-scenario-clone code
    // showed 0.90× "speedups" — thread spawn plus per-worker warm-up
    // costing more than the solves.
    let run = |threads: usize| {
        Sweep::new(threads)
            .grain_hint(FV_SWEEP_GRAIN)
            .map_stats_with(
                &scales,
                || (base.clone(), 0usize, 0usize),
                |(model, seen_hits, seen_misses), &scale| {
                    let field = model.solve_steady_scaled(scale).expect("solve");
                    let solver = model.last_solve_stats().expect("stats");
                    let (hits, misses) = model.pattern_cache_stats();
                    let s = ScenarioStats::from_solver(&solver)
                        .with_cache(hits - *seen_hits, misses - *seen_misses);
                    *seen_hits = hits;
                    *seen_misses = misses;
                    (field.summary().expect("non-degenerate field"), s)
                },
            )
    };
    let fingerprint = |threads: usize| {
        run(threads)
            .0
            .iter()
            .flat_map(|s| {
                [
                    s.min.value().to_bits(),
                    s.max.value().to_bits(),
                    s.mean.value().to_bits(),
                ]
            })
            .collect::<Vec<u64>>()
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 3 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let stats = run(*thread_counts.last().expect("thread counts")).1;

    SweepRecord {
        name: "fv_power_scale",
        scenarios: scales.len(),
        walls,
        stats,
        deterministic,
    }
}

/// A dissipating equipment plate for mission benches.
fn mission_model(nx: usize, ny: usize, nz: usize) -> FvModel {
    let grid = FvGrid::new((0.16, 0.10, 0.012), (nx, ny, nz)).expect("grid");
    let mut model = FvModel::new(grid, &Material::aluminum_6061());
    model
        .add_power_box(
            Power::new(25.0),
            (nx / 4, ny / 4, 0),
            (3 * nx / 4, 3 * ny / 4, (nz / 2).max(1)),
        )
        .expect("source");
    model
}

/// The climb–cruise–descent mission sweep: one SEB-style plate flown
/// through a ladder of cruise altitudes in parallel, timed per thread
/// count and gated on bit-identical trajectories (adaptive step
/// sequence + final field, folded into each summary's
/// `trajectory_hash`).
fn bench_mission(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let model = mission_model(if smoke { 8 } else { 16 }, if smoke { 5 } else { 10 }, 2);
    let (climb_s, cruise_s, descent_s) = if smoke {
        (60.0, 240.0, 60.0)
    } else {
        (600.0, 3_000.0, 600.0)
    };
    let n_altitudes = if smoke { 4 } else { 8 };
    let profiles: Vec<MissionProfile> = (0..n_altitudes)
        .map(|i| {
            let alt = 3_000.0 + 1_250.0 * i as f64;
            MissionProfile::climb_cruise_descent(
                alt,
                (climb_s, cruise_s, descent_s),
                HeatTransferCoeff::new(40.0),
            )
            .expect("profile")
        })
        .collect();
    let config = MissionConfig::new(Scheme::Trapezoidal)
        .control(StepControl::Adaptive(AdaptiveConfig {
            dt_max: if smoke { 10.0 } else { 30.0 },
            ..AdaptiveConfig::default()
        }))
        .convective_face(Face::ZMax);
    let initial = Celsius::new(15.0);

    let run = |threads: usize| {
        let runner = Sweep::new(threads).with_grain(1);
        sweep_missions(&model, &profiles, &config, initial, &runner)
    };
    let fingerprint = |threads: usize| {
        let (rows, _) = run(threads);
        let mut bits = Vec::new();
        for row in &rows {
            match row {
                Ok(s) => {
                    bits.push(s.trajectory_hash);
                    bits.push(s.final_mean_c.to_bits());
                    bits.push(s.peak_c.to_bits());
                }
                Err(e) => fold_str(&mut bits, &e.to_string()),
            }
        }
        bits
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 3 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let (rows, stats) = run(*thread_counts.last().expect("thread counts"));
    for row in &rows {
        let summary = row.as_ref().expect("mission solves");
        assert!(
            summary.factor_reuses > 0,
            "mission solves must reuse preconditioner factors across steps"
        );
    }

    SweepRecord {
        name: "bench_mission",
        scenarios: profiles.len(),
        walls,
        stats,
        deterministic,
    }
}

/// The orbit-cycle mission report: scale (step count, factor reuse on
/// the 32³ grid in full mode) and the adaptive-vs-fixed step-count
/// ratio at matched final-field error.
struct MissionOrbitReport {
    cells: usize,
    accepted_steps: usize,
    factor_reuses: usize,
    matrix_reuses: usize,
    adaptive_steps: usize,
    adaptive_error_k: f64,
    fixed_dt_s: f64,
    fixed_steps: usize,
    fixed_error_k: f64,
}

fn run_orbit(
    model: &FvModel,
    profile: &MissionProfile,
    control: StepControl,
) -> (Vec<f64>, aeropack_mission::MissionStats) {
    let config = MissionConfig::new(Scheme::Trapezoidal)
        .control(control)
        .radiating_face(RadiatingFace {
            face: Face::ZMax,
            emissivity: 0.85,
            absorptivity: 0.3,
        })
        .max_steps(2_000_000);
    let mut driver = MissionDriver::new(model.clone(), profile.clone(), config, Celsius::new(20.0))
        .expect("orbit driver");
    driver.run_to_end().expect("orbit mission");
    let stats = *driver.stats();
    (driver.temperatures().to_vec(), stats)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// The 90-minute orbit-cycle gates behind the mission tentpole:
///
/// 1. **Adaptive efficiency** — on a small radiating plate, the
///    adaptive controller must reach the accuracy of the matching
///    fixed-dt run with ≥ 3× fewer accepted steps. The fixed dt is the
///    coarsest rung of a refinement ladder whose final-field error
///    (against a fine fixed-dt reference) does not exceed the adaptive
///    run's error.
/// 2. **Scale** (full mode) — the same orbit at 32³ must complete
///    ≥ 10⁴ adaptive steps with warm-solve factor reuse engaged.
fn bench_mission_orbit(smoke: bool) -> MissionOrbitReport {
    let orbit = Orbit::leo_90min();
    let profile = MissionProfile::orbit_cycle(&orbit, 1).expect("orbit profile");

    // --- Adaptive-vs-fixed at matched error (both modes, small grid).
    let study_model = mission_model(6, 5, 2);
    let adaptive = StepControl::Adaptive(AdaptiveConfig {
        dt_max: 120.0,
        ..AdaptiveConfig::default()
    });
    let (reference, _) = run_orbit(&study_model, &profile, StepControl::Fixed { dt: 1.0 });
    let (adaptive_field, adaptive_stats) = run_orbit(&study_model, &profile, adaptive);
    let adaptive_error = max_abs_diff(&adaptive_field, &reference);
    let mut fixed_pick = None;
    for dt in [
        96.0, 64.0, 48.0, 32.0, 24.0, 16.0, 12.0, 8.0, 6.0, 4.0, 3.0, 2.0,
    ] {
        let (field, stats) = run_orbit(&study_model, &profile, StepControl::Fixed { dt });
        let err = max_abs_diff(&field, &reference);
        if err <= adaptive_error {
            fixed_pick = Some((dt, stats.accepted, err));
            break;
        }
    }
    let (fixed_dt, fixed_steps, fixed_error) =
        fixed_pick.expect("some fixed dt must reach the adaptive error");
    assert!(
        fixed_steps >= 3 * adaptive_stats.accepted,
        "adaptive must take ≥ 3× fewer steps than fixed dt at equal error: \
         adaptive {} steps (err {adaptive_error:.3e} K) vs fixed dt={fixed_dt}s \
         {fixed_steps} steps (err {fixed_error:.3e} K)",
        adaptive_stats.accepted
    );

    // --- Scale leg: ≥ 10⁴ adaptive steps with factor reuse. ----------
    let (scale_model, scale_control) = if smoke {
        // Smoke keeps the shape (step floor via dt_max) on a tiny grid.
        (
            mission_model(5, 4, 2),
            StepControl::Adaptive(AdaptiveConfig {
                dt_max: orbit.period_s / 1.0e4,
                dt_init: orbit.period_s / 4.0e4,
                ..AdaptiveConfig::default()
            }),
        )
    } else {
        let grid = FvGrid::new((0.32, 0.32, 0.32), (32, 32, 32)).expect("grid");
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(120.0), (8, 8, 8), (24, 24, 24))
            .expect("source");
        (
            model,
            StepControl::Adaptive(AdaptiveConfig {
                dt_max: orbit.period_s / 1.2e4,
                dt_init: orbit.period_s / 4.8e4,
                ..AdaptiveConfig::default()
            }),
        )
    };
    let (_, scale_stats) = run_orbit(&scale_model, &profile, scale_control);
    assert!(
        scale_stats.accepted >= 10_000,
        "the orbit cycle must take ≥ 10⁴ adaptive steps, took {}",
        scale_stats.accepted
    );
    assert!(
        scale_stats.factor_reuses > 0,
        "long missions must reuse preconditioner factors across steps"
    );
    assert!(
        scale_stats.matrix_reuses > scale_stats.matrix_rebuilds,
        "the dt quantizer must hold the θ-system steady most steps: \
         {} reuses vs {} rebuilds",
        scale_stats.matrix_reuses,
        scale_stats.matrix_rebuilds
    );

    MissionOrbitReport {
        cells: scale_model.grid().cell_count(),
        accepted_steps: scale_stats.accepted,
        factor_reuses: scale_stats.factor_reuses,
        matrix_reuses: scale_stats.matrix_reuses,
        adaptive_steps: adaptive_stats.accepted,
        adaptive_error_k: adaptive_error,
        fixed_dt_s: fixed_dt,
        fixed_steps,
        fixed_error_k: fixed_error,
    }
}

/// The NSGA-II optimizer gate: the paper's packaging trade as a
/// million-evaluation search, bit-identical at 1/2/8 threads.
struct OptimizeReport {
    population: usize,
    generations: usize,
    evaluations: u64,
    front_len: usize,
    front_hash: u64,
    /// `(threads, wall)` — one full run per thread count; the wall and
    /// the determinism fingerprint come from the same run.
    walls: Vec<(usize, Duration)>,
    deterministic: bool,
}

/// Runs the full NSGA-II search at each thread count and gates:
///
/// 1. **Scale** (full mode) — ≥ 10⁶ scenario evaluations
///    (`population × (generations + 1)`).
/// 2. **Determinism** — the Pareto front (genomes and objectives, via
///    [`ParetoFront::fingerprint`](aeropack_optimize::ParetoFront))
///    must be bit-identical at 1, 2 and 8 threads. Unlike the wall
///    gates this holds on any host: the engine's order-preserving maps
///    and serial RNG stream owe nothing to the scheduler.
fn bench_optimize(smoke: bool) -> OptimizeReport {
    // 512 × (1953 + 1) = 1 000 448 evaluations ≥ 10⁶; the population is
    // kept moderate because the O(N²) domination scan, not the
    // closed-form evaluation, is the per-generation cost.
    let (population, generations) = if smoke { (32, 15) } else { (512, 1953) };
    let ctx = EvalContext::new(Celsius::new(25.0), Power::new(120.0), 22f64.to_radians());
    let config = OptimizerConfig {
        population,
        generations,
        seed: 0x0971_ca5e_0000_5eed,
        ..OptimizerConfig::default()
    };

    let thread_counts = [1usize, 2, 8];
    let mut walls = Vec::new();
    let mut fronts = Vec::new();
    let mut evaluations = 0u64;
    for &t in &thread_counts {
        let optimizer = Optimizer::new(DesignSpace::default(), config);
        let start = Instant::now();
        let result = optimizer.run(&ctx, &Sweep::new(t));
        walls.push((t, start.elapsed()));
        evaluations = result.evaluations;
        fronts.push((result.front.fingerprint(), result.front));
    }
    let deterministic = fronts
        .iter()
        .all(|(hash, front)| *hash == fronts[0].0 && *front == fronts[0].1);
    assert!(
        deterministic,
        "NSGA-II Pareto front must be bit-identical at 1/2/8 threads"
    );
    if !smoke {
        assert!(
            evaluations >= 1_000_000,
            "the optimize bench must perform ≥ 10⁶ scenario evaluations, did {evaluations}"
        );
    }

    let (front_hash, front) = &fronts[0];
    OptimizeReport {
        population,
        generations,
        evaluations,
        front_len: front.len(),
        front_hash: *front_hash,
        walls,
        deterministic,
    }
}

/// One preconditioner's performance on the large-grid steady solve.
struct PrecondRow {
    precond: &'static str,
    iterations: usize,
    /// Warm-solve wall: preconditioner caches already built, the
    /// repeated-solve shape that power sweeps and the serve coalescer
    /// actually run.
    wall: Duration,
    /// Preconditioner setup cost of the *cold* first solve (factor /
    /// power method / hierarchy build).
    cold_setup_seconds: f64,
    iterate_seconds: f64,
    factor_seconds: f64,
    fill_nnz: usize,
    forward_levels: usize,
    reordered: bool,
    spectral: Option<SpectralStats>,
    max_abs_diff_vs_jacobi: f64,
    /// What the config asked for vs what the solver actually ran —
    /// distinct when a preconditioner resolves to a substitute (MG
    /// without grid dims falls back to Chebyshev, `AdditiveSchwarz(0)`
    /// resolves its auto tile count).
    requested_precond: String,
    effective_precond: String,
}

/// The full fv_large report: grid size, the oversubscription verdict
/// (single-hardware-thread hosts cannot time the wall gate
/// meaningfully) and one row per preconditioner.
struct FvLargeReport {
    cells: usize,
    oversubscribed: bool,
    rows: Vec<PrecondRow>,
    /// Multigrid PCG iterations on the half-resolution (32³) grid in
    /// full mode — the mesh-independence reference.
    mg_iterations_half: Option<usize>,
}

fn fv_large_model(n: usize) -> FvModel {
    let grid = FvGrid::new((0.1, 0.1, 0.1), (n, n, n)).expect("grid");
    let mut model = FvModel::new(grid, &Material::aluminum_6061());
    model
        .add_power_box(
            Power::new(80.0),
            (n / 4, n / 4, n / 4),
            (n / 2, n / 2, n / 2),
        )
        .expect("source");
    model.set_face_bc(
        Face::ZMax,
        FaceBc::Convection {
            h: HeatTransferCoeff::new(25.0),
            ambient: Celsius::new(30.0),
        },
    );
    model
}

/// The large-grid preconditioner comparison behind the tentpole claim,
/// gated on **wall time**: on the 64³ FV solve the best barrier-free
/// preconditioner (multigrid or Chebyshev) must beat the Jacobi warm
/// wall by ≥ 1.3× in full mode. The wall gate only applies on hosts
/// with ≥ 2 hardware threads (elsewhere the OS scheduler owns the
/// clock); field parity vs Jacobi (≤ 1e-4 K) and the iteration gates —
/// IC(0) halves Jacobi's count, multigrid converges in ≤ 40 iterations
/// at 64³ and within 1.5× of its 32³ count (mesh independence) — are
/// enforced always.
fn bench_fv_large(smoke: bool, hardware_threads: usize) -> FvLargeReport {
    let n = if smoke { 20 } else { 64 };
    let oversubscribed = hardware_threads < 2;
    let mut model = fv_large_model(n);

    let mut rows: Vec<PrecondRow> = Vec::new();
    let mut jacobi_field: Vec<f64> = Vec::new();
    for (name, precond) in [
        ("jacobi", Precond::Jacobi),
        ("ssor", Precond::Ssor),
        ("ic0", Precond::Ic0),
        ("chebyshev", Precond::Chebyshev(4)),
        ("mg", Precond::Multigrid),
    ] {
        model.set_solver_config(
            SolverConfig::new()
                .preconditioner(precond)
                .threads(1)
                .tolerance(1e-10),
        );
        // Cold solve: pays the one-off preconditioner setup (factor,
        // power method, hierarchy build) and fills the workspace caches.
        model.solve_steady().expect("large-grid cold solve");
        let cold = model.last_solve_stats().expect("cold stats");
        // Warm solve: the repeated-solve shape every sweep runs.
        let start = Instant::now();
        let field = model.solve_steady().expect("large-grid warm solve");
        let wall = start.elapsed();
        let stats = model.last_solve_stats().expect("stats");
        assert!(stats.converged(), "{name} must converge on the {n}³ grid");
        let max_abs_diff_vs_jacobi = if jacobi_field.is_empty() {
            jacobi_field = field.temperatures().to_vec();
            0.0
        } else {
            field
                .temperatures()
                .iter()
                .zip(&jacobi_field)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let (factor_seconds, fill_nnz, forward_levels, reordered) = cold
            .factorization
            .map(|f| {
                (
                    f.factor_time.as_secs_f64(),
                    f.fill_nnz,
                    f.forward_levels,
                    f.reordered,
                )
            })
            .unwrap_or((0.0, 0, 0, false));
        if let Some(spec) = stats.spectral {
            assert!(spec.reused, "{name}: warm solve must reuse spectral setup");
        }
        rows.push(PrecondRow {
            precond: name,
            iterations: stats.iterations,
            wall,
            cold_setup_seconds: cold.setup_seconds,
            iterate_seconds: stats.iterate_seconds,
            factor_seconds,
            fill_nnz,
            forward_levels,
            reordered,
            spectral: cold.spectral,
            max_abs_diff_vs_jacobi,
            requested_precond: stats.requested_preconditioner.to_string(),
            effective_precond: stats.preconditioner.to_string(),
        });
    }

    let jacobi = &rows[0];
    let ic0 = rows.iter().find(|r| r.precond == "ic0").expect("ic0 row");
    assert!(
        ic0.iterations * 2 <= jacobi.iterations,
        "IC(0)+RCM must at least halve PCG iterations vs Jacobi on the {n}³ grid: \
         {} vs {}",
        ic0.iterations,
        jacobi.iterations
    );
    assert!(ic0.reordered, "Reorder::Auto must engage RCM under IC(0)");
    for r in &rows {
        assert!(
            r.max_abs_diff_vs_jacobi <= 1e-4,
            "{}: field diverged from Jacobi by {:.3e} K",
            r.precond,
            r.max_abs_diff_vs_jacobi
        );
    }
    let mg = rows.iter().find(|r| r.precond == "mg").expect("mg row");
    let mg_spec = mg.spectral.expect("mg row carries spectral stats");
    assert!(
        mg_spec.levels >= 2,
        "multigrid must actually coarsen the {n}³ grid"
    );

    let mut mg_iterations_half = None;
    if !smoke {
        assert!(
            mg.iterations <= 40,
            "multigrid must converge in ≤ 40 iterations at 64³, took {}",
            mg.iterations
        );
        // Mesh independence: the 64³ count must stay within 1.5× of the
        // 32³ count, the signature of an O(n) preconditioner.
        let mut half = fv_large_model(32);
        half.set_solver_config(
            SolverConfig::new()
                .preconditioner(Precond::Multigrid)
                .threads(1)
                .tolerance(1e-10),
        );
        half.solve_steady().expect("32³ multigrid solve");
        let half_iters = half.last_solve_stats().expect("32³ stats").iterations;
        assert!(
            (mg.iterations as f64) <= 1.5 * half_iters as f64,
            "multigrid iterations must be mesh-independent: {} at 64³ vs {} at 32³",
            mg.iterations,
            half_iters
        );
        mg_iterations_half = Some(half_iters);
        // The wall gate proper — only where the clock means something.
        if !oversubscribed {
            let best = rows
                .iter()
                .filter(|r| matches!(r.precond, "mg" | "chebyshev"))
                .map(|r| r.wall.as_secs_f64())
                .fold(f64::INFINITY, f64::min);
            assert!(
                best * 1.3 <= jacobi.wall.as_secs_f64(),
                "best barrier-free preconditioner ({best:.3}s) must beat the Jacobi \
                 wall ({:.3}s) by ≥ 1.3× at 1 thread",
                jacobi.wall.as_secs_f64()
            );
        }
    }
    FvLargeReport {
        cells: n * n * n,
        oversubscribed,
        rows,
        mg_iterations_half,
    }
}

/// One subdomain count's performance on the domain-decomposed solve.
struct DdRow {
    /// Subdomain (tile) count of the additive-Schwarz ladder.
    partition: usize,
    iterations: usize,
    /// Warm-solve wall, tile factors already cached.
    wall: Duration,
    halo_cells: usize,
    exchange_seconds: f64,
    requested_precond: String,
    effective_precond: String,
}

/// The domain-decomposition report: the level-scheduled IC(0) baseline
/// plus one row per subdomain count.
struct FvDdReport {
    cells: usize,
    oversubscribed: bool,
    ic0_iterations: usize,
    ic0_wall: Duration,
    rows: Vec<DdRow>,
}

/// The domain-decomposition ladder behind the sharding tentpole: the
/// 64³ steady solve under `Precond::AdditiveSchwarz(k)` at 1/2/4/8
/// subdomains, against the level-scheduled IC(0)+RCM warm wall. Gates:
/// PCG iterations at every subdomain count stay within 1.6× of the
/// single-domain count (halo truncation must degrade the
/// preconditioner gracefully), the fields agree with IC(0) to 1e-4 K,
/// and — in full mode on a host with ≥ 2 hardware threads — the best
/// multi-subdomain warm wall does not lose to IC(0) (≤ 1.0×): the
/// barrier-free tiles buy back what the truncated factors cost.
fn bench_fv_dd(smoke: bool, hardware_threads: usize) -> FvDdReport {
    let n = if smoke { 20 } else { 64 };
    let oversubscribed = hardware_threads < 2;
    let mut model = fv_large_model(n);

    // Baseline: the level-scheduled IC(0) path (Reorder::Auto engages
    // RCM), warm.
    model.set_solver_config(
        SolverConfig::new()
            .preconditioner(Precond::Ic0)
            .threads(1)
            .tolerance(1e-10),
    );
    model.solve_steady().expect("dd ic0 cold solve");
    let start = Instant::now();
    let ic0_field = model.solve_steady().expect("dd ic0 warm solve");
    let ic0_wall = start.elapsed();
    let ic0_stats = model.last_solve_stats().expect("ic0 stats");
    let reference = ic0_field.temperatures().to_vec();

    let mut rows: Vec<DdRow> = Vec::new();
    for tiles in [1usize, 2, 4, 8] {
        model.set_solver_config(
            SolverConfig::new()
                .preconditioner(Precond::AdditiveSchwarz(tiles))
                .threads(1)
                .tolerance(1e-10),
        );
        model.solve_steady().expect("dd as cold solve");
        let start = Instant::now();
        let field = model.solve_steady().expect("dd as warm solve");
        let wall = start.elapsed();
        let stats = model.last_solve_stats().expect("as stats");
        assert!(
            stats.converged(),
            "AS×{tiles} must converge on the {n}³ grid"
        );
        let dd = stats.dd.expect("AS solve must report dd stats");
        assert_eq!(
            dd.subdomains, tiles,
            "requested tile count must resolve exactly on {n} planes"
        );
        let max_diff = field
            .temperatures()
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff <= 1e-4,
            "AS×{tiles}: field diverged from IC(0) by {max_diff:.3e} K"
        );
        rows.push(DdRow {
            partition: tiles,
            iterations: stats.iterations,
            wall,
            halo_cells: dd.halo_cells,
            exchange_seconds: dd.exchange_seconds,
            requested_precond: stats.requested_preconditioner.to_string(),
            effective_precond: stats.preconditioner.to_string(),
        });
    }

    let single = rows[0].iterations;
    for r in &rows {
        assert!(
            (r.iterations as f64) <= 1.6 * single as f64,
            "AS×{}: {} iterations exceeds 1.6× the single-domain count {}",
            r.partition,
            r.iterations,
            single
        );
    }
    if !smoke && !oversubscribed {
        let best = rows
            .iter()
            .filter(|r| r.partition >= 2)
            .map(|r| r.wall.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        assert!(
            best <= ic0_wall.as_secs_f64(),
            "best multi-subdomain AS warm wall ({best:.3}s) must not lose to the \
             level-scheduled IC(0) wall ({:.3}s)",
            ic0_wall.as_secs_f64()
        );
    }
    FvDdReport {
        cells: n * n * n,
        oversubscribed,
        ic0_iterations: ic0_stats.iterations,
        ic0_wall,
        rows,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(
    records: &[SweepRecord],
    fv_large: &FvLargeReport,
    fv_dd: &FvDdReport,
    mission_orbit: &MissionOrbitReport,
    optimize: &OptimizeReport,
    hardware_threads: usize,
    smoke: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"cargo bench -p aeropack-bench --bench sweeps\",\n");
    out.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sweeps\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(r.name)));
        out.push_str(&format!("      \"scenarios\": {},\n", r.scenarios));
        out.push_str("      \"wall_seconds\": {");
        for (j, (t, d)) in r.walls.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{t}\": {:.6}", d.as_secs_f64()));
        }
        out.push_str("},\n");
        out.push_str("      \"speedup_vs_serial\": {");
        let mut first = true;
        for (t, _) in r.walls.iter().filter(|(t, _)| *t > 1) {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{t}\": {:.3}",
                r.speedup(*t).unwrap_or(f64::NAN)
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "      \"total_iterations\": {},\n",
            r.stats.total_iterations
        ));
        out.push_str(&format!(
            "      \"total_solve_time_s\": {:.6},\n",
            r.stats.total_solve_time.as_secs_f64()
        ));
        out.push_str(&format!("      \"cache_hits\": {},\n", r.stats.cache_hits));
        out.push_str(&format!(
            "      \"cache_misses\": {},\n",
            r.stats.cache_misses
        ));
        out.push_str(&format!("      \"converged\": {},\n", r.stats.converged));
        out.push_str(&format!(
            "      \"oversubscribed\": {},\n",
            r.oversubscribed(hardware_threads)
        ));
        out.push_str(&format!("      \"deterministic\": {}\n", r.deterministic));
        out.push_str(if i + 1 == records.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"fv_large\": {\n");
    out.push_str(&format!("    \"cells\": {},\n", fv_large.cells));
    out.push_str(&format!(
        "    \"oversubscribed\": {},\n",
        fv_large.oversubscribed
    ));
    if let Some(half) = fv_large.mg_iterations_half {
        out.push_str(&format!("    \"mg_iterations_32cubed\": {half},\n"));
    }
    out.push_str("    \"preconditioners\": [\n");
    for (i, r) in fv_large.rows.iter().enumerate() {
        let mut row = format!(
            "      {{\"precond\": \"{}\", \"iterations\": {}, \"wall_seconds\": {:.6}, \
             \"cold_setup_seconds\": {:.6}, \"iterate_seconds\": {:.6}, \
             \"factor_seconds\": {:.6}, \"fill_nnz\": {}, \"forward_levels\": {}, \
             \"reordered\": {}, \"max_abs_diff_vs_jacobi\": {:.3e}, \
             \"requested_precond\": \"{}\", \"effective_precond\": \"{}\"",
            json_escape(r.precond),
            r.iterations,
            r.wall.as_secs_f64(),
            r.cold_setup_seconds,
            r.iterate_seconds,
            r.factor_seconds,
            r.fill_nnz,
            r.forward_levels,
            r.reordered,
            r.max_abs_diff_vs_jacobi,
            json_escape(&r.requested_precond),
            json_escape(&r.effective_precond),
        );
        if let Some(s) = &r.spectral {
            row.push_str(&format!(
                ", \"levels\": {}, \"smoother\": \"{}\", \"degree\": {}, \
                 \"eig_low\": {:.6e}, \"eig_high\": {:.6e}, \"coarse_unknowns\": {}, \
                 \"hierarchy_nnz\": {}",
                s.levels,
                json_escape(s.smoother),
                s.degree,
                s.eig_low,
                s.eig_high,
                s.coarse_unknowns,
                s.hierarchy_nnz,
            ));
        }
        row.push_str(&format!(
            "}}{}\n",
            if i + 1 == fv_large.rows.len() {
                ""
            } else {
                ","
            }
        ));
        out.push_str(&row);
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    out.push_str("  \"fv_dd\": {\n");
    out.push_str(&format!("    \"cells\": {},\n", fv_dd.cells));
    out.push_str(&format!(
        "    \"oversubscribed\": {},\n",
        fv_dd.oversubscribed
    ));
    out.push_str(&format!(
        "    \"ic0_iterations\": {},\n",
        fv_dd.ic0_iterations
    ));
    out.push_str(&format!(
        "    \"ic0_wall_seconds\": {:.6},\n",
        fv_dd.ic0_wall.as_secs_f64()
    ));
    out.push_str("    \"subdomains\": [\n");
    for (i, r) in fv_dd.rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"partition\": {}, \"iterations\": {}, \"wall_seconds\": {:.6}, \
             \"halo_cells\": {}, \"exchange_seconds\": {:.6}, \
             \"requested_precond\": \"{}\", \"effective_precond\": \"{}\"}}{}\n",
            r.partition,
            r.iterations,
            r.wall.as_secs_f64(),
            r.halo_cells,
            r.exchange_seconds,
            json_escape(&r.requested_precond),
            json_escape(&r.effective_precond),
            if i + 1 == fv_dd.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    out.push_str("  \"mission_orbit\": {\n");
    out.push_str(&format!("    \"cells\": {},\n", mission_orbit.cells));
    out.push_str(&format!(
        "    \"accepted_steps\": {},\n",
        mission_orbit.accepted_steps
    ));
    out.push_str(&format!(
        "    \"factor_reuses\": {},\n",
        mission_orbit.factor_reuses
    ));
    out.push_str(&format!(
        "    \"matrix_reuses\": {},\n",
        mission_orbit.matrix_reuses
    ));
    out.push_str(&format!(
        "    \"adaptive_steps\": {},\n",
        mission_orbit.adaptive_steps
    ));
    out.push_str(&format!(
        "    \"adaptive_error_k\": {:.6e},\n",
        mission_orbit.adaptive_error_k
    ));
    out.push_str(&format!(
        "    \"fixed_dt_s\": {:.3},\n",
        mission_orbit.fixed_dt_s
    ));
    out.push_str(&format!(
        "    \"fixed_steps\": {},\n",
        mission_orbit.fixed_steps
    ));
    out.push_str(&format!(
        "    \"fixed_error_k\": {:.6e}\n",
        mission_orbit.fixed_error_k
    ));
    out.push_str("  },\n");
    out.push_str("  \"bench_optimize\": {\n");
    out.push_str(&format!("    \"population\": {},\n", optimize.population));
    out.push_str(&format!("    \"generations\": {},\n", optimize.generations));
    out.push_str(&format!("    \"evaluations\": {},\n", optimize.evaluations));
    out.push_str(&format!("    \"front_len\": {},\n", optimize.front_len));
    out.push_str(&format!(
        "    \"front_hash\": \"{:016x}\",\n",
        optimize.front_hash
    ));
    out.push_str("    \"wall_seconds\": {");
    for (j, (t, d)) in optimize.walls.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{t}\": {:.6}", d.as_secs_f64()));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "    \"deterministic\": {}\n",
        optimize.deterministic
    ));
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let hardware_threads = hardware_threads();

    // The bench is also the run-report producer: record every event so
    // the emitted report carries real spans, counters and histograms.
    aeropack_obs::init_from_env();
    aeropack_obs::set_enabled(true);

    println!(
        "sweep benches ({} mode, hardware threads: {hardware_threads})",
        if smoke { "smoke" } else { "full" }
    );
    let records = [
        bench_seb_fig10(smoke, thread_counts),
        bench_harmonic(smoke, thread_counts),
        bench_random_psd(smoke, thread_counts),
        bench_fv_power_scale(smoke, thread_counts),
        bench_mission(smoke, thread_counts),
    ];
    let fv_large = bench_fv_large(smoke, hardware_threads);
    let fv_dd = bench_fv_dd(smoke, hardware_threads);
    let mission_orbit = bench_mission_orbit(smoke);
    let optimize = bench_optimize(smoke);

    for r in &records {
        let oversub = r.oversubscribed(hardware_threads);
        println!(
            "\n{} — {} scenarios{}",
            r.name,
            r.scenarios,
            if oversub { " (oversubscribed)" } else { "" }
        );
        for (t, d) in &r.walls {
            println!("  threads={t:<2} wall {:>12}", fmt_duration(*d));
        }
        for (t, _) in r.walls.iter().filter(|(t, _)| *t > 1) {
            println!(
                "  speedup {t} threads vs serial: {:.2}x{}",
                r.speedup(*t).unwrap_or(f64::NAN),
                if *t > hardware_threads {
                    " (oversubscribed: contention, not engine)"
                } else {
                    ""
                }
            );
        }
        println!("  stats: {}", r.stats);
        println!(
            "  bit-identical across threads {:?}: {}",
            thread_counts, r.deterministic
        );
    }

    {
        println!(
            "\nfv_large — {} cells, 1 thread, tolerance 1e-10, warm walls{}",
            fv_large.cells,
            if fv_large.oversubscribed {
                " (oversubscribed: wall gate skipped)"
            } else {
                ""
            }
        );
        for r in &fv_large.rows {
            print!(
                "  {:<9} {:>5} iterations, wall {:>12}, setup {:.3} ms, \
                 Δmax vs jacobi {:.2e} K",
                r.precond,
                r.iterations,
                fmt_duration(r.wall),
                r.cold_setup_seconds * 1e3,
                r.max_abs_diff_vs_jacobi
            );
            if r.fill_nnz > 0 {
                print!(
                    ", factor {:.3} ms, fill {} nnz, {} fwd levels",
                    r.factor_seconds * 1e3,
                    r.fill_nnz,
                    r.forward_levels
                );
            }
            if let Some(s) = &r.spectral {
                print!(
                    ", {} level(s), {} smoother deg {}, eig [{:.3e}, {:.3e}], \
                     {} coarse unknowns",
                    s.levels, s.smoother, s.degree, s.eig_low, s.eig_high, s.coarse_unknowns
                );
            }
            println!();
        }
        if let Some(half) = fv_large.mg_iterations_half {
            println!("  mg mesh-independence reference: {half} iterations at 32³");
        }
    }

    {
        println!(
            "\nfv_dd — {} cells, additive-Schwarz subdomain ladder vs IC(0) \
             ({} iterations, wall {}){}",
            fv_dd.cells,
            fv_dd.ic0_iterations,
            fmt_duration(fv_dd.ic0_wall),
            if fv_dd.oversubscribed {
                " (oversubscribed: wall gate skipped)"
            } else {
                ""
            }
        );
        for r in &fv_dd.rows {
            println!(
                "  {:<9} {:>5} iterations, wall {:>12}, {} halo cells, \
                 staging {:.3} ms ({} → {})",
                format!("AS×{}", r.partition),
                r.iterations,
                fmt_duration(r.wall),
                r.halo_cells,
                r.exchange_seconds * 1e3,
                r.requested_precond,
                r.effective_precond
            );
        }
    }

    {
        println!(
            "\nmission_orbit — {} cells, one 90-minute LEO cycle",
            mission_orbit.cells
        );
        println!(
            "  scale: {} adaptive steps, {} factor reuses, {} matrix reuses",
            mission_orbit.accepted_steps, mission_orbit.factor_reuses, mission_orbit.matrix_reuses
        );
        println!(
            "  equal-error study: adaptive {} steps at {:.3e} K vs fixed dt={}s \
             {} steps at {:.3e} K ({:.1}x fewer)",
            mission_orbit.adaptive_steps,
            mission_orbit.adaptive_error_k,
            mission_orbit.fixed_dt_s,
            mission_orbit.fixed_steps,
            mission_orbit.fixed_error_k,
            mission_orbit.fixed_steps as f64 / mission_orbit.adaptive_steps as f64
        );
    }

    {
        println!(
            "\nbench_optimize — NSGA-II, population {} × {} generations, \
             {} evaluations",
            optimize.population, optimize.generations, optimize.evaluations
        );
        for (t, d) in &optimize.walls {
            println!("  threads={t:<2} wall {:>12}", fmt_duration(*d));
        }
        println!(
            "  front: {} designs, hash {:016x}, bit-identical at 1/2/8 threads: {}",
            optimize.front_len, optimize.front_hash, optimize.deterministic
        );
    }

    // The Fig 10 row must route its FV board refinement through the
    // symbolic pattern cache: a primed model is cloned per worker, so
    // every board assembly after the prime is a cache hit. The historic
    // regression was `cache_hits: 0` — the row never touched FV at all.
    {
        let seb = records
            .iter()
            .find(|r| r.name == "seb_fig10")
            .expect("seb record");
        assert!(
            seb.stats.cache_hits > 0,
            "seb_fig10: the Level-2 board sweep must hit the CSR pattern cache"
        );
    }

    // The FV power sweep regression gate: with the `FV_SWEEP_GRAIN`
    // hint, short grids take the serial fast path instead of paying
    // thread spawn + per-worker warm-up, so parallel configurations on
    // real cores must stay within noise of serial (the checked history
    // shows 0.90× at 2 and 4 threads before the grain hint).
    {
        let fv = records
            .iter()
            .find(|r| r.name == "fv_power_scale")
            .expect("fv record");
        for (t, _) in fv.walls.iter().filter(|(t, _)| *t > 1) {
            if *t > hardware_threads {
                continue; // oversubscribed: scheduler noise, not engine
            }
            let speedup = fv.speedup(*t).unwrap_or(f64::NAN);
            assert!(
                speedup >= 0.95,
                "fv_power_scale at {t} threads regressed to {speedup:.2}x vs serial"
            );
        }
    }

    // The dense modal-sum rows used to report silent zeros (the old
    // `Sweep::map` path recorded no `ScenarioStats` at all); gate on
    // real work being accounted.
    for name in ["harmonic_sweep", "random_psd"] {
        let r = records
            .iter()
            .find(|r| r.name == name)
            .expect("record present");
        assert!(
            r.stats.total_iterations > 0,
            "{name}: total_iterations must be non-zero (silent-zero stats regression)"
        );
        assert!(
            r.stats.total_solve_time > Duration::ZERO,
            "{name}: total_solve_time must be non-zero (silent-zero stats regression)"
        );
    }

    let json = emit_json(
        &records,
        &fv_large,
        &fv_dd,
        &mission_orbit,
        &optimize,
        hardware_threads,
        smoke,
    );
    let report = aeropack_obs::report_json();
    let summary = aeropack_obs::validate_report(&report).expect("run report must validate");
    if smoke {
        println!("\n{json}");
        println!("obs run report: {summary}");
    } else {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("BENCH_sweeps.json");
        std::fs::write(&path, &json).expect("write BENCH_sweeps.json");
        println!("\nwrote {}", path.display());
        let report_path = root.join("BENCH_obs_report.json");
        std::fs::write(&report_path, &report).expect("write BENCH_obs_report.json");
        println!("wrote {} ({summary})", report_path.display());
    }
    assert!(
        summary.counter_prefix_sum("sweep.") > 0,
        "run report must carry sweep counters"
    );
    assert!(
        summary.counter_prefix_sum("solver.ic0.") > 0,
        "run report must carry IC(0) factorization counters"
    );
    assert!(
        summary.counter_prefix_sum("solver.mg.") > 0,
        "run report must carry multigrid hierarchy counters"
    );
    assert!(
        summary.counter_prefix_sum("solver.cheb.") > 0,
        "run report must carry Chebyshev spectral counters"
    );
    assert!(
        summary.counter_prefix_sum("solver.dd.") > 0,
        "run report must carry domain-decomposition counters"
    );
    assert!(
        summary.counter_prefix_sum("mission.") > 0,
        "run report must carry mission-driver counters"
    );
    assert!(
        summary.counter_prefix_sum("solver.transient.") > 0,
        "run report must carry transient-solve counters"
    );
    assert!(
        summary.counter_prefix_sum("optimize.") > 0,
        "run report must carry optimizer counters"
    );
    // Honour AEROPACK_OBS_REPORT in either mode, so the CI smoke gate
    // can obs_check the emitted counters without a full bench run.
    if let Some(path) = aeropack_obs::write_env_report().expect("write env-report") {
        println!("wrote {} (AEROPACK_OBS_REPORT)", path.display());
    }

    // Oversubscribed rows are excluded from the gate: with more threads
    // than cores, wall times (and any determinism re-run scheduling)
    // measure the OS scheduler, not the engine. Their verdicts are
    // still recorded in the JSON above.
    if let Some(bad) = records
        .iter()
        .find(|r| !r.deterministic && !r.oversubscribed(hardware_threads))
    {
        eprintln!(
            "NONDETERMINISM: sweep '{}' is not bit-identical across thread counts",
            bad.name
        );
        std::process::exit(1);
    }
    if records.iter().all(|r| r.oversubscribed(hardware_threads)) {
        println!(
            "gate skipped: all rows oversubscribed \
             ({hardware_threads} hardware thread(s) < widest timed count)"
        );
    } else {
        println!("all gated sweeps bit-identical across thread counts");
    }
}
