//! Sweep-engine benchmark: the Fig 10 power grid, a harmonic frequency
//! sweep, a random-vibration PSD integral and a finite-volume
//! power-derating sweep, each run serially and in parallel at 1/2/4
//! threads. Emits `BENCH_sweeps.json` at the repository root with
//! walls, speedups, rolled-up solver statistics and the pattern-cache
//! hit counts, plus the observability run report
//! (`BENCH_obs_report.json`), and **exits non-zero if any sweep is not
//! bit-identical across thread counts**.
//!
//! Rows timed with more threads than the machine has are tagged
//! `"oversubscribed": true` and excluded from the determinism/speedup
//! gate — their "speedups" measure scheduler contention, not the
//! engine.
//!
//! Run with `cargo bench -p aeropack-bench --bench sweeps`; pass
//! `-- --smoke` for the tiny offline CI gate (small grids, threads
//! 1 and 2, no JSON file written).

use std::time::Duration;

use aeropack_bench::{fmt_duration, time_mean};
use aeropack_core::{SeatStructure, SebModel};
use aeropack_envqual::Do160Curve;
use aeropack_fem::{
    modal, random_response_with_stats, Dof, HarmonicResponse, PlateMesh, PlateProperties,
};
use aeropack_materials::Material;
use aeropack_sweep::{ScenarioStats, Sweep, SweepStats};
use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel};
use aeropack_units::{Celsius, Frequency, HeatTransferCoeff, Length, Power};

/// One benchmarked sweep: timings per thread count, the stats roll-up
/// from the widest run, and the cross-thread-count determinism verdict.
struct SweepRecord {
    name: &'static str,
    scenarios: usize,
    /// `(threads, mean wall)` pairs, serial first.
    walls: Vec<(usize, Duration)>,
    stats: SweepStats,
    deterministic: bool,
}

impl SweepRecord {
    fn speedup(&self, threads: usize) -> Option<f64> {
        let serial = self.walls.iter().find(|(t, _)| *t == 1)?.1;
        let at = self.walls.iter().find(|(t, _)| *t == threads)?.1;
        Some(serial.as_secs_f64() / at.as_secs_f64())
    }

    /// Whether any timed configuration asked for more threads than the
    /// machine can actually run in parallel.
    fn oversubscribed(&self, hardware_threads: usize) -> bool {
        self.walls.iter().any(|(t, _)| *t > hardware_threads)
    }
}

/// Folds a deterministic error message into the fingerprint stream so
/// failed scenarios participate in the bit-identity check too.
fn fold_str(bits: &mut Vec<u64>, s: &str) {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    bits.push(h);
}

/// Runs `fingerprint` at every thread count and reports whether all
/// runs produced bit-identical streams.
fn check_identical(thread_counts: &[usize], fingerprint: impl Fn(usize) -> Vec<u64>) -> bool {
    let reference = fingerprint(1);
    thread_counts.iter().all(|&t| fingerprint(t) == reference)
}

fn seb_models(smoke: bool) -> Vec<SebModel> {
    let mut configs = vec![
        SebModel::cosee(SeatStructure::aluminum(), false, 0.0).expect("model"),
        SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model"),
    ];
    if !smoke {
        configs.push(
            SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).expect("model"),
        );
    }
    configs
}

fn bench_seb_fig10(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let ambient = Celsius::new(25.0);
    let configs = seb_models(smoke);
    let n_powers = if smoke { 4 } else { 11 };
    let powers: Vec<Power> = (1..=n_powers)
        .map(|i| Power::new(10.0 * i as f64))
        .collect();

    let run =
        |threads: usize| SebModel::power_sweep(&configs, &powers, ambient, &Sweep::new(threads));
    let fingerprint = |threads: usize| {
        let (rows, _) = run(threads);
        let mut bits = Vec::new();
        for row in &rows {
            for point in row {
                match point {
                    Ok(state) => bits.push(state.dt_pcb_air(ambient).kelvin().to_bits()),
                    Err(e) => fold_str(&mut bits, &e.to_string()),
                }
            }
        }
        bits
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 3 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let stats = run(*thread_counts.last().expect("thread counts")).1;

    SweepRecord {
        name: "seb_fig10",
        scenarios: configs.len() * powers.len(),
        walls,
        stats,
        deterministic,
    }
}

fn bench_harmonic(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(2.4))
        .expect("props")
        .with_smeared_mass(4.0);
    let mut mesh = PlateMesh::rectangular(0.14, 0.09, 6, 4, &props).expect("mesh");
    mesh.pin_all_edges().expect("bc");
    let modes = modal(&mesh.model, 4).expect("modal");
    let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("resp");
    let node = mesh.center_node();
    let points = if smoke { 40 } else { 600 };

    // `sweep_with_stats` records a real per-point `ScenarioStats` —
    // modal-sum work units and measured wall time — so the bench row no
    // longer reports the silent zeros of the old `Sweep::map` path.
    let run = |threads: usize| {
        resp.sweep_with_stats(
            &Sweep::new(threads),
            node,
            Dof::W,
            Frequency::new(20.0),
            Frequency::new(2000.0),
            points,
        )
        .expect("sweep")
    };
    let fingerprint = |threads: usize| {
        run(threads)
            .0
            .iter()
            .flat_map(|(f, a)| [f.value().to_bits(), a.to_bits()])
            .collect::<Vec<u64>>()
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 5 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let stats = run(*thread_counts.last().expect("thread counts")).1;

    SweepRecord {
        name: "harmonic_sweep",
        scenarios: points,
        walls,
        stats,
        deterministic,
    }
}

fn bench_random_psd(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(2.4))
        .expect("props")
        .with_smeared_mass(4.0);
    let (nx, ny) = if smoke { (4, 3) } else { (6, 4) };
    let mut mesh = PlateMesh::rectangular(0.14, 0.09, nx, ny, &props).expect("mesh");
    mesh.pin_all_edges().expect("bc");
    let modes = modal(&mesh.model, 4).expect("modal");
    let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("resp");
    let node = mesh.center_node();
    let psd = Do160Curve::C1.psd();

    let run = |threads: usize| {
        random_response_with_stats(&Sweep::new(threads), &resp, node, Dof::W, &psd)
            .expect("random response")
    };
    let fingerprint = |threads: usize| {
        let (r, _) = run(threads);
        vec![
            r.accel_grms.to_bits(),
            r.disp_rms.to_bits(),
            r.characteristic_frequency.value().to_bits(),
        ]
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 5 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let stats = run(*thread_counts.last().expect("thread counts")).1;

    SweepRecord {
        name: "random_psd",
        scenarios: stats.scenarios,
        walls,
        stats,
        deterministic,
    }
}

fn board_model(n: usize) -> FvModel {
    let grid = FvGrid::new((0.16, 0.10, 0.0016), (n, n * 5 / 8, 1)).expect("grid");
    let mut model = FvModel::new(grid, &Material::fr4());
    model
        .add_power_box(Power::new(30.0), (n / 3, n / 4, 0), (n / 2, n / 2, 1))
        .expect("source");
    model.set_face_bc(
        Face::ZMax,
        FaceBc::Convection {
            h: HeatTransferCoeff::new(50.0),
            ambient: Celsius::new(40.0),
        },
    );
    model
}

fn bench_fv_power_scale(smoke: bool, thread_counts: &[usize]) -> SweepRecord {
    let base = board_model(if smoke { 8 } else { 32 });
    // Prime the symbolic pattern once; every sweep clone then shares it
    // and reassembles values only.
    base.solve_steady().expect("prime solve");
    let n_scales = if smoke { 4 } else { 12 };
    let scales: Vec<f64> = (0..n_scales).map(|i| 0.5 + 0.1 * i as f64).collect();

    let run = |threads: usize| {
        Sweep::new(threads).map_stats(&scales, |&scale| {
            let mut model = base.clone();
            model.scale_sources(scale);
            let field = model.solve_steady().expect("solve");
            let solver = model.last_solve_stats().expect("stats");
            let (hits, misses) = model.pattern_cache_stats();
            (
                field.summary().expect("non-degenerate field"),
                ScenarioStats::from_solver(&solver).with_cache(hits, misses),
            )
        })
    };
    let fingerprint = |threads: usize| {
        run(threads)
            .0
            .iter()
            .flat_map(|s| {
                [
                    s.min.value().to_bits(),
                    s.max.value().to_bits(),
                    s.mean.value().to_bits(),
                ]
            })
            .collect::<Vec<u64>>()
    };
    let deterministic = check_identical(thread_counts, fingerprint);

    let iters = if smoke { 1 } else { 3 };
    let walls: Vec<(usize, Duration)> = thread_counts
        .iter()
        .map(|&t| (t, time_mean(0, iters, || run(t))))
        .collect();
    let stats = run(*thread_counts.last().expect("thread counts")).1;

    SweepRecord {
        name: "fv_power_scale",
        scenarios: scales.len(),
        walls,
        stats,
        deterministic,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn emit_json(records: &[SweepRecord], hardware_threads: usize, smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"cargo bench -p aeropack-bench --bench sweeps\",\n");
    out.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"sweeps\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(r.name)));
        out.push_str(&format!("      \"scenarios\": {},\n", r.scenarios));
        out.push_str("      \"wall_seconds\": {");
        for (j, (t, d)) in r.walls.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{t}\": {:.6}", d.as_secs_f64()));
        }
        out.push_str("},\n");
        out.push_str("      \"speedup_vs_serial\": {");
        let mut first = true;
        for (t, _) in r.walls.iter().filter(|(t, _)| *t > 1) {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "\"{t}\": {:.3}",
                r.speedup(*t).unwrap_or(f64::NAN)
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "      \"total_iterations\": {},\n",
            r.stats.total_iterations
        ));
        out.push_str(&format!(
            "      \"total_solve_time_s\": {:.6},\n",
            r.stats.total_solve_time.as_secs_f64()
        ));
        out.push_str(&format!("      \"cache_hits\": {},\n", r.stats.cache_hits));
        out.push_str(&format!(
            "      \"cache_misses\": {},\n",
            r.stats.cache_misses
        ));
        out.push_str(&format!("      \"converged\": {},\n", r.stats.converged));
        out.push_str(&format!(
            "      \"oversubscribed\": {},\n",
            r.oversubscribed(hardware_threads)
        ));
        out.push_str(&format!("      \"deterministic\": {}\n", r.deterministic));
        out.push_str(if i + 1 == records.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The bench is also the run-report producer: record every event so
    // the emitted report carries real spans, counters and histograms.
    aeropack_obs::init_from_env();
    aeropack_obs::set_enabled(true);

    println!(
        "sweep benches ({} mode, hardware threads: {hardware_threads})",
        if smoke { "smoke" } else { "full" }
    );
    let records = [
        bench_seb_fig10(smoke, thread_counts),
        bench_harmonic(smoke, thread_counts),
        bench_random_psd(smoke, thread_counts),
        bench_fv_power_scale(smoke, thread_counts),
    ];

    for r in &records {
        let oversub = r.oversubscribed(hardware_threads);
        println!(
            "\n{} — {} scenarios{}",
            r.name,
            r.scenarios,
            if oversub { " (oversubscribed)" } else { "" }
        );
        for (t, d) in &r.walls {
            println!("  threads={t:<2} wall {:>12}", fmt_duration(*d));
        }
        for (t, _) in r.walls.iter().filter(|(t, _)| *t > 1) {
            println!(
                "  speedup {t} threads vs serial: {:.2}x{}",
                r.speedup(*t).unwrap_or(f64::NAN),
                if *t > hardware_threads {
                    " (oversubscribed: contention, not engine)"
                } else {
                    ""
                }
            );
        }
        println!("  stats: {}", r.stats);
        println!(
            "  bit-identical across threads {:?}: {}",
            thread_counts, r.deterministic
        );
    }

    // The dense modal-sum rows used to report silent zeros (the old
    // `Sweep::map` path recorded no `ScenarioStats` at all); gate on
    // real work being accounted.
    for name in ["harmonic_sweep", "random_psd"] {
        let r = records
            .iter()
            .find(|r| r.name == name)
            .expect("record present");
        assert!(
            r.stats.total_iterations > 0,
            "{name}: total_iterations must be non-zero (silent-zero stats regression)"
        );
        assert!(
            r.stats.total_solve_time > Duration::ZERO,
            "{name}: total_solve_time must be non-zero (silent-zero stats regression)"
        );
    }

    let json = emit_json(&records, hardware_threads, smoke);
    let report = aeropack_obs::report_json();
    let summary = aeropack_obs::validate_report(&report).expect("run report must validate");
    if smoke {
        println!("\n{json}");
        println!("obs run report: {summary}");
    } else {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("BENCH_sweeps.json");
        std::fs::write(&path, &json).expect("write BENCH_sweeps.json");
        println!("\nwrote {}", path.display());
        let report_path = root.join("BENCH_obs_report.json");
        std::fs::write(&report_path, &report).expect("write BENCH_obs_report.json");
        println!("wrote {} ({summary})", report_path.display());
    }
    assert!(
        summary.counter_prefix_sum("sweep.") > 0,
        "run report must carry sweep counters"
    );

    // Oversubscribed rows are excluded from the gate: with more threads
    // than cores, wall times (and any determinism re-run scheduling)
    // measure the OS scheduler, not the engine. Their verdicts are
    // still recorded in the JSON above.
    if let Some(bad) = records
        .iter()
        .find(|r| !r.deterministic && !r.oversubscribed(hardware_threads))
    {
        eprintln!(
            "NONDETERMINISM: sweep '{}' is not bit-identical across thread counts",
            bad.name
        );
        std::process::exit(1);
    }
    if records.iter().all(|r| r.oversubscribed(hardware_threads)) {
        println!(
            "gate skipped: all rows oversubscribed \
             ({hardware_threads} hardware thread(s) < widest timed count)"
        );
    } else {
        println!("all gated sweeps bit-identical across thread counts");
    }
}
