//! E2 — Fig 4: the three simulation levels from equipment to component.
//!
//! The same 30 W module is analysed at Level 1 (scalar technology-
//! selection estimate), Level 2 (finite-volume board field) and Level 3
//! (per-component junction temperatures), showing the refinement chain
//! the paper describes, plus the resistive-network equivalent.

use aeropack_bench::{banner, Table};
use aeropack_core::{
    level3, predict_board_temperature, representative_board, CoolingSelector, Level2Model,
    ModuleGeometry,
};
use aeropack_serve::{
    AnalysisRequest, AnalysisResponse, BoardSpec, Client, CoolingModeSpec, ServeConfig,
};
use aeropack_thermal::Network;
use aeropack_units::{Celsius, Length, Power, ThermalResistance};

fn main() {
    banner(
        "E2",
        "equipment → PCB → component refinement",
        "Fig 4 (three simulation levels + resistive network model)",
    );
    let ambient = Celsius::new(55.0);
    let pcb = representative_board("demo module", Power::new(30.0)).expect("valid board");
    // Level 1 picks the technology; the deeper levels refine it.
    let mut selector = CoolingSelector::default();
    selector.geometry.board = pcb.size;
    let selection = selector
        .select(pcb.total_power(), ambient)
        .expect("feasible cooling");
    let mode = selection.mode;
    println!("Level-1 technology selection: {}", mode.label());

    // Level 1: scalar estimate.
    let geometry = ModuleGeometry {
        board: pcb.size,
        ..ModuleGeometry::default()
    };
    let l1 =
        predict_board_temperature(&mode, &geometry, pcb.total_power(), ambient).expect("level 1");

    // Level 2: board field.
    let l2_model = Level2Model::new(&pcb, &mode, ambient, Length::from_millimeters(4.0))
        .expect("level 2 model");
    let field = l2_model.solve().expect("level 2 solve");
    if let Some(stats) = l2_model.last_solve_stats() {
        println!("Level-2 solver: {stats}");
    }

    // Level 3: junctions.
    let l3 = level3(&pcb, &l2_model, &field, None).expect("level 3");

    let summary = field.summary().expect("non-degenerate field");
    let mut t = Table::new(&["level", "quantity", "value (°C)"]);
    t.row(&[
        "L1 equipment".to_string(),
        "mean board estimate".to_string(),
        format!("{:.1}", l1.value()),
    ]);
    t.row(&[
        "L2 PCB".to_string(),
        "board mean".to_string(),
        format!("{:.1}", summary.mean.value()),
    ]);
    t.row(&[
        "L2 PCB".to_string(),
        "board peak".to_string(),
        format!("{:.1}", summary.max.value()),
    ]);
    for j in &l3.junctions {
        t.row(&[
            "L3 component".to_string(),
            format!("{} junction", j.name),
            format!("{:.1}", j.junction_temperature.value()),
        ]);
    }
    t.print();

    let worst = l3.max_junction();
    println!(
        "junction limit check: worst {worst:.1} vs 125 °C limit → {}",
        if worst <= Celsius::new(125.0) {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // Level-2 derating sweep: the same board at scaled dissipations,
    // submitted through the in-process analysis service. All five
    // scales share one BoardSpec, so the worker coalesces them into a
    // single assembly + multi-RHS solve.
    let scales = [0.6, 0.8, 1.0, 1.2, 1.4];
    let client = Client::start(ServeConfig::new().workers(1));
    let board_spec = BoardSpec {
        power_w: pcb.total_power().value(),
        mode: CoolingModeSpec::from_mode(&mode),
        ambient_c: ambient.value(),
        resolution_mm: 4.0,
    };
    // Submit everything before resolving anything — that is what lets
    // the queue batch the identical-model requests.
    let tickets: Vec<_> = scales
        .iter()
        .map(|&scale| {
            client.submit(AnalysisRequest::BoardSteady {
                spec: board_spec,
                scale,
            })
        })
        .collect();
    print!("L2 board peak vs power scale:");
    for (scale, ticket) in scales.iter().zip(tickets) {
        match ticket.wait().expect("scaled solve") {
            AnalysisResponse::Field { max_c, .. } => {
                print!("  {:.0}% → {max_c:.1} °C", scale * 100.0);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    println!();
    let serve_stats = client.service().stats();
    println!(
        "analysis service across the sweep: {} submitted, {} coalesced into {} multi-RHS batches, {} cache hits",
        serve_stats.submitted,
        serve_stats.coalesced_jobs,
        serve_stats.coalesced_batches,
        serve_stats.cache_hits
    );

    // Resistive-network equivalent of the same module (Fig 4 inset).
    let mut net = Network::new();
    let air = net.add_fixed("cooling air", ambient);
    let board = net.add_floating("board");
    let junction = net.add_floating("CPU junction");
    net.add_heat(board, Power::new(18.0)).expect("valid node");
    net.add_heat(junction, Power::new(12.0))
        .expect("valid node");
    net.connect(junction, board, ThermalResistance::new(0.8))
        .expect("valid edge");
    // Board-to-air resistance implied by the L2 solution.
    let r_board = (field.mean_temperature() - ambient).kelvin() / 30.0;
    net.connect(board, air, ThermalResistance::new(r_board))
        .expect("valid edge");
    let sol = net.solve().expect("network solve");
    println!(
        "network equivalent: board {:.1}, CPU junction {:.1} (L3 said {:.1})",
        sol.temperature(board).expect("board node"),
        sol.temperature(junction).expect("junction node"),
        l3.junctions[0].junction_temperature,
    );

    // With AEROPACK_OBS=1 and AEROPACK_OBS_REPORT=<path>, dump the run
    // report recorded across all three levels (the CI smoke gate
    // validates it with obs_check).
    match aeropack_obs::write_env_report() {
        Ok(Some(path)) => println!("obs run report written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("obs run report not written: {e}"),
    }
}
