//! E10 — §IV intro / Fig 6: the module-power trend.
//!
//! "The thermal dissipation still increases: from 10 W/module, it will
//! reach 20/30 W/module in the near future and 60 W/module in the next
//! developments. In the same time, the module sizes are reduced or at
//! the best remain unchanged." This experiment finds, for each cooling
//! generation, the maximum module power the 85 °C class limit allows on
//! the unchanged module footprint.

use aeropack_bench::{banner, Table};
use aeropack_core::{predict_board_temperature, CoolingMode, ModuleGeometry};
use aeropack_units::{Celsius, Power, TempDelta};

/// Largest power (W) the mode holds below the limit on this geometry.
fn capability(
    mode: &CoolingMode,
    geometry: &ModuleGeometry,
    ambient: Celsius,
    limit: Celsius,
) -> f64 {
    let ok = |p: f64| {
        predict_board_temperature(mode, geometry, Power::new(p), ambient)
            .map(|t| t <= limit)
            .unwrap_or(false)
    };
    if !ok(1.0) {
        return 0.0;
    }
    let (mut lo, mut hi) = (1.0, 2.0);
    while ok(hi) && hi < 4096.0 {
        lo = hi;
        hi *= 2.0;
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    banner(
        "E10",
        "module power capability per cooling generation",
        "Fig 6 / §IV intro: 10 → 20/30 → 60 W per module on an unchanged footprint",
    );
    let ambient = Celsius::new(55.0);
    let limit = Celsius::new(85.0);
    let geometry = ModuleGeometry::default();
    let rail = ambient + TempDelta::new(10.0);
    let generations = [
        ("free convection (legacy)", CoolingMode::FreeConvection),
        (
            "ARINC 600 forced air",
            CoolingMode::DirectForcedAir {
                flow_multiplier: 1.0,
            },
        ),
        (
            "conduction to rails",
            CoolingMode::ConductionCooled {
                rail_temperature: rail,
            },
        ),
        (
            "air flow-through",
            CoolingMode::AirFlowThrough {
                flow_multiplier: 1.0,
            },
        ),
        (
            "liquid flow-through",
            CoolingMode::LiquidFlowThrough {
                coolant_inlet: ambient,
            },
        ),
    ];

    let mut t = Table::new(&[
        "cooling generation",
        "max module power (W)",
        "covers 10 W",
        "covers 30 W",
        "covers 60 W",
    ]);
    for (label, mode) in &generations {
        let cap = capability(mode, &geometry, ambient, limit);
        let yn = |p: f64| if cap >= p { "yes" } else { "no" };
        t.row(&[
            label.to_string(),
            format!("{cap:.0}"),
            yn(10.0).to_string(),
            yn(30.0).to_string(),
            yn(60.0).to_string(),
        ]);
    }
    t.print();
    println!("shape check: each paper generation (10 → 20/30 → 60 W) pushes the design");
    println!("one rung up the cooling ladder on the same 160×100 mm module footprint.");
}
