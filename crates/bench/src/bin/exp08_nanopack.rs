//! E8 — §IV.B: the NANOPACK TIM results table.
//!
//! Paper claims regenerated here:
//! * silver-flake mono-epoxy adhesive: 6 W/m·K;
//! * micro-silver-sphere multi-epoxy adhesive: 9.5 W/m·K;
//! * metal–polymer composite by a specific process: 20 W/m·K;
//! * HNC surfaces: > 20 % bond-line reduction on cm² interfaces;
//! * target: resistance < 5 K·mm²/W at BLT < 20 µm;
//! * D5470 tester: ±1 K·mm²/W and ±2 µm accuracy.

use aeropack_bench::{banner, compare, Table};
use aeropack_materials::Material;
use aeropack_tim::{
    lewis_nielsen, loading_for_target, percolation, ConductiveAdhesive, D5470Tester, FillerShape,
    HncSurface, TimJoint,
};
use aeropack_units::{Length, Pressure, ThermalConductivity};

fn main() {
    banner(
        "E8",
        "NANOPACK thermal-interface-material results",
        "§IV.B: adhesives at 6 / 9.5 W/m·K, composite at 20 W/m·K, HNC > 20 %, D5470 ±1 K·mm²/W",
    );
    let km = Material::epoxy().thermal_conductivity;
    let kf = Material::silver().thermal_conductivity;

    // --- Composite conductivities. ---
    let phi_flake = loading_for_target(km, kf, ThermalConductivity::new(6.0), FillerShape::Flake)
        .expect("reachable");
    let phi_sphere = loading_for_target(km, kf, ThermalConductivity::new(9.5), FillerShape::Sphere)
        .expect("reachable");
    let k_flake = lewis_nielsen(km, kf, phi_flake, FillerShape::Flake).expect("model");
    let k_sphere = lewis_nielsen(km, kf, phi_sphere, FillerShape::Sphere).expect("model");
    let k_perc = percolation(km, kf, 0.52, 0.25, 3.0).expect("model");

    let mut t = Table::new(&[
        "material",
        "model",
        "loading (vol%)",
        "k (W/m·K)",
        "paper k",
    ]);
    t.row(&[
        "Ag-flake mono-epoxy".to_string(),
        "Lewis-Nielsen (flake)".to_string(),
        format!("{:.0}", phi_flake * 100.0),
        format!("{:.1}", k_flake.value()),
        "6.0".to_string(),
    ]);
    t.row(&[
        "µAg-sphere multi-epoxy".to_string(),
        "Lewis-Nielsen (sphere)".to_string(),
        format!("{:.0}", phi_sphere * 100.0),
        format!("{:.1}", k_sphere.value()),
        "9.5".to_string(),
    ]);
    t.row(&[
        "metal-polymer composite".to_string(),
        "percolation (φc=0.25, t=3)".to_string(),
        "52".to_string(),
        format!("{:.1}", k_perc.value()),
        "20.0".to_string(),
    ]);
    t.print();
    println!(
        "{}",
        compare("percolating composite k", 20.0, k_perc.value(), 0.35)
    );

    // --- Electrical and mechanical properties of the adhesives. ---
    let flake = ConductiveAdhesive::new(phi_flake, FillerShape::Flake).expect("formulation");
    println!(
        "flake adhesive electrics/mechanics: ρ = {:.1e} Ω·cm (paper ~1e-4), \
         shear = {:.1} MPa (paper 14) — {}",
        flake.electrical_resistivity_ohm_cm(),
        flake.shear_strength().megapascals(),
        if flake.is_electrically_conductive()
            && (flake.shear_strength().megapascals() - 14.0).abs() < 4.0
        {
            "OK"
        } else {
            "DIFFERS"
        }
    );

    // --- HNC bond-line reduction. ---
    let hnc = HncSurface::nanopack_demo().expect("geometry");
    let reduction = hnc
        .reduction(Length::from_millimeters(5.0))
        .expect("cm² pad");
    println!(
        "HNC BLT reduction on cm² pad: paper \"> 20 %\", measured {:.0}% ({})",
        reduction * 100.0,
        if reduction > 0.20 { "OK" } else { "DIFFERS" }
    );

    // --- Joint target: < 5 K·mm²/W at BLT < 20 µm. ---
    let joint = TimJoint::nanopack_sphere_adhesive().expect("joint");
    let p = Pressure::from_kilopascals(500.0);
    let blt = joint.bond_line(p).expect("blt");
    let (r_hnc, blt_hnc) = joint
        .area_resistance_with_hnc(p, &hnc, Length::from_millimeters(5.0))
        .expect("hnc joint");
    let r_flat = joint.area_resistance(p).expect("resistance");
    println!(
        "sphere adhesive at 500 kPa: flat BLT {:.1} µm, R {:.2} K·mm²/W; with HNC: BLT {:.1} µm, R {:.2} K·mm²/W",
        blt.micrometers(),
        r_flat.kelvin_mm2_per_watt(),
        blt_hnc.micrometers(),
        r_hnc.kelvin_mm2_per_watt()
    );
    println!(
        "NANOPACK target (R < 5 K·mm²/W at BLT < 20 µm): {}",
        if r_hnc.kelvin_mm2_per_watt() < 5.0 && blt_hnc.micrometers() < 20.0 {
            "MET"
        } else {
            "NOT MET"
        }
    );

    // --- Virtual D5470 accuracy. ---
    let tester = D5470Tester::standard().expect("instrument");
    let mut worst_r: f64 = 0.0;
    let mut worst_blt: f64 = 0.0;
    for (i, sample) in [
        TimJoint::conventional_grease().expect("joint"),
        TimJoint::nanopack_flake_adhesive().expect("joint"),
        TimJoint::nanopack_sphere_adhesive().expect("joint"),
    ]
    .iter()
    .enumerate()
    {
        let truth_r = sample.area_resistance(p).expect("truth");
        let truth_b = sample.bond_line(p).expect("truth");
        let m = tester
            .measure_averaged(sample, p, 25, 1000 + i as u64)
            .expect("measurement");
        worst_r = worst_r
            .max((m.area_resistance.kelvin_mm2_per_watt() - truth_r.kelvin_mm2_per_watt()).abs());
        worst_blt = worst_blt.max((m.bond_line.micrometers() - truth_b.micrometers()).abs());
    }
    println!(
        "virtual D5470 over three samples: worst R error {worst_r:.2} K·mm²/W (rated ±1), worst BLT error {worst_blt:.2} µm (rated ±2)"
    );
    println!(
        "instrument rating check: {}",
        if worst_r <= 1.0 && worst_blt <= 2.0 {
            "OK"
        } else {
            "DIFFERS"
        }
    );
}
