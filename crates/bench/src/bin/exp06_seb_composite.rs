//! E6 — §IV.A: the carbon-composite seat campaign.
//!
//! "Compared to the aluminium, this material has a rather poor thermal
//! conductivity, thus the results are slightly under those obtained with
//! aluminium: increase of 80 % of the heat dissipation capability (from
//! 38 W up to 70 W …); for a same dissipated power (40 W) … 20 °C
//! decrease on the PCB temperature."

use aeropack_bench::{banner, compare, Table};
use aeropack_core::{SeatStructure, SebModel};
use aeropack_units::{Celsius, Power, TempDelta};

fn main() {
    banner(
        "E6",
        "SEB on the carbon-composite seat structure",
        "§IV.A: composite campaign (38→70 W, 20 °C drop at 40 W)",
    );
    let ambient = Celsius::new(25.0);
    let base = SebModel::cosee(SeatStructure::carbon_composite(), false, 0.0).expect("model");
    let lhp = SebModel::cosee(SeatStructure::carbon_composite(), true, 0.0).expect("model");
    let alu = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model");

    let mut t = Table::new(&[
        "SEB power (W)",
        "ΔT no LHP (K)",
        "ΔT LHP composite (K)",
        "ΔT LHP aluminium (K)",
    ]);
    for p in [20.0, 40.0, 60.0, 80.0] {
        let row = |m: &SebModel| -> String {
            m.solve(Power::new(p), ambient)
                .map(|s| format!("{:.1}", s.dt_pcb_air(ambient).kelvin()))
                .unwrap_or_else(|_| "dry-out".into())
        };
        t.row(&[format!("{p:.0}"), row(&base), row(&lhp), row(&alu)]);
    }
    t.print();

    let dt60 = TempDelta::new(60.0);
    let cap_base = base.capability(dt60, ambient).expect("capability");
    let cap_comp = lhp.capability(dt60, ambient).expect("capability");
    let cap_alu = alu.capability(dt60, ambient).expect("capability");
    println!(
        "{}",
        compare("baseline capability (W)", 38.0, cap_base.value(), 0.35)
    );
    println!(
        "{}",
        compare(
            "composite-seat capability (W)",
            70.0,
            cap_comp.value(),
            0.35
        )
    );
    println!(
        "{}",
        compare(
            "composite gain (%)",
            80.0,
            (cap_comp.value() / cap_base.value() - 1.0) * 100.0,
            0.5,
        )
    );
    let t_base = base
        .solve(Power::new(40.0), ambient)
        .expect("solve")
        .pcb_temperature;
    let t_comp = lhp
        .solve(Power::new(40.0), ambient)
        .expect("solve")
        .pcb_temperature;
    println!(
        "{}",
        compare(
            "PCB drop at 40 W (K)",
            20.0,
            (t_base - t_comp).kelvin(),
            0.5
        )
    );
    println!(
        "ordering check: composite capability {:.0} W sits between baseline {:.0} W and aluminium {:.0} W — {}",
        cap_comp.value(),
        cap_base.value(),
        cap_alu.value(),
        if cap_base < cap_comp && cap_comp < cap_alu { "OK" } else { "DIFFERS" }
    );
}
