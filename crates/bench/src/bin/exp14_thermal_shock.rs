//! A4 (ablation) — transient thermal shock of a module.
//!
//! The paper qualifies with a −45 °C/+55 °C shock at 5 °C/min. This
//! ablation runs the transient finite-volume model through the cold
//! half of the profile and reports what the steady analyses cannot see:
//! the thermal lag of the board behind the chamber air and the peak
//! internal gradient (the quantity that drives solder strain rates).

use aeropack_bench::{banner, Table};
use aeropack_envqual::ThermalCycleProfile;
use aeropack_materials::Material;
use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel};
use aeropack_units::{HeatTransferCoeff, Power};

fn main() {
    banner(
        "A4",
        "transient thermal shock of a powered module",
        "extension of §IV.A: −45/+55 °C at 5 °C/min, transient FV solution",
    );
    let profile = ThermalCycleProfile::date2010_shock().expect("valid profile");

    // A powered conduction board in the shock chamber: aluminium core,
    // 10 W still dissipating, convection h = 25 W/m²K to the chamber air.
    let grid = FvGrid::new((0.16, 0.10, 0.002), (16, 10, 1)).expect("grid");
    let mut model = FvModel::new(grid, &Material::aluminum_6061());
    model
        .add_power_box(Power::new(10.0), (6, 4, 0), (10, 7, 1))
        .expect("source");
    let h = HeatTransferCoeff::new(25.0);

    // Start soaked at the hot extreme, then follow the falling ramp:
    // the chamber air tracks the profile, the board lags.
    let mut field = model.uniform_field(profile.hot());
    let dt_step = 30.0; // s
    let ramp_seconds = profile.delta() / aeropack_units::TempRate::per_minute(5.0);
    // Start at the beginning of the down-ramp in profile time.
    let t_start = ramp_seconds + 900.0;

    let mut t_table = Table::new(&[
        "time (min)",
        "chamber air (°C)",
        "board mean (°C)",
        "board lag (K)",
        "internal ΔT (K)",
    ]);
    let mut max_lag: f64 = 0.0;
    let mut max_grad: f64 = 0.0;
    let total_steps = ((ramp_seconds + 600.0) / dt_step) as usize;
    for step in 0..=total_steps {
        let t_now = t_start + step as f64 * dt_step;
        let chamber = profile.temperature_at(t_now);
        let mut m = model.clone();
        m.set_face_bc(
            Face::ZMin,
            FaceBc::Convection {
                h,
                ambient: chamber,
            },
        );
        m.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h,
                ambient: chamber,
            },
        );
        // The chamber BC moves every step, so the cached stepper is
        // rebuilt per step (one solve each, as before).
        let mut stepper = m.transient_stepper(field, dt_step).expect("stepper");
        stepper.step().expect("transient step");
        field = stepper.into_field();
        let mean = field.mean_temperature();
        let lag = (mean - chamber).kelvin();
        let grad = (field.max_temperature() - field.min_temperature()).kelvin();
        max_lag = max_lag.max(lag);
        max_grad = max_grad.max(grad);
        if step % 8 == 0 {
            t_table.row(&[
                format!("{:.0}", step as f64 * dt_step / 60.0),
                format!("{:.1}", chamber.value()),
                format!("{:.1}", mean.value()),
                format!("{lag:.1}"),
                format!("{grad:.1}"),
            ]);
        }
    }
    t_table.print();
    println!("peak board lag behind the chamber: {max_lag:.1} K");
    println!("peak internal gradient: {max_grad:.1} K");
    // The residual offset at the end of the dwell is the 10 W
    // dissipation over h·A, not thermal lag.
    let area = 2.0 * 0.16 * 0.10;
    let steady_offset = 10.0 / (h.value() * area);
    let residual = (field.mean_temperature() - profile.cold()).kelvin();
    println!(
        "end of dwell: board {:.1} vs chamber {:.1}; residual {:.1} K vs the {:.1} K \
         steady dissipation offset — {}",
        field.mean_temperature().value(),
        profile.cold().value(),
        residual,
        steady_offset,
        if (residual - steady_offset).abs() < 3.0 {
            "fully soaked: the 5 °C/min ramp is quasi-static for this mass,"
        } else {
            "NOT soaked:"
        }
    );
    println!("consistent with the paper's damage-free shock results.");
}
