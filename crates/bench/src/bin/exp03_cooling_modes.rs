//! E3 — Fig 5/6: the cooling-mode trade space vs module power.
//!
//! For the paper's module-power generations (10 W today, 20/30 W near
//! term, 60 W next) the table shows the predicted board temperature
//! under each Fig 5 cooling principle and which technology the Level-1
//! selector picks.

use aeropack_bench::{banner, Table};
use aeropack_core::{predict_board_temperature, CoolingMode, CoolingSelector, ModuleGeometry};
use aeropack_units::{Celsius, Power, TempDelta};

fn main() {
    banner(
        "E3",
        "cooling modes vs module power",
        "Fig 5 (cooling modes) and Fig 6 (module power generations 10→60 W)",
    );
    let ambient = Celsius::new(55.0);
    let limit = Celsius::new(85.0);
    let geometry = ModuleGeometry::default();
    let rail = ambient + TempDelta::new(10.0);
    let modes = [
        CoolingMode::FreeConvection,
        CoolingMode::DirectForcedAir {
            flow_multiplier: 1.0,
        },
        CoolingMode::ConductionCooled {
            rail_temperature: rail,
        },
        CoolingMode::AirFlowThrough {
            flow_multiplier: 1.0,
        },
        CoolingMode::LiquidFlowThrough {
            coolant_inlet: ambient,
        },
    ];

    let mut t = Table::new(&[
        "module power",
        "free conv",
        "forced air",
        "conduction",
        "flow-through",
        "liquid",
        "selected",
    ]);
    let selector = CoolingSelector::default();
    for p in [10.0, 20.0, 30.0, 60.0, 100.0] {
        let power = Power::new(p);
        let mut cells = vec![format!("{p:.0} W")];
        for mode in &modes {
            let temp =
                predict_board_temperature(mode, &geometry, power, ambient).expect("prediction");
            let mark = if temp <= limit { "" } else { "*" };
            cells.push(format!("{:.0}{mark}", temp.value()));
        }
        let sel = selector.select(power, ambient).expect("feasible selection");
        cells.push(sel.mode.label().to_string());
        t.row(&cells);
    }
    t.print();
    println!("board temperatures in °C at 55 °C ambient; * = exceeds the 85 °C class limit");
    println!("shape check: free convection dies between 10 and 20 W; plain forced air");
    println!("covers the 20–60 W generations; 100 W needs flow-through/liquid — matching");
    println!("the paper's account of ARINC racks running out as modules reach 60 W.");
}
