//! E7 — §IV.A: the qualification campaign.
//!
//! "These tests include: linear acceleration (up to 9 g 3 minutes in
//! each axis), vibrations (according to DO160 Curve C1), climatic tests
//! (performance evaluated between −25 and 55 °C ambient), thermal shock
//! (−45 °C/+55 °C, 5 °C/min). The seats have been submitted to all the
//! different tests without damage."

use aeropack_bench::{banner, Table};
use aeropack_core::{
    representative_board, run_design, CoolingSelector, DesignSpec, Equipment, Module,
    SeatStructure, SebModel,
};
use aeropack_envqual::{
    assess_fatigue, ComponentStyle, Do160Curve, MissionProfile, MissionSegment,
};
use aeropack_fem::{modal, random_response, Dof, HarmonicResponse, PlateMesh, PlateProperties};
use aeropack_materials::Material;
use aeropack_units::{Celsius, Length, Power, TempDelta};

fn main() {
    banner(
        "E7",
        "environmental qualification campaign",
        "§IV.A: 9 g, DO-160 C1, climatic −25…+55 °C, thermal shock −45/+55 °C",
    );

    // The SEB-class equipment under qualification.
    let equipment = Equipment::new(
        "seat electronic box",
        (0.35, 0.25, 0.08),
        vec![Module::new(
            "SEB main board",
            representative_board("seb-pcb", Power::new(40.0)).expect("valid board"),
        )],
        Celsius::new(35.0),
    )
    .expect("valid equipment");
    let spec = DesignSpec::date2010().expect("valid spec");
    let report =
        run_design(&equipment, &CoolingSelector::default(), &spec).expect("design procedure");
    println!("{}", report.qualification);
    println!();

    // Climatic sweep: SEB performance between −25 and +55 °C ambient
    // (LHP configuration, 40 W).
    let seb = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model");
    let mut t = Table::new(&[
        "cabin ambient (°C)",
        "PCB temp at 40 W (°C)",
        "within 85 °C class",
    ]);
    for amb_c in [-25.0, -10.0, 10.0, 25.0, 40.0, 55.0] {
        let ambient = Celsius::new(amb_c);
        match seb.solve(Power::new(40.0), ambient) {
            Ok(state) => {
                let ok = state.pcb_temperature <= Celsius::new(85.0);
                t.row(&[
                    format!("{amb_c:.0}"),
                    format!("{:.1}", state.pcb_temperature.value()),
                    if ok { "yes".to_string() } else { "no".into() },
                ]);
            }
            Err(e) => t.row(&[format!("{amb_c:.0}"), format!("{e}"), "—".into()]),
        }
    }
    t.print();

    // Capability margin at the hot climatic extreme.
    let cap_hot = seb
        .capability(TempDelta::new(45.0), Celsius::new(55.0))
        .expect("capability");
    println!(
        "capability at +55 °C ambient with PCB ≤ 100 °C: {:.0} W (duty 40 W → margin {:.1})",
        cap_hot.value(),
        cap_hot.value() / 40.0
    );
    // Mission-profile service life: the qualification levels bound the
    // envelope; real damage accrues per Miner across flight segments.
    let props = PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(1.6))
        .expect("props")
        .with_smeared_mass(3.0);
    let mut mesh = PlateMesh::rectangular(0.16, 0.10, 8, 5, &props).expect("mesh");
    mesh.pin_all_edges().expect("supports");
    let modes = modal(&mesh.model, 3).expect("modal");
    let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("damping");
    let life_at = |curve: Do160Curve, scale: f64| -> f64 {
        let psd = curve.psd().scaled(scale).expect("scale");
        let rand = random_response(&resp, mesh.center_node(), Dof::W, &psd).expect("random");
        assess_fatigue(
            &rand,
            Length::new(0.16),
            Length::from_millimeters(1.6),
            Length::from_millimeters(30.0),
            1.0,
            ComponentStyle::Bga,
        )
        .expect("fatigue")
        .life_hours
    };
    let profile = MissionProfile::new(vec![
        MissionSegment::new("taxi", 0.3, life_at(Do160Curve::B1, 1.0)).expect("segment"),
        MissionSegment::new("takeoff/climb", 0.4, life_at(Do160Curve::C1, 1.5)).expect("segment"),
        MissionSegment::new("cruise", 8.0, life_at(Do160Curve::B1, 0.3)).expect("segment"),
        MissionSegment::new("descent/landing", 0.3, life_at(Do160Curve::C1, 1.0)).expect("segment"),
    ])
    .expect("profile");
    println!(
        "mission-profile fatigue (Miner): {:.0} missions / {:.0} flight hours to failure; \
         dominant segment: {}",
        profile.missions_to_failure(),
        profile.service_life_hours(),
        profile.dominant_segment().name
    );
    println!(
        "campaign verdict: {}",
        if report.qualification.all_passed() {
            "all tests passed without damage — matching the paper"
        } else {
            "FAILURES detected — does NOT match the paper"
        }
    );
}
