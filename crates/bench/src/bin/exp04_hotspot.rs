//! E4 — §IV: hot spots defeat ARINC 600 airflow.
//!
//! "This global airflow rate cannot cope with the hot spot problems (up
//! to ten times the standard air flow rate would be required)". The
//! table sweeps the flow multiplier for 10 and 100 W/cm² hot spots, and
//! shows the two-phase spreader rescuing the 10 W/cm² case at standard
//! flow.

use aeropack_bench::{banner, Table};
use aeropack_core::HotSpotStudy;
use aeropack_units::Celsius;

fn main() {
    banner(
        "E4",
        "hot spots vs airflow multiplier",
        "§IV: ARINC 600 (220 kg/h/kW) vs 10 and 100 W/cm² hot spots",
    );
    let limit = Celsius::new(125.0);
    let ten = HotSpotStudy::ten_watt_per_cm2();
    let ten_spread = HotSpotStudy::ten_watt_per_cm2().with_two_phase_spreader();
    let hundred = HotSpotStudy::hundred_watt_per_cm2();

    let mut t = Table::new(&[
        "flow ×ARINC600",
        "Tj 10 W/cm²",
        "Tj 10 W/cm² + 2-phase spreader",
        "Tj 100 W/cm²",
    ]);
    for mult in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        t.row(&[
            format!("{mult:.0}×"),
            format!(
                "{:.0}",
                ten.junction_temperature(mult).expect("solve").value()
            ),
            format!(
                "{:.0}",
                ten_spread
                    .junction_temperature(mult)
                    .expect("solve")
                    .value()
            ),
            format!(
                "{:.0}",
                hundred.junction_temperature(mult).expect("solve").value()
            ),
        ]);
    }
    t.print();
    println!("junction temperatures in °C; limit 125 °C, inlet air 55 °C");

    let needed = ten
        .required_flow_multiplier(limit, 64.0)
        .expect("search")
        .map(|m| format!("{m:.1}×"))
        .unwrap_or_else(|| ">64×".into());
    let needed_spread = ten_spread
        .required_flow_multiplier(limit, 64.0)
        .expect("search")
        .map(|m| format!("{m:.1}×"))
        .unwrap_or_else(|| ">64×".into());
    let needed_hundred = hundred
        .required_flow_multiplier(limit, 64.0)
        .expect("search")
        .map(|m| format!("{m:.1}×"))
        .unwrap_or_else(|| ">64×".into());
    println!("required flow for 125 °C: 10 W/cm² bare: {needed}; with spreader: {needed_spread}; 100 W/cm²: {needed_hundred}");
    println!("shape check: standard flow fails the bare hot spot, multiples of it are");
    println!("needed, and 100 W/cm² is out of reach for air — the paper's motivation for");
    println!("two-phase technology (COSEE) and better interfaces (NANOPACK).");
}
