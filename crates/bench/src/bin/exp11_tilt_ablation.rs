//! A1 (ablation) — tilt sensitivity beyond the paper's two points.
//!
//! Fig 10 shows horizontal and 22° only; here the full 0–90° adverse
//! sweep, exposing the capillary cliff the COSEE wick choices avoided —
//! plus a direct comparison with a thermosyphon, which dies the moment
//! gravity return fails.

use aeropack_bench::{banner, Table};
use aeropack_core::{SeatStructure, SebModel};
use aeropack_materials::WorkingFluid;
use aeropack_sweep::Sweep;
use aeropack_twophase::{LoopHeatPipe, Thermosyphon};
use aeropack_units::{Celsius, Length, Power, TempDelta};

fn main() {
    banner(
        "A1",
        "LHP tilt sweep 0–90° (paper shows 0° and 22° only)",
        "extension of Fig 10's tilt axis",
    );
    let ambient = Celsius::new(25.0);
    let dt60 = TempDelta::new(60.0);
    let mut t = Table::new(&[
        "tilt (°)",
        "SEB capability at ΔT=60 (W)",
        "ΔT at 60 W (K)",
        "LHP max transport (W)",
    ]);
    let lhp_alone = LoopHeatPipe::ammonia_seb(Length::new(0.8)).expect("lhp");
    // Each tilt angle is an independent capability search — run the
    // grid through the sweep engine.
    let tilts = [0.0f64, 10.0, 22.0, 35.0, 50.0, 70.0, 90.0];
    let rows = Sweep::from_env().map(&tilts, |&deg| {
        let model =
            SebModel::cosee(SeatStructure::aluminum(), true, deg.to_radians()).expect("model");
        let cap = model.capability(dt60, ambient).expect("capability");
        let dt = model
            .solve(Power::new(60.0), ambient)
            .map(|s| format!("{:.1}", s.dt_pcb_air(ambient).kelvin()))
            .unwrap_or_else(|_| "dry-out".into());
        let qmax = lhp_alone
            .max_transport(Celsius::new(35.0), deg.to_radians())
            .expect("max transport");
        [
            format!("{deg:.0}"),
            format!("{:.0}", cap.value()),
            dt,
            format!("{:.0}", qmax.value()),
        ]
    });
    for row in &rows {
        t.row(row);
    }
    t.print();

    // Thermosyphon contrast: fine at the favourable orientation, dead
    // past horizontal.
    let ts = Thermosyphon::new(
        WorkingFluid::water(),
        Length::from_millimeters(10.0),
        Length::from_millimeters(150.0),
        Length::from_millimeters(150.0),
    )
    .expect("thermosyphon");
    println!("thermosyphon flooding limit (W) vs adverse tilt:");
    for deg in [0.0f64, 45.0, 85.0, 95.0, 120.0] {
        let q = ts
            .flooding_limit(Celsius::new(70.0), deg.to_radians())
            .expect("limit");
        println!("  {deg:>5.0}°: {:.0} W", q.value());
    }
    println!("shape check: the LHP degrades gracefully over tens of degrees (its fine");
    println!("wick pumps against gravity); the wickless thermosyphon cuts off entirely —");
    println!("why COSEE chose capillary devices for seat-mounted equipment.");
}
