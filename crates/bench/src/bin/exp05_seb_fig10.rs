//! E5 — **Fig 10**: the COSEE headline result.
//!
//! ΔT(PCB1 − air) versus SEB dissipated power for three configurations:
//! without LHP, with LHP horizontal, and with LHP at 22° tilt — on the
//! aluminium seat structure. Paper anchors: ~40 W at ΔT ≈ 60 °C without
//! LHP; 100 W at the same ΔT with LHP (+150 %); a 32 °C PCB drop at
//! 40 W; ~58 W carried by the loop heat pipes; a small tilt penalty.
//!
//! The whole figure is produced through the in-process analysis
//! service: each configuration's power column is one `SebPowerSweep`
//! request, the anchors are `SebCapability`/`SebOperatingPoint`
//! requests, and the worker pool supplies the parallelism the sweep
//! engine used to.

use aeropack_bench::{banner, compare, Table};
use aeropack_core::{SeatStructure, SebModel};
use aeropack_serve::{AnalysisRequest, AnalysisResponse, Client, SeatKind, SebSpec, ServeConfig};
use aeropack_units::{Celsius, Power, TempDelta};

fn spec(lhp: bool, tilt_deg: f64) -> SebSpec {
    SebSpec {
        seat: SeatKind::Aluminum,
        lhp,
        tilt_deg,
        ambient_c: 25.0,
    }
}

fn capability(client: &Client, s: SebSpec, dt_limit_k: f64) -> f64 {
    match client
        .call(AnalysisRequest::SebCapability {
            spec: s,
            dt_limit_k,
        })
        .expect("capability")
    {
        AnalysisResponse::Capability { watts } => watts,
        other => panic!("unexpected response: {other:?}"),
    }
}

fn main() {
    banner(
        "E5",
        "SEB ΔT(PCB−air) vs power, three configurations",
        "Fig 10 (aluminium seat): no LHP / LHP horizontal / LHP 22° tilt",
    );
    let ambient = Celsius::new(25.0);
    let configs = [spec(false, 0.0), spec(true, 0.0), spec(true, 22.0)];
    let powers_w: Vec<f64> = (1..=11).map(|i| 10.0 * f64::from(i)).collect();

    // The whole Fig 10 grid — 3 configurations × 11 power levels — as
    // three power-sweep requests resolved by the service's worker pool.
    let client = Client::start(ServeConfig::new().workers(3));
    let tickets: Vec<_> = configs
        .iter()
        .map(|&s| {
            client.submit(AnalysisRequest::SebPowerSweep {
                spec: s,
                powers_w: powers_w.clone(),
            })
        })
        .collect();
    let columns: Vec<Vec<Option<f64>>> = tickets
        .into_iter()
        .map(|t| match t.wait().expect("power sweep") {
            AnalysisResponse::PowerSweep { dt_pcb_air_k } => dt_pcb_air_k,
            other => panic!("unexpected response: {other:?}"),
        })
        .collect();

    let fmt = |point: &Option<f64>| -> String {
        match point {
            Some(dt) => format!("{dt:.1}"),
            None => "dry-out".into(),
        }
    };
    let mut t = Table::new(&[
        "SEB power (W)",
        "ΔT no LHP (K)",
        "ΔT LHP horizontal (K)",
        "ΔT LHP 22° (K)",
    ]);
    for (pi, p) in powers_w.iter().enumerate() {
        t.row(&[
            format!("{p:.0}"),
            fmt(&columns[0][pi]),
            fmt(&columns[1][pi]),
            fmt(&columns[2][pi]),
        ]);
    }
    t.print();
    let stats = client.service().stats();
    println!(
        "analysis service: {} requests submitted, {} completed, {} cache hits",
        stats.submitted, stats.completed, stats.cache_hits
    );

    // Paper anchors, all through the same request vocabulary.
    let cap_base = capability(&client, configs[0], 60.0);
    let cap_lhp = capability(&client, configs[1], 60.0);
    let cap_tilt = capability(&client, configs[2], 60.0);
    println!(
        "{}",
        compare("capability without LHP at ΔT=60 (W)", 40.0, cap_base, 0.35)
    );
    println!(
        "{}",
        compare("capability with LHP at ΔT=60 (W)", 100.0, cap_lhp, 0.35)
    );
    println!(
        "{}",
        compare(
            "capability gain (%)",
            150.0,
            (cap_lhp / cap_base - 1.0) * 100.0,
            0.4,
        )
    );
    let point_at = |s: SebSpec, power_w: f64| -> AnalysisResponse {
        client
            .call(AnalysisRequest::SebOperatingPoint { spec: s, power_w })
            .expect("operating point")
    };
    let (t_base, t_lhp) = match (point_at(configs[0], 40.0), point_at(configs[1], 40.0)) {
        (
            AnalysisResponse::OperatingPoint { pcb_c: base, .. },
            AnalysisResponse::OperatingPoint { pcb_c: lhp, .. },
        ) => (base, lhp),
        other => panic!("unexpected responses: {other:?}"),
    };
    println!(
        "{}",
        compare("PCB drop at 40 W (K)", 32.0, t_base - t_lhp, 0.4)
    );
    // Near-capability LHP loading; `solve_with_stats` stays on the
    // model API because the wire response carries no solver stats.
    let lhp_flat = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model");
    let (near_cap, solve_stats) = lhp_flat
        .solve_with_stats(Power::new(cap_lhp.min(100.0)), ambient)
        .expect("solve");
    println!("operating-point solver: {solve_stats}");
    println!(
        "{}",
        compare(
            "power through the LHPs near capability (W)",
            58.0,
            near_cap.lhp_power.value(),
            0.4,
        )
    );
    println!(
        "tilt capability penalty at ΔT=60: {:.1} W ({:.1}% — paper shows a small effect)",
        cap_lhp - cap_tilt,
        (1.0 - cap_tilt / cap_lhp) * 100.0
    );
    // Consistency cross-check: the service's 40 W ΔT column entry must
    // match the direct model solve it abstracts.
    let direct = lhp_flat
        .solve(Power::new(40.0), ambient)
        .expect("direct solve")
        .dt_pcb_air(ambient)
        .kelvin();
    let via_service = columns[1][3].expect("40 W point solvable");
    assert!(
        (direct - via_service).abs() < 1e-12,
        "service ({via_service}) and direct ({direct}) 40 W points disagree"
    );
    let _ = TempDelta::new(60.0);
}
