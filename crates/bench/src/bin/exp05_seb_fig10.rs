//! E5 — **Fig 10**: the COSEE headline result.
//!
//! ΔT(PCB1 − air) versus SEB dissipated power for three configurations:
//! without LHP, with LHP horizontal, and with LHP at 22° tilt — on the
//! aluminium seat structure. Paper anchors: ~40 W at ΔT ≈ 60 °C without
//! LHP; 100 W at the same ΔT with LHP (+150 %); a 32 °C PCB drop at
//! 40 W; ~58 W carried by the loop heat pipes; a small tilt penalty.

use aeropack_bench::{banner, compare, Table};
use aeropack_core::{DesignError, SeatStructure, SebModel, SebOperatingState};
use aeropack_sweep::Sweep;
use aeropack_twophase::TwoPhaseError;
use aeropack_units::{Celsius, Power, TempDelta};

fn main() {
    banner(
        "E5",
        "SEB ΔT(PCB−air) vs power, three configurations",
        "Fig 10 (aluminium seat): no LHP / LHP horizontal / LHP 22° tilt",
    );
    let ambient = Celsius::new(25.0);
    let no_lhp = SebModel::cosee(SeatStructure::aluminum(), false, 0.0).expect("model");
    let lhp_flat = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model");
    let lhp_tilt =
        SebModel::cosee(SeatStructure::aluminum(), true, 22f64.to_radians()).expect("model");

    // The whole Fig 10 grid — 3 configurations × 11 power levels — in
    // one parallel sweep (AEROPACK_THREADS sets the worker count).
    let configs = [no_lhp.clone(), lhp_flat.clone(), lhp_tilt.clone()];
    let powers: Vec<Power> = (1..=11).map(|i| Power::new(10.0 * i as f64)).collect();
    let runner = Sweep::from_env();
    let (rows, sweep_stats) = SebModel::power_sweep(&configs, &powers, ambient, &runner);

    let fmt = |point: &Result<SebOperatingState, DesignError>| -> String {
        match point {
            Ok(state) => format!("{:.1}", state.dt_pcb_air(ambient).kelvin()),
            Err(DesignError::TwoPhase(TwoPhaseError::DryOut { .. })) => "dry-out".into(),
            Err(other) => format!("err: {other}"),
        }
    };

    let mut t = Table::new(&[
        "SEB power (W)",
        "ΔT no LHP (K)",
        "ΔT LHP horizontal (K)",
        "ΔT LHP 22° (K)",
    ]);
    for (pi, p) in powers.iter().enumerate() {
        t.row(&[
            format!("{:.0}", p.value()),
            fmt(&rows[0][pi]),
            fmt(&rows[1][pi]),
            fmt(&rows[2][pi]),
        ]);
    }
    t.print();
    println!("sweep engine: {sweep_stats}");

    // Paper anchors.
    let dt60 = TempDelta::new(60.0);
    let cap_base = no_lhp.capability(dt60, ambient).expect("capability");
    let cap_lhp = lhp_flat.capability(dt60, ambient).expect("capability");
    let cap_tilt = lhp_tilt.capability(dt60, ambient).expect("capability");
    println!(
        "{}",
        compare(
            "capability without LHP at ΔT=60 (W)",
            40.0,
            cap_base.value(),
            0.35
        )
    );
    println!(
        "{}",
        compare(
            "capability with LHP at ΔT=60 (W)",
            100.0,
            cap_lhp.value(),
            0.35
        )
    );
    println!(
        "{}",
        compare(
            "capability gain (%)",
            150.0,
            (cap_lhp.value() / cap_base.value() - 1.0) * 100.0,
            0.4,
        )
    );
    let t_base = no_lhp
        .solve(Power::new(40.0), ambient)
        .expect("solve")
        .pcb_temperature;
    let t_lhp = lhp_flat
        .solve(Power::new(40.0), ambient)
        .expect("solve")
        .pcb_temperature;
    println!(
        "{}",
        compare("PCB drop at 40 W (K)", 32.0, (t_base - t_lhp).kelvin(), 0.4)
    );
    let (near_cap, stats) = lhp_flat
        .solve_with_stats(cap_lhp.min(Power::new(100.0)), ambient)
        .expect("solve");
    println!("operating-point solver: {stats}");
    println!(
        "{}",
        compare(
            "power through the LHPs near capability (W)",
            58.0,
            near_cap.lhp_power.value(),
            0.4,
        )
    );
    println!(
        "tilt capability penalty at ΔT=60: {:.1} W ({:.1}% — paper shows a small effect)",
        cap_lhp.value() - cap_tilt.value(),
        (1.0 - cap_tilt.value() / cap_lhp.value()) * 100.0
    );
}
