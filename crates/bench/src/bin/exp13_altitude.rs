//! A3 (ablation) — altitude derating of the cooling trade space.
//!
//! The paper's environment is "severe environmental constraints"; the
//! DO-160 envelope the qualification section references includes
//! altitude. This ablation evaluates the Fig 5 technologies in an
//! unpressurised bay along the ISA profile: natural convection collapses
//! with air density (Ra ∝ ρ²) while mass-flow-based forced air holds up
//! far better — the quantitative reason sealed flow-through and
//! conduction designs win in unpressurised installations.

use aeropack_bench::{banner, Table};
use aeropack_core::{predict_board_temperature, CoolingMode, ModuleGeometry};
use aeropack_materials::isa_atmosphere;
use aeropack_sweep::Sweep;
use aeropack_units::{Celsius, Power, TempDelta};

fn main() {
    banner(
        "A3",
        "cooling vs altitude in an unpressurised bay",
        "extension: DO-160 altitude envelope applied to the Fig 5 trade space",
    );
    let power = Power::new(20.0);
    // Hold the bay *temperature* at a hot-day 40 °C so only the density
    // effect is visible.
    let ambient = Celsius::new(40.0);
    let mut t = Table::new(&[
        "altitude (km)",
        "pressure (kPa)",
        "free convection (°C)",
        "forced air, same kg/h (°C)",
        "conduction (°C)",
    ]);
    // Each altitude is an independent scenario (three cooling-mode
    // predictions against its ISA state) — run the grid through the
    // sweep engine.
    let altitudes = [0.0, 3.0, 6.0, 9.0, 12.0];
    let rows = Sweep::from_env().map(&altitudes, |&km| {
        let isa = isa_atmosphere(km * 1000.0).expect("within ISA range");
        let geometry = ModuleGeometry {
            ambient_pressure: isa.pressure,
            ..ModuleGeometry::default()
        };
        let free =
            predict_board_temperature(&CoolingMode::FreeConvection, &geometry, power, ambient)
                .expect("prediction");
        let forced = predict_board_temperature(
            &CoolingMode::DirectForcedAir {
                flow_multiplier: 1.0,
            },
            &geometry,
            power,
            ambient,
        )
        .expect("prediction");
        let conduction = predict_board_temperature(
            &CoolingMode::ConductionCooled {
                rail_temperature: ambient + TempDelta::new(10.0),
            },
            &geometry,
            power,
            ambient,
        )
        .expect("prediction");
        [
            format!("{km:.0}"),
            format!("{:.1}", isa.pressure.kilopascals()),
            format!("{:.1}", free.value()),
            format!("{:.1}", forced.value()),
            format!("{:.1}", conduction.value()),
        ]
    });
    for row in &rows {
        t.row(row);
    }
    t.print();
    println!("20 W module, bay air held at 40 °C so only the density effect shows.");
    println!("shape check: free convection loses ~12 K of margin by 12 km (Ra ∝ ρ²);");
    println!("laminar forced air at constant mass flow is density-invariant; conduction");
    println!("is altitude-immune — the ranking unpressurised-bay packaging follows.");
}
