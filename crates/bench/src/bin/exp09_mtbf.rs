//! E9 — §II.B: junction temperatures → MTBF.
//!
//! "The temperature will be used as an input data for the safety and
//! reliability calculations. Typical MTBF for aerospace applications is
//! about 40,000 h." This experiment chains Level 2/3 junction
//! temperatures into the Arrhenius parts-count model: for each cooling
//! choice, the representative avionics module population is evaluated at
//! the board's mean junction temperature, showing the MTBF sensitivity
//! to the thermal design.

use aeropack_bench::{banner, compare, Table};
use aeropack_core::{level3, representative_board, CoolingMode, Level2Model};
use aeropack_envqual::{Environment, ReliabilityModel};
use aeropack_units::{Celsius, Length, Power, TempDelta};

fn main() {
    banner(
        "E9",
        "MTBF from junction temperatures across cooling choices",
        "§II.B: reliability from Level-3 temperatures; typical MTBF ≈ 40,000 h",
    );
    let ambient = Celsius::new(40.0);
    let pcb = representative_board("avionics module", Power::new(30.0)).expect("board");
    let rail = ambient + TempDelta::new(10.0);
    let modes = [
        (
            "forced air 1×",
            CoolingMode::DirectForcedAir {
                flow_multiplier: 1.0,
            },
        ),
        (
            "air flow-through",
            CoolingMode::AirFlowThrough {
                flow_multiplier: 1.0,
            },
        ),
        (
            "conduction to rail",
            CoolingMode::ConductionCooled {
                rail_temperature: rail,
            },
        ),
        (
            "liquid cold plate",
            CoolingMode::LiquidFlowThrough {
                coolant_inlet: ambient,
            },
        ),
    ];

    let mut t = Table::new(&[
        "cooling",
        "worst junction (°C)",
        "mean junction (°C)",
        "module MTBF (h)",
    ]);
    let mut anchor_mtbf = 0.0;
    for (label, mode) in &modes {
        let l2 =
            Level2Model::new(&pcb, mode, ambient, Length::from_millimeters(4.0)).expect("model");
        let field = l2.solve().expect("solve");
        let l3 = level3(&pcb, &l2, &field, None).expect("level 3");
        let mean_junction = Celsius::new(
            l3.junctions
                .iter()
                .map(|j| j.junction_temperature.value())
                .sum::<f64>()
                / l3.junctions.len() as f64,
        );
        let rel = ReliabilityModel::typical_avionics_module(
            Environment::AirborneInhabited,
            mean_junction,
        )
        .expect("reliability");
        let mtbf = rel.mtbf_hours();
        if *label == "conduction to rail" {
            anchor_mtbf = mtbf;
        }
        t.row(&[
            label.to_string(),
            format!("{:.1}", l3.max_junction().value()),
            format!("{:.1}", mean_junction.value()),
            format!("{mtbf:.0}"),
        ]);
    }
    t.print();
    println!(
        "{}",
        compare(
            "typical module MTBF (h, conduction-cooled design)",
            40_000.0,
            anchor_mtbf,
            0.8,
        )
    );
    println!("shape check: every step of cooling improvement buys MTBF — the design");
    println!("coupling (thermal → reliability) the paper's Fig 1 procedure institutionalises.");
}
