//! A2 (ablation) — TIM quality vs system capability.
//!
//! The paper's conclusion motivates NANOPACK from COSEE: "this
//! technology requires the use of many thermal interfaces; thus the
//! optimization of the whole thermal path implies to improve the
//! performance of the thermal interface material". This ablation swaps
//! the SEB's internal TIM joints from conventional grease to the
//! NANOPACK adhesives and measures the system-level gain.

use aeropack_bench::{banner, Table};
use aeropack_core::{SeatStructure, SebModel};
use aeropack_tim::{TimAging, TimJoint};
use aeropack_units::{Celsius, Power, TempDelta};
use aeropack_units::{Length, Pressure, ThermalConductivity};

fn main() {
    banner(
        "A2",
        "SEB capability vs thermal-interface-material quality",
        "Conclusion §V: COSEE's many interfaces motivate NANOPACK",
    );
    let ambient = Celsius::new(25.0);
    let dt60 = TempDelta::new(60.0);
    let tims: [(&str, TimJoint); 3] = [
        (
            "conventional grease",
            TimJoint::conventional_grease().expect("joint"),
        ),
        (
            "NANOPACK flake adhesive (6 W/mK)",
            TimJoint::nanopack_flake_adhesive().expect("joint"),
        ),
        (
            "NANOPACK sphere adhesive (9.5 W/mK)",
            TimJoint::nanopack_sphere_adhesive().expect("joint"),
        ),
    ];

    let mut t = Table::new(&[
        "TIM in the HP path",
        "R per joint (K/W)",
        "ΔT at 80 W (K)",
        "capability at ΔT=60 (W)",
    ]);
    for (label, joint) in tims {
        let mut model = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model");
        let r_joint = joint
            .area_resistance(model.tim_pressure)
            .expect("resistance")
            .over_area(model.tim_area);
        model.tim = joint;
        let dt80 = model
            .solve(Power::new(80.0), ambient)
            .map(|s| format!("{:.1}", s.dt_pcb_air(ambient).kelvin()))
            .unwrap_or_else(|_| "dry-out".into());
        let cap = model.capability(dt60, ambient).expect("capability");
        t.row(&[
            label.to_string(),
            format!("{:.4}", r_joint.value()),
            dt80,
            format!("{:.0}", cap.value()),
        ]);
    }
    t.print();
    println!("shape check: better interfaces shave the internal drop and buy system");
    println!("capability — small per joint, meaningful across 'many thermal interfaces'.");

    // --- Aging: grease pump-out vs cured adhesive over 5000 cycles. ---
    let cycles = 5_000.0;
    let p_asm = Pressure::from_kilopascals(200.0);
    let grease = TimJoint::conventional_grease().expect("joint");
    let growth = TimAging::grease().growth_factor(cycles).expect("cycles");
    // Emulate the aged grease as an equivalent joint with degraded bulk
    // conductivity (same growth factor on the joint resistance).
    let aged_grease = TimJoint::new(
        ThermalConductivity::new(0.8 / growth),
        Length::from_micrometers(80.0),
        Length::from_micrometers(25.0),
        Pressure::from_kilopascals(80.0),
        Length::from_micrometers(0.5 * growth),
    )
    .expect("aged joint");
    let cap_of = |joint: TimJoint| {
        let mut model = SebModel::cosee(SeatStructure::aluminum(), true, 0.0).expect("model");
        model.tim = joint;
        model.capability(dt60, ambient).expect("capability").value()
    };
    let fresh_r = grease
        .area_resistance(p_asm)
        .expect("r")
        .kelvin_mm2_per_watt();
    let aged_r = aged_grease
        .area_resistance(p_asm)
        .expect("r")
        .kelvin_mm2_per_watt();
    println!();
    println!(
        "aging over {cycles:.0} thermal cycles: grease joint {fresh_r:.0} → {aged_r:.0} K·mm²/W \
         (growth ×{growth:.2}); capability {:.0} → {:.0} W",
        cap_of(grease),
        cap_of(aged_grease)
    );
    println!(
        "cured adhesive after the same cycling: unchanged (growth ×{:.2}) — the",
        TimAging::cured_adhesive()
            .growth_factor(cycles)
            .expect("cycles")
    );
    println!("reliability case for the NANOPACK adhesives beyond their day-one numbers.");
}
