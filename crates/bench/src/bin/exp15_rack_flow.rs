//! A5 (ablation) — air-flow distribution inside a Fig 6 rack.
//!
//! The ARINC 600 allocation is quoted per equipment, but the cards see
//! whatever the plenum hydraulics deliver. This experiment solves the
//! fan-vs-parallel-channel operating point for a six-card rack, then
//! obstructs one channel (cable bundle, misloaded card) and shows the
//! classic failure: the starved card bakes while the rack-level flow
//! figure barely moves — the Level-1/Level-2 gap in hydraulic form.

use aeropack_bench::{banner, Table};
use aeropack_materials::air_at_sea_level;
use aeropack_thermal::{forced_convection_channel, solve_rack_flow, ChannelImpedance, FanCurve};
use aeropack_units::{Celsius, Length, MassFlowRate, Power, Pressure, TempDelta};

fn main() {
    banner(
        "A5",
        "rack air-flow distribution with an obstructed channel",
        "extension of Fig 6: plenum hydraulics behind the ARINC 600 allocation",
    );
    let ambient = Celsius::new(55.0);
    let air = air_at_sea_level(ambient + TempDelta::new(10.0));
    let card_power = Power::new(25.0);
    let width = Length::new(0.10);
    let gap = Length::from_millimeters(3.0);
    let length = Length::new(0.16);
    let face_area = 2.0 * length.value() * width.value();

    let fan = FanCurve::new(
        Pressure::new(150.0),
        MassFlowRate::from_kg_per_hour(6.0 * 25.0 * 0.22 * 2.0),
    )
    .expect("fan");
    let base = ChannelImpedance::card_channel(&air, width, gap, length).expect("channel");

    let board_temp = |flow: MassFlowRate| -> f64 {
        let (h, _) = forced_convection_channel(&air, flow, width, gap).expect("correlation");
        let cp = air.specific_heat.value();
        let air_rise = card_power.value() / (2.0 * flow.value() * cp);
        ambient.value() + air_rise + card_power.value() / (h.value() * face_area)
    };

    for (label, obstruction) in [
        ("clean rack", None),
        ("channel 3 obstructed to 40 %", Some(2)),
    ] {
        let mut channels = vec![base; 6];
        if let Some(i) = obstruction {
            channels[i] = channels[i].obstructed(0.4).expect("valid fraction");
        }
        let sol = solve_rack_flow(&fan, &channels).expect("operating point");
        println!();
        println!(
            "{label}: plenum {:.0} Pa, total {:.1} kg/h",
            sol.plenum_pressure.value(),
            sol.total_flow().kg_per_hour()
        );
        let mut t = Table::new(&["card", "flow (kg/h)", "board temp (°C)", "within 85 °C"]);
        for (i, &flow) in sol.channel_flows.iter().enumerate() {
            let temp = board_temp(flow);
            t.row(&[
                format!("{}", i + 1),
                format!("{:.1}", flow.kg_per_hour()),
                format!("{temp:.1}"),
                if temp <= 85.0 {
                    "yes".to_string()
                } else {
                    "NO".into()
                },
            ]);
        }
        t.print();
    }
    println!();
    println!("shape check: the rack total moves by a few percent, but the obstructed");
    println!("card loses over half its air and blows through the 85 °C class limit —");
    println!("the hydraulic version of the paper's argument for per-board (Level-2)");
    println!("analysis rather than equipment-level bookkeeping.");
}
