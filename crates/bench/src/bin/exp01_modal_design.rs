//! E1 — Fig 2/3: mechanical design by modal placement.
//!
//! The Ariane Navigation Unit power supply was "designed so that its
//! main resonant mode be located around 500 Hz as specified in the
//! initial frequency allocation plan", and the IRS uses a mechanical
//! filtering (isolation) function. This experiment regenerates both:
//! it tunes a power-supply board to the 500 Hz slot and designs the IMU
//! isolator, then shows the resulting transmissibilities.

use aeropack_bench::{banner, compare, Table};
use aeropack_fem::{modal, Dof, HarmonicResponse, PlateMesh, PlateProperties, Sdof};
use aeropack_materials::Material;
use aeropack_units::{Frequency, Length, Mass};

fn power_supply_board(thickness_mm: f64, rib: bool) -> PlateMesh {
    let props =
        PlateProperties::from_material(&Material::fr4(), Length::from_millimeters(thickness_mm))
            .expect("valid thickness")
            .with_smeared_mass(4.0); // magnetics-heavy board
    let mut mesh = PlateMesh::rectangular(0.14, 0.09, 8, 5, &props).expect("valid mesh");
    mesh.pin_all_edges().expect("valid supports");
    if rib {
        // A stiffening rib down the middle, as grounded rotational
        // stiffness via stiff springs on the centre column.
        for j in 0..=mesh.ny() {
            let n = mesh.node_at(4, j).expect("grid node");
            mesh.model
                .add_spring_to_ground(n, Dof::W, 2.0e6)
                .expect("valid spring");
        }
    }
    mesh
}

fn main() {
    banner(
        "E1",
        "modal placement of the power-supply board + IMU isolation",
        "Fig 2 (Ariane NU, 500 Hz allocation) and Fig 3 (IRS mechanical filter)",
    );

    // --- Part 1: walk the design space toward the 500 Hz slot. ---
    let mut table = Table::new(&["configuration", "f1 (Hz)", "in 500 Hz slot (±15%)"]);
    let mut best_f1 = 0.0;
    for (label, thick, rib) in [
        ("1.6 mm bare board", 1.6, false),
        ("2.4 mm board", 2.4, false),
        ("2.4 mm board + centre rib", 2.4, true),
    ] {
        let mesh = power_supply_board(thick, rib);
        let modes = modal(&mesh.model, 3).expect("modal analysis");
        let f1 = modes.fundamental().value();
        let in_slot = (f1 - 500.0).abs() / 500.0 <= 0.15;
        table.row(&[
            label.to_string(),
            format!("{f1:.0}"),
            if in_slot {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
        if (f1 - 500.0).abs() < (best_f1 - 500.0f64).abs() {
            best_f1 = f1;
        }
    }
    table.print();
    println!(
        "{}",
        compare("selected design's first mode (Hz)", 500.0, best_f1, 0.15)
    );

    // --- Part 2: PCB response vs rack input over the spectrum. ---
    let mesh = power_supply_board(2.4, true);
    let modes = modal(&mesh.model, 3).expect("modal analysis");
    let resp = HarmonicResponse::new(&mesh.model, &modes, 0.03).expect("valid damping");
    let sweep = resp
        .sweep(
            mesh.center_node(),
            Dof::W,
            Frequency::new(20.0),
            Frequency::new(2000.0),
            13,
        )
        .expect("valid sweep");
    let mut t2 = Table::new(&["f (Hz)", "|T| PCB/rack"]);
    for (f, t) in sweep {
        t2.row(&[format!("{:.0}", f.value()), format!("{t:.2}")]);
    }
    t2.print();

    // --- Part 3: the IRS mechanical filter (isolator). ---
    let imu = Sdof::design_isolator(Mass::new(4.0), 0.10, Frequency::new(500.0), 20.0)
        .expect("isolator design feasible");
    println!(
        "IMU isolator: fn = {:.1} Hz, k = {:.3e} N/m, |T|(500 Hz) = {:.4}",
        imu.natural_frequency().value(),
        imu.stiffness(),
        imu.transmissibility(Frequency::new(500.0)),
    );
    println!(
        "{}",
        compare(
            "isolator attenuation at 500 Hz (x)",
            20.0,
            1.0 / imu.transmissibility(Frequency::new(500.0)),
            0.5,
        )
    );
}
