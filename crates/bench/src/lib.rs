//! Shared utilities for the experiment harness: every figure and table
//! of the paper has a binary in `src/bin/` that regenerates it, and the
//! Criterion benches in `benches/` time the solvers behind them.
//!
//! Run an experiment with e.g.
//! `cargo run --release -p aeropack-bench --bin exp05_seb_fig10`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Prints the experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(78));
    println!("{id}: {title}");
    println!("reproduces: {paper_ref}");
    println!("{}", "=".repeat(78));
}

/// A fixed-width console table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(headers: &[S]) -> Self {
        Self {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Display>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |sep: &str| {
            let parts: Vec<String> = widths.iter().map(|w| "-".repeat(w + 2)).collect();
            println!("{}", parts.join(sep));
        };
        let render = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:>w$} "))
                .collect();
            println!("{}", parts.join("|"));
        };
        line("+");
        render(&self.headers);
        line("+");
        for row in &self.rows {
            render(row);
        }
        line("+");
    }
}

/// Compares a measured value against the paper's value and renders a
/// verdict string for the `paper vs measured` record.
pub fn compare(label: &str, paper: f64, measured: f64, tolerance_frac: f64) -> String {
    let rel = if paper != 0.0 {
        (measured - paper).abs() / paper.abs()
    } else {
        measured.abs()
    };
    let verdict = if rel <= tolerance_frac {
        "OK"
    } else {
        "DIFFERS"
    };
    format!(
        "{label}: paper {paper:.1}, measured {measured:.1} ({verdict}, {:.0}% off)",
        rel * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        t.print();
    }

    #[test]
    fn compare_verdicts() {
        assert!(compare("x", 100.0, 105.0, 0.10).contains("OK"));
        assert!(compare("x", 100.0, 130.0, 0.10).contains("DIFFERS"));
    }
}
