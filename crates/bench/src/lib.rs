//! Shared utilities for the experiment harness: every figure and table
//! of the paper has a binary in `src/bin/` that regenerates it, and the
//! hand-rolled benches in `benches/` time the solvers behind them
//! (no external benchmarking dependency — the workspace builds offline).
//!
//! Run an experiment with e.g.
//! `cargo run --release -p aeropack-bench --bin exp05_seb_fig10`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Times `f` over `iters` iterations after `warmup` warm-up runs and
/// returns the mean wall time per iteration. The closure's result is
/// returned through a `std::hint::black_box` so the work is not
/// optimised away.
pub fn time_mean<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed() / iters as u32
}

/// Formats a per-iteration duration for the bench report.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Prints one bench result line: `name ... mean`.
pub fn report(name: &str, mean: Duration) {
    println!("{name:<44} {:>12}", fmt_duration(mean));
}

/// Prints the experiment banner. Every experiment binary calls this
/// first, so it doubles as the observability hook: `AEROPACK_OBS=1`
/// enables event recording for any experiment run.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    aeropack_obs::init_from_env();
    println!("{}", "=".repeat(78));
    println!("{id}: {title}");
    println!("reproduces: {paper_ref}");
    println!("{}", "=".repeat(78));
}

/// A fixed-width console table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(headers: &[S]) -> Self {
        Self {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Display>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |sep: &str| {
            let parts: Vec<String> = widths.iter().map(|w| "-".repeat(w + 2)).collect();
            println!("{}", parts.join(sep));
        };
        let render = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:>w$} "))
                .collect();
            println!("{}", parts.join("|"));
        };
        line("+");
        render(&self.headers);
        line("+");
        for row in &self.rows {
            render(row);
        }
        line("+");
    }
}

/// Compares a measured value against the paper's value and renders a
/// verdict string for the `paper vs measured` record.
pub fn compare(label: &str, paper: f64, measured: f64, tolerance_frac: f64) -> String {
    let rel = if paper != 0.0 {
        (measured - paper).abs() / paper.abs()
    } else {
        measured.abs()
    };
    let verdict = if rel <= tolerance_frac {
        "OK"
    } else {
        "DIFFERS"
    };
    format!(
        "{label}: paper {paper:.1}, measured {measured:.1} ({verdict}, {:.0}% off)",
        rel * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        t.print();
    }

    #[test]
    fn compare_verdicts() {
        assert!(compare("x", 100.0, 105.0, 0.10).contains("OK"));
        assert!(compare("x", 100.0, 130.0, 0.10).contains("DIFFERS"));
    }
}
