//! Property-style tests of the thermal solvers' conservation and
//! reciprocity invariants, driven through the [`aeropack_verify`]
//! harness: failures shrink to a minimal counterexample and print a
//! one-line reproducer seed.

use aeropack_materials::Material;
use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel, Network};
use aeropack_units::{Celsius, HeatTransferCoeff, Power, ThermalResistance};
use aeropack_verify::{check, ensure, tuple3, tuple4, tuple5, Gen};

const CASES: u64 = 32;

#[test]
fn fv_dirichlet_energy_balance() {
    let gen = tuple5(
        &Gen::usize_range(2, 8),
        &Gen::usize_range(2, 6),
        &Gen::usize_range(1, 3),
        &Gen::f64_range(0.5, 80.0),
        &Gen::f64_range(20.0, 120.0),
    );
    check(0x5eed_0001, CASES, &gen, |&(nx, ny, nz, q, t_hot)| {
        let grid = FvGrid::new((0.1, 0.08, 0.01), (nx, ny, nz)).map_err(|e| e.to_string())?;
        let mut model = FvModel::new(grid, &Material::copper());
        model
            .add_power_box(Power::new(q), (0, 0, 0), (nx, ny, nz))
            .map_err(|e| e.to_string())?;
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(t_hot)));
        model.set_face_bc(Face::XMax, FaceBc::FixedTemperature(Celsius::new(0.0)));
        let field = model.solve_steady().map_err(|e| e.to_string())?;
        let mut out = 0.0;
        for &f in Face::ALL.iter() {
            out += model
                .boundary_heat(&field, f)
                .map_err(|e| e.to_string())?
                .value();
        }
        // All generated heat leaves; Dirichlet faces also exchange the
        // conduction between themselves, which cancels in the sum.
        ensure!((out - q).abs() < 1e-6 * q.max(1.0), "out {out} vs q {q}");
        Ok(())
    });
}

#[test]
fn fv_superposition() {
    let gen = tuple3(
        &Gen::f64_range(1.0, 40.0),
        &Gen::f64_range(1.0, 40.0),
        &Gen::f64_range(10.0, 300.0),
    );
    check(0x5eed_0002, CASES, &gen, |&(q1, q2, h)| {
        // Linear problem: probe a fixed cell (max is not linear) with
        // each source alone and with both.
        let probe = |qa: f64, qb: f64| {
            let grid = FvGrid::new((0.06, 0.04, 0.004), (6, 4, 1)).unwrap();
            let mut model = FvModel::new(grid, &Material::aluminum_6061());
            if qa > 0.0 {
                model
                    .add_power_box(Power::new(qa), (0, 0, 0), (2, 2, 1))
                    .unwrap();
            }
            if qb > 0.0 {
                model
                    .add_power_box(Power::new(qb), (4, 2, 0), (6, 4, 1))
                    .unwrap();
            }
            model.set_face_bc(
                Face::ZMax,
                FaceBc::Convection {
                    h: HeatTransferCoeff::new(h),
                    ambient: Celsius::new(0.0),
                },
            );
            model.solve_steady().unwrap().at(0, 0, 0).unwrap().value()
        };
        let both = probe(q1, q2);
        let sum = probe(q1, 0.0) + probe(0.0, q2);
        ensure!(
            (both - sum).abs() < 1e-6 * sum.abs().max(1.0),
            "T(q1+q2) = {both}, T(q1)+T(q2) = {sum}"
        );
        Ok(())
    });
}

#[test]
fn network_reciprocity() {
    let gen = tuple4(
        &Gen::f64_range(0.1, 10.0),
        &Gen::f64_range(0.1, 10.0),
        &Gen::f64_range(0.1, 10.0),
        &Gen::f64_range(1.0, 50.0),
    );
    check(0x5eed_0003, CASES, &gen, |&(g1, g2, g3, q)| {
        // Reciprocity: injecting q at node A and reading ΔT at node B
        // equals injecting q at B and reading ΔT at A.
        let build = |inject_at_a: bool| {
            let mut net = Network::new();
            let amb = net.add_fixed("ambient", Celsius::new(0.0));
            let a = net.add_floating("a");
            let b = net.add_floating("b");
            net.connect(a, amb, ThermalResistance::new(1.0 / g1))
                .unwrap();
            net.connect(b, amb, ThermalResistance::new(1.0 / g2))
                .unwrap();
            net.connect(a, b, ThermalResistance::new(1.0 / g3)).unwrap();
            if inject_at_a {
                net.add_heat(a, Power::new(q)).unwrap();
            } else {
                net.add_heat(b, Power::new(q)).unwrap();
            }
            let sol = net.solve().unwrap();
            (
                sol.temperature(a).unwrap().value(),
                sol.temperature(b).unwrap().value(),
            )
        };
        let (_, t_b_when_a) = build(true);
        let (t_a_when_b, _) = build(false);
        ensure!(
            (t_b_when_a - t_a_when_b).abs() < 1e-9,
            "reciprocity: {t_b_when_a} vs {t_a_when_b}"
        );
        Ok(())
    });
}

#[test]
fn transient_approaches_steady_monotonically_from_below() {
    let gen = Gen::f64_range(1.0, 30.0).zip(&Gen::f64_range(20.0, 400.0));
    check(0x5eed_0004, CASES, &gen, |&(q, h)| {
        let grid = FvGrid::new((0.04, 0.04, 0.004), (4, 4, 1)).map_err(|e| e.to_string())?;
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(q), (1, 1, 0), (3, 3, 1))
            .map_err(|e| e.to_string())?;
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(h),
                ambient: Celsius::new(20.0),
            },
        );
        let steady = model
            .solve_steady()
            .map_err(|e| e.to_string())?
            .mean_temperature()
            .value();
        let mut stepper = model
            .transient_stepper(model.uniform_field(Celsius::new(20.0)), 2.0)
            .map_err(|e| e.to_string())?;
        let mut last = 20.0;
        for _ in 0..30 {
            let mean = stepper
                .step()
                .map_err(|e| e.to_string())?
                .mean_temperature()
                .value();
            ensure!(mean >= last - 1e-9, "monotone warm-up: {mean} < {last}");
            ensure!(mean <= steady + 1e-6, "overshoots steady {steady}: {mean}");
            last = mean;
        }
        Ok(())
    });
}
