//! Property-style tests of the thermal solvers' conservation and
//! reciprocity invariants, driven by a deterministic in-repo PRNG so
//! the suite runs fully offline.

use aeropack_materials::Material;
use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel, Network};
use aeropack_units::{Celsius, HeatTransferCoeff, Power, SplitMix64, ThermalResistance};

const CASES: u64 = 32;

#[test]
fn fv_dirichlet_energy_balance() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5eed_0001 + case);
        let nx = 2 + (rng.next_u64() % 6) as usize;
        let ny = 2 + (rng.next_u64() % 4) as usize;
        let nz = 1 + (rng.next_u64() % 2) as usize;
        let q = rng.range_f64(0.5, 80.0);
        let t_hot = rng.range_f64(20.0, 120.0);
        let grid = FvGrid::new((0.1, 0.08, 0.01), (nx, ny, nz)).unwrap();
        let mut model = FvModel::new(grid, &Material::copper());
        model
            .add_power_box(Power::new(q), (0, 0, 0), (nx, ny, nz))
            .unwrap();
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(t_hot)));
        model.set_face_bc(Face::XMax, FaceBc::FixedTemperature(Celsius::new(0.0)));
        let field = model.solve_steady().unwrap();
        let out: f64 = Face::ALL
            .iter()
            .map(|&f| model.boundary_heat(&field, f).unwrap().value())
            .sum();
        // All generated heat leaves; Dirichlet faces also exchange the
        // conduction between themselves, which cancels in the sum.
        assert!((out - q).abs() < 1e-6 * q.max(1.0), "out {out} vs q {q}");
    }
}

#[test]
fn fv_superposition() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5eed_0002 + case);
        let q1 = rng.range_f64(1.0, 40.0);
        let q2 = rng.range_f64(1.0, 40.0);
        let h = rng.range_f64(10.0, 300.0);
        // Linear problem: probe a fixed cell (max is not linear) with
        // each source alone and with both.
        let probe = |qa: f64, qb: f64| {
            let grid = FvGrid::new((0.06, 0.04, 0.004), (6, 4, 1)).unwrap();
            let mut model = FvModel::new(grid, &Material::aluminum_6061());
            if qa > 0.0 {
                model
                    .add_power_box(Power::new(qa), (0, 0, 0), (2, 2, 1))
                    .unwrap();
            }
            if qb > 0.0 {
                model
                    .add_power_box(Power::new(qb), (4, 2, 0), (6, 4, 1))
                    .unwrap();
            }
            model.set_face_bc(
                Face::ZMax,
                FaceBc::Convection {
                    h: HeatTransferCoeff::new(h),
                    ambient: Celsius::new(0.0),
                },
            );
            model.solve_steady().unwrap().at(0, 0, 0).unwrap().value()
        };
        let both = probe(q1, q2);
        let sum = probe(q1, 0.0) + probe(0.0, q2);
        assert!((both - sum).abs() < 1e-6 * sum.abs().max(1.0));
    }
}

#[test]
fn network_reciprocity() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5eed_0003 + case);
        let g1 = rng.range_f64(0.1, 10.0);
        let g2 = rng.range_f64(0.1, 10.0);
        let g3 = rng.range_f64(0.1, 10.0);
        let q = rng.range_f64(1.0, 50.0);
        // Reciprocity: injecting q at node A and reading ΔT at node B
        // equals injecting q at B and reading ΔT at A.
        let build = |inject_at_a: bool| {
            let mut net = Network::new();
            let amb = net.add_fixed("ambient", Celsius::new(0.0));
            let a = net.add_floating("a");
            let b = net.add_floating("b");
            net.connect(a, amb, ThermalResistance::new(1.0 / g1))
                .unwrap();
            net.connect(b, amb, ThermalResistance::new(1.0 / g2))
                .unwrap();
            net.connect(a, b, ThermalResistance::new(1.0 / g3)).unwrap();
            if inject_at_a {
                net.add_heat(a, Power::new(q)).unwrap();
            } else {
                net.add_heat(b, Power::new(q)).unwrap();
            }
            let sol = net.solve().unwrap();
            (
                sol.temperature(a).unwrap().value(),
                sol.temperature(b).unwrap().value(),
            )
        };
        let (_, t_b_when_a) = build(true);
        let (t_a_when_b, _) = build(false);
        assert!((t_b_when_a - t_a_when_b).abs() < 1e-9, "reciprocity");
    }
}

#[test]
fn transient_approaches_steady_monotonically_from_below() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5eed_0004 + case);
        let q = rng.range_f64(1.0, 30.0);
        let h = rng.range_f64(20.0, 400.0);
        let grid = FvGrid::new((0.04, 0.04, 0.004), (4, 4, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(q), (1, 1, 0), (3, 3, 1))
            .unwrap();
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(h),
                ambient: Celsius::new(20.0),
            },
        );
        let steady = model.solve_steady().unwrap().mean_temperature().value();
        let mut stepper = model
            .transient_stepper(model.uniform_field(Celsius::new(20.0)), 2.0)
            .unwrap();
        let mut last = 20.0;
        for _ in 0..30 {
            let mean = stepper.step().unwrap().mean_temperature().value();
            assert!(mean >= last - 1e-9, "monotone warm-up");
            assert!(mean <= steady + 1e-6, "never overshoots steady");
            last = mean;
        }
    }
}
