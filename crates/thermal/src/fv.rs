//! Three-dimensional structured finite-volume conduction solver — the
//! reproduction of the paper's FloTHERM role: board- and equipment-level
//! temperature fields with convective boundary conditions.
//!
//! The grid is a uniform structured box. Each cell carries an orthotropic
//! conductivity (needed for PCB laminates, which conduct ~100× better in
//! plane than through plane) and a volumetric heat source. The six
//! exterior faces carry boundary conditions. The (SPD) FV operator is
//! assembled into the shared [`aeropack_solver`] CSR backend and solved
//! with a preconditioned conjugate gradient; the transient path is
//! implicit Euler through [`TransientStepper`], which caches the matrix
//! across steps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use aeropack_solver::{
    solve_multi_rhs_with, solve_sparse_into, CsrMatrix, CsrPattern, PcgWorkspace, ShardedSolve,
    SolverConfig, SolverStats,
};
use aeropack_units::{Celsius, HeatFlux, HeatTransferCoeff, Power, ThermalConductivity};

use crate::error::ThermalError;

/// Grain hint for scenario sweeps whose per-point work is one FV steady
/// solve: the minimum scenarios each sweep worker must receive before
/// threads are spawned (see `aeropack_sweep::Sweep::grain_hint`). An FV
/// solve is heavy enough to parallelise, but each worker also pays to
/// warm its own solver workspace (and, under IC(0), to refactor), so
/// short power sweeps — the 12-point Fig 10 grid — run faster on the
/// serial fast path where one warm workspace serves every point.
pub const FV_SWEEP_GRAIN: usize = 8;

/// A uniform structured grid of `nx × ny × nz` cells over an
/// `lx × ly × lz` metre box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FvGrid {
    nx: usize,
    ny: usize,
    nz: usize,
    dx: f64,
    dy: f64,
    dz: f64,
}

impl FvGrid {
    /// Creates a grid.
    ///
    /// # Errors
    ///
    /// Returns an error for zero cell counts or non-positive dimensions.
    pub fn new(
        (lx, ly, lz): (f64, f64, f64),
        (nx, ny, nz): (usize, usize, usize),
    ) -> Result<Self, ThermalError> {
        if lx <= 0.0 || ly <= 0.0 || lz <= 0.0 {
            return Err(ThermalError::invalid("grid dimensions must be positive"));
        }
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(ThermalError::invalid(
                "grid needs at least one cell per axis",
            ));
        }
        Ok(Self {
            nx,
            ny,
            nz,
            dx: lx / nx as f64,
            dy: ly / ny as f64,
            dz: lz / nz as f64,
        })
    }

    /// Total cell count.
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Cell counts per axis.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Cell spacings per axis, metres.
    pub fn spacing(&self) -> (f64, f64, f64) {
        (self.dx, self.dy, self.dz)
    }

    /// Volume of one cell, m³.
    pub fn cell_volume(&self) -> f64 {
        self.dx * self.dy * self.dz
    }

    /// Linear index of cell `(i, j, k)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the indices exceed the grid.
    pub fn index(&self, i: usize, j: usize, k: usize) -> Result<usize, ThermalError> {
        if i >= self.nx || j >= self.ny || k >= self.nz {
            return Err(ThermalError::IndexOutOfRange {
                what: "cell",
                index: i.max(j).max(k),
                len: self.nx.max(self.ny).max(self.nz),
            });
        }
        Ok((k * self.ny + j) * self.nx + i)
    }

    /// Cell-centre coordinates, metres.
    ///
    /// # Errors
    ///
    /// Returns an error when the indices exceed the grid.
    pub fn center(&self, i: usize, j: usize, k: usize) -> Result<(f64, f64, f64), ThermalError> {
        self.index(i, j, k)?;
        Ok((
            (i as f64 + 0.5) * self.dx,
            (j as f64 + 0.5) * self.dy,
            (k as f64 + 0.5) * self.dz,
        ))
    }
}

/// One of the six exterior faces of the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    /// x = 0 face.
    XMin,
    /// x = lx face.
    XMax,
    /// y = 0 face.
    YMin,
    /// y = ly face.
    YMax,
    /// z = 0 face.
    ZMin,
    /// z = lz face.
    ZMax,
}

impl Face {
    /// All six faces.
    pub const ALL: [Face; 6] = [
        Face::XMin,
        Face::XMax,
        Face::YMin,
        Face::YMax,
        Face::ZMin,
        Face::ZMax,
    ];

    fn ordinal(self) -> usize {
        match self {
            Face::XMin => 0,
            Face::XMax => 1,
            Face::YMin => 2,
            Face::YMax => 3,
            Face::ZMin => 4,
            Face::ZMax => 5,
        }
    }
}

/// Boundary condition applied to a whole exterior face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaceBc {
    /// No heat crosses the face.
    Adiabatic,
    /// The face surface is held at a temperature (cold plate, wedge-lock
    /// rail at rack temperature, …).
    FixedTemperature(Celsius),
    /// Film condition `q = h·(T_surf − T_amb)` (free or forced
    /// convection, or a linearised radiation coefficient).
    Convection {
        /// Film coefficient.
        h: HeatTransferCoeff,
        /// Fluid/ambient temperature.
        ambient: Celsius,
    },
    /// Uniform heat flux *into* the domain.
    UniformFlux(HeatFlux),
}

/// A finite-volume conduction model: grid + per-cell properties + face
/// boundary conditions.
///
/// # Examples
///
/// ```
/// use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel};
/// use aeropack_materials::Material;
/// use aeropack_units::{Celsius, HeatTransferCoeff, Power};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 10 cm aluminium plate dissipating 20 W, convecting from its top.
/// let grid = FvGrid::new((0.1, 0.1, 0.002), (10, 10, 1))?;
/// let mut model = FvModel::new(grid, &Material::aluminum_6061());
/// model.add_power_box(Power::new(20.0), (3, 3, 0), (7, 7, 1))?;
/// model.set_face_bc(Face::ZMax, FaceBc::Convection {
///     h: HeatTransferCoeff::new(50.0),
///     ambient: Celsius::new(40.0),
/// });
/// let field = model.solve_steady()?;
/// assert!(field.max_temperature() > Celsius::new(40.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FvModel {
    grid: FvGrid,
    /// Orthotropic conductivity per cell, W/(m·K): `[kx, ky, kz]`.
    k: Vec<[f64; 3]>,
    /// Volumetric heat per cell, W (already integrated over the cell).
    source: Vec<f64>,
    /// Volumetric heat capacity ρ·cₚ per cell, J/(m³·K).
    rho_cp: Vec<f64>,
    bc: [FaceBc; 6],
    config: SolverConfig,
    stats: Mutex<Option<SolverStats>>,
    /// Cached symbolic CSR structure: the FV stencil sparsity depends
    /// only on the grid shape, so repeated assemblies (power sweeps,
    /// BC ablations) rebuild coefficient values only.
    pattern: Mutex<Option<CsrPattern>>,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
    workspace: Mutex<PcgWorkspace>,
    /// Cached stepper for the deprecated [`FvModel::step_transient`]
    /// shim, keyed on the model fingerprint and step length so repeated
    /// calls forward through one stepper instead of re-assembling the
    /// system every step.
    transient_cache: Mutex<Option<CachedTransient>>,
}

/// The keyed stepper behind the deprecated per-call transient path.
#[derive(Debug)]
struct CachedTransient {
    model_fingerprint: u64,
    dt_bits: u64,
    stepper: TransientStepper,
}

impl Clone for FvModel {
    fn clone(&self) -> Self {
        Self {
            grid: self.grid,
            k: self.k.clone(),
            source: self.source.clone(),
            rho_cp: self.rho_cp.clone(),
            bc: self.bc,
            config: self.config.clone(),
            stats: Mutex::new(self.last_solve_stats()),
            // The symbolic pattern is shared (reference-counted index
            // arrays), so a primed model hands its structure to every
            // clone a sweep spawns; hit/miss counters start fresh so
            // per-scenario accounting stays per-scenario.
            pattern: Mutex::new(self.pattern.lock().expect("pattern lock poisoned").clone()),
            cache_hits: AtomicUsize::new(0),
            cache_misses: AtomicUsize::new(0),
            workspace: Mutex::new(PcgWorkspace::new()),
            transient_cache: Mutex::new(None),
        }
    }
}

impl FvModel {
    /// Creates a model with every cell filled with `material` and all
    /// faces adiabatic.
    pub fn new(grid: FvGrid, material: &aeropack_materials::Material) -> Self {
        let k = material.thermal_conductivity.value();
        let rho_cp = material.density.value() * material.specific_heat.value();
        Self {
            grid,
            k: vec![[k, k, k]; grid.cell_count()],
            source: vec![0.0; grid.cell_count()],
            rho_cp: vec![rho_cp; grid.cell_count()],
            bc: [FaceBc::Adiabatic; 6],
            config: SolverConfig::new(),
            stats: Mutex::new(None),
            pattern: Mutex::new(None),
            cache_hits: AtomicUsize::new(0),
            cache_misses: AtomicUsize::new(0),
            workspace: Mutex::new(PcgWorkspace::new()),
            transient_cache: Mutex::new(None),
        }
    }

    /// Overrides the solver configuration (preconditioner, tolerance,
    /// thread count) used by the steady and transient solves.
    pub fn set_solver_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// The active solver configuration.
    pub fn solver_config(&self) -> &SolverConfig {
        &self.config
    }

    /// Statistics of the most recent steady or (deprecated per-step)
    /// transient solve on this model, if any.
    pub fn last_solve_stats(&self) -> Option<SolverStats> {
        self.stats.lock().expect("stats lock poisoned").clone()
    }

    /// The grid.
    pub fn grid(&self) -> &FvGrid {
        &self.grid
    }

    /// Fills the half-open cell box `[lo, hi)` with a material.
    ///
    /// # Errors
    ///
    /// Returns an error if the box exceeds the grid or is empty.
    pub fn fill_box(
        &mut self,
        material: &aeropack_materials::Material,
        lo: (usize, usize, usize),
        hi: (usize, usize, usize),
    ) -> Result<(), ThermalError> {
        let k = material.thermal_conductivity.value();
        self.fill_box_orthotropic(
            [
                ThermalConductivity::new(k),
                ThermalConductivity::new(k),
                ThermalConductivity::new(k),
            ],
            material.density.value() * material.specific_heat.value(),
            lo,
            hi,
        )
    }

    /// Fills the half-open cell box `[lo, hi)` with an orthotropic
    /// conductivity (PCB laminates) and a volumetric heat capacity.
    ///
    /// # Errors
    ///
    /// Returns an error if the box exceeds the grid or is empty.
    pub fn fill_box_orthotropic(
        &mut self,
        k: [ThermalConductivity; 3],
        rho_cp: f64,
        lo: (usize, usize, usize),
        hi: (usize, usize, usize),
    ) -> Result<(), ThermalError> {
        self.check_box(lo, hi)?;
        if k.iter().any(|ki| ki.value() <= 0.0) || rho_cp <= 0.0 {
            return Err(ThermalError::invalid(
                "material properties must be positive",
            ));
        }
        for kk in lo.2..hi.2 {
            for j in lo.1..hi.1 {
                for i in lo.0..hi.0 {
                    let c = self.grid.index(i, j, kk)?;
                    self.k[c] = [k[0].value(), k[1].value(), k[2].value()];
                    self.rho_cp[c] = rho_cp;
                }
            }
        }
        Ok(())
    }

    /// Distributes a total power uniformly over the half-open cell box
    /// `[lo, hi)` (cumulative with previous sources).
    ///
    /// # Errors
    ///
    /// Returns an error if the box exceeds the grid or is empty.
    pub fn add_power_box(
        &mut self,
        power: Power,
        lo: (usize, usize, usize),
        hi: (usize, usize, usize),
    ) -> Result<(), ThermalError> {
        self.check_box(lo, hi)?;
        let cells = (hi.0 - lo.0) * (hi.1 - lo.1) * (hi.2 - lo.2);
        let per_cell = power.value() / cells as f64;
        for kk in lo.2..hi.2 {
            for j in lo.1..hi.1 {
                for i in lo.0..hi.0 {
                    let c = self.grid.index(i, j, kk)?;
                    self.source[c] += per_cell;
                }
            }
        }
        Ok(())
    }

    /// Total source power in the model.
    pub fn total_power(&self) -> Power {
        Power::new(self.source.iter().sum())
    }

    /// Sets the boundary condition of one exterior face.
    pub fn set_face_bc(&mut self, face: Face, bc: FaceBc) {
        self.bc[face.ordinal()] = bc;
    }

    fn check_box(
        &self,
        lo: (usize, usize, usize),
        hi: (usize, usize, usize),
    ) -> Result<(), ThermalError> {
        let (nx, ny, nz) = self.grid.shape();
        if hi.0 > nx || hi.1 > ny || hi.2 > nz {
            return Err(ThermalError::invalid(format!(
                "box upper corner {hi:?} exceeds grid {:?}",
                self.grid.shape()
            )));
        }
        if lo.0 >= hi.0 || lo.1 >= hi.1 || lo.2 >= hi.2 {
            return Err(ThermalError::invalid("cell box is empty"));
        }
        Ok(())
    }

    /// Harmonic-mean conductance between cell `c` and its neighbour `d`
    /// along `axis` (0 = x, 1 = y, 2 = z).
    fn face_conductance(&self, c: usize, d: usize, axis: usize) -> f64 {
        let (dx, dy, dz) = self.grid.spacing();
        let (delta, area) = match axis {
            0 => (dx, dy * dz),
            1 => (dy, dx * dz),
            _ => (dz, dx * dy),
        };
        let k1 = self.k[c][axis];
        let k2 = self.k[d][axis];
        area / (delta / (2.0 * k1) + delta / (2.0 * k2))
    }

    /// Half-cell conductance from cell `c` to its exterior surface along
    /// `axis`.
    fn half_conductance(&self, c: usize, axis: usize) -> f64 {
        let (dx, dy, dz) = self.grid.spacing();
        let (delta, area) = match axis {
            0 => (dx, dy * dz),
            1 => (dy, dx * dz),
            _ => (dz, dx * dy),
        };
        2.0 * self.k[c][axis] * area / delta
    }

    fn face_area(&self, axis: usize) -> f64 {
        let (dx, dy, dz) = self.grid.spacing();
        match axis {
            0 => dy * dz,
            1 => dx * dz,
            _ => dx * dy,
        }
    }

    /// Assembles the FV operator: per-cell neighbour conductances,
    /// boundary diagonal additions and the right-hand side.
    fn assemble(&self) -> Assembled {
        self.assemble_scaled(1.0)
    }

    /// [`FvModel::assemble`] with every heat source multiplied by
    /// `scale` while it is copied into the right-hand side. `scale = 1`
    /// takes the exact unscaled path, and any other factor produces the
    /// same bits as [`FvModel::scale_sources`] followed by a plain
    /// assembly — the conductance terms never see the sources.
    fn assemble_scaled(&self, scale: f64) -> Assembled {
        let (nx, ny, nz) = self.grid.shape();
        let n = self.grid.cell_count();
        let mut diag = vec![0.0f64; n];
        let mut rhs = if scale == 1.0 {
            self.source.clone()
        } else {
            self.source.iter().map(|s| s * scale).collect()
        };
        // Interior conductances, stored for the +x, +y, +z neighbours.
        let mut gxp = vec![0.0f64; n];
        let mut gyp = vec![0.0f64; n];
        let mut gzp = vec![0.0f64; n];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = (k * ny + j) * nx + i;
                    if i + 1 < nx {
                        let d = c + 1;
                        let g = self.face_conductance(c, d, 0);
                        gxp[c] = g;
                        diag[c] += g;
                        diag[d] += g;
                    }
                    if j + 1 < ny {
                        let d = c + nx;
                        let g = self.face_conductance(c, d, 1);
                        gyp[c] = g;
                        diag[c] += g;
                        diag[d] += g;
                    }
                    if k + 1 < nz {
                        let d = c + nx * ny;
                        let g = self.face_conductance(c, d, 2);
                        gzp[c] = g;
                        diag[c] += g;
                        diag[d] += g;
                    }
                    // Boundary faces.
                    let faces = [
                        (i == 0, Face::XMin, 0),
                        (i + 1 == nx, Face::XMax, 0),
                        (j == 0, Face::YMin, 1),
                        (j + 1 == ny, Face::YMax, 1),
                        (k == 0, Face::ZMin, 2),
                        (k + 1 == nz, Face::ZMax, 2),
                    ];
                    for (on_face, face, axis) in faces {
                        if !on_face {
                            continue;
                        }
                        match self.bc[face.ordinal()] {
                            FaceBc::Adiabatic => {}
                            FaceBc::FixedTemperature(t) => {
                                let g = self.half_conductance(c, axis);
                                diag[c] += g;
                                rhs[c] += g * t.value();
                            }
                            FaceBc::Convection { h, ambient } => {
                                let area = self.face_area(axis);
                                let g_half = self.half_conductance(c, axis);
                                let g_conv = h.value() * area;
                                let g = g_half * g_conv / (g_half + g_conv);
                                diag[c] += g;
                                rhs[c] += g * ambient.value();
                            }
                            FaceBc::UniformFlux(q) => {
                                rhs[c] += q.value() * self.face_area(axis);
                            }
                        }
                    }
                }
            }
        }
        Assembled {
            diag,
            rhs,
            gxp,
            gyp,
            gzp,
            nx,
            ny,
            nz,
        }
    }

    /// Assembles the operator into shared CSR storage, with an optional
    /// per-cell diagonal addition (the transient capacity term). Rows
    /// are built in parallel across the configured thread count.
    ///
    /// The symbolic structure (row pointers and column indices) depends
    /// only on the grid shape, so it is computed once and cached: every
    /// later assembly — a new power level, a changed film coefficient,
    /// the transient capacity matrix — refills coefficient values over
    /// the cached pattern, skipping the per-row sort and merge. The
    /// numeric result is bitwise identical either way.
    fn csr(&self, asm: &Assembled, extra_diag: Option<&[f64]>) -> CsrMatrix {
        let row_fn = self.row_fn(asm, extra_diag);
        let n = self.grid.cell_count();
        let threads = self.config.get_threads();
        let mut cached = self.pattern.lock().expect("pattern lock poisoned");
        if let Some(pattern) = cached.as_ref() {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            aeropack_obs::counter!("thermal.fv.pattern_cache.hits");
            CsrMatrix::from_pattern_row_fn(pattern, threads, row_fn)
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            aeropack_obs::counter!("thermal.fv.pattern_cache.misses");
            let matrix = CsrMatrix::from_row_fn(n, threads, row_fn);
            *cached = Some(matrix.pattern());
            matrix
        }
    }

    /// Symbolic-cache counters for this model instance:
    /// `(hits, misses)` — assemblies that reused the cached CSR pattern
    /// vs. full symbolic builds.
    pub fn pattern_cache_stats(&self) -> (usize, usize) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Multiplies every heat source by `factor` — the cheap way a power
    /// sweep re-targets total dissipation without rebuilding the source
    /// layout.
    pub fn scale_sources(&mut self, factor: f64) {
        for s in &mut self.source {
            *s *= factor;
        }
    }

    /// The per-row coefficient callback shared by the full and
    /// pattern-cached assembly paths (identical push order keeps the
    /// two bitwise interchangeable).
    fn row_fn<'a>(
        &self,
        asm: &'a Assembled,
        extra_diag: Option<&'a [f64]>,
    ) -> impl Fn(usize, &mut Vec<(usize, f64)>) + Sync + 'a {
        let (nx, ny, nz) = (asm.nx, asm.ny, asm.nz);
        move |c, row| {
            let i = c % nx;
            let j = (c / nx) % ny;
            let k = c / (nx * ny);
            if k > 0 {
                row.push((c - nx * ny, -asm.gzp[c - nx * ny]));
            }
            if j > 0 {
                row.push((c - nx, -asm.gyp[c - nx]));
            }
            if i > 0 {
                row.push((c - 1, -asm.gxp[c - 1]));
            }
            let extra = extra_diag.map_or(0.0, |e| e[c]);
            row.push((c, asm.diag[c] + extra));
            if i + 1 < nx {
                row.push((c + 1, -asm.gxp[c]));
            }
            if j + 1 < ny {
                row.push((c + nx, -asm.gyp[c]));
            }
            if k + 1 < nz {
                row.push((c + nx * ny, -asm.gzp[c]));
            }
        }
    }

    /// Solves the steady-state temperature field.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when no face provides a
    /// temperature reference (all adiabatic/flux), or a convergence
    /// failure from the iterative solver.
    pub fn solve_steady(&self) -> Result<FvField, ThermalError> {
        self.solve_steady_scaled(1.0)
    }

    /// Solves the steady field with every heat source multiplied by
    /// `factor`, without mutating the model. This is the power-sweep
    /// entry point: where a sweep over `scale_sources` must clone the
    /// model per point, `solve_steady_scaled` shares one model — and
    /// therefore one cached CSR pattern, one warm [`PcgWorkspace`] and
    /// (under IC(0)) one cached reordering — across the whole grid.
    /// The result is bitwise identical to cloning, calling
    /// [`FvModel::scale_sources`] and solving.
    ///
    /// # Errors
    ///
    /// As [`FvModel::solve_steady`].
    pub fn solve_steady_scaled(&self, factor: f64) -> Result<FvField, ThermalError> {
        let _span = aeropack_obs::span!("thermal.fv.solve_steady", cells = self.grid.cell_count());
        // The operator is singular (constant null space) unless at least
        // one face pins the temperature level.
        let has_reference = self
            .bc
            .iter()
            .any(|bc| matches!(bc, FaceBc::FixedTemperature(_) | FaceBc::Convection { .. }));
        if !has_reference {
            return Err(ThermalError::SingularSystem {
                context: "finite-volume steady solve",
            });
        }
        let asm = self.assemble_scaled(factor);
        if asm.diag.iter().any(|&d| d <= 0.0) {
            return Err(ThermalError::SingularSystem {
                context: "finite-volume steady solve",
            });
        }
        let a = self.csr(&asm, None);
        let cfg = self
            .config
            .clone()
            .context("finite-volume steady solve")
            .grid_dims(self.grid.shape());
        let mut temperatures = vec![0.0; self.grid.cell_count()];
        let stats = {
            let mut ws = self.workspace.lock().expect("workspace lock poisoned");
            solve_sparse_into(&mut ws, &a, &asm.rhs, &mut temperatures, &cfg)?
        };
        *self.stats.lock().expect("stats lock poisoned") = Some(stats);
        Ok(FvField {
            grid: self.grid,
            temperatures,
        })
    }

    /// Solves the steady field for several source scales in one
    /// batched call: the operator is assembled and the preconditioner
    /// set up once, and every scale's right-hand side goes through
    /// [`solve_multi_rhs_with`](aeropack_solver::solve_multi_rhs_with)
    /// against the shared matrix. Each returned field is bitwise
    /// identical to the corresponding [`FvModel::solve_steady_scaled`]
    /// call on the same model — both paths start PCG from zero over
    /// the same warm [`PcgWorkspace`] — which is the determinism
    /// contract the `aeropack-serve` request coalescer relies on.
    ///
    /// # Errors
    ///
    /// As [`FvModel::solve_steady`]; the first failing scale aborts
    /// the batch.
    pub fn solve_steady_multi(&self, factors: &[f64]) -> Result<Vec<FvField>, ThermalError> {
        if factors.is_empty() {
            return Ok(Vec::new());
        }
        let _span = aeropack_obs::span!("thermal.fv.solve_multi", batch = factors.len());
        let has_reference = self
            .bc
            .iter()
            .any(|bc| matches!(bc, FaceBc::FixedTemperature(_) | FaceBc::Convection { .. }));
        if !has_reference {
            return Err(ThermalError::SingularSystem {
                context: "finite-volume steady solve",
            });
        }
        let n = self.grid.cell_count();
        let asm = self.assemble_scaled(factors[0]);
        if asm.diag.iter().any(|&d| d <= 0.0) {
            return Err(ThermalError::SingularSystem {
                context: "finite-volume steady solve",
            });
        }
        let a = self.csr(&asm, None);
        let cfg = self
            .config
            .clone()
            .context("finite-volume steady solve")
            .grid_dims(self.grid.shape());
        // Only the right-hand side depends on the scale (sources scale,
        // conductances and boundary terms do not), so later scales
        // re-run the cheap O(n) assembly for their RHS only.
        let mut rhs_block = Vec::with_capacity(n * factors.len());
        rhs_block.extend_from_slice(&asm.rhs);
        for &factor in &factors[1..] {
            rhs_block.extend_from_slice(&self.assemble_scaled(factor).rhs);
        }
        let solutions = {
            let mut ws = self.workspace.lock().expect("workspace lock poisoned");
            solve_multi_rhs_with(&mut ws, &a, &rhs_block, &cfg)?
        };
        aeropack_obs::counter!("thermal.fv.multi_rhs.batches");
        aeropack_obs::counter!("thermal.fv.multi_rhs.solves", factors.len());
        let mut fields = Vec::with_capacity(solutions.len());
        let mut last_stats = None;
        for sol in solutions {
            last_stats = Some(sol.stats);
            fields.push(FvField {
                grid: self.grid,
                temperatures: sol.x,
            });
        }
        *self.stats.lock().expect("stats lock poisoned") = last_stats;
        Ok(fields)
    }

    /// Solves the steady field through the domain-decomposed
    /// [`ShardedSolve`] driver: the grid partitions into slab
    /// subdomains along `nz` (the tile ladder comes from a configured
    /// [`Precond::AdditiveSchwarz`](aeropack_solver::Precond), auto
    /// otherwise) grouped into `shards` in-process workers with halo
    /// exchange between them. The solution is bit-identical at any
    /// shard count and any thread count — `shards` is purely an
    /// execution knob. `aeropack_solver::shards_from_env` reads the
    /// conventional `AEROPACK_SHARDS` override.
    ///
    /// # Errors
    ///
    /// As [`FvModel::solve_steady`], plus an invalid-input error when
    /// the solver config requests RCM reordering (incompatible with
    /// slab partitioning).
    pub fn solve_steady_sharded(&self, shards: usize) -> Result<FvField, ThermalError> {
        let _span = aeropack_obs::span!(
            "thermal.fv.solve_sharded",
            cells = self.grid.cell_count(),
            shards = shards
        );
        let has_reference = self
            .bc
            .iter()
            .any(|bc| matches!(bc, FaceBc::FixedTemperature(_) | FaceBc::Convection { .. }));
        if !has_reference {
            return Err(ThermalError::SingularSystem {
                context: "finite-volume sharded steady solve",
            });
        }
        let asm = self.assemble_scaled(1.0);
        if asm.diag.iter().any(|&d| d <= 0.0) {
            return Err(ThermalError::SingularSystem {
                context: "finite-volume sharded steady solve",
            });
        }
        let a = self.csr(&asm, None);
        let cfg = self
            .config
            .clone()
            .context("finite-volume sharded steady solve")
            .grid_dims(self.grid.shape());
        let mut driver = ShardedSolve::new(&a, &cfg, shards)?;
        let sol = driver.solve(&asm.rhs)?;
        *self.stats.lock().expect("stats lock poisoned") = Some(sol.stats);
        Ok(FvField {
            grid: self.grid,
            temperatures: sol.x,
        })
    }

    /// Canonical 64-bit content fingerprint of this model: grid shape
    /// and spacing, per-cell conductivities, sources and capacities,
    /// face boundary conditions, and the solver settings that change
    /// the computed bits (method, preconditioner, reordering,
    /// tolerance). Two models built through different call sequences
    /// that end in the same per-cell state — e.g. the same power boxes
    /// added in a different order — fingerprint identically, which is
    /// what makes the hash usable as a content-addressed result-cache
    /// key. Thread count and context strings are excluded: they do not
    /// affect the solution values.
    ///
    /// # Panics
    ///
    /// Panics if any stored property is NaN (see
    /// [`Fingerprint::write_f64`](aeropack_solver::Fingerprint)).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = aeropack_solver::Fingerprint::new("thermal.fv.model");
        let (nx, ny, nz) = self.grid.shape();
        fp.write_usize(nx);
        fp.write_usize(ny);
        fp.write_usize(nz);
        let (dx, dy, dz) = self.grid.spacing();
        fp.write_f64(dx);
        fp.write_f64(dy);
        fp.write_f64(dz);
        fp.write_usize(self.k.len());
        for k in &self.k {
            fp.write_f64(k[0]);
            fp.write_f64(k[1]);
            fp.write_f64(k[2]);
        }
        fp.write_f64s(&self.source);
        fp.write_f64s(&self.rho_cp);
        for bc in &self.bc {
            match bc {
                FaceBc::Adiabatic => fp.write_u8(0),
                FaceBc::FixedTemperature(t) => {
                    fp.write_u8(1);
                    fp.write_f64(t.value());
                }
                FaceBc::Convection { h, ambient } => {
                    fp.write_u8(2);
                    fp.write_f64(h.value());
                    fp.write_f64(ambient.value());
                }
                FaceBc::UniformFlux(q) => {
                    fp.write_u8(3);
                    fp.write_f64(q.value());
                }
            }
        }
        fp.write_u8(self.config.get_method() as u8);
        fp.write_u8(self.config.get_preconditioner().code());
        fp.write_u8(self.config.get_preconditioner().degree() as u8);
        fp.write_u8(self.config.get_reorder() as u8);
        fp.write_f64(self.config.get_tolerance());
        fp.finish()
    }

    /// Assembles the steady conduction operator `A` (interior
    /// conductances plus boundary-condition diagonal additions, no
    /// capacity term) and its load vector `b`, so that the steady
    /// problem reads `A·T = b` and the semi-discrete transient problem
    /// reads `C·dT/dt = b − A·T` with `C` from [`FvModel::capacities`].
    ///
    /// This is the entry point custom time integrators (the
    /// `aeropack-mission` adaptive driver) build on: the symbolic CSR
    /// structure comes from the same cached pattern as the steady and
    /// stepper paths, so repeated assemblies after boundary-condition
    /// updates refill values only.
    pub fn assemble_operator(&self) -> (CsrMatrix, Vec<f64>) {
        let asm = self.assemble();
        let a = self.csr(&asm, None);
        (a, asm.rhs)
    }

    /// Per-cell integrated heat sources, W — the source layout that
    /// [`FvModel::scale_sources`] rescales. Transient drivers snapshot
    /// this once and compose time-varying right-hand sides themselves.
    pub fn sources(&self) -> &[f64] {
        &self.source
    }

    /// Per-cell heat capacities `ρ·cₚ·V` in J/K — the diagonal capacity
    /// matrix `C` of the semi-discrete transient problem.
    pub fn capacities(&self) -> Vec<f64> {
        let vol = self.grid.cell_volume();
        self.rho_cp.iter().map(|&rc| rc * vol).collect()
    }

    /// Wraps raw per-cell temperatures (grid order, x fastest, °C) into
    /// a field on this model's grid — the inverse of
    /// [`FvField::temperatures`], used to restore checkpointed states.
    ///
    /// # Errors
    ///
    /// Returns an error when the length does not match the grid.
    pub fn field_from_temperatures(&self, temperatures: Vec<f64>) -> Result<FvField, ThermalError> {
        if temperatures.len() != self.grid.cell_count() {
            return Err(ThermalError::invalid("field does not match this grid"));
        }
        Ok(FvField {
            grid: self.grid,
            temperatures,
        })
    }

    /// Advances a transient solution by one implicit-Euler step of
    /// length `dt_seconds` from the state `field`.
    ///
    /// The first call (for a given model state and step length)
    /// constructs a [`TransientStepper`] and caches it on the model;
    /// every later call forwards through that cached stepper exactly
    /// once, so the system matrix is **not** re-assembled per step and
    /// the stepper's warm solver workspace is reused. The cache is
    /// keyed on the model's content [`FvModel::fingerprint`] and the
    /// step length, so mutating the model (power, BCs, materials) or
    /// changing `dt_seconds` rebuilds transparently. Results are
    /// bitwise identical to driving a [`TransientStepper`] directly.
    ///
    /// Prefer [`FvModel::transient_stepper`], which skips the per-call
    /// fingerprint and lock traffic.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive step, mismatched field, or a
    /// solver failure.
    #[deprecated(
        since = "0.2.0",
        note = "use `transient_stepper`, which caches the assembled matrix across steps"
    )]
    pub fn step_transient(
        &self,
        field: &FvField,
        dt_seconds: f64,
    ) -> Result<FvField, ThermalError> {
        if dt_seconds <= 0.0 {
            return Err(ThermalError::invalid("time step must be positive"));
        }
        if field.temperatures.len() != self.grid.cell_count() {
            return Err(ThermalError::invalid("field does not match this grid"));
        }
        let model_fingerprint = self.fingerprint();
        let dt_bits = dt_seconds.to_bits();
        let mut cached = self
            .transient_cache
            .lock()
            .expect("transient cache lock poisoned");
        let hit = cached
            .as_ref()
            .is_some_and(|c| c.model_fingerprint == model_fingerprint && c.dt_bits == dt_bits);
        if hit {
            aeropack_obs::counter!("thermal.fv.transient_cache.hits");
        } else {
            aeropack_obs::counter!("thermal.fv.transient_cache.misses");
            *cached = Some(CachedTransient {
                model_fingerprint,
                dt_bits,
                stepper: self.transient_stepper(field.clone(), dt_seconds)?,
            });
        }
        let stepper = &mut cached.as_mut().expect("cache populated above").stepper;
        stepper
            .field
            .temperatures
            .copy_from_slice(&field.temperatures);
        stepper.step()?;
        *self.stats.lock().expect("stats lock poisoned") = stepper.last_solve_stats();
        Ok(stepper.field.clone())
    }

    /// Creates an implicit-Euler transient stepper starting from
    /// `initial`. The system matrix (conduction plus capacity terms) is
    /// assembled once here and reused by every [`TransientStepper::step`].
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive step or a mismatched field.
    pub fn transient_stepper(
        &self,
        initial: FvField,
        dt_seconds: f64,
    ) -> Result<TransientStepper, ThermalError> {
        if dt_seconds <= 0.0 {
            return Err(ThermalError::invalid("time step must be positive"));
        }
        if initial.temperatures.len() != self.grid.cell_count() {
            return Err(ThermalError::invalid("field does not match this grid"));
        }
        let asm = self.assemble();
        let vol = self.grid.cell_volume();
        let cap: Vec<f64> = self
            .rho_cp
            .iter()
            .map(|&rc| rc * vol / dt_seconds)
            .collect();
        let matrix = self.csr(&asm, Some(&cap));
        let n = self.grid.cell_count();
        Ok(TransientStepper {
            matrix,
            base_rhs: asm.rhs,
            cap,
            rhs: vec![0.0; n],
            workspace: PcgWorkspace::with_capacity(n),
            field: initial,
            config: self
                .config
                .clone()
                .context("finite-volume transient step")
                .grid_dims(self.grid.shape()),
            stats: None,
        })
    }

    /// Creates a uniform-temperature field for transient initial
    /// conditions.
    pub fn uniform_field(&self, temperature: Celsius) -> FvField {
        FvField {
            grid: self.grid,
            temperatures: vec![temperature.value(); self.grid.cell_count()],
        }
    }

    /// Heat leaving the domain through `face` for a solved field,
    /// positive outward. Used for energy-balance verification.
    ///
    /// # Errors
    ///
    /// Returns an error if the field does not match the grid.
    pub fn boundary_heat(&self, field: &FvField, face: Face) -> Result<Power, ThermalError> {
        if field.temperatures.len() != self.grid.cell_count() {
            return Err(ThermalError::invalid("field does not match this grid"));
        }
        let (nx, ny, nz) = self.grid.shape();
        let mut q = 0.0;
        let mut visit = |c: usize, axis: usize| {
            let t = field.temperatures[c];
            match self.bc[face.ordinal()] {
                FaceBc::Adiabatic => {}
                FaceBc::FixedTemperature(tf) => {
                    q += self.half_conductance(c, axis) * (t - tf.value());
                }
                FaceBc::Convection { h, ambient } => {
                    let area = self.face_area(axis);
                    let g_half = self.half_conductance(c, axis);
                    let g_conv = h.value() * area;
                    let g = g_half * g_conv / (g_half + g_conv);
                    q += g * (t - ambient.value());
                }
                FaceBc::UniformFlux(flux) => {
                    q -= flux.value() * self.face_area(axis);
                }
            }
        };
        match face {
            Face::XMin | Face::XMax => {
                let i = if face == Face::XMin { 0 } else { nx - 1 };
                for k in 0..nz {
                    for j in 0..ny {
                        visit((k * ny + j) * nx + i, 0);
                    }
                }
            }
            Face::YMin | Face::YMax => {
                let j = if face == Face::YMin { 0 } else { ny - 1 };
                for k in 0..nz {
                    for i in 0..nx {
                        visit((k * ny + j) * nx + i, 1);
                    }
                }
            }
            Face::ZMin | Face::ZMax => {
                let k = if face == Face::ZMin { 0 } else { nz - 1 };
                for j in 0..ny {
                    for i in 0..nx {
                        visit((k * ny + j) * nx + i, 2);
                    }
                }
            }
        }
        Ok(Power::new(q))
    }
}

/// Pre-assembled FV operator data.
struct Assembled {
    diag: Vec<f64>,
    rhs: Vec<f64>,
    gxp: Vec<f64>,
    gyp: Vec<f64>,
    gzp: Vec<f64>,
    nx: usize,
    ny: usize,
    nz: usize,
}

/// An implicit-Euler transient integrator over a fixed [`FvModel`] and
/// step length. The system matrix is assembled (in parallel) once at
/// construction and reused by every step, which is what makes long
/// thermal-shock and warm-up runs cheap.
///
/// # Examples
///
/// ```
/// use aeropack_thermal::{Face, FaceBc, FvGrid, FvModel};
/// use aeropack_materials::Material;
/// use aeropack_units::{Celsius, HeatTransferCoeff};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = FvGrid::new((0.02, 0.02, 0.02), (2, 2, 2))?;
/// let mut model = FvModel::new(grid, &Material::copper());
/// model.set_face_bc(Face::ZMax, FaceBc::Convection {
///     h: HeatTransferCoeff::new(50.0),
///     ambient: Celsius::new(0.0),
/// });
/// let mut stepper = model.transient_stepper(model.uniform_field(Celsius::new(100.0)), 10.0)?;
/// for _ in 0..20 {
///     stepper.step()?;
/// }
/// assert!(stepper.field().mean_temperature() < Celsius::new(100.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientStepper {
    matrix: CsrMatrix,
    base_rhs: Vec<f64>,
    cap: Vec<f64>,
    rhs: Vec<f64>,
    workspace: PcgWorkspace,
    field: FvField,
    config: SolverConfig,
    stats: Option<SolverStats>,
}

impl TransientStepper {
    /// Advances the state by one implicit-Euler step, returning the new
    /// field.
    ///
    /// The right-hand side is refreshed in place and the solve runs
    /// over the stepper's own [`PcgWorkspace`], so after the first step
    /// a long transient run performs no per-step heap allocation
    /// (beyond the residual history, if recording is enabled on the
    /// model's [`SolverConfig`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the cached linear system fails to solve.
    pub fn step(&mut self) -> Result<&FvField, ThermalError> {
        for (dst, ((r, c), t)) in self.rhs.iter_mut().zip(
            self.base_rhs
                .iter()
                .zip(&self.cap)
                .zip(&self.field.temperatures),
        ) {
            *dst = r + c * t;
        }
        let stats = solve_sparse_into(
            &mut self.workspace,
            &self.matrix,
            &self.rhs,
            &mut self.field.temperatures,
            &self.config,
        )?;
        aeropack_obs::counter!("solver.transient.steps");
        aeropack_obs::counter!("solver.transient.iterations", stats.iterations);
        self.stats = Some(stats);
        Ok(&self.field)
    }

    /// The current temperature field.
    pub fn field(&self) -> &FvField {
        &self.field
    }

    /// Consumes the stepper, yielding the current field.
    pub fn into_field(self) -> FvField {
        self.field
    }

    /// Statistics of the most recent step, if any.
    pub fn last_solve_stats(&self) -> Option<SolverStats> {
        self.stats.clone()
    }
}

/// A solved (or initial) temperature field over an [`FvGrid`].
#[derive(Debug, Clone)]
pub struct FvField {
    grid: FvGrid,
    temperatures: Vec<f64>,
}

impl FvField {
    /// Temperature of cell `(i, j, k)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the indices exceed the grid.
    pub fn at(&self, i: usize, j: usize, k: usize) -> Result<Celsius, ThermalError> {
        Ok(Celsius::new(self.temperatures[self.grid.index(i, j, k)?]))
    }

    /// The raw per-cell temperatures in grid order (x fastest), °C —
    /// the whole-field view that comparisons and postprocessors need
    /// without `cell_count` calls through [`FvField::at`].
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Minimum, maximum and volume-average temperature in one pass over
    /// the field — the accessor to use when more than one of the three
    /// is needed (the individual getters below delegate here, so the
    /// field is never scanned more than once per call).
    ///
    /// # Errors
    ///
    /// Returns an error for a degenerate field: no cells (min/max of an
    /// empty set is undefined — the old behaviour returned ±∞ and a NaN
    /// mean) or any non-finite temperature (`f64::min`/`max` silently
    /// skip NaN, so a poisoned field would otherwise report a healthy
    /// min/max around a NaN mean).
    pub fn summary(&self) -> Result<FieldSummary, ThermalError> {
        if self.temperatures.is_empty() {
            return Err(ThermalError::invalid(
                "cannot summarise an empty temperature field",
            ));
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &t in &self.temperatures {
            if !t.is_finite() {
                return Err(ThermalError::invalid(
                    "temperature field contains a non-finite value",
                ));
            }
            min = min.min(t);
            max = max.max(t);
            sum += t;
        }
        Ok(FieldSummary {
            min: Celsius::new(min),
            max: Celsius::new(max),
            mean: Celsius::new(sum / self.temperatures.len() as f64),
        })
    }

    /// Number of cells in the field.
    pub fn cell_count(&self) -> usize {
        self.temperatures.len()
    }

    /// The hottest cell temperature (NaN for a degenerate field — use
    /// [`FvField::summary`] for checked access).
    pub fn max_temperature(&self) -> Celsius {
        self.summary().map_or(Celsius::new(f64::NAN), |s| s.max)
    }

    /// The coldest cell temperature (NaN for a degenerate field — use
    /// [`FvField::summary`] for checked access).
    pub fn min_temperature(&self) -> Celsius {
        self.summary().map_or(Celsius::new(f64::NAN), |s| s.min)
    }

    /// Volume-average temperature (NaN for a degenerate field — use
    /// [`FvField::summary`] for checked access).
    pub fn mean_temperature(&self) -> Celsius {
        self.summary().map_or(Celsius::new(f64::NAN), |s| s.mean)
    }

    /// The grid this field lives on.
    pub fn grid(&self) -> &FvGrid {
        &self.grid
    }
}

/// Single-pass field statistics returned by [`FvField::summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldSummary {
    /// The coldest cell temperature.
    pub min: Celsius,
    /// The hottest cell temperature.
    pub max: Celsius,
    /// Volume-average temperature.
    pub mean: Celsius,
}

impl FieldSummary {
    /// Max-to-min spread across the field.
    pub fn spread(&self) -> f64 {
        self.max.value() - self.min.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeropack_materials::Material;

    #[test]
    fn slab_linear_profile() {
        // 1-D slab, fixed 100 °C / 0 °C ends: linear profile, exact flux
        // q = k·A·ΔT/L.
        let grid = FvGrid::new((0.1, 0.01, 0.01), (20, 1, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(100.0)));
        model.set_face_bc(Face::XMax, FaceBc::FixedTemperature(Celsius::new(0.0)));
        let field = model.solve_steady().unwrap();
        // Cell centres at x = (i+0.5)·dx → T = 100·(1 − x/L).
        for i in 0..20 {
            let x = (i as f64 + 0.5) * 0.005;
            let exact = 100.0 * (1.0 - x / 0.1);
            let got = field.at(i, 0, 0).unwrap().value();
            assert!((got - exact).abs() < 1e-6, "i={i}: {got} vs {exact}");
        }
        let q = model.boundary_heat(&field, Face::XMax).unwrap();
        let exact_q = 167.0 * 1e-4 * 100.0 / 0.1;
        assert!((q.value() - exact_q).abs() < 1e-6 * exact_q);
    }

    #[test]
    fn slab_with_source_is_parabolic() {
        // Uniform source, both ends at 0 °C: T_max = q'''·L²/(8k) at
        // centre.
        let grid = FvGrid::new((0.1, 0.01, 0.01), (40, 1, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(0.0)));
        model.set_face_bc(Face::XMax, FaceBc::FixedTemperature(Celsius::new(0.0)));
        let total = Power::new(50.0);
        model.add_power_box(total, (0, 0, 0), (40, 1, 1)).unwrap();
        let field = model.solve_steady().unwrap();
        let volume = 0.1 * 0.01 * 0.01;
        let qv = total.value() / volume;
        let exact = qv * 0.1 * 0.1 / (8.0 * 167.0);
        let got = field.max_temperature().value();
        assert!(
            (got - exact).abs() / exact < 0.01,
            "parabola peak {got} vs {exact}"
        );
    }

    #[test]
    fn convection_matches_series_resistance() {
        // Flux in at XMin, convection at XMax: the whole 1-D path is
        // R = L/(kA) + 1/(hA).
        let grid = FvGrid::new((0.05, 0.02, 0.02), (10, 1, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::copper());
        let q_in = 5.0; // W
        let area = 0.02 * 0.02;
        model.set_face_bc(Face::XMin, FaceBc::UniformFlux(HeatFlux::new(q_in / area)));
        model.set_face_bc(
            Face::XMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(200.0),
                ambient: Celsius::new(30.0),
            },
        );
        let field = model.solve_steady().unwrap();
        // Hot-face *cell-centre* temperature: 30 + q·(1/(hA) + (L−dx/2)/(kA)).
        let dx = 0.005;
        let r = 1.0 / (200.0 * area) + (0.05 - dx / 2.0) / (391.0 * area);
        let exact = 30.0 + q_in * r;
        let got = field.at(0, 0, 0).unwrap().value();
        assert!((got - exact).abs() < 1e-3, "{got} vs {exact}");
    }

    #[test]
    fn energy_conservation_3d() {
        let grid = FvGrid::new((0.06, 0.04, 0.01), (6, 4, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(12.0), (1, 1, 0), (3, 3, 1))
            .unwrap();
        model
            .add_power_box(Power::new(8.0), (4, 2, 1), (6, 4, 2))
            .unwrap();
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(25.0),
                ambient: Celsius::new(20.0),
            },
        );
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(20.0)));
        let field = model.solve_steady().unwrap();
        let q_out: f64 = Face::ALL
            .iter()
            .map(|&f| model.boundary_heat(&field, f).unwrap().value())
            .sum();
        assert!((q_out - 20.0).abs() < 1e-6 * 20.0, "out {q_out} vs in 20 W");
    }

    #[test]
    fn orthotropic_pcb_spreads_in_plane() {
        // Same board, isotropic resin vs orthotropic laminate: laminate
        // spreads a hot spot much better in plane.
        let grid = FvGrid::new((0.1, 0.1, 0.0016), (20, 20, 1)).unwrap();
        let hot = |model: &mut FvModel| {
            model
                .add_power_box(Power::new(5.0), (9, 9, 0), (11, 11, 1))
                .unwrap();
            model.set_face_bc(
                Face::ZMax,
                FaceBc::Convection {
                    h: HeatTransferCoeff::new(15.0),
                    ambient: Celsius::new(25.0),
                },
            );
            model.set_face_bc(
                Face::ZMin,
                FaceBc::Convection {
                    h: HeatTransferCoeff::new(15.0),
                    ambient: Celsius::new(25.0),
                },
            );
        };
        let mut resin = FvModel::new(grid, &Material::fr4());
        hot(&mut resin);
        let mut laminate = FvModel::new(grid, &Material::fr4());
        laminate
            .fill_box_orthotropic(
                [
                    ThermalConductivity::new(40.0),
                    ThermalConductivity::new(40.0),
                    ThermalConductivity::new(0.35),
                ],
                1.85e6,
                (0, 0, 0),
                (20, 20, 1),
            )
            .unwrap();
        hot(&mut laminate);
        let t_resin = resin.solve_steady().unwrap().max_temperature();
        let t_lam = laminate.solve_steady().unwrap().max_temperature();
        assert!(
            t_resin.value() > t_lam.value() + 20.0,
            "copper planes must cut the hot spot: {t_resin} vs {t_lam}"
        );
    }

    #[test]
    fn no_reference_is_singular() {
        let grid = FvGrid::new((0.1, 0.1, 0.01), (4, 4, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(1.0), (0, 0, 0), (4, 4, 1))
            .unwrap();
        assert!(matches!(
            model.solve_steady(),
            Err(ThermalError::SingularSystem { .. })
        ));
    }

    #[test]
    fn transient_lumped_cooling_matches_exponential() {
        // Small Biot copper block cooling by convection: T(t) follows
        // exp(−t/τ) with τ = ρcV/(hA).
        let grid = FvGrid::new((0.02, 0.02, 0.02), (2, 2, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::copper());
        let h = 50.0;
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(h),
                ambient: Celsius::new(0.0),
            },
        );
        let rho_cp = 8940.0 * 385.0;
        let volume = 0.02f64.powi(3);
        let area = 0.02 * 0.02;
        let tau = rho_cp * volume / (h * area);
        let dt = tau / 200.0;
        let steps = 100;
        let mut stepper = model
            .transient_stepper(model.uniform_field(Celsius::new(100.0)), dt)
            .unwrap();
        for _ in 0..steps {
            stepper.step().unwrap();
        }
        assert!(stepper.last_solve_stats().is_some());
        let t_num = stepper.field().mean_temperature().value();
        let t_exact = 100.0 * (-(steps as f64) * dt / tau).exp();
        assert!(
            (t_num - t_exact).abs() < 1.0,
            "lumped cooling {t_num} vs {t_exact}"
        );
    }

    #[test]
    fn invalid_boxes_are_rejected() {
        let grid = FvGrid::new((0.1, 0.1, 0.01), (4, 4, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        assert!(model
            .add_power_box(Power::new(1.0), (0, 0, 0), (5, 4, 1))
            .is_err());
        assert!(model
            .add_power_box(Power::new(1.0), (2, 2, 0), (2, 3, 1))
            .is_err());
        assert!(FvGrid::new((0.0, 0.1, 0.1), (2, 2, 2)).is_err());
        assert!(FvGrid::new((0.1, 0.1, 0.1), (0, 2, 2)).is_err());
    }

    #[test]
    fn transient_reaches_steady_state() {
        let grid = FvGrid::new((0.05, 0.05, 0.005), (5, 5, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(4.0), (2, 2, 0), (3, 3, 1))
            .unwrap();
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(100.0),
                ambient: Celsius::new(20.0),
            },
        );
        let steady = model.solve_steady().unwrap();
        let mut field = model.uniform_field(Celsius::new(20.0));
        // The deprecated per-step path must keep working (and agreeing
        // with the cached-stepper path) until it is removed.
        #[allow(deprecated)]
        for _ in 0..400 {
            field = model.step_transient(&field, 5.0).unwrap();
        }
        let dmax = (field.max_temperature().value() - steady.max_temperature().value()).abs();
        assert!(dmax < 0.05, "transient must settle to steady: Δ={dmax}");
    }

    #[test]
    fn deprecated_step_transient_matches_stepper_bitwise() {
        // Satellite of the mission-transient PR: the deprecated per-call
        // shim must forward through one cached stepper (assembling the
        // system exactly once) and reproduce the explicit stepper path
        // bit for bit, step after step.
        let grid = FvGrid::new((0.05, 0.05, 0.005), (5, 5, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(6.0), (1, 1, 0), (4, 4, 1))
            .unwrap();
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(80.0),
                ambient: Celsius::new(25.0),
            },
        );
        let dt = 2.5;
        let mut stepper = model
            .transient_stepper(model.uniform_field(Celsius::new(25.0)), dt)
            .unwrap();
        let mut field = model.uniform_field(Celsius::new(25.0));
        let (_, misses_before) = model.pattern_cache_stats();
        for step in 0..6 {
            #[allow(deprecated)]
            {
                field = model.step_transient(&field, dt).unwrap();
            }
            stepper.step().unwrap();
            assert_eq!(
                field.temperatures(),
                stepper.field().temperatures(),
                "deprecated path diverged from the stepper at step {step}"
            );
        }
        // One assembly for the explicit stepper, one for the cached shim
        // on its first call — and none for the five calls after it.
        let (_, misses_after) = model.pattern_cache_stats();
        assert_eq!(
            misses_after - misses_before,
            0,
            "pattern misses should not grow"
        );
        let (hits, misses) = model.pattern_cache_stats();
        assert_eq!(
            (hits, misses),
            (1, 1),
            "one symbolic build (explicit stepper) plus one pattern-hit \
             assembly (the shim's first call) expected"
        );
        // Changing the step length rebuilds the cached stepper once.
        #[allow(deprecated)]
        let via_shim = model.step_transient(&field, dt * 2.0).unwrap();
        let mut fresh = model.transient_stepper(field.clone(), dt * 2.0).unwrap();
        fresh.step().unwrap();
        assert_eq!(via_shim.temperatures(), fresh.field().temperatures());
    }

    #[test]
    fn assemble_operator_matches_steady_solve() {
        // `A·T = b` from the public operator accessor must be consistent
        // with the steady solve: the residual of the solved field is at
        // solver-tolerance level.
        let grid = FvGrid::new((0.06, 0.04, 0.01), (6, 4, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(10.0), (1, 1, 0), (4, 3, 2))
            .unwrap();
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(20.0)));
        let field = model.solve_steady().unwrap();
        let (a, b) = model.assemble_operator();
        let r = a.spmv(field.temperatures());
        let b_norm = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        let r_norm = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (ri - bi) * (ri - bi))
            .sum::<f64>()
            .sqrt();
        assert!(r_norm <= 1e-7 * b_norm, "residual {r_norm} vs |b| {b_norm}");
        // Capacities are ρ·cₚ·V per cell.
        let cap = model.capacities();
        assert_eq!(cap.len(), grid.cell_count());
        let expect = 2700.0 * 896.0 * grid.cell_volume();
        assert!(cap.iter().all(|&c| (c - expect).abs() < 1e-9 * expect));
        // Round-trip a field through the raw-temperature constructor.
        let restored = model
            .field_from_temperatures(field.temperatures().to_vec())
            .unwrap();
        assert_eq!(restored.temperatures(), field.temperatures());
        assert!(model.field_from_temperatures(vec![0.0; 3]).is_err());
    }

    #[test]
    fn steady_solve_records_stats() {
        use aeropack_solver::{Method, Precond};
        let grid = FvGrid::new((0.05, 0.05, 0.005), (8, 8, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(4.0), (2, 2, 0), (5, 5, 1))
            .unwrap();
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(20.0)));
        assert!(model.last_solve_stats().is_none());
        model.set_solver_config(SolverConfig::new().preconditioner(Precond::Ssor).threads(2));
        model.solve_steady().unwrap();
        let stats = model.last_solve_stats().unwrap();
        assert_eq!(stats.method, Method::Pcg);
        assert_eq!(stats.preconditioner, Precond::Ssor);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.unknowns, 64);
        assert!(stats.iterations > 0);
        assert!(stats.converged());
        // The clone carries the recorded stats along.
        assert_eq!(model.clone().last_solve_stats(), Some(stats));
    }

    #[test]
    fn pattern_cache_reuses_structure_bitwise() {
        let grid = FvGrid::new((0.05, 0.05, 0.005), (6, 6, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(5.0), (1, 1, 0), (4, 4, 1))
            .unwrap();
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(20.0)));
        assert_eq!(model.pattern_cache_stats(), (0, 0));
        let first = model.solve_steady().unwrap();
        assert_eq!(model.pattern_cache_stats(), (0, 1));
        // Re-solving (and solving at a scaled power) hits the cache and
        // reproduces the cold-path numbers exactly.
        let again = model.solve_steady().unwrap();
        assert_eq!(model.pattern_cache_stats(), (1, 1));
        assert_eq!(first.temperatures, again.temperatures);
        model.scale_sources(2.0);
        assert!((model.total_power().value() - 10.0).abs() < 1e-12);
        let doubled = model.solve_steady().unwrap();
        assert_eq!(model.pattern_cache_stats(), (2, 1));
        let mut cold = FvModel::new(grid, &Material::aluminum_6061());
        cold.add_power_box(Power::new(10.0), (1, 1, 0), (4, 4, 1))
            .unwrap();
        cold.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(20.0)));
        let reference = cold.solve_steady().unwrap();
        assert_eq!(doubled.temperatures, reference.temperatures);
        // Clones inherit the pattern (first solve is already a hit) but
        // start their own counters.
        let clone = model.clone();
        assert_eq!(clone.pattern_cache_stats(), (0, 0));
        clone.solve_steady().unwrap();
        assert_eq!(clone.pattern_cache_stats(), (1, 0));
    }

    #[test]
    fn summary_matches_individual_scans() {
        let grid = FvGrid::new((0.05, 0.05, 0.005), (5, 5, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(4.0), (2, 2, 0), (3, 3, 1))
            .unwrap();
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(20.0)));
        let field = model.solve_steady().unwrap();
        let s = field.summary().unwrap();
        assert_eq!(s.max, field.max_temperature());
        assert_eq!(s.min, field.min_temperature());
        assert_eq!(s.mean, field.mean_temperature());
        assert!(s.spread() > 0.0);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn summary_rejects_degenerate_fields() {
        // No public constructor produces these (FvGrid forbids zero
        // cells), but the accessor must stay well-defined if one ever
        // appears: the old code returned min = +∞, max = −∞, mean = NaN.
        let grid = FvGrid::new((0.01, 0.01, 0.01), (1, 1, 1)).unwrap();
        let empty = FvField {
            grid,
            temperatures: Vec::new(),
        };
        assert!(empty.summary().is_err());
        assert!(empty.max_temperature().value().is_nan());
        assert!(empty.min_temperature().value().is_nan());
        assert!(empty.mean_temperature().value().is_nan());
        assert_eq!(empty.cell_count(), 0);

        let poisoned = FvField {
            grid,
            temperatures: vec![f64::NAN],
        };
        assert!(poisoned.summary().is_err());
        assert!(poisoned.mean_temperature().value().is_nan());

        let healthy = FvModel::new(grid, &Material::aluminum_6061())
            .uniform_field(Celsius::new(25.0))
            .summary()
            .unwrap();
        assert_eq!(healthy.min, healthy.max);
        assert_eq!(healthy.mean.value(), 25.0);
    }

    #[test]
    fn solver_config_choice_does_not_change_the_field() {
        use aeropack_solver::Precond;
        let grid = FvGrid::new((0.06, 0.04, 0.01), (6, 4, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(12.0), (1, 1, 0), (3, 3, 1))
            .unwrap();
        model.set_face_bc(Face::XMin, FaceBc::FixedTemperature(Celsius::new(20.0)));
        let jacobi = model.solve_steady().unwrap();
        for (precond, threads) in [(Precond::Ssor, 4), (Precond::Ic0, 2)] {
            model.set_solver_config(SolverConfig::new().preconditioner(precond).threads(threads));
            let other = model.solve_steady().unwrap();
            for i in 0..6 {
                let a = jacobi.at(i, 0, 0).unwrap().value();
                let b = other.at(i, 0, 0).unwrap().value();
                assert!((a - b).abs() < 1e-7, "{precond:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn solve_steady_scaled_is_bitwise_identical_to_scale_sources() {
        use aeropack_solver::Precond;
        let grid = FvGrid::new((0.08, 0.06, 0.004), (8, 6, 2)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        model
            .add_power_box(Power::new(15.0), (2, 1, 0), (6, 5, 2))
            .unwrap();
        model.set_face_bc(
            Face::ZMax,
            FaceBc::Convection {
                h: HeatTransferCoeff::new(40.0),
                ambient: Celsius::new(30.0),
            },
        );
        for precond in [Precond::Jacobi, Precond::Ic0] {
            model.set_solver_config(SolverConfig::new().preconditioner(precond));
            for factor in [0.25, 1.0, 3.5] {
                let scaled = model.solve_steady_scaled(factor).unwrap();
                let mut mutated = model.clone();
                mutated.scale_sources(factor);
                let reference = mutated.solve_steady().unwrap();
                assert_eq!(
                    scaled.temperatures, reference.temperatures,
                    "{precond:?} factor {factor}: scaled solve must match scale_sources bitwise"
                );
            }
            // The model itself is untouched by the scaled solves.
            assert!((model.total_power().value() - 15.0).abs() < 1e-12);
        }
    }
}
