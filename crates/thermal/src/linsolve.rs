//! Internal linear solvers: a dense Cholesky for resistive networks and
//! a Jacobi-preconditioned conjugate gradient for the finite-volume
//! grids (matrix-free, SPD).

use crate::error::ThermalError;

/// Solves a dense symmetric positive-definite system in place
/// (row-major `a` of size `n×n`).
pub(crate) fn cholesky_solve(
    a: &mut [f64],
    b: &[f64],
    n: usize,
    context: &'static str,
) -> Result<Vec<f64>, ThermalError> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    // In-place lower Cholesky.
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(ThermalError::SingularSystem { context });
                }
                a[i * n + j] = sum.sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }
    let mut x = b.to_vec();
    for i in 0..n {
        for k in 0..i {
            let v = a[i * n + k] * x[k];
            x[i] -= v;
        }
        x[i] /= a[i * n + i];
    }
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            let v = a[k * n + i] * x[k];
            x[i] -= v;
        }
        x[i] /= a[i * n + i];
    }
    Ok(x)
}

/// Conjugate gradient with Jacobi preconditioning on a matrix-free SPD
/// operator. `apply` computes `y = A·x`; `diag` is the matrix diagonal.
pub(crate) fn pcg<F>(
    apply: F,
    diag: &[f64],
    b: &[f64],
    tol: f64,
    max_iter: usize,
    context: &'static str,
) -> Result<Vec<f64>, ThermalError>
where
    F: Fn(&[f64], &mut [f64]),
{
    let n = b.len();
    if diag.iter().any(|&d| d <= 0.0) {
        return Err(ThermalError::SingularSystem { context });
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let b_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        return Ok(x);
    }
    let mut z: Vec<f64> = r.iter().zip(diag).map(|(ri, di)| ri / di).collect();
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let mut ap = vec![0.0; n];
    for iter in 0..max_iter {
        apply(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap <= 0.0 {
            return Err(ThermalError::SingularSystem { context });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let r_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if r_norm <= tol * b_norm {
            return Ok(x);
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        let _ = iter;
    }
    let r_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    Err(ThermalError::NotConverged {
        context,
        iterations: max_iter,
        residual: r_norm / b_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_spd_solve() {
        let mut a = vec![4.0, 1.0, 1.0, 3.0];
        let x = cholesky_solve(&mut a, &[1.0, 2.0], 2, "test").unwrap();
        // [[4,1],[1,3]] x = [1,2] → x = [1/11, 7/11].
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn dense_rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0];
        assert!(cholesky_solve(&mut a, &[1.0, 1.0], 2, "test").is_err());
    }

    #[test]
    fn pcg_solves_laplacian_chain() {
        // Tridiagonal [2,-1] chain with Dirichlet ends, n=50.
        let n = 50;
        let apply = |x: &[f64], y: &mut [f64]| {
            for i in 0..n {
                let mut v = 2.0 * x[i];
                if i > 0 {
                    v -= x[i - 1];
                }
                if i + 1 < n {
                    v -= x[i + 1];
                }
                y[i] = v;
            }
        };
        let diag = vec![2.0; n];
        let b = vec![1.0; n];
        let x = pcg(apply, &diag, &b, 1e-12, 1000, "test").unwrap();
        // Exact solution of -u'' = 1: x_i = i(n+1-i)/2 with 1-based i.
        for (i, &xi) in x.iter().enumerate() {
            let k = (i + 1) as f64;
            let exact = k * (n as f64 + 1.0 - k) / 2.0;
            assert!((xi - exact).abs() < 1e-6 * exact.max(1.0), "i={i}");
        }
    }

    #[test]
    fn pcg_rejects_zero_diag() {
        let diag = vec![0.0; 3];
        let r = pcg(
            |_, y| y.fill(0.0),
            &diag,
            &[1.0, 1.0, 1.0],
            1e-10,
            10,
            "test",
        );
        assert!(r.is_err());
    }
}
