//! Finite-volume conduction, resistive thermal networks and convection
//! correlations — the reproduction of the paper's FloTHERM role.
//!
//! Three layers, matching how the paper's thermal design levels use
//! them (Fig 4):
//!
//! * [`Network`] — lumped resistive networks for Level-1 sizing and for
//!   composing device models (heat pipes, TIM joints, structures).
//! * [`FvModel`] — a 3-D structured finite-volume conduction solver with
//!   orthotropic cells, volumetric sources and convective/fixed/flux
//!   face boundary conditions, for Level-2 (PCB) and Level-3 (component)
//!   fields. Includes an implicit transient stepper for thermal-shock
//!   and warm-up studies.
//! * Correlations ([`natural_convection_vertical_plate`],
//!   [`forced_convection_channel`], …) — the film coefficients that
//!   connect the conduction models to their air environment.
//!
//! # Example: a conduction path with a convective sink
//!
//! ```
//! use aeropack_thermal::Network;
//! use aeropack_units::{Celsius, Power, ThermalResistance};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = Network::new();
//! let ambient = net.add_fixed("cabin air", Celsius::new(40.0));
//! let board = net.add_floating("PCB");
//! net.add_heat(board, Power::new(25.0))?;
//! net.connect(board, ambient, ThermalResistance::new(1.8))?;
//! let sol = net.solve()?;
//! assert!((sol.temperature(board)?.value() - 85.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod correlations;
mod error;
mod flownet;
mod fv;
mod network;
mod spreading;

pub use correlations::{
    film_temperature, forced_convection_channel, forced_convection_flat_plate,
    natural_convection_horizontal_plate_down, natural_convection_horizontal_plate_up,
    natural_convection_vertical_plate, radiation_coefficient, STEFAN_BOLTZMANN,
};
pub use error::ThermalError;
pub use flownet::{solve_rack_flow, ChannelImpedance, FanCurve, FlowSolution};
pub use fv::{
    Face, FaceBc, FieldSummary, FvField, FvGrid, FvModel, TransientStepper, FV_SWEEP_GRAIN,
};
pub use network::{Network, NodeId, Solution};
pub use spreading::{spreading_resistance, SpreadingResult};

/// Deprecated backend-error alias. Solver failures never escape this
/// crate raw — every public API wraps them in [`ThermalError`] (and
/// wire-level consumers get stable error-code strings through the
/// unified `aeropack::Error`) — so code matching on this alias is
/// matching an error this crate does not return.
#[deprecated(
    since = "0.2.0",
    note = "thermal APIs return ThermalError; use aeropack::Error for unified \
            wire-level error codes"
)]
pub type SolverError = aeropack_solver::SolverError;
