//! Analytic spreading (constriction) resistance — the closed-form
//! companion to the finite-volume hot-spot solutions, after S. Lee,
//! S. Song, V. Au and K. P. Moran, "Constriction/spreading resistance
//! model for electronics packaging" (1995).
//!
//! A circular heat source of radius `a` sits on a circular plate of
//! radius `b` and thickness `t` whose far face is cooled by a film
//! coefficient `h`. The total source-to-fluid resistance splits into
//! the one-dimensional slab + film part and the constriction part
//! `ψ/(k·a·√π)`.

use aeropack_units::{HeatTransferCoeff, Length, ThermalConductivity, ThermalResistance};

use crate::error::ThermalError;

/// The decomposed result of a spreading-resistance calculation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadingResult {
    /// Constriction (spreading) contribution.
    pub spreading: ThermalResistance,
    /// One-dimensional slab conduction contribution.
    pub one_dimensional: ThermalResistance,
    /// Film (convective) contribution over the plate.
    pub film: ThermalResistance,
}

impl SpreadingResult {
    /// The total source-to-fluid resistance.
    pub fn total(&self) -> ThermalResistance {
        self.spreading + self.one_dimensional + self.film
    }
}

/// Computes the Lee–Song–Au–Moran spreading resistance of a circular
/// source (radius `source`) centred on a circular plate (radius
/// `plate`, thickness `thickness`, conductivity `k`) cooled on the far
/// face by `h`.
///
/// # Errors
///
/// Returns an error for non-positive dimensions, `source >= plate`, or
/// non-positive `k`/`h`.
///
/// # Examples
///
/// ```
/// use aeropack_thermal::spreading_resistance;
/// use aeropack_units::{HeatTransferCoeff, Length, ThermalConductivity};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 1 cm die on a 5 cm aluminium plate, 3 mm thick, h = 200 W/m²K.
/// let r = spreading_resistance(
///     Length::from_millimeters(5.0),
///     Length::from_millimeters(25.0),
///     Length::from_millimeters(3.0),
///     ThermalConductivity::new(167.0),
///     HeatTransferCoeff::new(200.0),
/// )?;
/// assert!(r.spreading.value() > 0.0);
/// assert!(r.total().value() > r.film.value());
/// # Ok(())
/// # }
/// ```
pub fn spreading_resistance(
    source: Length,
    plate: Length,
    thickness: Length,
    k: ThermalConductivity,
    h: HeatTransferCoeff,
) -> Result<SpreadingResult, ThermalError> {
    let a = source.value();
    let b = plate.value();
    let t = thickness.value();
    if a <= 0.0 || b <= 0.0 || t <= 0.0 {
        return Err(ThermalError::invalid("dimensions must be positive"));
    }
    if a >= b {
        return Err(ThermalError::invalid(
            "source radius must be below the plate radius",
        ));
    }
    if k.value() <= 0.0 || h.value() <= 0.0 {
        return Err(ThermalError::invalid("k and h must be positive"));
    }
    let sqrt_pi = std::f64::consts::PI.sqrt();
    let eps = a / b;
    let tau = t / b;
    let bi = h.value() * b / k.value();
    let lambda = std::f64::consts::PI + 1.0 / (sqrt_pi * eps);
    let phi = ((lambda * tau).tanh() + lambda / bi) / (1.0 + (lambda / bi) * (lambda * tau).tanh());
    let psi = 0.5 * (1.0 - eps).powf(1.5) * phi;
    let plate_area = std::f64::consts::PI * b * b;
    Ok(SpreadingResult {
        spreading: ThermalResistance::new(psi / (k.value() * a * sqrt_pi)),
        one_dimensional: ThermalResistance::new(t / (k.value() * plate_area)),
        film: ThermalResistance::new(1.0 / (h.value() * plate_area)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fv::{Face, FaceBc, FvGrid, FvModel};
    use aeropack_materials::Material;
    use aeropack_units::{Celsius, Power};

    #[test]
    fn half_space_limit() {
        // Thick plate, large b/a, strong cooling: the constriction term
        // approaches the classical isolated-source value ≈ 0.28/(k·a).
        let k = ThermalConductivity::new(167.0);
        let r = spreading_resistance(
            Length::from_millimeters(2.0),
            Length::from_millimeters(100.0),
            Length::from_millimeters(100.0),
            k,
            HeatTransferCoeff::new(1.0e5),
        )
        .unwrap();
        let classical = 0.28 / (k.value() * 2.0e-3);
        let rel = (r.spreading.value() - classical).abs() / classical;
        assert!(
            rel < 0.15,
            "spreading {} vs classical {classical} ({rel})",
            r.spreading
        );
    }

    #[test]
    fn thin_plate_needs_more_spreading() {
        let run = |t_mm: f64| {
            spreading_resistance(
                Length::from_millimeters(5.0),
                Length::from_millimeters(30.0),
                Length::from_millimeters(t_mm),
                ThermalConductivity::new(167.0),
                HeatTransferCoeff::new(100.0),
            )
            .unwrap()
            .spreading
            .value()
        };
        // Thinner plates constrain the spreading cone: higher ψ.
        assert!(run(1.0) > run(5.0));
    }

    #[test]
    fn agrees_with_finite_volume_solution() {
        // Cross-validation of the two independent implementations: a
        // square-plate FV hot-spot against the circular-geometry
        // analytic model at equivalent areas, compared on total
        // source-to-fluid resistance.
        let k_al = Material::aluminum_6061().thermal_conductivity;
        let h = HeatTransferCoeff::new(150.0);
        let t = 2.0e-3;
        let side = 0.10;
        let spot = 0.02;
        let q = 10.0;

        // FV: 2 mm aluminium plate, 2 cm central source, convection on
        // the far face.
        let grid = FvGrid::new((side, side, t), (25, 25, 1)).unwrap();
        let mut model = FvModel::new(grid, &Material::aluminum_6061());
        let lo = ((side / 2.0 - spot / 2.0) / side * 25.0) as usize;
        let hi = ((side / 2.0 + spot / 2.0) / side * 25.0).ceil() as usize;
        model
            .add_power_box(Power::new(q), (lo, lo, 0), (hi, hi, 1))
            .unwrap();
        model.set_face_bc(
            Face::ZMin,
            FaceBc::Convection {
                h,
                ambient: Celsius::new(0.0),
            },
        );
        let field = model.solve_steady().unwrap();
        // Source-average temperature ≈ max for a small spot.
        let r_fv = field.max_temperature().value() / q;

        // Analytic at equivalent radii.
        let a = spot / std::f64::consts::PI.sqrt();
        let b = side / std::f64::consts::PI.sqrt();
        let r_an = spreading_resistance(Length::new(a), Length::new(b), Length::new(t), k_al, h)
            .unwrap()
            .total()
            .value();
        let rel = (r_fv - r_an).abs() / r_an;
        assert!(
            rel < 0.20,
            "FV {r_fv:.3} K/W vs analytic {r_an:.3} K/W ({:.0}% apart)",
            rel * 100.0
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let k = ThermalConductivity::new(100.0);
        let h = HeatTransferCoeff::new(50.0);
        assert!(spreading_resistance(
            Length::new(0.02),
            Length::new(0.01),
            Length::new(0.002),
            k,
            h
        )
        .is_err());
        assert!(
            spreading_resistance(Length::ZERO, Length::new(0.01), Length::new(0.002), k, h)
                .is_err()
        );
    }
}
