//! Error type for the thermal solvers.

use std::error::Error;
use std::fmt;

/// Error returned by thermal model construction and solution.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// The linear system could not be solved (network floating, grid
    /// without any temperature reference, …).
    SingularSystem {
        /// What was being solved.
        context: &'static str,
    },
    /// An iterative solver exhausted its budget.
    NotConverged {
        /// Which solver.
        context: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// Invalid model construction input.
    InvalidModel {
        /// Human-readable description.
        reason: String,
    },
    /// A node/cell index was out of range.
    IndexOutOfRange {
        /// What kind of index.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularSystem { context } => {
                write!(
                    f,
                    "singular thermal system in {context} (no temperature reference?)"
                )
            }
            Self::NotConverged {
                context,
                iterations,
                residual,
            } => write!(
                f,
                "{context} did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            Self::InvalidModel { reason } => write!(f, "invalid thermal model: {reason}"),
            Self::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
        }
    }
}

impl Error for ThermalError {}

impl From<aeropack_solver::SolverError> for ThermalError {
    fn from(e: aeropack_solver::SolverError) -> Self {
        use aeropack_solver::SolverError;
        match e {
            SolverError::Singular { context } => Self::SingularSystem { context },
            SolverError::NotConverged {
                context,
                iterations,
                residual,
            } => Self::NotConverged {
                context,
                iterations,
                residual,
            },
            SolverError::InvalidInput { reason } => Self::InvalidModel { reason },
        }
    }
}

impl ThermalError {
    /// Shorthand for [`ThermalError::InvalidModel`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        Self::InvalidModel {
            reason: reason.into(),
        }
    }
}
