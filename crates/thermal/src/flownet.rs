//! Rack air-flow distribution: a fan (or ARINC 600 supply) feeding
//! parallel card channels — the hydraulic layer of the Fig 6 computer
//! racks. The solver intersects the fan curve with the parallel
//! square-law channel impedances and reports the per-channel mass
//! flows, exposing the classic failure mode: one obstructed channel
//! starving its card while the rack total still looks healthy.

use std::time::Instant;

use aeropack_materials::AirState;
use aeropack_solver::{Method, Precond, SolverStats};
use aeropack_units::{Length, MassFlowRate, Pressure};

use crate::error::ThermalError;

/// A fan (or supply) curve: `Δp = p₀ · (1 − (ṁ/ṁ_max)²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanCurve {
    /// Stall (zero-flow) pressure.
    pub stall_pressure: Pressure,
    /// Free-delivery (zero-pressure) mass flow.
    pub max_flow: MassFlowRate,
}

impl FanCurve {
    /// Builds a fan curve.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive parameters.
    pub fn new(stall_pressure: Pressure, max_flow: MassFlowRate) -> Result<Self, ThermalError> {
        if stall_pressure.value() <= 0.0 || max_flow.value() <= 0.0 {
            return Err(ThermalError::invalid(
                "fan curve parameters must be positive",
            ));
        }
        Ok(Self {
            stall_pressure,
            max_flow,
        })
    }

    /// Pressure available at a given delivered flow (zero beyond
    /// free delivery).
    pub fn pressure_at(&self, flow: MassFlowRate) -> Pressure {
        let r = flow.value() / self.max_flow.value();
        Pressure::new((self.stall_pressure.value() * (1.0 - r * r)).max(0.0))
    }
}

/// A card-channel hydraulic impedance: `Δp = k·ṁ²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelImpedance {
    k: f64,
}

impl ChannelImpedance {
    /// Builds an impedance directly from its coefficient `k`
    /// (Pa·s²/kg²).
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive coefficient.
    pub fn from_coefficient(k: f64) -> Result<Self, ThermalError> {
        if k <= 0.0 {
            return Err(ThermalError::invalid(
                "impedance coefficient must be positive",
            ));
        }
        Ok(Self { k })
    }

    /// Builds the impedance of a rectangular card channel
    /// (`width × gap × length`) from a friction-factor/minor-loss
    /// closure: `Δp = (f·L/D_h + ΣK) · ṁ² / (2·ρ·A²)` with f = 0.05
    /// (rough developing channel) and entry+exit losses ΣK = 1.5.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive geometry.
    pub fn card_channel(
        air: &AirState,
        width: Length,
        gap: Length,
        length: Length,
    ) -> Result<Self, ThermalError> {
        if width.value() <= 0.0 || gap.value() <= 0.0 || length.value() <= 0.0 {
            return Err(ThermalError::invalid("channel dimensions must be positive"));
        }
        let area = width.value() * gap.value();
        let dh = 2.0 * width.value() * gap.value() / (width.value() + gap.value());
        let f = 0.05;
        let sum_k = 1.5;
        let k = (f * length.value() / dh + sum_k) / (2.0 * air.density.value() * area * area);
        Ok(Self { k })
    }

    /// A partially obstructed variant of this channel (cable bundle,
    /// misloaded card): the free-area fraction `open` scales the
    /// impedance as `1/open²`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < open ≤ 1`.
    pub fn obstructed(&self, open: f64) -> Result<Self, ThermalError> {
        if !(open > 0.0 && open <= 1.0) {
            return Err(ThermalError::invalid("open fraction must be in (0, 1]"));
        }
        Ok(Self {
            k: self.k / (open * open),
        })
    }

    /// Pressure drop at a mass flow.
    pub fn pressure_drop(&self, flow: MassFlowRate) -> Pressure {
        Pressure::new(self.k * flow.value() * flow.value())
    }

    /// Flow at a driving pressure.
    pub fn flow_at(&self, dp: Pressure) -> MassFlowRate {
        MassFlowRate::new((dp.value().max(0.0) / self.k).sqrt())
    }
}

/// The solved rack flow split.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSolution {
    /// Plenum pressure at the operating point.
    pub plenum_pressure: Pressure,
    /// Per-channel mass flows, in input order.
    pub channel_flows: Vec<MassFlowRate>,
    /// How the operating-point search went.
    pub stats: SolverStats,
}

impl FlowSolution {
    /// Total delivered flow.
    pub fn total_flow(&self) -> MassFlowRate {
        MassFlowRate::new(self.channel_flows.iter().map(|f| f.value()).sum())
    }

    /// The most starved channel `(index, flow)`.
    ///
    /// # Panics
    ///
    /// Never panics: construction guarantees at least one channel.
    pub fn starved_channel(&self) -> (usize, MassFlowRate) {
        self.channel_flows
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.value().partial_cmp(&b.1.value()).expect("finite flows"))
            .map(|(i, &f)| (i, f))
            .expect("at least one channel")
    }
}

/// Solves the operating point of a fan feeding parallel channels.
///
/// # Errors
///
/// Returns an error for an empty channel list.
pub fn solve_rack_flow(
    fan: &FanCurve,
    channels: &[ChannelImpedance],
) -> Result<FlowSolution, ThermalError> {
    if channels.is_empty() {
        return Err(ThermalError::invalid("rack needs at least one channel"));
    }
    // Bisection on the plenum pressure: total channel flow decreases the
    // fan's deliverable flow and increases channel demand monotonically.
    let start = Instant::now();
    let iterations = 80;
    let mut lo = 0.0;
    let mut hi = fan.stall_pressure.value();
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let dp = Pressure::new(mid);
        let total: f64 = channels.iter().map(|c| c.flow_at(dp).value()).sum();
        let fan_dp = fan.pressure_at(MassFlowRate::new(total)).value();
        if fan_dp > mid {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let dp = Pressure::new(0.5 * (lo + hi));
    let bracket = (hi - lo) / fan.stall_pressure.value();
    Ok(FlowSolution {
        plenum_pressure: dp,
        channel_flows: channels.iter().map(|c| c.flow_at(dp)).collect(),
        stats: SolverStats {
            context: "rack flow distribution",
            method: Method::Bisection,
            preconditioner: Precond::None,
            requested_preconditioner: Precond::None,
            unknowns: channels.len(),
            threads: 1,
            iterations,
            residual_history: Vec::new(),
            final_residual: bracket,
            tolerance: bracket.max(f64::MIN_POSITIVE),
            wall_time: start.elapsed(),
            setup_seconds: 0.0,
            iterate_seconds: start.elapsed().as_secs_f64(),
            factorization: None,
            spectral: None,
            dd: None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeropack_materials::air_at_sea_level;
    use aeropack_units::Celsius;

    fn fan() -> FanCurve {
        FanCurve::new(Pressure::new(120.0), MassFlowRate::from_kg_per_hour(120.0)).unwrap()
    }

    fn channel() -> ChannelImpedance {
        let air = air_at_sea_level(Celsius::new(40.0));
        ChannelImpedance::card_channel(
            &air,
            Length::new(0.1),
            Length::from_millimeters(3.0),
            Length::new(0.16),
        )
        .unwrap()
    }

    #[test]
    fn identical_channels_split_evenly() {
        let channels = vec![channel(); 6];
        let sol = solve_rack_flow(&fan(), &channels).unwrap();
        let flows: Vec<f64> = sol.channel_flows.iter().map(|f| f.value()).collect();
        let first = flows[0];
        assert!(first > 0.0);
        for f in &flows {
            assert!((f - first).abs() < 1e-12 * first);
        }
        // Operating point sits on the fan curve.
        let fan_dp = fan().pressure_at(sol.total_flow());
        assert!(
            (fan_dp.value() - sol.plenum_pressure.value()).abs() < 0.01 * fan_dp.value().max(1.0)
        );
    }

    #[test]
    fn obstruction_starves_one_card_and_boosts_the_rest() {
        let clean = vec![channel(); 6];
        let sol_clean = solve_rack_flow(&fan(), &clean).unwrap();
        let mut dirty = clean.clone();
        dirty[2] = dirty[2].obstructed(0.4).unwrap();
        let sol_dirty = solve_rack_flow(&fan(), &dirty).unwrap();
        let (idx, starved) = sol_dirty.starved_channel();
        assert_eq!(idx, 2);
        assert!(starved.value() < 0.5 * sol_clean.channel_flows[2].value());
        // Neighbours gain a little (less total demand → higher plenum).
        assert!(sol_dirty.channel_flows[0].value() > sol_clean.channel_flows[0].value());
        // Rack total barely moves — the starvation is invisible at the
        // equipment level, which is why the paper pushes for Level-2
        // analysis per board.
        let drop = 1.0 - sol_dirty.total_flow().value() / sol_clean.total_flow().value();
        assert!(drop < 0.12, "total flow dropped {:.0}%", drop * 100.0);
    }

    #[test]
    fn more_channels_more_total_flow_less_each() {
        let few = solve_rack_flow(&fan(), &[channel(); 3]).unwrap();
        let many = solve_rack_flow(&fan(), &[channel(); 12]).unwrap();
        assert!(many.total_flow().value() > few.total_flow().value());
        assert!(many.channel_flows[0].value() < few.channel_flows[0].value());
    }

    #[test]
    fn fan_curve_endpoints() {
        let f = fan();
        assert!((f.pressure_at(MassFlowRate::ZERO).value() - 120.0).abs() < 1e-12);
        assert_eq!(
            f.pressure_at(MassFlowRate::from_kg_per_hour(120.0)).value(),
            0.0
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(FanCurve::new(Pressure::ZERO, MassFlowRate::new(0.01)).is_err());
        assert!(ChannelImpedance::from_coefficient(0.0).is_err());
        assert!(channel().obstructed(0.0).is_err());
        assert!(channel().obstructed(1.5).is_err());
        assert!(solve_rack_flow(&fan(), &[]).is_err());
    }
}
