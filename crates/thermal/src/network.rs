//! Resistive thermal networks — the "resistive network model" of the
//! paper's Fig 4, used for Level-1 sizing and for assembling device
//! models (heat-pipe paths, TIM joints, seat structures) into a solvable
//! system.

use std::sync::Mutex;

use aeropack_solver::{solve_dense, Method, SolverConfig, SolverStats};
use aeropack_units::{Celsius, Power, ThermalConductance, ThermalResistance};

use crate::error::ThermalError;

/// Handle to a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum NodeKind {
    Fixed(Celsius),
    Floating { heat: Power },
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    a: usize,
    b: usize,
    conductance: f64,
}

/// A lumped thermal network of fixed-temperature and floating nodes
/// joined by conductances.
///
/// # Examples
///
/// ```
/// use aeropack_thermal::Network;
/// use aeropack_units::{Celsius, Power, ThermalResistance};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // junction —(θjc)— case —(R_sink)— ambient
/// let mut net = Network::new();
/// let ambient = net.add_fixed("ambient", Celsius::new(55.0));
/// let case = net.add_floating("case");
/// let junction = net.add_floating("junction");
/// net.add_heat(junction, Power::new(20.0))?;
/// net.connect(junction, case, ThermalResistance::new(0.8))?;
/// net.connect(case, ambient, ThermalResistance::new(2.0))?;
/// let sol = net.solve()?;
/// // T_j = 55 + 20·(0.8+2.0) = 111 °C
/// assert!((sol.temperature(junction)?.value() - 111.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Network {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    stats: Mutex<Option<SolverStats>>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            edges: self.edges.clone(),
            stats: Mutex::new(self.last_solve_stats()),
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics of the most recent [`Network::solve`], if any. A
    /// network without floating nodes needs no linear solve and records
    /// nothing.
    pub fn last_solve_stats(&self) -> Option<SolverStats> {
        self.stats.lock().expect("stats lock poisoned").clone()
    }

    /// Adds a fixed-temperature (boundary) node.
    pub fn add_fixed(&mut self, name: impl Into<String>, temperature: Celsius) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind: NodeKind::Fixed(temperature),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a floating node with no heat input (yet).
    pub fn add_floating(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind: NodeKind::Floating { heat: Power::ZERO },
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds heat input to a floating node (cumulative).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range node or a fixed node.
    pub fn add_heat(&mut self, node: NodeId, heat: Power) -> Result<(), ThermalError> {
        let n = self
            .nodes
            .get_mut(node.0)
            .ok_or(ThermalError::IndexOutOfRange {
                what: "node",
                index: node.0,
                len: 0,
            })?;
        match &mut n.kind {
            NodeKind::Floating { heat: h } => {
                *h += heat;
                Ok(())
            }
            NodeKind::Fixed(_) => Err(ThermalError::invalid(format!(
                "cannot inject heat into fixed node `{}`",
                n.name
            ))),
        }
    }

    /// Connects two nodes through a thermal resistance.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid nodes, self-loops, or non-positive
    /// resistance.
    pub fn connect(
        &mut self,
        a: NodeId,
        b: NodeId,
        resistance: ThermalResistance,
    ) -> Result<(), ThermalError> {
        if resistance.value() <= 0.0 {
            return Err(ThermalError::invalid("edge resistance must be positive"));
        }
        self.connect_conductance(a, b, resistance.to_conductance())
    }

    /// Connects two nodes through a thermal conductance.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid nodes, self-loops, or non-positive
    /// conductance.
    pub fn connect_conductance(
        &mut self,
        a: NodeId,
        b: NodeId,
        conductance: ThermalConductance,
    ) -> Result<(), ThermalError> {
        let len = self.nodes.len();
        if a.0 >= len || b.0 >= len {
            return Err(ThermalError::IndexOutOfRange {
                what: "node",
                index: a.0.max(b.0),
                len,
            });
        }
        if a == b {
            return Err(ThermalError::invalid("self-loop edges are not allowed"));
        }
        if conductance.value() <= 0.0 {
            return Err(ThermalError::invalid("edge conductance must be positive"));
        }
        self.edges.push(Edge {
            a: a.0,
            b: b.0,
            conductance: conductance.value(),
        });
        Ok(())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Name of a node.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range node.
    pub fn name(&self, node: NodeId) -> Result<&str, ThermalError> {
        self.nodes
            .get(node.0)
            .map(|n| n.name.as_str())
            .ok_or(ThermalError::IndexOutOfRange {
                what: "node",
                index: node.0,
                len: self.nodes.len(),
            })
    }

    /// Solves the steady-state temperatures.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::SingularSystem`] when some floating node
    /// has no conductive path to any fixed node — including a network
    /// with no fixed node at all, whose temperature level is
    /// undetermined even with zero injected heat.
    pub fn solve(&self) -> Result<Solution, ThermalError> {
        let n_all = self.nodes.len();
        // Map floating nodes to unknown indices.
        let mut unknown = vec![usize::MAX; n_all];
        let mut floating = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.kind, NodeKind::Floating { .. }) {
                unknown[i] = floating.len();
                floating.push(i);
            }
        }
        let n = floating.len();
        let mut temps = vec![0.0f64; n_all];
        for (i, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Fixed(t) = node.kind {
                temps[i] = t.value();
            }
        }
        if n > 0 {
            // Every floating node needs a conductive path to a fixed
            // node or its temperature level is undetermined. Rounding
            // in the factorization can turn that exact singularity into
            // a tiny positive pivot (and a silent all-zero "solution"
            // when no heat flows), so check reachability explicitly
            // rather than trusting the pivot test.
            let mut adj = vec![Vec::new(); n_all];
            for e in &self.edges {
                adj[e.a].push(e.b);
                adj[e.b].push(e.a);
            }
            let mut reached = vec![false; n_all];
            let mut stack: Vec<usize> = Vec::new();
            for (i, node) in self.nodes.iter().enumerate() {
                if matches!(node.kind, NodeKind::Fixed(_)) {
                    reached[i] = true;
                    stack.push(i);
                }
            }
            while let Some(u) = stack.pop() {
                for &v in &adj[u] {
                    if !reached[v] {
                        reached[v] = true;
                        stack.push(v);
                    }
                }
            }
            if floating.iter().any(|&i| !reached[i]) {
                return Err(ThermalError::SingularSystem {
                    context: "thermal network",
                });
            }
            let mut a = vec![0.0f64; n * n];
            let mut b = vec![0.0f64; n];
            for (i, node) in self.nodes.iter().enumerate() {
                if let NodeKind::Floating { heat } = node.kind {
                    b[unknown[i]] += heat.value();
                }
            }
            for e in &self.edges {
                let (ua, ub) = (unknown[e.a], unknown[e.b]);
                match (ua != usize::MAX, ub != usize::MAX) {
                    (true, true) => {
                        a[ua * n + ua] += e.conductance;
                        a[ub * n + ub] += e.conductance;
                        a[ua * n + ub] -= e.conductance;
                        a[ub * n + ua] -= e.conductance;
                    }
                    (true, false) => {
                        a[ua * n + ua] += e.conductance;
                        b[ua] += e.conductance * temps[e.b];
                    }
                    (false, true) => {
                        a[ub * n + ub] += e.conductance;
                        b[ub] += e.conductance * temps[e.a];
                    }
                    (false, false) => {}
                }
            }
            let cfg = SolverConfig::new()
                .method(Method::Cholesky)
                .context("thermal network");
            let sol = solve_dense(&a, n, &b, &cfg)?;
            *self.stats.lock().expect("stats lock poisoned") = Some(sol.stats);
            for (u, &i) in floating.iter().enumerate() {
                temps[i] = sol.x[u];
            }
        }
        // Edge heat flows a→b.
        let flows = self
            .edges
            .iter()
            .map(|e| Power::new(e.conductance * (temps[e.a] - temps[e.b])))
            .collect();
        Ok(Solution {
            temperatures: temps.into_iter().map(Celsius::new).collect(),
            edge_flows: flows,
            edges: self
                .edges
                .iter()
                .map(|e| (NodeId(e.a), NodeId(e.b)))
                .collect(),
        })
    }
}

/// The solved state of a [`Network`].
#[derive(Debug, Clone)]
pub struct Solution {
    temperatures: Vec<Celsius>,
    edge_flows: Vec<Power>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Solution {
    /// Temperature of a node.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range node.
    pub fn temperature(&self, node: NodeId) -> Result<Celsius, ThermalError> {
        self.temperatures
            .get(node.0)
            .copied()
            .ok_or(ThermalError::IndexOutOfRange {
                what: "node",
                index: node.0,
                len: self.temperatures.len(),
            })
    }

    /// Heat flow through edge `index` (positive from the edge's first to
    /// second node).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range edge.
    pub fn edge_flow(&self, index: usize) -> Result<Power, ThermalError> {
        self.edge_flows
            .get(index)
            .copied()
            .ok_or(ThermalError::IndexOutOfRange {
                what: "edge",
                index,
                len: self.edge_flows.len(),
            })
    }

    /// Net heat flowing *into* `node` through all its edges — for a
    /// fixed node this is the heat it absorbs from the network.
    pub fn heat_into(&self, node: NodeId) -> Power {
        let mut q = Power::ZERO;
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            if b == node {
                q += self.edge_flows[i];
            } else if a == node {
                q -= self.edge_flows[i];
            }
        }
        q
    }

    /// The hottest node temperature.
    pub fn max_temperature(&self) -> Celsius {
        self.temperatures
            .iter()
            .copied()
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_chain_matches_hand_calc() {
        let mut net = Network::new();
        let amb = net.add_fixed("ambient", Celsius::new(20.0));
        let a = net.add_floating("a");
        let b = net.add_floating("b");
        net.add_heat(b, Power::new(10.0)).unwrap();
        net.connect(b, a, ThermalResistance::new(1.5)).unwrap();
        net.connect(a, amb, ThermalResistance::new(0.5)).unwrap();
        let sol = net.solve().unwrap();
        assert!((sol.temperature(a).unwrap().value() - 25.0).abs() < 1e-9);
        assert!((sol.temperature(b).unwrap().value() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_split_heat_by_conductance() {
        let mut net = Network::new();
        let amb = net.add_fixed("ambient", Celsius::new(0.0));
        let src = net.add_floating("source");
        net.add_heat(src, Power::new(30.0)).unwrap();
        net.connect(src, amb, ThermalResistance::new(1.0)).unwrap(); // G=1
        net.connect(src, amb, ThermalResistance::new(0.5)).unwrap(); // G=2
        let sol = net.solve().unwrap();
        // R_parallel = 1/3 → T = 10.
        assert!((sol.temperature(src).unwrap().value() - 10.0).abs() < 1e-9);
        // Flow split 10 and 20 W.
        assert!((sol.edge_flow(0).unwrap().value() - 10.0).abs() < 1e-9);
        assert!((sol.edge_flow(1).unwrap().value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn energy_balance_at_fixed_node() {
        let mut net = Network::new();
        let amb = net.add_fixed("ambient", Celsius::new(25.0));
        let n1 = net.add_floating("n1");
        let n2 = net.add_floating("n2");
        net.add_heat(n1, Power::new(7.0)).unwrap();
        net.add_heat(n2, Power::new(5.0)).unwrap();
        net.connect(n1, n2, ThermalResistance::new(0.7)).unwrap();
        net.connect(n2, amb, ThermalResistance::new(1.1)).unwrap();
        net.connect(n1, amb, ThermalResistance::new(2.3)).unwrap();
        let sol = net.solve().unwrap();
        // All injected heat ends up in the ambient node.
        assert!((sol.heat_into(amb).value() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn two_fixed_nodes_conduct_between_themselves() {
        let mut net = Network::new();
        let hot = net.add_fixed("hot", Celsius::new(100.0));
        let cold = net.add_fixed("cold", Celsius::new(0.0));
        net.connect(hot, cold, ThermalResistance::new(4.0)).unwrap();
        let sol = net.solve().unwrap();
        assert!((sol.edge_flow(0).unwrap().value() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn fully_floating_network_is_singular_even_without_heat() {
        // With no fixed node the 2×2 system is exactly singular, but
        // rounding in the factorization can leave a ~1e-16 pivot and a
        // silent all-zero "solution"; the reachability check must
        // reject it regardless.
        let mut net = Network::new();
        let a = net.add_floating("a");
        let b = net.add_floating("b");
        net.connect(a, b, ThermalResistance::new(2.0)).unwrap();
        assert!(matches!(
            net.solve(),
            Err(ThermalError::SingularSystem { .. })
        ));
    }

    #[test]
    fn isolated_floating_node_is_singular() {
        let mut net = Network::new();
        let _amb = net.add_fixed("ambient", Celsius::new(25.0));
        let orphan = net.add_floating("orphan");
        net.add_heat(orphan, Power::new(1.0)).unwrap();
        assert!(matches!(
            net.solve(),
            Err(ThermalError::SingularSystem { .. })
        ));
    }

    #[test]
    fn heat_into_fixed_node_is_rejected() {
        let mut net = Network::new();
        let amb = net.add_fixed("ambient", Celsius::new(25.0));
        assert!(net.add_heat(amb, Power::new(1.0)).is_err());
    }

    #[test]
    fn invalid_edges_are_rejected() {
        let mut net = Network::new();
        let a = net.add_floating("a");
        let b = net.add_floating("b");
        assert!(net.connect(a, a, ThermalResistance::new(1.0)).is_err());
        assert!(net.connect(a, b, ThermalResistance::new(0.0)).is_err());
        assert!(net
            .connect(a, NodeId(99), ThermalResistance::new(1.0))
            .is_err());
    }

    #[test]
    fn solve_records_direct_stats() {
        let mut net = Network::new();
        let amb = net.add_fixed("ambient", Celsius::new(20.0));
        let a = net.add_floating("a");
        net.add_heat(a, Power::new(10.0)).unwrap();
        net.connect(a, amb, ThermalResistance::new(1.0)).unwrap();
        assert!(net.last_solve_stats().is_none());
        net.solve().unwrap();
        let stats = net.last_solve_stats().unwrap();
        assert_eq!(stats.method, Method::Cholesky);
        assert_eq!(stats.unknowns, 1);
        assert_eq!(stats.iterations, 0);
        assert!(stats.converged());
        assert_eq!(net.clone().last_solve_stats(), Some(stats));
    }

    #[test]
    fn max_temperature_finds_hot_spot() {
        let mut net = Network::new();
        let amb = net.add_fixed("ambient", Celsius::new(20.0));
        let warm = net.add_floating("warm");
        let hot = net.add_floating("hot");
        net.add_heat(hot, Power::new(50.0)).unwrap();
        net.connect(hot, warm, ThermalResistance::new(1.0)).unwrap();
        net.connect(warm, amb, ThermalResistance::new(0.2)).unwrap();
        let sol = net.solve().unwrap();
        assert_eq!(sol.max_temperature(), sol.temperature(hot).unwrap());
    }
}
