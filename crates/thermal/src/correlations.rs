//! Empirical convection and radiation correlations — the film
//! coefficients that close the conduction models against their
//! environment. These take the place of the CFD layer in FloTHERM for
//! the geometries avionics packaging actually uses: plates, card
//! channels and ducts.

use aeropack_materials::AirState;
use aeropack_units::{
    Celsius, HeatTransferCoeff, Length, MassFlowRate, Velocity, STANDARD_GRAVITY,
};

use crate::error::ThermalError;

/// Stefan–Boltzmann constant, W/(m²·K⁴).
pub const STEFAN_BOLTZMANN: f64 = 5.670_374_419e-8;

/// Rayleigh number for a surface-to-ambient temperature difference over
/// a characteristic length.
fn rayleigh(air: &AirState, surface: Celsius, characteristic: Length) -> f64 {
    let dt = (surface.value() - air.temperature.value()).abs();
    let l = characteristic.value();
    let nu = air.kinematic_viscosity();
    let alpha = air.thermal_diffusivity();
    STANDARD_GRAVITY * air.expansion_coefficient() * dt * l.powi(3) / (nu * alpha)
}

/// Natural convection from a vertical plate (Churchill–Chu, valid for
/// all Ra).
///
/// `air` should be evaluated at the film temperature; `height` is the
/// plate's vertical extent.
///
/// # Errors
///
/// Returns an error for a non-positive height.
///
/// # Examples
///
/// ```
/// use aeropack_materials::air_at_sea_level;
/// use aeropack_thermal::natural_convection_vertical_plate;
/// use aeropack_units::{Celsius, Length};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let air = air_at_sea_level(Celsius::new(32.5)); // film temp
/// let h = natural_convection_vertical_plate(&air, Celsius::new(40.0), Length::new(0.3))?;
/// assert!(h.value() > 2.0 && h.value() < 6.0); // classic "a few W/m²K"
/// # Ok(())
/// # }
/// ```
pub fn natural_convection_vertical_plate(
    air: &AirState,
    surface: Celsius,
    height: Length,
) -> Result<HeatTransferCoeff, ThermalError> {
    if height.value() <= 0.0 {
        return Err(ThermalError::invalid("plate height must be positive"));
    }
    let ra = rayleigh(air, surface, height);
    let pr = air.prandtl();
    let nu = (0.825
        + 0.387 * ra.powf(1.0 / 6.0) / (1.0 + (0.492 / pr).powf(9.0 / 16.0)).powf(8.0 / 27.0))
    .powi(2);
    Ok(HeatTransferCoeff::new(
        nu * air.conductivity.value() / height.value(),
    ))
}

/// Natural convection from a horizontal plate with the hot side facing
/// up (or cold side down). `characteristic` is area/perimeter.
///
/// # Errors
///
/// Returns an error for a non-positive characteristic length.
pub fn natural_convection_horizontal_plate_up(
    air: &AirState,
    surface: Celsius,
    characteristic: Length,
) -> Result<HeatTransferCoeff, ThermalError> {
    if characteristic.value() <= 0.0 {
        return Err(ThermalError::invalid(
            "characteristic length must be positive",
        ));
    }
    let ra = rayleigh(air, surface, characteristic).max(1.0);
    let nu = if ra < 1e7 {
        0.54 * ra.powf(0.25)
    } else {
        0.15 * ra.powf(1.0 / 3.0)
    };
    Ok(HeatTransferCoeff::new(
        nu.max(1.0) * air.conductivity.value() / characteristic.value(),
    ))
}

/// Natural convection from a horizontal plate with the hot side facing
/// down — the stagnant orientation (Nu = 0.27·Ra^¼).
///
/// # Errors
///
/// Returns an error for a non-positive characteristic length.
pub fn natural_convection_horizontal_plate_down(
    air: &AirState,
    surface: Celsius,
    characteristic: Length,
) -> Result<HeatTransferCoeff, ThermalError> {
    if characteristic.value() <= 0.0 {
        return Err(ThermalError::invalid(
            "characteristic length must be positive",
        ));
    }
    let ra = rayleigh(air, surface, characteristic).max(1.0);
    let nu = (0.27 * ra.powf(0.25)).max(1.0);
    Ok(HeatTransferCoeff::new(
        nu * air.conductivity.value() / characteristic.value(),
    ))
}

/// Forced convection over a flat plate of length `length` at free-stream
/// velocity `velocity`; laminar + turbulent mixed correlation with
/// transition at Re = 5×10⁵.
///
/// # Errors
///
/// Returns an error for non-positive length or velocity.
pub fn forced_convection_flat_plate(
    air: &AirState,
    velocity: Velocity,
    length: Length,
) -> Result<HeatTransferCoeff, ThermalError> {
    if length.value() <= 0.0 {
        return Err(ThermalError::invalid("plate length must be positive"));
    }
    if velocity.value() <= 0.0 {
        return Err(ThermalError::invalid("velocity must be positive"));
    }
    let re = velocity.value() * length.value() / air.kinematic_viscosity();
    let pr = air.prandtl();
    let nu = if re < 5e5 {
        0.664 * re.sqrt() * pr.cbrt()
    } else {
        (0.037 * re.powf(0.8) - 871.0) * pr.cbrt()
    };
    Ok(HeatTransferCoeff::new(
        nu * air.conductivity.value() / length.value(),
    ))
}

/// Forced convection in a rectangular card channel (`width × gap`) at a
/// given air mass flow. Uses Dittus–Boelter above Re = 4000 and the
/// constant laminar Nusselt number (7.54, parallel plates) below, with a
/// linear blend through transition.
///
/// Returns the film coefficient and the bulk velocity.
///
/// # Errors
///
/// Returns an error for non-positive geometry or flow.
pub fn forced_convection_channel(
    air: &AirState,
    mass_flow: MassFlowRate,
    width: Length,
    gap: Length,
) -> Result<(HeatTransferCoeff, Velocity), ThermalError> {
    if width.value() <= 0.0 || gap.value() <= 0.0 {
        return Err(ThermalError::invalid("channel dimensions must be positive"));
    }
    if mass_flow.value() <= 0.0 {
        return Err(ThermalError::invalid("mass flow must be positive"));
    }
    let area = width.value() * gap.value();
    let velocity = mass_flow.value() / (air.density.value() * area);
    // Hydraulic diameter of a wide rectangular duct.
    let dh = 2.0 * width.value() * gap.value() / (width.value() + gap.value());
    let re = air.density.value() * velocity * dh / air.dynamic_viscosity;
    let pr = air.prandtl();
    let nu_lam = 7.54;
    let nu = if re < 2300.0 {
        nu_lam
    } else if re > 4000.0 {
        0.023 * re.powf(0.8) * pr.powf(0.4)
    } else {
        // Linear blend through the transition band.
        let f = (re - 2300.0) / 1700.0;
        let nu_turb = 0.023 * 4000.0f64.powf(0.8) * pr.powf(0.4);
        nu_lam + f * (nu_turb - nu_lam)
    };
    Ok((
        HeatTransferCoeff::new(nu * air.conductivity.value() / dh),
        Velocity::new(velocity),
    ))
}

/// Linearised radiation film coefficient between a surface at
/// `surface` and surroundings at `surroundings`:
/// `h = ε·σ·(Ts² + T∞²)·(Ts + T∞)`.
///
/// # Errors
///
/// Returns an error for an emissivity outside `[0, 1]`.
pub fn radiation_coefficient(
    emissivity: f64,
    surface: Celsius,
    surroundings: Celsius,
) -> Result<HeatTransferCoeff, ThermalError> {
    if !(0.0..=1.0).contains(&emissivity) {
        return Err(ThermalError::invalid("emissivity must lie in [0, 1]"));
    }
    let ts = surface.kelvin();
    let ta = surroundings.kelvin();
    Ok(HeatTransferCoeff::new(
        emissivity * STEFAN_BOLTZMANN * (ts * ts + ta * ta) * (ts + ta),
    ))
}

/// Film temperature (arithmetic mean of surface and ambient), the
/// temperature at which air properties should be evaluated for the
/// correlations above.
pub fn film_temperature(surface: Celsius, ambient: Celsius) -> Celsius {
    Celsius::new(0.5 * (surface.value() + ambient.value()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeropack_materials::air_at_sea_level;

    #[test]
    fn vertical_plate_handbook_case() {
        // 0.3 m plate at 60 °C in 20 °C air: h ≈ 4.5 W/m²K (±20 %).
        let film = film_temperature(Celsius::new(60.0), Celsius::new(20.0));
        let air = air_at_sea_level(film);
        let h =
            natural_convection_vertical_plate(&air, Celsius::new(60.0), Length::new(0.3)).unwrap();
        assert!(
            h.value() > 3.5 && h.value() < 5.5,
            "vertical plate h = {}",
            h
        );
    }

    #[test]
    fn hot_side_down_is_weaker_than_up() {
        let air = air_at_sea_level(Celsius::new(30.0));
        let up =
            natural_convection_horizontal_plate_up(&air, Celsius::new(70.0), Length::new(0.05))
                .unwrap();
        let down =
            natural_convection_horizontal_plate_down(&air, Celsius::new(70.0), Length::new(0.05))
                .unwrap();
        assert!(up.value() > down.value());
    }

    #[test]
    fn forced_plate_handbook_case() {
        // 2 m/s over a 0.2 m plate at ~27 °C: laminar, h ≈ 9–12 W/m²K.
        let air = air_at_sea_level(Celsius::new(27.0));
        let h = forced_convection_flat_plate(&air, Velocity::new(2.0), Length::new(0.2)).unwrap();
        assert!(h.value() > 8.0 && h.value() < 14.0, "h = {h}");
    }

    #[test]
    fn forced_plate_turbulent_branch() {
        // 20 m/s over 1 m: Re ≈ 1.2×10⁶ → mixed correlation.
        let air = air_at_sea_level(Celsius::new(27.0));
        let h = forced_convection_flat_plate(&air, Velocity::new(20.0), Length::new(1.0)).unwrap();
        assert!(h.value() > 30.0 && h.value() < 60.0, "h = {h}");
    }

    #[test]
    fn channel_flow_increases_with_mass_flow() {
        let air = air_at_sea_level(Celsius::new(40.0));
        let w = Length::new(0.15);
        let g = Length::from_millimeters(5.0);
        let (h1, v1) =
            forced_convection_channel(&air, MassFlowRate::from_kg_per_hour(5.0), w, g).unwrap();
        let (h2, v2) =
            forced_convection_channel(&air, MassFlowRate::from_kg_per_hour(50.0), w, g).unwrap();
        assert!(v2.value() > 9.0 * v1.value());
        assert!(h2.value() > h1.value());
    }

    #[test]
    fn channel_laminar_floor() {
        // Tiny flow: Nu stays at the laminar constant.
        let air = air_at_sea_level(Celsius::new(40.0));
        let (h, _) = forced_convection_channel(
            &air,
            MassFlowRate::from_kg_per_hour(0.2),
            Length::new(0.15),
            Length::from_millimeters(5.0),
        )
        .unwrap();
        let dh = 2.0 * 0.15 * 0.005 / (0.15 + 0.005);
        let expect = 7.54 * air.conductivity.value() / dh;
        assert!((h.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn radiation_coefficient_magnitude() {
        // ε=0.9 near room temperature: h_rad ≈ 5–6.5 W/m²K.
        let h = radiation_coefficient(0.9, Celsius::new(60.0), Celsius::new(20.0)).unwrap();
        assert!(h.value() > 5.0 && h.value() < 7.5, "h_rad = {h}");
        // ε=0 kills it.
        let h0 = radiation_coefficient(0.0, Celsius::new(60.0), Celsius::new(20.0)).unwrap();
        assert_eq!(h0.value(), 0.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let air = air_at_sea_level(Celsius::new(25.0));
        assert!(natural_convection_vertical_plate(&air, Celsius::new(50.0), Length::ZERO).is_err());
        assert!(forced_convection_flat_plate(&air, Velocity::ZERO, Length::new(0.1)).is_err());
        assert!(radiation_coefficient(1.5, Celsius::new(50.0), Celsius::new(20.0)).is_err());
        assert!(forced_convection_channel(
            &air,
            MassFlowRate::ZERO,
            Length::new(0.1),
            Length::new(0.005)
        )
        .is_err());
    }

    #[test]
    fn film_temperature_is_mean() {
        let f = film_temperature(Celsius::new(80.0), Celsius::new(20.0));
        assert_eq!(f, Celsius::new(50.0));
    }
}
