//! Error type for two-phase device models.

use std::error::Error;
use std::fmt;

use aeropack_materials::MaterialError;
use aeropack_units::Power;

/// Which physical transport limit a device ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportLimit {
    /// Capillary pumping exhausted (wick dry-out).
    Capillary,
    /// Choked vapour flow.
    Sonic,
    /// Liquid entrainment by the counter-flowing vapour.
    Entrainment,
    /// Nucleate boiling disrupting the wick.
    Boiling,
    /// Viscous vapour-flow limit (low-temperature start-up).
    Viscous,
    /// Counter-current flooding (thermosyphon).
    Flooding,
    /// Pump head exhausted (mechanically pumped loop).
    PumpHead,
}

impl fmt::Display for TransportLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Capillary => "capillary",
            Self::Sonic => "sonic",
            Self::Entrainment => "entrainment",
            Self::Boiling => "boiling",
            Self::Viscous => "viscous",
            Self::Flooding => "flooding",
            Self::PumpHead => "pump head",
        };
        f.write_str(name)
    }
}

/// Error returned by the two-phase device models.
#[derive(Debug, Clone, PartialEq)]
pub enum TwoPhaseError {
    /// The requested load exceeds the device's transport capability at
    /// the given conditions.
    DryOut {
        /// The binding limit.
        limit: TransportLimit,
        /// Maximum transportable power at these conditions.
        q_max: Power,
        /// Requested power.
        q_requested: Power,
    },
    /// The working fluid left its tabulated range.
    Fluid(MaterialError),
    /// Device geometry or conditions were invalid.
    InvalidDevice {
        /// Human-readable reason.
        reason: String,
    },
    /// The iterative operating-point search failed to converge.
    NoOperatingPoint {
        /// What was being solved.
        context: &'static str,
    },
}

impl fmt::Display for TwoPhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DryOut {
                limit,
                q_max,
                q_requested,
            } => write!(
                f,
                "{limit} limit exceeded: requested {q_requested:.1} but only \
                 {q_max:.1} transportable"
            ),
            Self::Fluid(e) => write!(f, "working fluid: {e}"),
            Self::InvalidDevice { reason } => write!(f, "invalid device: {reason}"),
            Self::NoOperatingPoint { context } => {
                write!(f, "no operating point found for {context}")
            }
        }
    }
}

impl Error for TwoPhaseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Fluid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MaterialError> for TwoPhaseError {
    fn from(e: MaterialError) -> Self {
        Self::Fluid(e)
    }
}

impl TwoPhaseError {
    /// Shorthand for [`TwoPhaseError::InvalidDevice`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        Self::InvalidDevice {
            reason: reason.into(),
        }
    }

    /// The dry-out margin `q_requested − q_max`: how far past the
    /// violated limit the request was. `None` for non-dry-out errors.
    ///
    /// Strictly positive by construction — a device only reports
    /// [`TwoPhaseError::DryOut`] when the requested load exceeds the
    /// governing limit (at a fully lost pumping head `q_max` is exactly
    /// 0 W and the margin equals the whole request).
    pub fn dry_out_margin(&self) -> Option<Power> {
        match self {
            Self::DryOut {
                q_max, q_requested, ..
            } => Some(*q_requested - *q_max),
            _ => None,
        }
    }
}
