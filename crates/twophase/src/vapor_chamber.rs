//! Flat-plate vapour chamber — the two-phase *spreader* the paper's
//! §IV implies when air alone cannot hold a hot spot: the device takes
//! a concentrated flux on one face and presents a near-isothermal large
//! face to the cooling stream.
//!
//! The in-plane transport model treats the vapour core as a saturated
//! Hele–Shaw slot: a Poiseuille pressure gradient maps into a
//! temperature gradient through the saturation-curve slope, giving the
//! classical enormous effective conductivity
//! `k_vap = h_fg²·ρ_v²·t_v² / (12·µ_v·T)`.

use aeropack_materials::{Material, WorkingFluid};
use aeropack_units::{Area, Celsius, Length, Power, ThermalConductivity, ThermalResistance};

use crate::error::{TransportLimit, TwoPhaseError};
use crate::heatpipe::Wick;

/// A rectangular flat-plate vapour chamber.
///
/// # Examples
///
/// ```
/// use aeropack_twophase::VaporChamber;
/// use aeropack_units::{Celsius, Length};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let vc = VaporChamber::water_spreader(
///     (0.06, 0.06), Length::from_millimeters(3.0))?;
/// let k = vc.vapor_core_conductivity(Celsius::new(60.0))?;
/// assert!(k.value() > 10_000.0); // orders beyond solid copper
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VaporChamber {
    fluid: WorkingFluid,
    envelope: Material,
    wick: Wick,
    footprint: (f64, f64),
    thickness: f64,
    wall_thickness: f64,
    wick_thickness: f64,
}

impl VaporChamber {
    /// Builds a vapour chamber.
    ///
    /// # Errors
    ///
    /// Returns an error when the walls and wicks leave no vapour core or
    /// any dimension is non-positive.
    pub fn new(
        fluid: WorkingFluid,
        envelope: Material,
        wick: Wick,
        footprint: (f64, f64),
        thickness: Length,
        wall_thickness: Length,
        wick_thickness: Length,
    ) -> Result<Self, TwoPhaseError> {
        if footprint.0 <= 0.0 || footprint.1 <= 0.0 {
            return Err(TwoPhaseError::invalid("footprint must be positive"));
        }
        let t = thickness.value();
        let tw = wall_thickness.value();
        let tk = wick_thickness.value();
        if t <= 0.0 || tw <= 0.0 || tk <= 0.0 {
            return Err(TwoPhaseError::invalid("thicknesses must be positive"));
        }
        if t - 2.0 * (tw + tk) <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "walls and wicks leave no vapour core",
            ));
        }
        Ok(Self {
            fluid,
            envelope,
            wick,
            footprint,
            thickness: t,
            wall_thickness: tw,
            wick_thickness: tk,
        })
    }

    /// A copper/water spreader with standard 0.5 mm walls and 0.4 mm
    /// sintered wicks — the commodity electronics-cooling part.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (occur only for a chamber thinner
    /// than ~1.9 mm).
    pub fn water_spreader(footprint: (f64, f64), thickness: Length) -> Result<Self, TwoPhaseError> {
        Self::new(
            WorkingFluid::water(),
            Material::copper(),
            Wick::sintered_powder(),
            footprint,
            thickness,
            Length::from_micrometers(500.0),
            Length::from_micrometers(400.0),
        )
    }

    /// Vapour-core thickness, m.
    fn core_thickness(&self) -> f64 {
        self.thickness - 2.0 * (self.wall_thickness + self.wick_thickness)
    }

    /// The effective in-plane conductivity of the *vapour core* at an
    /// operating temperature: `k = h_fg²·ρ_v²·t_v² / (12·µ_v·T_K)`.
    ///
    /// # Errors
    ///
    /// Returns fluid-range errors.
    pub fn vapor_core_conductivity(
        &self,
        operating: Celsius,
    ) -> Result<ThermalConductivity, TwoPhaseError> {
        let sat = self.fluid.saturation(operating)?;
        let t_v = self.core_thickness();
        let k = (sat.latent_heat * sat.vapor_density.value()).powi(2) * t_v * t_v
            / (12.0 * sat.vapor_viscosity * operating.kelvin());
        Ok(ThermalConductivity::new(k))
    }

    /// The homogenised in-plane conductivity of the whole chamber slab
    /// (vapour core + copper walls + wicks in parallel over the total
    /// thickness) — the value to paint into a finite-volume grid cell.
    ///
    /// # Errors
    ///
    /// Returns fluid-range errors.
    pub fn homogenized_conductivity(
        &self,
        operating: Celsius,
    ) -> Result<ThermalConductivity, TwoPhaseError> {
        let sat = self.fluid.saturation(operating)?;
        let k_vap = self.vapor_core_conductivity(operating)?.value();
        let k_wall = self.envelope.thermal_conductivity.value();
        let k_wick = self
            .wick
            .effective_conductivity(&self.envelope, &sat)
            .value();
        let sum = k_vap * self.core_thickness()
            + 2.0 * k_wall * self.wall_thickness
            + 2.0 * k_wick * self.wick_thickness;
        Ok(ThermalConductivity::new(sum / self.thickness))
    }

    /// Through-thickness resistance from a source of area `source` on
    /// one face to the (isothermal) opposite face: wall + wick at the
    /// source, then wall + wick over the full footprint.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive or over-size source area, or
    /// fluid-range errors.
    pub fn through_resistance(
        &self,
        source: Area,
        operating: Celsius,
    ) -> Result<ThermalResistance, TwoPhaseError> {
        let foot = self.footprint.0 * self.footprint.1;
        if source.value() <= 0.0 || source.value() > foot {
            return Err(TwoPhaseError::invalid(
                "source area must be positive and within the footprint",
            ));
        }
        let sat = self.fluid.saturation(operating)?;
        let k_wall = self.envelope.thermal_conductivity.value();
        let k_wick = self
            .wick
            .effective_conductivity(&self.envelope, &sat)
            .value();
        let r_unit = self.wall_thickness / k_wall + self.wick_thickness / k_wick;
        Ok(ThermalResistance::new(
            r_unit / source.value() + r_unit / foot,
        ))
    }

    /// The radial capillary transport limit for a given source: liquid
    /// must return through the two face wicks and squeeze through the
    /// constriction around the source perimeter, across a mean path of
    /// a quarter diagonal.
    ///
    /// # Errors
    ///
    /// Returns fluid-range and geometry errors.
    pub fn capillary_limit(
        &self,
        source: Area,
        operating: Celsius,
    ) -> Result<Power, TwoPhaseError> {
        let foot = self.footprint.0 * self.footprint.1;
        if source.value() <= 0.0 || source.value() > foot {
            return Err(TwoPhaseError::invalid(
                "source area must be positive and within the footprint",
            ));
        }
        let sat = self.fluid.saturation(operating)?;
        let dp_cap = self.wick.capillary_pressure(&sat);
        let (lx, ly) = self.footprint;
        let l_eff = 0.25 * (lx * lx + ly * ly).sqrt();
        // The binding cross-section is the wick ring around the source
        // (square-equivalent perimeter), both faces.
        let source_perimeter = 4.0 * source.value().sqrt();
        let a_wick = 2.0 * self.wick_thickness * source_perimeter;
        let f_l = sat.liquid_viscosity
            / (self.wick.permeability * a_wick * sat.liquid_density.value() * sat.latent_heat);
        Ok(Power::new(dp_cap / (f_l * l_eff)))
    }

    /// The evaporator boiling limit over the source footprint, using the
    /// ~75 W/cm² critical flux of sintered-wick evaporators.
    ///
    /// # Errors
    ///
    /// Returns geometry errors.
    pub fn boiling_limit(&self, source: Area) -> Result<Power, TwoPhaseError> {
        if source.value() <= 0.0 {
            return Err(TwoPhaseError::invalid("source area must be positive"));
        }
        Ok(Power::new(75.0e4 * source.value()))
    }

    /// The governing transport limit for a source: the smaller of the
    /// capillary and boiling limits.
    ///
    /// # Errors
    ///
    /// Returns fluid-range and geometry errors.
    pub fn max_power(
        &self,
        source: Area,
        operating: Celsius,
    ) -> Result<(TransportLimit, Power), TwoPhaseError> {
        let cap = self.capillary_limit(source, operating)?;
        let boil = self.boiling_limit(source)?;
        Ok(if cap.value() <= boil.value() {
            (TransportLimit::Capillary, cap)
        } else {
            (TransportLimit::Boiling, boil)
        })
    }

    /// Verifies the chamber carries `q` and returns the source-to-face
    /// resistance.
    ///
    /// # Errors
    ///
    /// [`TwoPhaseError::DryOut`] past the governing limit; fluid and
    /// geometry errors as above.
    pub fn operate(
        &self,
        q: Power,
        source: Area,
        operating: Celsius,
    ) -> Result<ThermalResistance, TwoPhaseError> {
        let (limit, q_max) = self.max_power(source, operating)?;
        if q.value() > q_max.value() {
            return Err(TwoPhaseError::DryOut {
                limit,
                q_max,
                q_requested: q,
            });
        }
        self.through_resistance(source, operating)
    }

    /// Footprint, metres.
    pub fn footprint(&self) -> (f64, f64) {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chamber() -> VaporChamber {
        VaporChamber::water_spreader((0.06, 0.06), Length::from_millimeters(3.0)).unwrap()
    }

    #[test]
    fn vapor_core_is_a_superconductor() {
        // Literature values for water cores: 10⁴–10⁷ W/mK.
        let k = chamber()
            .vapor_core_conductivity(Celsius::new(60.0))
            .unwrap()
            .value();
        assert!((1.0e4..1.0e8).contains(&k), "k_vap = {k:.3e}");
    }

    #[test]
    fn homogenized_k_beats_copper_hugely() {
        let k = chamber()
            .homogenized_conductivity(Celsius::new(60.0))
            .unwrap()
            .value();
        assert!(
            k > 5.0 * Material::copper().thermal_conductivity.value(),
            "homogenised k = {k:.0}"
        );
    }

    #[test]
    fn conductivity_rises_with_temperature() {
        // Denser vapour at higher temperature → better transport.
        let c = chamber();
        let k40 = c.vapor_core_conductivity(Celsius::new(40.0)).unwrap();
        let k80 = c.vapor_core_conductivity(Celsius::new(80.0)).unwrap();
        assert!(k80.value() > 3.0 * k40.value());
    }

    #[test]
    fn through_resistance_scales_with_source() {
        let c = chamber();
        let small = c
            .through_resistance(Area::from_square_centimeters(1.0), Celsius::new(60.0))
            .unwrap();
        let large = c
            .through_resistance(Area::from_square_centimeters(9.0), Celsius::new(60.0))
            .unwrap();
        assert!(small.value() > large.value());
        // A cm² source sees a small fraction of a K/W.
        assert!(small.value() < 0.2, "R = {small}");
    }

    #[test]
    fn limits_magnitude_for_a_cm2_die() {
        // A 60 mm spreader fed by a 1 cm² die: boiling-limited around
        // 75 W; a 4 cm² die gets 300 W.
        let c = chamber();
        let (limit1, q1) = c
            .max_power(Area::from_square_centimeters(1.0), Celsius::new(60.0))
            .unwrap();
        assert_eq!(limit1, TransportLimit::Boiling);
        assert!((q1.value() - 75.0).abs() < 1e-9, "Q_max = {q1}");
        let (_, q4) = c
            .max_power(Area::from_square_centimeters(4.0), Celsius::new(60.0))
            .unwrap();
        assert!(q4.value() > 2.5 * q1.value());
    }

    #[test]
    fn capillary_tightens_for_large_footprints() {
        // Stretch the chamber: longer return path, lower capillary head
        // margin per watt.
        let small =
            VaporChamber::water_spreader((0.04, 0.04), Length::from_millimeters(3.0)).unwrap();
        let large =
            VaporChamber::water_spreader((0.20, 0.20), Length::from_millimeters(3.0)).unwrap();
        let src = Area::from_square_centimeters(1.0);
        let q_small = small.capillary_limit(src, Celsius::new(60.0)).unwrap();
        let q_large = large.capillary_limit(src, Celsius::new(60.0)).unwrap();
        assert!(q_large.value() < q_small.value());
    }

    #[test]
    fn operate_reports_dry_out() {
        let c = chamber();
        let src = Area::from_square_centimeters(1.0);
        let (_, q_max) = c.max_power(src, Celsius::new(60.0)).unwrap();
        let err = c.operate(q_max * 2.0, src, Celsius::new(60.0)).unwrap_err();
        assert!(matches!(err, TwoPhaseError::DryOut { .. }));
        assert!(c.operate(q_max * 0.5, src, Celsius::new(60.0)).is_ok());
    }

    #[test]
    fn degenerate_geometry_rejected() {
        // 1 mm total cannot hold 2×(0.5+0.4) mm of structure.
        assert!(VaporChamber::water_spreader((0.05, 0.05), Length::from_millimeters(1.0)).is_err());
        let c = chamber();
        assert!(c
            .through_resistance(Area::ZERO, Celsius::new(60.0))
            .is_err());
        assert!(c
            .through_resistance(Area::new(1.0), Celsius::new(60.0))
            .is_err());
    }
}
