//! Loop heat pipe (LHP) steady-state model.
//!
//! LHPs are the second COSEE device: "particularly interesting when the
//! heat is transferred over large distance under small temperature
//! differences". The model closes the loop pressure balance (primary
//! wick capillary head against vapour-line, liquid-line and gravity
//! losses) and converts the transport losses into the saturation-
//! temperature offset via the local Clausius–Clapeyron slope. Adverse
//! tilt additionally floods part of the condenser, modelled as a
//! proportional loss of condenser conductance — an engineering closure
//! calibrated to reproduce the "few degrees at 22°" behaviour the COSEE
//! seats showed.

use aeropack_materials::WorkingFluid;
use aeropack_units::{
    Area, Celsius, HeatFlux, Length, Power, ThermalConductance, ThermalResistance, STANDARD_GRAVITY,
};

use crate::error::{TransportLimit, TwoPhaseError};

/// A smooth transport line (vapour or liquid) of the loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Line length, m.
    pub length: f64,
    /// Inner diameter, m.
    pub inner_diameter: f64,
}

impl Line {
    /// Laminar (Hagen–Poiseuille) pressure drop per watt transported,
    /// Pa/W, for a given density/viscosity and latent heat.
    fn dp_per_watt(&self, density: f64, viscosity: f64, latent_heat: f64) -> f64 {
        128.0 * viscosity * self.length
            / (std::f64::consts::PI * self.inner_diameter.powi(4) * density * latent_heat)
    }
}

/// A steady-state loop-heat-pipe model.
///
/// # Examples
///
/// ```
/// use aeropack_twophase::LoopHeatPipe;
/// use aeropack_units::{Celsius, Length, Power};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lhp = LoopHeatPipe::ammonia_seb(Length::new(0.8))?;
/// let op = lhp.operating_point(Power::new(29.0), Celsius::new(35.0), 0.0)?;
/// // Small ΔT over 0.8 m of transport: that's the point of an LHP.
/// assert!((op.case_temperature - Celsius::new(35.0)).kelvin() < 25.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LoopHeatPipe {
    fluid: WorkingFluid,
    /// Primary-wick effective pore radius, m.
    pore_radius: f64,
    /// Evaporator case-to-vapour resistance.
    evaporator_resistance: ThermalResistance,
    /// Condenser-to-sink conductance (UA) when fully active.
    condenser_conductance: ThermalConductance,
    /// Active evaporator wick area (critical-flux check).
    evaporator_area: Area,
    /// Critical evaporator heat flux.
    critical_flux: HeatFlux,
    vapor_line: Line,
    liquid_line: Line,
}

/// A solved LHP operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LhpOperatingPoint {
    /// Transported power.
    pub power: Power,
    /// Loop saturation (vapour) temperature.
    pub vapor_temperature: Celsius,
    /// Evaporator case temperature (what the SEB wall sees).
    pub case_temperature: Celsius,
    /// End-to-end conductance case→sink.
    pub conductance: ThermalConductance,
    /// Remaining capillary pressure margin, Pa.
    pub pressure_margin: f64,
}

impl LoopHeatPipe {
    /// Builds an LHP.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive geometry, resistance or
    /// conductance values.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fluid: WorkingFluid,
        pore_radius: Length,
        evaporator_resistance: ThermalResistance,
        condenser_conductance: ThermalConductance,
        evaporator_area: Area,
        critical_flux: HeatFlux,
        vapor_line: Line,
        liquid_line: Line,
    ) -> Result<Self, TwoPhaseError> {
        if pore_radius.value() <= 0.0 {
            return Err(TwoPhaseError::invalid("pore radius must be positive"));
        }
        if evaporator_resistance.value() <= 0.0 || condenser_conductance.value() <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "evaporator resistance and condenser conductance must be positive",
            ));
        }
        if evaporator_area.value() <= 0.0 || critical_flux.value() <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "evaporator area and critical flux must be positive",
            ));
        }
        for line in [&vapor_line, &liquid_line] {
            if line.length <= 0.0 || line.inner_diameter <= 0.0 {
                return Err(TwoPhaseError::invalid("line geometry must be positive"));
            }
        }
        Ok(Self {
            fluid,
            pore_radius: pore_radius.value(),
            evaporator_resistance,
            condenser_conductance,
            evaporator_area,
            critical_flux,
            vapor_line,
            liquid_line,
        })
    }

    /// An ammonia LHP sized like the COSEE seat units (ITP-style): fine
    /// sintered-nickel primary wick, ~30 W class, transporting heat over
    /// `transport_length` to the seat structure.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn ammonia_seb(transport_length: Length) -> Result<Self, TwoPhaseError> {
        Self::new(
            WorkingFluid::ammonia(),
            Length::from_micrometers(1.2),
            ThermalResistance::new(0.25),
            ThermalConductance::new(3.0),
            Area::from_square_centimeters(15.0),
            HeatFlux::from_watts_per_square_centimeter(20.0),
            Line {
                length: transport_length.value(),
                inner_diameter: 2.0e-3,
            },
            Line {
                length: transport_length.value(),
                inner_diameter: 1.5e-3,
            },
        )
    }

    /// Height of the evaporator above the condenser for a given adverse
    /// tilt (radians), using the vapour-line length as the transport
    /// distance.
    fn elevation(&self, tilt_rad: f64) -> f64 {
        self.vapor_line.length * tilt_rad.sin()
    }

    /// Solves the loop at a given load, sink temperature and adverse
    /// tilt (positive = evaporator above condenser).
    ///
    /// # Errors
    ///
    /// [`TwoPhaseError::DryOut`] when the capillary margin is exhausted
    /// or the evaporator critical flux is exceeded; fluid-range errors
    /// when the loop runs off the property tables.
    pub fn operating_point(
        &self,
        q: Power,
        sink: Celsius,
        tilt_rad: f64,
    ) -> Result<LhpOperatingPoint, TwoPhaseError> {
        if q.value() < 0.0 {
            return Err(TwoPhaseError::invalid("power must be non-negative"));
        }
        // Critical-flux check first: it does not depend on the closure.
        let q_crit = Power::new(self.critical_flux.value() * self.evaporator_area.value());
        if q.value() > q_crit.value() {
            return Err(TwoPhaseError::DryOut {
                limit: TransportLimit::Boiling,
                q_max: q_crit,
                q_requested: q,
            });
        }

        // Fixed-point iteration on the vapour temperature: the condenser
        // flooding factor and the fluid properties both depend on it.
        let mut t_v = sink + (q / self.condenser_conductance);
        let mut last_margin = 0.0;
        let mut ua_eff = self.condenser_conductance;
        for _ in 0..50 {
            // If flooding pushes the loop off the property tables, the
            // real diagnosis is usually dry-out, not a table limit.
            let sat = match self.fluid.saturation(t_v) {
                Ok(sat) => sat,
                Err(e) => {
                    let q_max = self.max_transport(sink, tilt_rad)?;
                    if q.value() > q_max.value() {
                        return Err(TwoPhaseError::DryOut {
                            limit: TransportLimit::Capillary,
                            q_max,
                            q_requested: q,
                        });
                    }
                    return Err(e.into());
                }
            };
            let dp_cap = 2.0 * sat.surface_tension / self.pore_radius;
            let dp_grav = sat.liquid_density.value() * STANDARD_GRAVITY * self.elevation(tilt_rad);
            let dp_v = self.vapor_line.dp_per_watt(
                sat.vapor_density.value(),
                sat.vapor_viscosity,
                sat.latent_heat,
            ) * q.value();
            let dp_l = self.liquid_line.dp_per_watt(
                sat.liquid_density.value(),
                sat.liquid_viscosity,
                sat.latent_heat,
            ) * q.value();
            let dp_transport = dp_v + dp_l + dp_grav.max(0.0);
            last_margin = dp_cap - dp_transport;

            // Condenser flooding under adverse tilt: the fraction of
            // capillary head spent on gravity is lost as blocked
            // two-phase length.
            let flood = (dp_grav.max(0.0) / dp_cap).clamp(0.0, 0.9);
            ua_eff = self.condenser_conductance * (1.0 - flood);
            let t_new = sink + (q / ua_eff);
            if (t_new - t_v).kelvin().abs() < 1e-9 {
                t_v = t_new;
                break;
            }
            t_v = t_new;
        }
        if last_margin < 0.0 {
            let q_max = self.max_transport(sink, tilt_rad)?;
            return Err(TwoPhaseError::DryOut {
                limit: TransportLimit::Capillary,
                q_max,
                q_requested: q,
            });
        }
        // Transport losses appear as a saturation-temperature offset via
        // the Clausius–Clapeyron slope dP/dT.
        let slope = self.fluid.saturation_slope(t_v)?;
        let sat = self.fluid.saturation(t_v)?;
        let dp_grav = sat.liquid_density.value() * STANDARD_GRAVITY * self.elevation(tilt_rad);
        let dp_v = self.vapor_line.dp_per_watt(
            sat.vapor_density.value(),
            sat.vapor_viscosity,
            sat.latent_heat,
        ) * q.value();
        let dp_l = self.liquid_line.dp_per_watt(
            sat.liquid_density.value(),
            sat.liquid_viscosity,
            sat.latent_heat,
        ) * q.value();
        let dt_loop = (dp_v + dp_l + dp_grav.max(0.0)) / slope;

        let case = t_v + aeropack_units::TempDelta::new(dt_loop) + self.evaporator_resistance * q;
        let dt_total = (case - sink).kelvin();
        let conductance = if dt_total > 0.0 {
            ThermalConductance::new(q.value() / dt_total)
        } else {
            // Zero-power query: report the series small-signal value.
            ThermalConductance::new(
                1.0 / (self.evaporator_resistance.value() + 1.0 / ua_eff.value()),
            )
        };
        Ok(LhpOperatingPoint {
            power: q,
            vapor_temperature: t_v,
            case_temperature: case,
            conductance,
            pressure_margin: last_margin,
        })
    }

    /// Maximum transportable power at a sink temperature and tilt, by
    /// bisection on the capillary margin (and the critical-flux cap).
    ///
    /// # Errors
    ///
    /// Returns fluid-range errors if even zero power is outside the
    /// tables.
    pub fn max_transport(&self, sink: Celsius, tilt_rad: f64) -> Result<Power, TwoPhaseError> {
        let q_crit = self.critical_flux.value() * self.evaporator_area.value();
        // Margin at a given q, ignoring dry-out recursion.
        let margin = |qv: f64| -> Result<f64, TwoPhaseError> {
            let mut t_v = sink + (Power::new(qv) / self.condenser_conductance);
            let mut m = 0.0;
            for _ in 0..50 {
                let sat = self.fluid.saturation(t_v)?;
                let dp_cap = 2.0 * sat.surface_tension / self.pore_radius;
                let dp_grav =
                    sat.liquid_density.value() * STANDARD_GRAVITY * self.elevation(tilt_rad);
                let dp_v = self.vapor_line.dp_per_watt(
                    sat.vapor_density.value(),
                    sat.vapor_viscosity,
                    sat.latent_heat,
                ) * qv;
                let dp_l = self.liquid_line.dp_per_watt(
                    sat.liquid_density.value(),
                    sat.liquid_viscosity,
                    sat.latent_heat,
                ) * qv;
                m = dp_cap - (dp_v + dp_l + dp_grav.max(0.0));
                let flood = (dp_grav.max(0.0) / dp_cap).clamp(0.0, 0.9);
                let t_new = sink + Power::new(qv) / (self.condenser_conductance * (1.0 - flood));
                if (t_new - t_v).kelvin().abs() < 1e-9 {
                    break;
                }
                t_v = t_new;
            }
            Ok(m)
        };
        if margin(0.0)? <= 0.0 {
            return Ok(Power::ZERO);
        }
        // Find an upper bracket: either q_crit or where the fluid table
        // ends / margin flips.
        let mut hi = q_crit;
        let mut lo = 0.0;
        match margin(hi) {
            Ok(m) if m > 0.0 => return Ok(Power::new(hi)),
            Ok(_) => {}
            Err(_) => {
                // Condenser drove the loop off the table before q_crit:
                // shrink until evaluable.
                while hi > 1e-6 {
                    hi *= 0.5;
                    match margin(hi) {
                        Ok(m) if m > 0.0 => {
                            lo = hi;
                            hi *= 2.0;
                            break;
                        }
                        Ok(_) => break,
                        Err(_) => continue,
                    }
                }
            }
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            match margin(mid) {
                Ok(m) if m > 0.0 => lo = mid,
                _ => hi = mid,
            }
        }
        Ok(Power::new(lo))
    }

    /// The working fluid.
    pub fn fluid(&self) -> &WorkingFluid {
        &self.fluid
    }

    /// Fully active condenser conductance.
    pub fn condenser_conductance(&self) -> ThermalConductance {
        self.condenser_conductance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seb_lhp() -> LoopHeatPipe {
        LoopHeatPipe::ammonia_seb(Length::new(0.8)).unwrap()
    }

    #[test]
    fn nominal_point_has_small_loop_dt() {
        let lhp = seb_lhp();
        let op = lhp
            .operating_point(Power::new(29.0), Celsius::new(35.0), 0.0)
            .unwrap();
        // Condenser UA = 3 W/K → ~9.7 K there, plus ~7 K evaporator.
        let dt = (op.case_temperature - Celsius::new(35.0)).kelvin();
        assert!(dt > 10.0 && dt < 25.0, "ΔT = {dt}");
        assert!(op.pressure_margin > 0.0);
    }

    #[test]
    fn tilt_costs_a_few_degrees_not_tens() {
        // The Fig 10 behaviour: 22° tilt slightly degrades the loop.
        let lhp = seb_lhp();
        let q = Power::new(29.0);
        let sink = Celsius::new(35.0);
        let flat = lhp.operating_point(q, sink, 0.0).unwrap();
        let tilted = lhp.operating_point(q, sink, 22f64.to_radians()).unwrap();
        let penalty = (tilted.case_temperature - flat.case_temperature).kelvin();
        assert!(
            penalty > 0.05 && penalty < 8.0,
            "22° tilt penalty = {penalty} K"
        );
    }

    #[test]
    fn max_transport_decreases_with_tilt() {
        let lhp = seb_lhp();
        let sink = Celsius::new(35.0);
        let q0 = lhp.max_transport(sink, 0.0).unwrap();
        let q22 = lhp.max_transport(sink, 22f64.to_radians()).unwrap();
        assert!(q22.value() <= q0.value());
        // Still comfortably above the 29 W duty.
        assert!(q22.value() > 29.0, "Q_max(22°) = {q22}");
    }

    #[test]
    fn critical_flux_caps_the_load() {
        let lhp = seb_lhp();
        // 15 cm² at 20 W/cm² → 300 W cap.
        let err = lhp
            .operating_point(Power::new(400.0), Celsius::new(35.0), 0.0)
            .unwrap_err();
        assert!(matches!(
            err,
            TwoPhaseError::DryOut {
                limit: TransportLimit::Boiling,
                ..
            }
        ));
    }

    #[test]
    fn conductance_definition_consistent() {
        let lhp = seb_lhp();
        let q = Power::new(20.0);
        let sink = Celsius::new(30.0);
        let op = lhp.operating_point(q, sink, 0.0).unwrap();
        let dt = (op.case_temperature - sink).kelvin();
        assert!((op.conductance.value() - 20.0 / dt).abs() < 1e-9);
    }

    #[test]
    fn zero_power_is_well_defined() {
        let lhp = seb_lhp();
        let op = lhp
            .operating_point(Power::ZERO, Celsius::new(30.0), 0.0)
            .unwrap();
        assert!((op.vapor_temperature.value() - 30.0).abs() < 1e-9);
        assert!(op.conductance.value() > 0.0);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        let bad = LoopHeatPipe::new(
            WorkingFluid::ammonia(),
            Length::ZERO,
            ThermalResistance::new(0.1),
            ThermalConductance::new(3.0),
            Area::from_square_centimeters(10.0),
            HeatFlux::from_watts_per_square_centimeter(20.0),
            Line {
                length: 1.0,
                inner_diameter: 2e-3,
            },
            Line {
                length: 1.0,
                inner_diameter: 1.5e-3,
            },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn steep_tilt_eventually_kills_transport() {
        // With a coarse wick (low capillary head) a 90° adverse tilt over
        // a long run exhausts the pumping head entirely.
        let weak = LoopHeatPipe::new(
            WorkingFluid::ammonia(),
            Length::from_micrometers(400.0),
            ThermalResistance::new(0.25),
            ThermalConductance::new(3.0),
            Area::from_square_centimeters(15.0),
            HeatFlux::from_watts_per_square_centimeter(20.0),
            Line {
                length: 2.0,
                inner_diameter: 2e-3,
            },
            Line {
                length: 2.0,
                inner_diameter: 1.5e-3,
            },
        )
        .unwrap();
        let q = weak
            .max_transport(Celsius::new(35.0), 90f64.to_radians())
            .unwrap();
        assert!(q.value() < 1.0, "coarse wick at 90°: {q}");
        let err = weak
            .operating_point(Power::new(20.0), Celsius::new(35.0), 90f64.to_radians())
            .unwrap_err();
        assert!(matches!(
            err,
            TwoPhaseError::DryOut {
                limit: TransportLimit::Capillary,
                ..
            }
        ));
    }
}
