//! Heat pipes, loop heat pipes and thermosyphons — the "phase change
//! systems" the paper's COSEE project built its fan-less SEB cooling
//! from.
//!
//! Three device models, all steady-state and all driven by the
//! working-fluid saturation tables in `aeropack-materials`:
//!
//! * [`HeatPipe`] — wick-in-tube pipe with the five classical transport
//!   limits (capillary, sonic, entrainment, boiling, viscous) and a
//!   series wall/wick thermal resistance.
//! * [`LoopHeatPipe`] — loop pressure-balance closure with tilt
//!   sensitivity; the device that moves the SEB heat to the seat frame
//!   "over large distance under small temperature differences".
//! * [`Thermosyphon`] — the gravity-driven baseline, with the flooding
//!   limit and the orientation restriction that motivates wicks.
//! * [`VaporChamber`] — the flat-plate spreader that rescues the §IV
//!   hot spots, with the Hele–Shaw vapour-core conductivity model.
//! * [`FlatHeatPipe`] — the thin (≈1.5 mm) sintered-wick slot-core
//!   pipe of arXiv:0802.3107, for board drains under tight keep-outs.
//! * [`PumpedTwoPhaseLoop`] — the AMS-02-style mechanically pumped
//!   CO₂ loop (arXiv:1302.4294): setpoint-pinned evaporator, pump-head
//!   and film-dry-out transport limits, near tilt-insensitive.
//!
//! # Example
//!
//! ```
//! use aeropack_twophase::HeatPipe;
//! use aeropack_units::{Celsius, Length, Power};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pipe = HeatPipe::copper_water_6mm(
//!     Length::from_millimeters(60.0),
//!     Length::from_millimeters(120.0),
//!     Length::from_millimeters(60.0),
//! )?;
//! let r = pipe.operate(Power::new(25.0), Celsius::new(60.0), 0.0)?;
//! assert!(r.value() < 0.5); // near-isothermal transport
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flat;
mod heatpipe;
mod lhp;
mod pumped;
mod thermosyphon;
mod vapor_chamber;

pub use error::{TransportLimit, TwoPhaseError};
pub use flat::FlatHeatPipe;
pub use heatpipe::{HeatPipe, HeatPipeLimits, Wick};
pub use lhp::{LhpOperatingPoint, Line, LoopHeatPipe};
pub use pumped::{PumpedOperatingPoint, PumpedTwoPhaseLoop};
pub use thermosyphon::Thermosyphon;
pub use vapor_chamber::VaporChamber;
