//! Two-phase closed thermosyphon (gravity-driven heat pipe, no wick).
//!
//! The cheapest of the paper's "phase change systems" — works only when
//! the condenser sits above the evaporator, which is exactly why the
//! COSEE seat hardware used wicked devices instead. Provided here both
//! for completeness of the technology trade space and for the ceiling-
//! mounted IFE equipment case the project also considered.

use aeropack_materials::WorkingFluid;
use aeropack_units::{Celsius, Length, Power, ThermalResistance, STANDARD_GRAVITY};

use crate::error::{TransportLimit, TwoPhaseError};

/// A vertical (or tilted) two-phase closed thermosyphon.
///
/// # Examples
///
/// ```
/// use aeropack_twophase::Thermosyphon;
/// use aeropack_materials::WorkingFluid;
/// use aeropack_units::{Celsius, Length, Power};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = Thermosyphon::new(
///     WorkingFluid::water(),
///     Length::from_millimeters(10.0),
///     Length::from_millimeters(150.0),
///     Length::from_millimeters(150.0),
/// )?;
/// let r = ts.thermal_resistance(Power::new(50.0), Celsius::new(70.0))?;
/// assert!(r.value() < 1.0); // far better than a solid conductor
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Thermosyphon {
    fluid: WorkingFluid,
    inner_diameter: f64,
    evaporator_length: f64,
    condenser_length: f64,
}

impl Thermosyphon {
    /// Builds a thermosyphon.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive dimensions.
    pub fn new(
        fluid: WorkingFluid,
        inner_diameter: Length,
        evaporator_length: Length,
        condenser_length: Length,
    ) -> Result<Self, TwoPhaseError> {
        if inner_diameter.value() <= 0.0
            || evaporator_length.value() <= 0.0
            || condenser_length.value() <= 0.0
        {
            return Err(TwoPhaseError::invalid("all dimensions must be positive"));
        }
        Ok(Self {
            fluid,
            inner_diameter: inner_diameter.value(),
            evaporator_length: evaporator_length.value(),
            condenser_length: condenser_length.value(),
        })
    }

    /// Counter-current flooding limit (Kutateladze form with Ku = 3.2),
    /// assuming the device is oriented with the condenser above the
    /// evaporator. `tilt_rad` is the adverse tilt: 0 = fully vertical
    /// favourable; at ≥ 90° gravity return fails completely.
    ///
    /// # Errors
    ///
    /// Returns a fluid range error, or [`TwoPhaseError::DryOut`] with
    /// zero capacity when the orientation defeats gravity return.
    pub fn flooding_limit(
        &self,
        vapor_temp: Celsius,
        tilt_rad: f64,
    ) -> Result<Power, TwoPhaseError> {
        if tilt_rad.cos() <= 0.0 {
            return Ok(Power::ZERO);
        }
        let sat = self.fluid.saturation(vapor_temp)?;
        let area = std::f64::consts::PI * (self.inner_diameter / 2.0).powi(2);
        let rho_v = sat.vapor_density.value();
        let rho_l = sat.liquid_density.value();
        let g_eff = STANDARD_GRAVITY * tilt_rad.cos();
        let ku = 3.2;
        let q = ku
            * area
            * sat.latent_heat
            * rho_v.sqrt()
            * (sat.surface_tension * g_eff * (rho_l - rho_v)).powf(0.25);
        Ok(Power::new(q))
    }

    /// End-to-end thermal resistance at a given load using the Imura
    /// pool-boiling correlation in the evaporator and Nusselt film
    /// condensation in the condenser (iterated on the film ΔT).
    ///
    /// # Errors
    ///
    /// Returns fluid-range errors, an invalid-power error for `q ≤ 0`.
    pub fn thermal_resistance(
        &self,
        q: Power,
        vapor_temp: Celsius,
    ) -> Result<ThermalResistance, TwoPhaseError> {
        if q.value() <= 0.0 {
            return Err(TwoPhaseError::invalid("power must be positive"));
        }
        let sat = self.fluid.saturation(vapor_temp)?;
        let d = self.inner_diameter;
        let a_e = std::f64::consts::PI * d * self.evaporator_length;
        let a_c = std::f64::consts::PI * d * self.condenser_length;
        let flux_e = q.value() / a_e;

        // Imura evaporator correlation.
        let rho_l = sat.liquid_density.value();
        let rho_v = sat.vapor_density.value();
        let k_l = sat.liquid_conductivity.value();
        let mu_l = sat.liquid_viscosity;
        // cp of the liquid: approximate from conductivity-scale data;
        // use 4186·(k_l/0.6) clamped — water-anchored engineering value.
        let cp_l = (4186.0 * k_l / 0.6).clamp(1500.0, 5000.0);
        let p_ratio = sat.pressure.value() / 101_325.0;
        let h_e = 0.32
            * (rho_l.powf(0.65) * k_l.powf(0.3) * cp_l.powf(0.7) * STANDARD_GRAVITY.powf(0.2)
                / (rho_v.powf(0.25) * sat.latent_heat.powf(0.4) * mu_l.powf(0.1)))
            * p_ratio.powf(0.3)
            * flux_e.powf(0.4);

        // Nusselt film condensation, iterating on the film ΔT.
        let mut dt_c: f64 = 3.0;
        let mut h_c = 1000.0;
        for _ in 0..50 {
            h_c = 0.943
                * (rho_l * (rho_l - rho_v) * STANDARD_GRAVITY * sat.latent_heat * k_l.powi(3)
                    / (mu_l * self.condenser_length * dt_c.max(1e-3)))
                .powf(0.25);
            let dt_new = q.value() / (h_c * a_c);
            if (dt_new - dt_c).abs() < 1e-9 {
                dt_c = dt_new;
                break;
            }
            dt_c = 0.5 * (dt_c + dt_new);
        }
        let _ = h_c;
        let r_e = 1.0 / (h_e * a_e);
        let r_c = dt_c / q.value();
        Ok(ThermalResistance::new(r_e + r_c))
    }

    /// Verifies orientation and flooding, returning the resistance.
    ///
    /// # Errors
    ///
    /// [`TwoPhaseError::DryOut`] (flooding) when `q` exceeds the
    /// counter-current limit or gravity return fails.
    pub fn operate(
        &self,
        q: Power,
        vapor_temp: Celsius,
        tilt_rad: f64,
    ) -> Result<ThermalResistance, TwoPhaseError> {
        let q_max = self.flooding_limit(vapor_temp, tilt_rad)?;
        if q.value() > q_max.value() {
            return Err(TwoPhaseError::DryOut {
                limit: TransportLimit::Flooding,
                q_max,
                q_requested: q,
            });
        }
        self.thermal_resistance(q, vapor_temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> Thermosyphon {
        Thermosyphon::new(
            WorkingFluid::water(),
            Length::from_millimeters(10.0),
            Length::from_millimeters(150.0),
            Length::from_millimeters(150.0),
        )
        .unwrap()
    }

    #[test]
    fn vertical_capacity_is_large() {
        // A 10 mm water thermosyphon floods in the kW range.
        let q = ts().flooding_limit(Celsius::new(80.0), 0.0).unwrap();
        assert!(q.value() > 300.0, "flooding limit {q}");
    }

    #[test]
    fn upside_down_fails() {
        let ts = ts();
        let q = ts
            .flooding_limit(Celsius::new(80.0), 120f64.to_radians())
            .unwrap();
        assert_eq!(q, Power::ZERO);
        let err = ts
            .operate(Power::new(10.0), Celsius::new(80.0), 120f64.to_radians())
            .unwrap_err();
        assert!(matches!(
            err,
            TwoPhaseError::DryOut {
                limit: TransportLimit::Flooding,
                ..
            }
        ));
    }

    #[test]
    fn tilt_reduces_flooding_limit() {
        let ts = ts();
        let q0 = ts.flooding_limit(Celsius::new(80.0), 0.0).unwrap();
        let q60 = ts
            .flooding_limit(Celsius::new(80.0), 60f64.to_radians())
            .unwrap();
        assert!(q60.value() < q0.value());
    }

    #[test]
    fn resistance_magnitude_is_sensible() {
        // 50 W through a 15 cm/15 cm water thermosyphon: R of order
        // 0.05–0.5 K/W (film-dominated).
        let r = ts()
            .thermal_resistance(Power::new(50.0), Celsius::new(70.0))
            .unwrap();
        assert!(r.value() > 0.01 && r.value() < 1.0, "R = {r}");
    }

    #[test]
    fn resistance_improves_with_load() {
        // Boiling intensifies with flux: R(100 W) < R(10 W).
        let ts = ts();
        let r10 = ts
            .thermal_resistance(Power::new(10.0), Celsius::new(70.0))
            .unwrap();
        let r100 = ts
            .thermal_resistance(Power::new(100.0), Celsius::new(70.0))
            .unwrap();
        assert!(r100.value() < r10.value());
    }

    #[test]
    fn invalid_inputs() {
        assert!(Thermosyphon::new(
            WorkingFluid::water(),
            Length::ZERO,
            Length::new(0.1),
            Length::new(0.1)
        )
        .is_err());
        assert!(ts()
            .thermal_resistance(Power::ZERO, Celsius::new(70.0))
            .is_err());
    }
}
