//! Conventional (wick-in-tube) heat-pipe model: the five classical
//! operating limits and the series thermal resistance.
//!
//! These are the devices the COSEE project used "to transfer the heat
//! from the dissipating components and the edge of the SEB".

use aeropack_materials::{Material, Saturation, WorkingFluid};
use aeropack_units::{
    Celsius, Length, Power, ThermalConductivity, ThermalResistance, STANDARD_GRAVITY,
};

use crate::error::{TransportLimit, TwoPhaseError};

/// Wick structure of a heat pipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wick {
    /// Effective capillary pore radius, m.
    pub pore_radius: f64,
    /// Permeability, m².
    pub permeability: f64,
    /// Porosity (liquid volume fraction).
    pub porosity: f64,
}

impl Wick {
    /// Sintered copper powder — high capillary pressure, moderate
    /// permeability; the standard electronics-cooling wick.
    pub fn sintered_powder() -> Self {
        Self {
            pore_radius: 20e-6,
            permeability: 5e-11,
            porosity: 0.5,
        }
    }

    /// Axial grooves — low capillary pressure, high permeability;
    /// gravity-sensitive but cheap (extruded aluminium pipes).
    pub fn axial_grooves() -> Self {
        Self {
            pore_radius: 0.4e-3,
            permeability: 1e-9,
            porosity: 0.6,
        }
    }

    /// Wrapped screen mesh — intermediate properties.
    pub fn screen_mesh() -> Self {
        Self {
            pore_radius: 60e-6,
            permeability: 1e-10,
            porosity: 0.65,
        }
    }

    /// Maximum capillary pressure `2σ/r_eff`, Pa.
    pub fn capillary_pressure(&self, sat: &Saturation) -> f64 {
        2.0 * sat.surface_tension / self.pore_radius
    }

    /// Effective conductivity of the liquid-saturated wick (Maxwell
    /// model with the solid as the continuous phase).
    pub fn effective_conductivity(
        &self,
        solid: &Material,
        sat: &Saturation,
    ) -> ThermalConductivity {
        let ks = solid.thermal_conductivity.value();
        let kl = sat.liquid_conductivity.value();
        let eps = self.porosity;
        let ratio = kl / ks;
        let k_eff =
            ks * (2.0 + ratio - 2.0 * eps * (1.0 - ratio)) / (2.0 + ratio + eps * (1.0 - ratio));
        ThermalConductivity::new(k_eff)
    }
}

/// Geometry and materials of a cylindrical heat pipe.
#[derive(Debug, Clone)]
pub struct HeatPipe {
    fluid: WorkingFluid,
    wick: Wick,
    envelope: Material,
    outer_diameter: f64,
    wall_thickness: f64,
    wick_thickness: f64,
    evaporator_length: f64,
    adiabatic_length: f64,
    condenser_length: f64,
}

/// The computed transport limits of a heat pipe at one operating state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatPipeLimits {
    /// Capillary (wick dry-out) limit.
    pub capillary: Power,
    /// Sonic (choked vapour) limit.
    pub sonic: Power,
    /// Entrainment limit.
    pub entrainment: Power,
    /// Boiling limit.
    pub boiling: Power,
    /// Viscous limit.
    pub viscous: Power,
}

impl HeatPipeLimits {
    /// The binding (smallest) limit and its kind.
    pub fn governing(&self) -> (TransportLimit, Power) {
        let all = [
            (TransportLimit::Capillary, self.capillary),
            (TransportLimit::Sonic, self.sonic),
            (TransportLimit::Entrainment, self.entrainment),
            (TransportLimit::Boiling, self.boiling),
            (TransportLimit::Viscous, self.viscous),
        ];
        all.into_iter()
            .min_by(|a, b| {
                a.1.value()
                    .partial_cmp(&b.1.value())
                    .expect("finite limits")
            })
            .expect("non-empty limit list")
    }
}

impl HeatPipe {
    /// Builds a heat pipe.
    ///
    /// # Errors
    ///
    /// Returns an error when the cross-section is inconsistent (no vapour
    /// core left) or any dimension is non-positive.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fluid: WorkingFluid,
        wick: Wick,
        envelope: Material,
        outer_diameter: Length,
        wall_thickness: Length,
        wick_thickness: Length,
        evaporator_length: Length,
        adiabatic_length: Length,
        condenser_length: Length,
    ) -> Result<Self, TwoPhaseError> {
        let d = outer_diameter.value();
        let tw = wall_thickness.value();
        let tk = wick_thickness.value();
        if d <= 0.0 || tw <= 0.0 || tk <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "diameters and thicknesses must be positive",
            ));
        }
        if evaporator_length.value() <= 0.0 || condenser_length.value() <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "evaporator and condenser lengths must be positive",
            ));
        }
        if adiabatic_length.value() < 0.0 {
            return Err(TwoPhaseError::invalid(
                "adiabatic length cannot be negative",
            ));
        }
        let r_vapor = d / 2.0 - tw - tk;
        if r_vapor <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "wall + wick leave no vapour core in the cross-section",
            ));
        }
        Ok(Self {
            fluid,
            wick,
            envelope,
            outer_diameter: d,
            wall_thickness: tw,
            wick_thickness: tk,
            evaporator_length: evaporator_length.value(),
            adiabatic_length: adiabatic_length.value(),
            condenser_length: condenser_length.value(),
        })
    }

    /// A 6 mm copper/water pipe with a sintered wick — the COSEE-style
    /// SEB board drain.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn copper_water_6mm(
        evaporator_length: Length,
        adiabatic_length: Length,
        condenser_length: Length,
    ) -> Result<Self, TwoPhaseError> {
        Self::new(
            WorkingFluid::water(),
            Wick::sintered_powder(),
            Material::copper(),
            Length::from_millimeters(6.0),
            Length::from_millimeters(0.3),
            Length::from_millimeters(0.6),
            evaporator_length,
            adiabatic_length,
            condenser_length,
        )
    }

    /// Vapour-core radius, m.
    fn vapor_radius(&self) -> f64 {
        self.outer_diameter / 2.0 - self.wall_thickness - self.wick_thickness
    }

    /// Wick annulus cross-section, m².
    fn wick_area(&self) -> f64 {
        let r_i = self.outer_diameter / 2.0 - self.wall_thickness;
        let r_v = self.vapor_radius();
        std::f64::consts::PI * (r_i * r_i - r_v * r_v)
    }

    /// Effective pumping length, m.
    fn effective_length(&self) -> f64 {
        self.adiabatic_length + 0.5 * (self.evaporator_length + self.condenser_length)
    }

    /// Total pipe length, m.
    pub fn total_length(&self) -> Length {
        Length::new(self.evaporator_length + self.adiabatic_length + self.condenser_length)
    }

    /// The working fluid.
    pub fn fluid(&self) -> &WorkingFluid {
        &self.fluid
    }

    /// Computes all five transport limits at the given vapour
    /// temperature and adverse tilt (radians; positive = evaporator
    /// above condenser).
    ///
    /// # Errors
    ///
    /// Returns an error when the fluid state is out of range.
    pub fn limits(
        &self,
        vapor_temp: Celsius,
        tilt_rad: f64,
    ) -> Result<HeatPipeLimits, TwoPhaseError> {
        let sat = self.fluid.saturation(vapor_temp)?;
        let r_v = self.vapor_radius();
        let a_v = std::f64::consts::PI * r_v * r_v;
        let l_eff = self.effective_length();
        let l_total = self.total_length().value();

        // Capillary limit: Δp_cap − Δp_gravity = (F_l + F_v)·L_eff·Q.
        let dp_cap = self.wick.capillary_pressure(&sat);
        let dp_grav = sat.liquid_density.value() * STANDARD_GRAVITY * l_total * tilt_rad.sin();
        let f_l = sat.liquid_viscosity
            / (self.wick.permeability
                * self.wick_area()
                * sat.liquid_density.value()
                * sat.latent_heat);
        let f_v = 8.0 * sat.vapor_viscosity
            / (std::f64::consts::PI * r_v.powi(4) * sat.vapor_density.value() * sat.latent_heat);
        let head = dp_cap - dp_grav;
        let capillary = if head <= 0.0 {
            0.0
        } else {
            head / ((f_l + f_v) * l_eff)
        };

        // Sonic limit (Busse).
        let gamma = 1.33;
        let r_specific = aeropack_materials::GAS_CONSTANT / self.fluid.molar_mass();
        let t_k = vapor_temp.kelvin();
        let sonic = a_v
            * sat.vapor_density.value()
            * sat.latent_heat
            * (gamma * r_specific * t_k / (2.0 * (gamma + 1.0))).sqrt();

        // Entrainment limit (Cotter, with the wick pore as the
        // characteristic wavelength).
        let entrainment = a_v
            * sat.latent_heat
            * (sat.surface_tension * sat.vapor_density.value() / (2.0 * self.wick.pore_radius))
                .sqrt();

        // Boiling limit (nucleation radius 2.5e-7 m).
        let r_nucleation = 2.5e-7;
        let k_eff = self
            .wick
            .effective_conductivity(&self.envelope, &sat)
            .value();
        let r_i = self.outer_diameter / 2.0 - self.wall_thickness;
        let boiling = 2.0 * std::f64::consts::PI * self.evaporator_length * k_eff * t_k
            / (sat.latent_heat * sat.vapor_density.value() * (r_i / r_v).ln())
            * (2.0 * sat.surface_tension / r_nucleation - dp_cap).max(0.0);

        // Viscous limit (Busse).
        let viscous =
            r_v * r_v * sat.latent_heat * sat.vapor_density.value() * sat.pressure.value() * a_v
                / (16.0 * sat.vapor_viscosity * l_eff);

        Ok(HeatPipeLimits {
            capillary: Power::new(capillary),
            sonic: Power::new(sonic),
            entrainment: Power::new(entrainment),
            boiling: Power::new(boiling),
            viscous: Power::new(viscous),
        })
    }

    /// Maximum transportable power at the given state (the governing
    /// limit).
    ///
    /// # Errors
    ///
    /// Returns an error when the fluid state is out of range.
    pub fn max_power(&self, vapor_temp: Celsius, tilt_rad: f64) -> Result<Power, TwoPhaseError> {
        Ok(self.limits(vapor_temp, tilt_rad)?.governing().1)
    }

    /// The adverse tilt (radians) at which the gravity column exactly
    /// cancels the wick's capillary pressure, i.e. where the capillary
    /// limit hits 0 W. `None` when the wick out-pumps the full 90°
    /// static head (fine sintered powder on a short pipe).
    ///
    /// # Errors
    ///
    /// Returns an error when the fluid state is out of range.
    pub fn static_head_limit_tilt(
        &self,
        vapor_temp: Celsius,
    ) -> Result<Option<f64>, TwoPhaseError> {
        let sat = self.fluid.saturation(vapor_temp)?;
        let dp_cap = self.wick.capillary_pressure(&sat);
        let column = sat.liquid_density.value() * STANDARD_GRAVITY * self.total_length().value();
        let ratio = dp_cap / column;
        if ratio >= 1.0 {
            Ok(None)
        } else {
            Ok(Some(ratio.asin()))
        }
    }

    /// Estimated device mass, kg: envelope shell + solid wick fraction
    /// (taken as envelope metal) + the liquid charge filling the wick
    /// pores, with the charge density read at 25 °C clamped into the
    /// fluid's tabulated range.
    pub fn mass_estimate(&self) -> f64 {
        let l = self.total_length().value();
        let r_o = self.outer_diameter / 2.0;
        let r_i = r_o - self.wall_thickness;
        let r_v = self.vapor_radius();
        let pi = std::f64::consts::PI;
        let shell = pi * (r_o * r_o - r_i * r_i) * l * self.envelope.density.value();
        let wick_solid = pi
            * (r_i * r_i - r_v * r_v)
            * l
            * (1.0 - self.wick.porosity)
            * self.envelope.density.value();
        let t_fill = Celsius::new(
            25.0f64
                .max(self.fluid.min_temperature().value())
                .min(self.fluid.max_temperature().value()),
        );
        let rho_l = self
            .fluid
            .saturation(t_fill)
            .map(|s| s.liquid_density.value())
            .unwrap_or(1000.0);
        let charge = pi * (r_i * r_i - r_v * r_v) * l * self.wick.porosity * rho_l;
        shell + wick_solid + charge
    }

    /// End-to-end thermal resistance (wall + saturated wick at both
    /// ends; the vapour path is taken as isothermal).
    ///
    /// # Errors
    ///
    /// Returns an error when the fluid state is out of range.
    pub fn thermal_resistance(
        &self,
        vapor_temp: Celsius,
    ) -> Result<ThermalResistance, TwoPhaseError> {
        let sat = self.fluid.saturation(vapor_temp)?;
        let k_wall = self.envelope.thermal_conductivity.value();
        let k_wick = self
            .wick
            .effective_conductivity(&self.envelope, &sat)
            .value();
        let r_o = self.outer_diameter / 2.0;
        let r_i = r_o - self.wall_thickness;
        let r_v = self.vapor_radius();
        let two_pi = 2.0 * std::f64::consts::PI;
        let section = |length: f64| {
            let r_wall = (r_o / r_i).ln() / (two_pi * k_wall * length);
            let r_wick = (r_i / r_v).ln() / (two_pi * k_wick * length);
            r_wall + r_wick
        };
        Ok(ThermalResistance::new(
            section(self.evaporator_length) + section(self.condenser_length),
        ))
    }

    /// Verifies that the pipe can carry `q` at the given state and
    /// returns its resistance; dry-out is an error naming the governing
    /// limit.
    ///
    /// # Errors
    ///
    /// [`TwoPhaseError::DryOut`] when `q` exceeds the governing limit,
    /// or a fluid range error.
    pub fn operate(
        &self,
        q: Power,
        vapor_temp: Celsius,
        tilt_rad: f64,
    ) -> Result<ThermalResistance, TwoPhaseError> {
        let limits = self.limits(vapor_temp, tilt_rad)?;
        let (limit, q_max) = limits.governing();
        if q.value() > q_max.value() {
            return Err(TwoPhaseError::DryOut {
                limit,
                q_max,
                q_requested: q,
            });
        }
        self.thermal_resistance(vapor_temp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seb_pipe() -> HeatPipe {
        HeatPipe::copper_water_6mm(
            Length::from_millimeters(60.0),
            Length::from_millimeters(120.0),
            Length::from_millimeters(60.0),
        )
        .unwrap()
    }

    #[test]
    fn horizontal_capillary_limit_magnitude() {
        // A 6 mm water pipe carries tens of watts horizontally at 60 °C.
        let q = seb_pipe()
            .max_power(Celsius::new(60.0), 0.0)
            .unwrap()
            .value();
        assert!(q > 20.0 && q < 500.0, "Q_max = {q} W");
    }

    #[test]
    fn adverse_tilt_reduces_capacity() {
        let pipe = seb_pipe();
        let q0 = pipe.limits(Celsius::new(60.0), 0.0).unwrap().capillary;
        let q45 = pipe
            .limits(Celsius::new(60.0), 45f64.to_radians())
            .unwrap()
            .capillary;
        let q90 = pipe
            .limits(Celsius::new(60.0), 90f64.to_radians())
            .unwrap()
            .capillary;
        assert!(q45.value() < q0.value());
        assert!(q90.value() < q45.value());
    }

    #[test]
    fn favorable_tilt_helps() {
        let pipe = seb_pipe();
        let q0 = pipe.limits(Celsius::new(60.0), 0.0).unwrap().capillary;
        let q_down = pipe
            .limits(Celsius::new(60.0), -30f64.to_radians())
            .unwrap()
            .capillary;
        assert!(q_down.value() > q0.value());
    }

    #[test]
    fn grooved_wick_dies_against_gravity() {
        // Grooves have 20× larger pores: almost no pumping head when
        // tilted 90° adverse.
        let grooved = HeatPipe::new(
            WorkingFluid::water(),
            Wick::axial_grooves(),
            Material::copper(),
            Length::from_millimeters(6.0),
            Length::from_millimeters(0.3),
            Length::from_millimeters(0.6),
            Length::from_millimeters(60.0),
            Length::from_millimeters(120.0),
            Length::from_millimeters(60.0),
        )
        .unwrap();
        let q = grooved
            .limits(Celsius::new(60.0), 90f64.to_radians())
            .unwrap()
            .capillary;
        assert!(q.value() < 1.0, "grooves against gravity: {q}");
        // The fine sintered wick, by contrast, retains most of its
        // pumping head even fully against gravity.
        let sintered = seb_pipe();
        let q_flat = sintered.limits(Celsius::new(60.0), 0.0).unwrap().capillary;
        let q_up = sintered
            .limits(Celsius::new(60.0), 90f64.to_radians())
            .unwrap()
            .capillary;
        assert!(
            q_up.value() > 0.4 * q_flat.value(),
            "sintered at 90°: {q_up} vs flat {q_flat}"
        );
    }

    #[test]
    fn sonic_limit_dominates_only_at_cold_start() {
        let pipe = seb_pipe();
        let warm = pipe.limits(Celsius::new(80.0), 0.0).unwrap();
        // Warm: sonic is far above capillary.
        assert!(warm.sonic.value() > 10.0 * warm.capillary.value());
        // Near the bottom of the table the vapour is thin and the sonic
        // limit collapses by orders of magnitude.
        let cold = pipe.limits(Celsius::new(1.0), 0.0).unwrap();
        assert!(cold.sonic.value() < 0.02 * warm.sonic.value());
    }

    #[test]
    fn resistance_is_small_and_positive() {
        // A heat pipe is a near-superconductor: R ≈ 0.01–0.5 K/W.
        let r = seb_pipe().thermal_resistance(Celsius::new(60.0)).unwrap();
        assert!(r.value() > 0.005 && r.value() < 0.5, "R = {r}");
    }

    #[test]
    fn equivalent_solid_rod_is_far_worse() {
        // The classic comparison: same geometry in solid copper.
        let pipe = seb_pipe();
        let r_hp = pipe.thermal_resistance(Celsius::new(60.0)).unwrap();
        let area = std::f64::consts::PI * (0.003f64).powi(2);
        let r_rod = Material::copper()
            .thermal_conductivity
            .bar_conductance(aeropack_units::Area::new(area), pipe.total_length())
            .to_resistance();
        assert!(
            r_rod.value() > 20.0 * r_hp.value(),
            "rod {r_rod} vs pipe {r_hp}"
        );
    }

    #[test]
    fn operate_reports_dry_out() {
        let pipe = seb_pipe();
        let q_max = pipe.max_power(Celsius::new(60.0), 0.0).unwrap();
        let (limit, _) = pipe.limits(Celsius::new(60.0), 0.0).unwrap().governing();
        let err = pipe
            .operate(q_max * 1.5, Celsius::new(60.0), 0.0)
            .unwrap_err();
        // Exact payload: the error carries the governing limit, the
        // exact transportable power and the exact request — no rounding
        // and no placeholder values.
        assert_eq!(
            err,
            TwoPhaseError::DryOut {
                limit,
                q_max,
                q_requested: q_max * 1.5,
            }
        );
        // The derived margin is exactly the 50 % overshoot.
        assert_eq!(err.dry_out_margin(), Some(q_max * 1.5 - q_max));
        assert!(pipe.operate(q_max * 0.5, Celsius::new(60.0), 0.0).is_ok());
    }

    #[test]
    fn tilt_past_static_head_limit_pins_capillary_at_zero() {
        // Grooved wicks lose the whole pumping head within a few
        // degrees of adverse tilt; past that angle the capillary limit
        // must clamp at exactly 0 W (never a negative power), and any
        // positive load must dry out with a full-request margin.
        let grooved = HeatPipe::new(
            WorkingFluid::water(),
            Wick::axial_grooves(),
            Material::copper(),
            Length::from_millimeters(6.0),
            Length::from_millimeters(0.3),
            Length::from_millimeters(0.6),
            Length::from_millimeters(60.0),
            Length::from_millimeters(120.0),
            Length::from_millimeters(60.0),
        )
        .unwrap();
        let t = Celsius::new(60.0);
        let tilt_limit = grooved
            .static_head_limit_tilt(t)
            .unwrap()
            .expect("grooves must have a static-head limit angle");
        assert!(tilt_limit > 0.0 && tilt_limit < 45f64.to_radians());
        // Just below the limit a sliver of head survives.
        assert!(
            grooved
                .limits(t, 0.9 * tilt_limit)
                .unwrap()
                .capillary
                .value()
                > 0.0
        );
        // At and past the limit: exactly zero, for every angle.
        for tilt in [
            tilt_limit,
            1.05 * tilt_limit,
            2.0 * tilt_limit,
            90f64.to_radians(),
        ] {
            let cap = grooved.limits(t, tilt).unwrap().capillary;
            assert_eq!(cap, Power::ZERO, "tilt {:.1}°", tilt.to_degrees());
        }
        // Past the limit even a 1 W request is a capillary dry-out
        // whose q_max is exactly zero and whose margin is the request.
        let err = grooved
            .operate(Power::new(1.0), t, 2.0 * tilt_limit)
            .unwrap_err();
        assert_eq!(
            err,
            TwoPhaseError::DryOut {
                limit: TransportLimit::Capillary,
                q_max: Power::ZERO,
                q_requested: Power::new(1.0),
            }
        );
        assert_eq!(err.dry_out_margin(), Some(Power::new(1.0)));
        // The fine sintered wick out-pumps the full static column on
        // this geometry: no limit angle exists.
        assert!(seb_pipe().static_head_limit_tilt(t).unwrap().is_none());
    }

    #[test]
    fn bad_geometry_is_rejected() {
        // Wick + wall thicker than the radius.
        let r = HeatPipe::new(
            WorkingFluid::water(),
            Wick::sintered_powder(),
            Material::copper(),
            Length::from_millimeters(4.0),
            Length::from_millimeters(1.0),
            Length::from_millimeters(1.5),
            Length::from_millimeters(50.0),
            Length::ZERO,
            Length::from_millimeters(50.0),
        );
        assert!(r.is_err());
    }

    #[test]
    fn wick_conductivity_between_bounds() {
        let sat = WorkingFluid::water()
            .saturation(Celsius::new(60.0))
            .unwrap();
        let k = Wick::sintered_powder()
            .effective_conductivity(&Material::copper(), &sat)
            .value();
        assert!(k > sat.liquid_conductivity.value());
        assert!(k < Material::copper().thermal_conductivity.value());
        // Typical sintered copper/water k_eff is tens of W/mK.
        assert!(k > 30.0 && k < 250.0, "k_eff = {k}");
    }
}
