//! Thin flat sintered-wick heat pipe (the "ultra thin flat heat pipe"
//! line of arXiv:0802.3107): two face sheets with a sintered copper
//! layer on each, a slot vapour core between them, and the same five
//! transport limits as the cylindrical pipe rewritten for the
//! rectangular cross-section.
//!
//! These are the board-level spreaders that fit under a 2 mm component
//! keep-out where a 6 mm round pipe cannot — the optimizer offers them
//! as a discrete cooling topology alongside the round pipe, the loop
//! heat pipe and the pumped CO₂ loop.

use aeropack_materials::{Material, WorkingFluid};
use aeropack_units::{Celsius, Length, Power, ThermalResistance, STANDARD_GRAVITY};

use crate::error::TwoPhaseError;
use crate::heatpipe::{HeatPipeLimits, Wick};

/// A thin flat (slot vapour core) sintered-wick heat pipe.
#[derive(Debug, Clone)]
pub struct FlatHeatPipe {
    fluid: WorkingFluid,
    wick: Wick,
    envelope: Material,
    width: f64,
    thickness: f64,
    wall_thickness: f64,
    wick_thickness: f64,
    evaporator_length: f64,
    adiabatic_length: f64,
    condenser_length: f64,
}

impl FlatHeatPipe {
    /// Builds a flat heat pipe. The cross-section is `width ×
    /// thickness` with a face sheet of `wall_thickness` and a sintered
    /// layer of `wick_thickness` on each side; the remaining slot is
    /// the vapour core.
    ///
    /// # Errors
    ///
    /// Returns an error when any dimension is non-positive or the two
    /// face stacks leave no vapour core.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fluid: WorkingFluid,
        wick: Wick,
        envelope: Material,
        width: Length,
        thickness: Length,
        wall_thickness: Length,
        wick_thickness: Length,
        evaporator_length: Length,
        adiabatic_length: Length,
        condenser_length: Length,
    ) -> Result<Self, TwoPhaseError> {
        let w = width.value();
        let t = thickness.value();
        let tw = wall_thickness.value();
        let tk = wick_thickness.value();
        if w <= 0.0 || t <= 0.0 || tw <= 0.0 || tk <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "flat-pipe dimensions must be positive",
            ));
        }
        if evaporator_length.value() <= 0.0 || condenser_length.value() <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "evaporator and condenser lengths must be positive",
            ));
        }
        if adiabatic_length.value() < 0.0 {
            return Err(TwoPhaseError::invalid(
                "adiabatic length cannot be negative",
            ));
        }
        if t - 2.0 * (tw + tk) <= 0.0 {
            return Err(TwoPhaseError::invalid(
                "face sheets + wick layers leave no vapour slot",
            ));
        }
        Ok(Self {
            fluid,
            wick,
            envelope,
            width: w,
            thickness: t,
            wall_thickness: tw,
            wick_thickness: tk,
            evaporator_length: evaporator_length.value(),
            adiabatic_length: adiabatic_length.value(),
            condenser_length: condenser_length.value(),
        })
    }

    /// A 1.5 mm copper/water flat pipe with sintered faces — the thin
    /// spreader geometry of arXiv:0802.3107 scaled to a board drain.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for these values).
    pub fn copper_water_thin(
        width: Length,
        evaporator_length: Length,
        adiabatic_length: Length,
        condenser_length: Length,
    ) -> Result<Self, TwoPhaseError> {
        Self::new(
            WorkingFluid::water(),
            Wick::sintered_powder(),
            Material::copper(),
            width,
            Length::from_millimeters(1.5),
            Length::from_millimeters(0.2),
            Length::from_millimeters(0.25),
            evaporator_length,
            adiabatic_length,
            condenser_length,
        )
    }

    /// Vapour-slot thickness, m.
    fn vapor_thickness(&self) -> f64 {
        self.thickness - 2.0 * (self.wall_thickness + self.wick_thickness)
    }

    /// Vapour-slot cross-section, m².
    fn vapor_area(&self) -> f64 {
        self.width * self.vapor_thickness()
    }

    /// Total wick cross-section (both faces), m².
    fn wick_area(&self) -> f64 {
        2.0 * self.width * self.wick_thickness
    }

    /// Effective pumping length, m.
    fn effective_length(&self) -> f64 {
        self.adiabatic_length + 0.5 * (self.evaporator_length + self.condenser_length)
    }

    /// Total pipe length, m.
    pub fn total_length(&self) -> Length {
        Length::new(self.evaporator_length + self.adiabatic_length + self.condenser_length)
    }

    /// The working fluid.
    pub fn fluid(&self) -> &WorkingFluid {
        &self.fluid
    }

    /// The five transport limits at a vapour temperature and adverse
    /// tilt, with the vapour pressure drop taken as laminar slot flow
    /// (`Δp = 12 μ L Q / (ρ h_fg w t_v³)`).
    ///
    /// # Errors
    ///
    /// Returns an error when the fluid state is out of range.
    pub fn limits(
        &self,
        vapor_temp: Celsius,
        tilt_rad: f64,
    ) -> Result<HeatPipeLimits, TwoPhaseError> {
        let sat = self.fluid.saturation(vapor_temp)?;
        let a_v = self.vapor_area();
        let t_v = self.vapor_thickness();
        let l_eff = self.effective_length();
        let l_total = self.total_length().value();

        // Capillary limit with slot-flow vapour friction.
        let dp_cap = self.wick.capillary_pressure(&sat);
        let dp_grav = sat.liquid_density.value() * STANDARD_GRAVITY * l_total * tilt_rad.sin();
        let f_l = sat.liquid_viscosity
            / (self.wick.permeability
                * self.wick_area()
                * sat.liquid_density.value()
                * sat.latent_heat);
        let f_v = 12.0 * sat.vapor_viscosity
            / (self.width * t_v.powi(3) * sat.vapor_density.value() * sat.latent_heat);
        let head = dp_cap - dp_grav;
        let capillary = if head <= 0.0 {
            0.0
        } else {
            head / ((f_l + f_v) * l_eff)
        };

        // Sonic limit (Busse) on the slot area.
        let gamma = 1.33;
        let r_specific = aeropack_materials::GAS_CONSTANT / self.fluid.molar_mass();
        let t_k = vapor_temp.kelvin();
        let sonic = a_v
            * sat.vapor_density.value()
            * sat.latent_heat
            * (gamma * r_specific * t_k / (2.0 * (gamma + 1.0))).sqrt();

        // Entrainment limit (Cotter).
        let entrainment = a_v
            * sat.latent_heat
            * (sat.surface_tension * sat.vapor_density.value() / (2.0 * self.wick.pore_radius))
                .sqrt();

        // Boiling limit through the flat sintered layer.
        let r_nucleation = 2.5e-7;
        let k_eff = self
            .wick
            .effective_conductivity(&self.envelope, &sat)
            .value();
        let a_e = self.width * self.evaporator_length;
        let boiling = k_eff * a_e * t_k
            / (sat.latent_heat * sat.vapor_density.value() * self.wick_thickness)
            * (2.0 * sat.surface_tension / r_nucleation - dp_cap).max(0.0);

        // Viscous limit (slot-flow form).
        let viscous =
            t_v * t_v * sat.latent_heat * sat.vapor_density.value() * sat.pressure.value() * a_v
                / (24.0 * sat.vapor_viscosity * l_eff);

        Ok(HeatPipeLimits {
            capillary: Power::new(capillary),
            sonic: Power::new(sonic),
            entrainment: Power::new(entrainment),
            boiling: Power::new(boiling),
            viscous: Power::new(viscous),
        })
    }

    /// Maximum transportable power (the governing limit).
    ///
    /// # Errors
    ///
    /// Returns an error when the fluid state is out of range.
    pub fn max_power(&self, vapor_temp: Celsius, tilt_rad: f64) -> Result<Power, TwoPhaseError> {
        Ok(self.limits(vapor_temp, tilt_rad)?.governing().1)
    }

    /// The adverse tilt at which the capillary head vanishes; `None`
    /// when the sintered faces out-pump the full 90° column.
    ///
    /// # Errors
    ///
    /// Returns an error when the fluid state is out of range.
    pub fn static_head_limit_tilt(
        &self,
        vapor_temp: Celsius,
    ) -> Result<Option<f64>, TwoPhaseError> {
        let sat = self.fluid.saturation(vapor_temp)?;
        let dp_cap = self.wick.capillary_pressure(&sat);
        let column = sat.liquid_density.value() * STANDARD_GRAVITY * self.total_length().value();
        let ratio = dp_cap / column;
        if ratio >= 1.0 {
            Ok(None)
        } else {
            Ok(Some(ratio.asin()))
        }
    }

    /// End-to-end thermal resistance: face sheet + saturated wick at
    /// each transfer section, slab conduction.
    ///
    /// # Errors
    ///
    /// Returns an error when the fluid state is out of range.
    pub fn thermal_resistance(
        &self,
        vapor_temp: Celsius,
    ) -> Result<ThermalResistance, TwoPhaseError> {
        let sat = self.fluid.saturation(vapor_temp)?;
        let k_wall = self.envelope.thermal_conductivity.value();
        let k_wick = self
            .wick
            .effective_conductivity(&self.envelope, &sat)
            .value();
        let section = |length: f64| {
            let a = self.width * length;
            self.wall_thickness / (k_wall * a) + self.wick_thickness / (k_wick * a)
        };
        Ok(ThermalResistance::new(
            section(self.evaporator_length) + section(self.condenser_length),
        ))
    }

    /// Verifies that the pipe can carry `q` and returns its resistance;
    /// dry-out is an error naming the governing limit and carrying the
    /// exact margin.
    ///
    /// # Errors
    ///
    /// [`TwoPhaseError::DryOut`] when `q` exceeds the governing limit,
    /// or a fluid range error.
    pub fn operate(
        &self,
        q: Power,
        vapor_temp: Celsius,
        tilt_rad: f64,
    ) -> Result<ThermalResistance, TwoPhaseError> {
        let limits = self.limits(vapor_temp, tilt_rad)?;
        let (limit, q_max) = limits.governing();
        if q.value() > q_max.value() {
            return Err(TwoPhaseError::DryOut {
                limit,
                q_max,
                q_requested: q,
            });
        }
        self.thermal_resistance(vapor_temp)
    }

    /// Estimated device mass, kg: two face sheets, two sintered layers
    /// (solid fraction as envelope metal) and the liquid charge in the
    /// wick pores at 25 °C (clamped into the fluid's range).
    pub fn mass_estimate(&self) -> f64 {
        let l = self.total_length().value();
        let shell = 2.0 * self.width * self.wall_thickness * l * self.envelope.density.value();
        let wick_volume = 2.0 * self.width * self.wick_thickness * l;
        let wick_solid = wick_volume * (1.0 - self.wick.porosity) * self.envelope.density.value();
        let t_fill = Celsius::new(
            25.0f64
                .max(self.fluid.min_temperature().value())
                .min(self.fluid.max_temperature().value()),
        );
        let rho_l = self
            .fluid
            .saturation(t_fill)
            .map(|s| s.liquid_density.value())
            .unwrap_or(1000.0);
        shell + wick_solid + wick_volume * self.wick.porosity * rho_l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thin_pipe() -> FlatHeatPipe {
        FlatHeatPipe::copper_water_thin(
            Length::from_millimeters(20.0),
            Length::from_millimeters(40.0),
            Length::from_millimeters(80.0),
            Length::from_millimeters(40.0),
        )
        .unwrap()
    }

    #[test]
    fn carries_board_level_power() {
        // A 20 mm × 1.5 mm slot pipe moves tens of watts at 60 °C.
        let q = thin_pipe().max_power(Celsius::new(60.0), 0.0).unwrap();
        assert!(
            q.value() > 5.0 && q.value() < 500.0,
            "flat pipe Q_max = {q}"
        );
    }

    #[test]
    fn resistance_beats_solid_copper_sheet() {
        let pipe = thin_pipe();
        let r_fp = pipe.thermal_resistance(Celsius::new(60.0)).unwrap();
        // Same 20 × 1.5 mm section in solid copper over 160 mm.
        let k = Material::copper().thermal_conductivity.value();
        let r_sheet = 0.16 / (k * 0.02 * 0.0015);
        assert!(
            r_sheet > 10.0 * r_fp.value(),
            "sheet {r_sheet:.2} vs flat pipe {r_fp}"
        );
    }

    #[test]
    fn adverse_tilt_degrades_and_clamps_at_zero() {
        let pipe = thin_pipe();
        let t = Celsius::new(60.0);
        let q0 = pipe.limits(t, 0.0).unwrap().capillary;
        let q45 = pipe.limits(t, 45f64.to_radians()).unwrap().capillary;
        assert!(q45.value() < q0.value());
        assert!(q45.value() >= 0.0);
        // Whatever the angle, the clamp holds.
        for deg in [60.0f64, 90.0] {
            let c = pipe.limits(t, deg.to_radians()).unwrap().capillary;
            assert!(c.value() >= 0.0);
        }
    }

    #[test]
    fn no_vapor_slot_is_rejected() {
        let r = FlatHeatPipe::new(
            WorkingFluid::water(),
            Wick::sintered_powder(),
            Material::copper(),
            Length::from_millimeters(20.0),
            Length::from_millimeters(1.0),
            Length::from_millimeters(0.3),
            Length::from_millimeters(0.3),
            Length::from_millimeters(40.0),
            Length::ZERO,
            Length::from_millimeters(40.0),
        );
        assert!(r.is_err());
    }

    #[test]
    fn dry_out_payload_is_exact() {
        let pipe = thin_pipe();
        let t = Celsius::new(60.0);
        let q_max = pipe.max_power(t, 0.0).unwrap();
        let (limit, _) = pipe.limits(t, 0.0).unwrap().governing();
        let err = pipe.operate(q_max * 2.0, t, 0.0).unwrap_err();
        assert_eq!(
            err,
            TwoPhaseError::DryOut {
                limit,
                q_max,
                q_requested: q_max * 2.0,
            }
        );
        assert_eq!(err.dry_out_margin(), Some(q_max));
    }

    #[test]
    fn mass_is_grams_not_kilograms() {
        let m = thin_pipe().mass_estimate();
        assert!(m > 0.005 && m < 0.2, "flat pipe mass {m:.4} kg");
    }
}
